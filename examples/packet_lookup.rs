//! The paper's motivating workload: IPv6 packet classification through
//! a look-aside table.
//!
//! A network processor streams packet flow tuples; each is hashed into
//! a classification-table address and looked up through the LA-1
//! interface while the control plane occasionally rewrites entries.
//! The PSL monitors stay attached the whole time — assertion-based
//! verification in the field, as the paper intends the IP to be used.
//!
//! Run with `cargo run --example packet_lookup`.

use la1_core::properties::cycle_properties;
use la1_core::sc_model::LaSystemC;
use la1_core::spec::LaConfig;
use la1_core::workloads::{PacketLookup, Workload};

fn main() {
    let cfg = LaConfig::new(4);
    let mut la1 = LaSystemC::new(&cfg);
    la1.attach_monitors(&cycle_properties(cfg.banks));

    let mut traffic = PacketLookup::new(&cfg, 0xBEEF, 0.8, 0.05, 64);
    let cycles = 5_000u64;
    let mut lookups = 0u64;
    let mut updates = 0u64;
    let mut hits = 0u64;

    for _ in 0..cycles {
        let ops = traffic.next_cycle();
        for op in &ops {
            if op.is_read() {
                lookups += 1;
            } else {
                updates += 1;
            }
        }
        la1.cycle(&ops);
        for b in 0..cfg.banks {
            if la1.bank_output(b).is_some_and(|w| w != 0) {
                hits += 1;
            }
        }
    }

    println!("packet classification over LA-1 ({} banks):", cfg.banks);
    println!("  cycles simulated : {cycles}");
    println!("  table lookups    : {lookups}");
    println!("  table updates    : {updates}");
    println!("  non-empty results: {hits}");
    println!(
        "  kernel activity  : {} process activations",
        la1.activations()
    );
    println!(
        "  PSL monitors     : {} attached, {} violations",
        cfg.banks * 5,
        la1.violations().len()
    );
    assert!(la1.violations().is_empty(), "{:?}", la1.violations());
    println!("all assertions held");
}
