//! The paper's second deployment mode: the LA-1 IP as a **verification
//! unit** "to validate other LA-1 Interface compatible devices".
//!
//! A third-party device model (here: an RTL build with a deliberately
//! broken parity generator, standing in for a vendor's device under
//! test) is exercised with reference traffic while:
//!
//! * the golden SystemC model runs in lockstep as a scoreboard,
//! * the PSL monitors watch the golden side,
//! * the OVL monitors watch the device under test.
//!
//! The injected fault is caught by the OVL parity monitor and by the
//! output comparison — without the verification unit, the corrupt
//! parity would reach the network processor silently.
//!
//! Run with `cargo run --release --example verification_unit`.

use la1_core::harness::attach_la1_ovl;
use la1_core::rtl_model::{LaRtl, LaRtlDriver};
use la1_core::sc_model::LaSystemC;
use la1_core::spec::LaConfig;
use la1_core::workloads::{RandomMix, Workload};
use la1_ovl::OvlBench;

fn main() {
    let cfg = LaConfig::new(2);

    // the "vendor device": an LA-1 implementation with a parity bug on
    // bank 1
    let dut = LaRtl::build(&cfg, Some(1));
    let mut dut_drv = LaRtlDriver::new(&dut);
    let mut ovl = OvlBench::new();
    attach_la1_ovl(&mut ovl, &dut);

    // the golden reference (our verified IP) as a scoreboard
    let mut golden = LaSystemC::new(&cfg);
    golden.attach_default_monitors();

    let mut traffic = RandomMix::new(&cfg, 99, 0.6, 0.5);
    let mut data_mismatches = 0u32;
    let cycles = 400;
    for _ in 0..cycles {
        let ops = traffic.next_cycle();
        golden.cycle(&ops);
        dut_drv.cycle_with(&ops, |sim| {
            ovl.on_cycle(sim);
        });
        for b in 0..cfg.banks {
            if golden.bank_output(b) != dut_drv.bank_output(b) {
                data_mismatches += 1;
            }
        }
    }

    println!("verification unit report after {cycles} cycles:");
    println!(
        "  golden model PSL monitors : {} violations (reference is clean)",
        golden.violations().len()
    );
    println!(
        "  device-under-test OVL     : {} violations",
        ovl.violations().len()
    );
    for (name, kind, failures) in ovl.report() {
        if failures > 0 {
            println!("    {name} ({}) fired {failures} times", kind.ovl_name());
        }
    }
    println!("  scoreboard data mismatches: {data_mismatches}");

    assert!(golden.violations().is_empty(), "the golden IP must be clean");
    assert!(
        ovl.violations()
            .iter()
            .any(|v| v.monitor.contains("parity_1")),
        "the DUT's bank-1 parity bug must be caught"
    );
    println!("\nthe vendor device's parity bug was caught by the verification unit");
}
