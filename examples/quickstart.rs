//! Quickstart: build a 1-bank LA-1 at the SystemC level, attach the PSL
//! monitors, run a write-then-read, and watch everything stay green.
//!
//! Run with `cargo run --example quickstart`.

use la1_core::properties::cycle_properties;
use la1_core::sc_model::LaSystemC;
use la1_core::spec::{BankOp, LaConfig};

fn main() {
    let cfg = LaConfig::new(1);
    println!(
        "LA-1 device: {} bank(s), {} x {}-bit words, read latency {} cycles",
        cfg.banks,
        cfg.words_per_bank,
        cfg.word_width,
        la1_core::spec::READ_LATENCY
    );

    let mut la1 = LaSystemC::new(&cfg);
    la1.attach_monitors(&cycle_properties(cfg.banks));

    // cycle 0: write 0xCAFEF00D to word 3 (all byte enables)
    la1.cycle(&[BankOp::write(0, 3, 0xCAFE_F00D, 0b1111)]);
    println!("cycle 0: W# asserted, addr=3, data=0xCAFEF00D");

    // cycle 1: read word 3 — concurrently with another write (a
    // headline LA-1 feature: concurrent read and write)
    la1.cycle(&[
        BankOp::read(0, 3),
        BankOp::write(0, 4, 0x1111_2222, 0b1111),
    ]);
    println!("cycle 1: R# asserted addr=3, concurrent W# addr=4");

    // cycles 2-3: the read's SRAM access, then data out on both edges
    la1.cycle(&[]);
    println!("cycle 2: SRAM access");
    la1.cycle(&[]);
    let word = la1.bank_output(0).expect("data valid in cycle 3");
    println!("cycle 3: QVLD high, Q = {word:#010x} (two DDR halves merged)");
    assert_eq!(word, 0xCAFE_F00D);

    println!(
        "\n{} PSL monitors ran for {} cycles: {} violations",
        cfg.banks * 5,
        la1.cycles(),
        la1.violations().len()
    );
    assert!(la1.violations().is_empty());
    println!("quickstart passed");
}
