//! Symbolic model checking of the RTL read mode, 1 to 4 banks —
//! the Table 2 phenomenon, live.
//!
//! The monolithic (RuleBase-1.5-era) image strategy proves the read-mode
//! property for 1-3 banks with sharply growing BDD cost, then exhausts
//! its node budget at 4 banks: **state explosion**. The partitioned
//! strategy (an ablation) survives the same instance.
//!
//! Run with `cargo run --release --example rulebase_rtl`.

use la1_core::properties::rtl_read_mode_property;
use la1_core::rtl_model::LaRtl;
use la1_core::spec::LaConfig;
use la1_smc::{ModelChecker, SmcConfig, SmcOutcome, Strategy};

fn main() {
    let budget = 40_000_000;
    println!("read-mode property: {}", rtl_read_mode_property().property);
    println!("node budget: {budget}\n");
    for strategy in [Strategy::Monolithic, Strategy::Partitioned] {
        println!("strategy: {strategy:?}");
        // the partitioned ablation is only timed where it terminates
        // promptly; 4 banks is the monolithic strategy's explosion row
        let max_banks = match strategy {
            Strategy::Monolithic => 4,
            Strategy::Partitioned => 2,
        };
        for banks in 1..=max_banks {
            let cfg = LaConfig::mc_small(banks);
            let rtl = LaRtl::build(&cfg, None);
            let ts = rtl.extract();
            let report = ModelChecker::new(
                &ts,
                SmcConfig {
                    strategy,
                    node_budget: budget,
                    ..SmcConfig::default()
                },
            )
            .check(&rtl_read_mode_property())
            .expect("safety property");
            let outcome = match report.outcome {
                SmcOutcome::Proved => "proved".to_string(),
                SmcOutcome::Violated(_) => "VIOLATED".to_string(),
                SmcOutcome::StateExplosion => "STATE EXPLOSION".to_string(),
                SmcOutcome::Partial { explored, reason } => {
                    format!("partial ({explored} iterations, {reason})")
                }
            };
            println!(
                "  {banks} bank(s): {:<16} {:>9.3}s  {:>9} BDD nodes  {:>7.1} MB",
                outcome,
                report.stats.cpu_time.as_secs_f64(),
                report.stats.bdd_nodes,
                report.stats.memory_bytes as f64 / 1048576.0
            );
        }
        println!();
    }
    println!("the explosion confirms the paper's conclusion: integrate model");
    println!("checking at the early (ASM) design stages, not at the RTL");
}
