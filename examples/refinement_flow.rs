//! The complete Fig. 2 flow: UML → ASM (model checking) → SystemC
//! (conformance + ABV) → Verilog RTL (symbolic re-verification +
//! sequence-diagram check).
//!
//! Run with `cargo run --release --example refinement_flow`.

use la1_asm::ExploreConfig;
use la1_core::refine::run_flow;
use la1_core::spec::LaConfig;
use la1_core::uml::{la1_class_diagram, read_mode_sequence};
use la1_smc::SmcConfig;

fn main() {
    println!("{}", la1_class_diagram().render());
    println!("{}", read_mode_sequence().render());

    // the flow's RTL stage runs the RuleBase-style checker, so the
    // model-checking geometry keeps the demonstration quick
    let cfg = LaConfig::mc_small(2);
    let report = run_flow(
        &cfg,
        ExploreConfig {
            max_states: 20_000,
            ..ExploreConfig::default()
        },
        SmcConfig::default(),
    );
    println!("{}", report.render());
    assert!(report.all_passed(), "the flow must pass on the healthy design");

    println!("--- emitted Verilog (final artefact, first 40 lines) ---");
    for line in report.verilog.lines().take(40) {
        println!("{line}");
    }
    println!("... ({} lines total)", report.verilog.lines().count());
}
