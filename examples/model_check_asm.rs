//! ASM-level model checking with a deliberate bug: demonstrates the
//! paper's counterexample machinery.
//!
//! First the healthy model is explored with all interface properties —
//! everything passes. Then a *wrong* property (claiming 1-cycle read
//! latency instead of 2) is checked; the explorer's stop filter
//! `P_status && !P_value` cuts a path and reports it as a
//! counterexample trace.
//!
//! Run with `cargo run --example model_check_asm`.

use la1_asm::{ExploreConfig, Explorer};
use la1_core::asm_model::LaAsmModel;
use la1_core::spec::LaConfig;
use la1_psl::parse_directive;

fn main() {
    let cfg = LaConfig {
        banks: 1,
        words_per_bank: 4,
        word_width: 16,
        mc_addr_domain: vec![0, 1],
        mc_data_domain: vec![0, 0x5A5A],
        burst_len: 1,
    };
    let model = LaAsmModel::new(&cfg);

    // 1. the paper's property suite on the healthy model
    let result = model.model_check(ExploreConfig {
        max_states: 30_000,
        ..ExploreConfig::default()
    });
    println!(
        "exploration: {} states, {} transitions in {:?}",
        result.stats.states, result.stats.transitions, result.stats.elapsed
    );
    for report in &result.reports {
        println!(
            "  {:<20} {}",
            report.name,
            if report.outcome.is_pass() { "pass" } else { "FAIL" }
        );
    }
    assert!(result.all_pass());

    // 2. a wrong specification: data valid only ONE cycle after a read
    println!("\nchecking a deliberately wrong property (latency 1):");
    let wrong = parse_directive("assert wrong_latency : always {rd0} |=> dv0").unwrap();
    let result = Explorer::new(model.machine(), ExploreConfig::default())
        .with_directives(&[wrong])
        .run();
    let cex = result
        .first_counterexample()
        .expect("the wrong property must be violated");
    println!("{}", cex.render(model.machine()));
    println!("the read needs 2 cycles (Fig. 3), so `|=> dv0` is violated");
}
