//! The UML level: class diagram and clock-annotated sequence diagrams.
//!
//! The paper starts its flow from an informal UML specification and
//! proposes a *modified sequence diagram* notation carrying clocking
//! information — `method[cycle]()@K` — so that "precise clocked
//! properties" can be captured before any executable model exists
//! (Fig. 3). This module holds those artefacts as data: the class
//! diagram of the four principal classes and the reading-mode sequence
//! diagram, plus a checker that validates an executed message trace
//! against a diagram.

use std::fmt;

/// Which clock edge a message is annotated with (`@K` or `@K#`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockRef {
    /// Rising edge of the master clock `K`.
    K,
    /// Rising edge of the complementary clock `K#` (the falling edge
    /// of `K`).
    KBar,
}

impl fmt::Display for ClockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockRef::K => f.write_str("K"),
            ClockRef::KBar => f.write_str("K#"),
        }
    }
}

/// A class in the LA-1 class diagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UmlClass {
    /// Class name.
    pub name: &'static str,
    /// Attribute names.
    pub attributes: Vec<&'static str>,
    /// Operation names.
    pub operations: Vec<&'static str>,
}

/// An association between two classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UmlAssociation {
    /// Source class.
    pub from: &'static str,
    /// Target class.
    pub to: &'static str,
    /// Role label.
    pub label: &'static str,
}

/// The LA-1 class diagram: the paper's "four principle classes: Write
/// Port, Reading Port, SRAM Memory and a Light Simulator".
#[derive(Debug, Clone)]
pub struct ClassDiagram {
    /// The classes.
    pub classes: Vec<UmlClass>,
    /// The associations.
    pub associations: Vec<UmlAssociation>,
}

/// Builds the paper's LA-1 class diagram.
pub fn la1_class_diagram() -> ClassDiagram {
    ClassDiagram {
        classes: vec![
            UmlClass {
                name: "WritePort",
                attributes: vec!["m_e", "la1_wp_on_receive_data_depth"],
                operations: vec!["OnWriteRequest", "OnReceiveData", "CommitWrite"],
            },
            UmlClass {
                name: "ReadPort",
                attributes: vec!["m_e", "la1_rp_on_read_data_depth"],
                operations: vec!["OnReadRequest", "FormatData", "DriveData"],
            },
            UmlClass {
                name: "SramMemory",
                attributes: vec!["m_words", "la1_sram_on_write_data_depth"],
                operations: vec!["ReadWord", "WriteWord"],
            },
            UmlClass {
                name: "SimManager",
                attributes: vec!["m_k", "m_ks", "m_e", "sim_status", "system_flag"],
                operations: vec!["SimManager_Init", "SimManager_Restart", "Tick"],
            },
        ],
        associations: vec![
            UmlAssociation {
                from: "ReadPort",
                to: "SramMemory",
                label: "reads",
            },
            UmlAssociation {
                from: "WritePort",
                to: "SramMemory",
                label: "writes",
            },
            UmlAssociation {
                from: "SimManager",
                to: "ReadPort",
                label: "clocks",
            },
            UmlAssociation {
                from: "SimManager",
                to: "WritePort",
                label: "clocks",
            },
        ],
    }
}

/// One message of a clock-annotated sequence diagram:
/// `from -> to : method[cycle]() @ clock`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqMessage {
    /// Sending lifeline.
    pub from: &'static str,
    /// Receiving lifeline.
    pub to: &'static str,
    /// Method name.
    pub method: &'static str,
    /// Activation cycle (the paper's `[n]` suffix).
    pub cycle: u32,
    /// Activation clock (the paper's `@K` / `@K#`).
    pub clock: ClockRef,
}

/// A clock-annotated sequence diagram.
#[derive(Debug, Clone)]
pub struct SequenceDiagram {
    /// Scenario name.
    pub name: &'static str,
    /// Lifelines, left to right.
    pub lifelines: Vec<&'static str>,
    /// Messages in diagram order.
    pub messages: Vec<SeqMessage>,
}

/// The reading-mode sequence diagram of the paper's Fig. 3: a read
/// request at `@K` of cycle 0, the SRAM access at `@K` of cycle 1, and
/// the data released in two steps at the next rising edges of `K` and
/// `K#` (cycle 2).
pub fn read_mode_sequence() -> SequenceDiagram {
    SequenceDiagram {
        name: "ReadMode",
        lifelines: vec!["NetworkProcessor", "ReadPort", "SramMemory"],
        messages: vec![
            SeqMessage {
                from: "NetworkProcessor",
                to: "ReadPort",
                method: "OnReadRequest",
                cycle: 0,
                clock: ClockRef::K,
            },
            SeqMessage {
                from: "ReadPort",
                to: "SramMemory",
                method: "LA1_SRAM_OnReadRequest",
                cycle: 1,
                clock: ClockRef::K,
            },
            SeqMessage {
                from: "ReadPort",
                to: "ReadPort",
                method: "FormatData",
                cycle: 1,
                clock: ClockRef::K,
            },
            SeqMessage {
                from: "ReadPort",
                to: "NetworkProcessor",
                method: "OnReadRequest",
                cycle: 2,
                clock: ClockRef::K,
            },
            SeqMessage {
                from: "ReadPort",
                to: "NetworkProcessor",
                method: "OnReadRequest",
                cycle: 2,
                clock: ClockRef::KBar,
            },
        ],
    }
}

/// The writing-mode sequence diagram: `W#` at `@K` of cycle 0, the
/// address at the following `@K#`, and the commit at `@K` of cycle 1.
pub fn write_mode_sequence() -> SequenceDiagram {
    SequenceDiagram {
        name: "WriteMode",
        lifelines: vec!["NetworkProcessor", "WritePort", "SramMemory"],
        messages: vec![
            SeqMessage {
                from: "NetworkProcessor",
                to: "WritePort",
                method: "OnWriteRequest",
                cycle: 0,
                clock: ClockRef::K,
            },
            SeqMessage {
                from: "NetworkProcessor",
                to: "WritePort",
                method: "OnReceiveData",
                cycle: 0,
                clock: ClockRef::KBar,
            },
            SeqMessage {
                from: "WritePort",
                to: "SramMemory",
                method: "LA1_SRAM_OnWriteData",
                cycle: 1,
                clock: ClockRef::K,
            },
        ],
    }
}

/// An executed message observation: who called what, when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedMessage {
    /// Sending component.
    pub from: String,
    /// Receiving component.
    pub to: String,
    /// Method name.
    pub method: String,
    /// Cycle of the activation.
    pub cycle: u32,
    /// Clock edge of the activation.
    pub clock: ClockRef,
}

/// Error returned when an executed trace deviates from a sequence
/// diagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceMismatchError {
    /// Index of the first diverging message.
    pub at: usize,
    /// What the diagram expects there (rendered), if anything.
    pub expected: Option<String>,
    /// What the trace contains there (rendered), if anything.
    pub found: Option<String>,
}

impl fmt::Display for SequenceMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sequence mismatch at message {}: expected {:?}, found {:?}",
            self.at, self.expected, self.found
        )
    }
}

impl std::error::Error for SequenceMismatchError {}

impl SequenceDiagram {
    /// Checks an executed trace against this diagram (exact order,
    /// cycles relative to the trace's first message).
    ///
    /// # Errors
    ///
    /// Returns [`SequenceMismatchError`] at the first divergence.
    pub fn check(&self, trace: &[ObservedMessage]) -> Result<(), SequenceMismatchError> {
        let base = trace.first().map(|m| m.cycle).unwrap_or(0);
        for (i, expected) in self.messages.iter().enumerate() {
            let found = trace.get(i);
            let matches = found.is_some_and(|f| {
                f.from == expected.from
                    && f.to == expected.to
                    && f.method == expected.method
                    && f.cycle.saturating_sub(base) == expected.cycle
                    && f.clock == expected.clock
            });
            if !matches {
                return Err(SequenceMismatchError {
                    at: i,
                    expected: Some(format!(
                        "{}->{} {}[{}]()@{}",
                        expected.from, expected.to, expected.method, expected.cycle, expected.clock
                    )),
                    found: found.map(|f| {
                        format!(
                            "{}->{} {}[{}]()@{}",
                            f.from,
                            f.to,
                            f.method,
                            f.cycle.saturating_sub(base),
                            f.clock
                        )
                    }),
                });
            }
        }
        Ok(())
    }

    /// Renders the diagram in the paper's `method[cycle]()@clock`
    /// notation.
    pub fn render(&self) -> String {
        let mut out = format!("sequence diagram: {}\n", self.name);
        out.push_str(&format!("lifelines: {}\n", self.lifelines.join(" | ")));
        for m in &self.messages {
            out.push_str(&format!(
                "  {} -> {} : {}[{}]()@{}\n",
                m.from, m.to, m.method, m.cycle, m.clock
            ));
        }
        out
    }
}

impl ClassDiagram {
    /// Renders the diagram as indented text.
    pub fn render(&self) -> String {
        let mut out = String::from("class diagram: LA-1 Interface\n");
        for c in &self.classes {
            out.push_str(&format!("  class {}\n", c.name));
            for a in &c.attributes {
                out.push_str(&format!("    attr {a}\n"));
            }
            for o in &c.operations {
                out.push_str(&format!("    op   {o}()\n"));
            }
        }
        for a in &self.associations {
            out.push_str(&format!("  {} --{}--> {}\n", a.from, a.label, a.to));
        }
        out
    }
}

/// A use case of the LA-1 IP (Fig. 2's "Use Case" artefact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseCase {
    /// Use-case name.
    pub name: &'static str,
    /// The initiating actor.
    pub actor: &'static str,
    /// One-line goal.
    pub goal: &'static str,
}

/// The LA-1 use-case diagram: the two deployment modes the paper
/// designs for, plus the protocol-level operations.
pub fn la1_use_cases() -> Vec<UseCase> {
    vec![
        UseCase {
            name: "LookupEntry",
            actor: "NetworkProcessor",
            goal: "read a table word with fixed two-cycle latency",
        },
        UseCase {
            name: "UpdateEntry",
            actor: "ControlPlane",
            goal: "write a table word, optionally byte-masked",
        },
        UseCase {
            name: "ConcurrentAccess",
            actor: "NetworkProcessor",
            goal: "issue a read and a write in the same clock cycle",
        },
        UseCase {
            name: "IntegrateAsIp",
            actor: "SocIntegrator",
            goal: "instantiate the verified block inside a larger SoC",
        },
        UseCase {
            name: "ValidateDevice",
            actor: "VerificationEngineer",
            goal: "use the block as a verification unit against an LA-1 compatible device",
        },
    ]
}

/// Renders the use cases as indented text.
pub fn render_use_cases(cases: &[UseCase]) -> String {
    let mut out = String::from("use cases: LA-1 Interface IP\n");
    for c in cases {
        out.push_str(&format!("  ({}) {} — {}\n", c.actor, c.name, c.goal));
    }
    out
}
