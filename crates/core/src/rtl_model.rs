//! The synthesizable RTL implementation of the LA-1 interface.
//!
//! This is the bottom of the paper's flow: a Verilog-style netlist with
//! the full pin-level protocol —
//!
//! * a single address bus, time-multiplexed: read address sampled at
//!   rising `K`, write address at the following falling edge (`K#`);
//! * 18-pin-style DDR data paths: the output bus `dq` carries the low
//!   half of a word while `K` is high and the high half while `K` is
//!   low, each with even byte parity on `dq_par`;
//! * byte write control: `bw` is sampled with each write data half;
//! * N banks whose output drivers share `dq` through **tristate
//!   buffers** (the paper: "the connection between the control signals
//!   is performed using tristate buffers");
//! * read latency of [`crate::spec::READ_LATENCY`] cycles and
//!   single-cycle write commit, matching the ASM and SystemC levels.
//!
//! [`LaRtl::netlist`] yields the structural design (emit Verilog with
//! [`la1_rtl::Netlist::to_verilog`], extract a transition system for
//! the `la1-smc` checker with [`la1_rtl::Netlist::extract`]);
//! [`LaRtlDriver`] clocks the interpreted simulator through full
//! protocol cycles.

use crate::spec::{bank_bits, BankOp, LaConfig};
use la1_rtl::{
    BatchedRtlSim, BatchedRtlState, Edge, Expr, LogicVec, NetId, Netlist, RtlSim, RtlState,
    TransitionSystem, LANES,
};

/// Net handles of the built design.
#[derive(Debug, Clone)]
pub struct LaRtlNets {
    /// Master clock input.
    pub k: NetId,
    /// Read select input (active high in the model; `R#` is active low
    /// on the pins).
    pub rd_sel: NetId,
    /// Write select input.
    pub wr_sel: NetId,
    /// The single, time-multiplexed address bus.
    pub addr: NetId,
    /// DDR write-data input (one half per edge).
    pub wdata: NetId,
    /// Byte write control for the current data half.
    pub bw: NetId,
    /// Shared DDR read-data output bus.
    pub dq: NetId,
    /// Output parity bus.
    pub dq_par: NetId,
    /// Per-bank data-valid registers.
    pub dv: Vec<NetId>,
    /// Per-bank parity-error wires.
    pub perr: Vec<NetId>,
    /// Per-bank read stage-1 valid registers (property triggers).
    pub rd_v1: Vec<NetId>,
    /// Per-bank write-accepted registers (property triggers).
    pub wr_v0: Vec<NetId>,
    /// Per-bank write-done registers.
    pub wdone: Vec<NetId>,
}

/// A deliberately injected RTL bug, for exercising the verification
/// machinery (every fault must be caught by at least one of: the PSL
/// monitors, the OVL monitors, the symbolic model checker, or the
/// cross-level conformance check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtlFault {
    /// The bank's parity generator inverts byte 0 of every driven half.
    ParityBank(u32),
    /// The bank's data-valid/output stage is one cycle late (read
    /// latency 3 instead of 2) — violates the read-mode property.
    SlowRead(u32),
    /// The bank never raises data valid — reads are silently dropped.
    DeadReadPort(u32),
}

/// The RTL-level LA-1 design.
#[derive(Debug, Clone)]
pub struct LaRtl {
    netlist: Netlist,
    nets: LaRtlNets,
    cfg: LaConfig,
}

impl LaRtl {
    /// Builds the netlist for `config`; `parity_fault` optionally breaks
    /// one bank's parity generator (shorthand for the most common
    /// fault-injection case; see [`LaRtl::build_with_faults`]).
    pub fn build(config: &LaConfig, parity_fault: Option<u32>) -> LaRtl {
        let faults: Vec<RtlFault> = parity_fault.map(RtlFault::ParityBank).into_iter().collect();
        Self::build_with_faults(config, &faults)
    }

    /// Builds the netlist with an arbitrary set of injected faults.
    pub fn build_with_faults(config: &LaConfig, faults: &[RtlFault]) -> LaRtl {
        let parity_fault = faults.iter().find_map(|f| match f {
            RtlFault::ParityBank(b) => Some(*b),
            _ => None,
        });
        let slow_read = faults.iter().find_map(|f| match f {
            RtlFault::SlowRead(b) => Some(*b),
            _ => None,
        });
        let dead_read = faults.iter().find_map(|f| match f {
            RtlFault::DeadReadPort(b) => Some(*b),
            _ => None,
        });
        let cfg = config;
        let mut n = Netlist::new(format!("la1_{}bank", cfg.banks));
        let word_bits = cfg.addr_bits();
        let bbits = bank_bits(cfg.banks);
        let abits = word_bits + bbits;
        let half = cfg.half_width();
        let bytes_per_half = (half / 8).max(1);
        let bits_per_byte = half / bytes_per_half;

        let k = n.input("k", 1);
        let rd_sel = n.input("rd_sel", 1);
        let wr_sel = n.input("wr_sel", 1);
        let addr = n.input("addr", abits);
        let wdata = n.input("wdata", half);
        let bw = n.input("bw", bytes_per_half);

        let dq = n.wire("dq", half);
        let dq_par = n.wire("dq_par", bytes_per_half);
        n.mark_output(dq);
        n.mark_output(dq_par);

        // --- global write capture (single address bus) -----------------
        // W# sampled at rising K; write address at the following K#.
        let wv_g = n.reg("wv_g", 1);
        n.dff_posedge(k, Expr::net(wr_sel), wv_g);
        let wa_g = n.reg("wa_g", abits);
        n.dff_negedge(k, Expr::net(addr), wa_g);
        let wd_lo = n.reg("wd_lo", half);
        n.dff_posedge(k, Expr::net(wdata), wd_lo);
        let wd_hi = n.reg("wd_hi", half);
        n.dff_negedge(k, Expr::net(wdata), wd_hi);
        let bw_lo = n.reg("bw_lo", bytes_per_half);
        n.dff_posedge(k, Expr::net(bw), bw_lo);
        let bw_hi = n.reg("bw_hi", bytes_per_half);
        n.dff_negedge(k, Expr::net(bw), bw_hi);

        // full write word and bit mask
        let wword = n.wire("wword", cfg.word_width);
        n.assign(
            wword,
            Expr::Concat(vec![Expr::net(wd_lo), Expr::net(wd_hi)]),
        );
        let wmask = n.wire("wmask", cfg.word_width);
        let mut mask_parts = Vec::new();
        for half_sel in 0..2u32 {
            let src = if half_sel == 0 { bw_lo } else { bw_hi };
            for byte in 0..bytes_per_half {
                for _ in 0..bits_per_byte {
                    mask_parts.push(Expr::Index(src, byte));
                }
            }
        }
        n.assign(wmask, Expr::Concat(mask_parts));

        // bank decode from the live address bus (valid at the edge that
        // samples it: rising for reads, falling for write accepts)
        let bus_bank_hit = |bank: u32| -> Expr {
            if bbits == 0 {
                Expr::bit(true)
            } else {
                Expr::eq_const(
                    Expr::Slice(addr, abits - 1, word_bits),
                    bank as u64,
                    bbits,
                )
            }
        };
        // bank decode from the captured write address register (valid
        // from the falling edge that loads `wa_g` until the next one)
        let captured_bank_hit = |bank: u32| -> Expr {
            if bbits == 0 {
                Expr::bit(true)
            } else {
                Expr::eq_const(
                    Expr::Slice(wa_g, abits - 1, word_bits),
                    bank as u64,
                    bbits,
                )
            }
        };

        let mut dv_nets = Vec::new();
        let mut perr_nets = Vec::new();
        let mut rd_v1_nets = Vec::new();
        let mut wr_v0_nets = Vec::new();
        let mut wdone_nets = Vec::new();

        for b in 0..cfg.banks {
            // ---- read pipeline ----------------------------------------
            let rd_v1 = n.reg(format!("rd_v1_{b}"), 1);
            n.dff_posedge(k, Expr::and(Expr::net(rd_sel), bus_bank_hit(b)), rd_v1);
            let rd_a1 = n.reg(format!("rd_a1_{b}"), word_bits);
            n.dff_posedge(
                k,
                Expr::Slice(addr, word_bits.saturating_sub(1), 0),
                rd_a1,
            );
            let rd_v2 = n.reg(format!("rd_v2_{b}"), 1);
            n.dff_posedge(k, Expr::net(rd_v1), rd_v2);
            let rd_a2 = n.reg(format!("rd_a2_{b}"), word_bits);
            n.dff_posedge(k, Expr::net(rd_a1), rd_a2);
            // LA-1B burst extension: second-beat valid flag and
            // auto-incremented address (the protocol spaces reads so the
            // shared read port is free on the beat's cycle)
            let burst_regs = if cfg.is_burst() {
                let rd_b2 = n.reg(format!("rd_b2_{b}"), 1);
                n.dff_posedge(k, Expr::net(rd_v2), rd_b2);
                let rd_a2b = n.reg(format!("rd_a2b_{b}"), word_bits);
                n.dff_posedge(k, increment(rd_a2, word_bits), rd_a2b);
                Some((rd_b2, rd_a2b))
            } else {
                None
            };

            // ---- SRAM bank --------------------------------------------
            // the read port addresses the array with the stage-2 address
            // so the output stage samples memory at the same instant the
            // ASM and SystemC levels do (a write committing on the same
            // edge is not yet visible — read-before-write)
            let rdata = n.wire(format!("rdata_{b}"), cfg.word_width);
            let we = n.wire(format!("we_{b}"), 1);
            n.assign(we, Expr::and(Expr::net(wv_g), captured_bank_hit(b)));
            let raddr = match burst_regs {
                Some((rd_b2, rd_a2b)) => Expr::mux(
                    Expr::net(rd_v2),
                    Expr::net(rd_a2),
                    Expr::mux(Expr::net(rd_b2), Expr::net(rd_a2b), Expr::net(rd_a2)),
                ),
                None => Expr::net(rd_a2),
            };
            n.ram(
                k,
                Expr::net(we),
                Expr::Slice(wa_g, word_bits.saturating_sub(1), 0),
                Expr::net(wword),
                Some(Expr::net(wmask)),
                raddr,
                rdata,
                cfg.words_per_bank,
                cfg.word_width,
            );

            // write bookkeeping: per-bank accept (set at the falling edge
            // once the address identifies the bank) and done flag. The
            // bank is decoded from the live `addr` bus — `wa_g` is
            // registered by this same falling edge, so a nonblocking
            // sample of it would see the *previous* write's address and
            // pulse done on the wrong bank.
            let wr_v0 = n.reg(format!("wr_v0_{b}"), 1);
            n.dff_negedge(k, Expr::and(Expr::net(wv_g), bus_bank_hit(b)), wr_v0);
            let wdone = n.reg(format!("wdone_{b}"), 1);
            n.dff_posedge(k, Expr::net(wr_v0), wdone);

            // ---- output stage -----------------------------------------
            // fault hooks: a slow read adds a pipeline stage; a dead
            // read port never asserts dv
            let healthy_dv = match burst_regs {
                Some((rd_b2, _)) => Expr::or(Expr::net(rd_v2), Expr::net(rd_b2)),
                None => Expr::net(rd_v2),
            };
            let dv_src = if slow_read == Some(b) {
                let rd_v3 = n.reg(format!("rd_v3_{b}"), 1);
                n.dff_posedge(k, Expr::net(rd_v2), rd_v3);
                Expr::net(rd_v3)
            } else if dead_read == Some(b) {
                Expr::bit(false)
            } else {
                healthy_dv
            };
            let dv = n.reg(format!("dv_{b}"), 1);
            n.dff_posedge(k, dv_src.clone(), dv);
            let out = n.reg(format!("out_{b}"), cfg.word_width);
            n.dff_en(k, Edge::Pos, dv_src, Expr::net(rdata), out);

            // DDR mux: low half while K is high, high half while K is low
            let drive = n.wire(format!("drive_{b}"), half);
            n.assign(
                drive,
                Expr::mux(
                    Expr::net(k),
                    Expr::Slice(out, half - 1, 0),
                    Expr::Slice(out, cfg.word_width - 1, half),
                ),
            );
            // even byte parity of the driven half
            let par = n.wire(format!("par_{b}"), bytes_per_half);
            let mut par_parts = Vec::new();
            for byte in 0..bytes_per_half {
                let lo_bit = byte * bits_per_byte;
                let hi_bit = lo_bit + bits_per_byte - 1;
                let mut p = Expr::ReduceXor(Box::new(Expr::Slice(drive, hi_bit, lo_bit)));
                if parity_fault == Some(b) && byte == 0 {
                    p = Expr::not(p); // injected fault
                }
                par_parts.push(p);
            }
            n.assign(par, Expr::Concat(par_parts));

            // tristate drivers onto the shared buses
            n.tristate(dq, Expr::net(dv), Expr::net(drive));
            n.tristate(dq_par, Expr::net(dv), Expr::net(par));

            // parity checker (verification-unit role): recompute and
            // compare against what the bank drives
            let perr = n.wire(format!("perr_{b}"), 1);
            let mut any_err = Expr::bit(false);
            for byte in 0..bytes_per_half {
                let lo_bit = byte * bits_per_byte;
                let hi_bit = lo_bit + bits_per_byte - 1;
                let recomputed = Expr::ReduceXor(Box::new(Expr::Slice(drive, hi_bit, lo_bit)));
                let mismatch = Expr::xor(recomputed, Expr::Index(par, byte));
                any_err = Expr::or(any_err, mismatch);
            }
            n.assign(perr, Expr::and(Expr::net(dv), any_err));

            dv_nets.push(dv);
            perr_nets.push(perr);
            rd_v1_nets.push(rd_v1);
            wr_v0_nets.push(wr_v0);
            wdone_nets.push(wdone);
        }

        // bus conflict detector (should be unreachable: single address
        // bus means at most one read per cycle)
        if cfg.banks > 1 {
            let conflict = n.wire("dv_conflict", 1);
            let mut any = Expr::bit(false);
            for i in 0..cfg.banks as usize {
                for j in (i + 1)..cfg.banks as usize {
                    any = Expr::or(
                        any,
                        Expr::and(Expr::net(dv_nets[i]), Expr::net(dv_nets[j])),
                    );
                }
            }
            n.assign(conflict, any);
        }

        let nets = LaRtlNets {
            k,
            rd_sel,
            wr_sel,
            addr,
            wdata,
            bw,
            dq,
            dq_par,
            dv: dv_nets,
            perr: perr_nets,
            rd_v1: rd_v1_nets,
            wr_v0: wr_v0_nets,
            wdone: wdone_nets,
        };
        LaRtl {
            netlist: n,
            nets,
            cfg: cfg.clone(),
        }
    }

    /// The structural netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The net handles.
    pub fn nets(&self) -> &LaRtlNets {
        &self.nets
    }

    /// The configuration the design was built for.
    pub fn config(&self) -> &LaConfig {
        &self.cfg
    }

    /// Emits the design as Verilog (the flow's final artefact).
    pub fn to_verilog(&self) -> String {
        self.netlist.to_verilog()
    }

    /// Extracts the transition system for symbolic model checking
    /// (clock `k` becomes an auto-toggling state bit).
    pub fn extract(&self) -> TransitionSystem {
        self.netlist.extract(&[self.nets.k])
    }
}

/// An input pin of the LA-1 design that [`LaRtlDriver::inject_x`] can
/// drive with four-state X for one full protocol cycle — the RTL-only
/// fault class the two-valued upper levels cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XPin {
    /// The read-select input `rd_sel`.
    ReadSel,
    /// The write-select input `wr_sel`.
    WriteSel,
    /// The time-multiplexed address bus `addr`.
    Addr,
    /// The DDR write-data input `wdata` (both halves of the cycle).
    WData,
}

/// Clocks the interpreted RTL simulator through full protocol cycles.
#[derive(Debug)]
pub struct LaRtlDriver {
    design: LaRtl,
    sim: RtlSim,
    cycles: u64,
    /// dq low half captured during the high phase of the current cycle
    captured_lo: Option<u64>,
    /// merged output word per bank, refreshed each cycle
    outputs: Vec<Option<u64>>,
    /// pin to drive with X during the next cycle, consumed by `cycle_with`
    pending_x: Option<XPin>,
}

impl LaRtlDriver {
    /// Creates a driver (the design starts with `K` low).
    pub fn new(design: &LaRtl) -> Self {
        let sim = RtlSim::new(design.netlist());
        let banks = design.cfg.banks as usize;
        LaRtlDriver {
            design: design.clone(),
            sim,
            cycles: 0,
            captured_lo: None,
            outputs: vec![None; banks],
            pending_x: None,
        }
    }

    /// Arms a four-state X injection: during the next [`Self::cycle`]
    /// the chosen input pin is driven with all-X on both clock edges,
    /// overriding whatever the operations would drive. Whatever the
    /// design samples from that pin (a write word, an address, a select)
    /// becomes X and propagates through the state like a real unknown.
    pub fn inject_x(&mut self, pin: XPin) {
        self.pending_x = Some(pin);
    }

    /// Mutable access to the underlying simulator (OVL benches probe
    /// through it).
    pub fn sim_mut(&mut self) -> &mut RtlSim {
        &mut self.sim
    }

    /// Completed protocol cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The configuration the driven design was built for.
    pub fn config(&self) -> &LaConfig {
        self.design.config()
    }

    /// Expression evaluations performed by the interpreter so far.
    pub fn evals(&self) -> u64 {
        self.sim.evals()
    }

    /// Runs one full clock cycle with at most one read and one write
    /// (the single address bus allows no more).
    ///
    /// Returns a borrow-friendly handle to sample OVL monitors between
    /// the edges via [`Self::sim_mut`] — callers that need the paper's
    /// rising-edge sampling should pass a callback to
    /// [`Self::cycle_with`].
    ///
    /// # Panics
    ///
    /// Panics if more than one read or write is supplied, or if an
    /// address is out of range.
    pub fn cycle(&mut self, ops: &[BankOp]) {
        self.cycle_with(ops, |_| {});
    }

    /// Like [`Self::cycle`], invoking `at_rising` once the rising edge
    /// has settled (the OVL sampling point).
    pub fn cycle_with<F: FnOnce(&mut RtlSim)>(&mut self, ops: &[BankOp], at_rising: F) {
        let x_target: Option<(NetId, u32)> = self.pending_x.take().map(|pin| {
            let cfg = &self.design.cfg;
            let nets = &self.design.nets;
            match pin {
                XPin::ReadSel => (nets.rd_sel, 1),
                XPin::WriteSel => (nets.wr_sel, 1),
                XPin::Addr => (nets.addr, cfg.addr_bits() + bank_bits(cfg.banks)),
                XPin::WData => (nets.wdata, cfg.half_width()),
            }
        });
        let cfg = &self.design.cfg;
        let nets = &self.design.nets;
        let word_bits = cfg.addr_bits();
        let mut read = None;
        let mut write = None;
        for op in ops {
            match *op {
                BankOp::Read { bank, addr } => {
                    assert!(read.is_none(), "single address bus: one read per cycle");
                    assert!(addr < cfg.words_per_bank as u64);
                    read = Some((bank, addr));
                }
                BankOp::Write {
                    bank,
                    addr,
                    data,
                    byte_en,
                } => {
                    assert!(write.is_none(), "single address bus: one write per cycle");
                    assert!(addr < cfg.words_per_bank as u64);
                    write = Some((bank, addr, cfg.mask_word(data), byte_en));
                }
            }
        }

        // rising edge: read select + read address + write select +
        // write data low half + low byte enables
        let (rd, rbank, raddr) = match read {
            Some((b, a)) => (1u64, b as u64, a),
            None => (0, 0, 0),
        };
        let (wr, wdata_lo, bw_lo) = match write {
            Some((_, _, d, be)) => (
                1u64,
                cfg.low_half(d),
                (be & ((1 << (cfg.byte_enables() / 2)) - 1)) as u64,
            ),
            None => (0, 0, 0),
        };
        self.sim.set_u64(nets.rd_sel, rd);
        self.sim.set_u64(nets.wr_sel, wr);
        self.sim
            .set_u64(nets.addr, raddr | (rbank << word_bits));
        self.sim.set_u64(nets.wdata, wdata_lo);
        self.sim.set_u64(nets.bw, bw_lo);
        if let Some((net, width)) = x_target {
            self.sim.set(net, LogicVec::xs(width));
        }
        self.sim.set_u64(nets.k, 1);
        self.sim.step();
        // capture the low output half (driven while K is high)
        self.captured_lo = self.sim.get_u64(nets.dq);
        at_rising(&mut self.sim);

        // falling edge: write address + write data high half + high
        // byte enables
        let (waddr_bus, wdata_hi, bw_hi) = match write {
            Some((b, a, d, be)) => (
                a | ((b as u64) << word_bits),
                cfg.high_half(d),
                (be >> (cfg.byte_enables() / 2)) as u64,
            ),
            None => (0, 0, 0),
        };
        self.sim.set_u64(nets.addr, waddr_bus);
        self.sim.set_u64(nets.wdata, wdata_hi);
        self.sim.set_u64(nets.bw, bw_hi);
        if let Some((net, width)) = x_target {
            self.sim.set(net, LogicVec::xs(width));
        }
        self.sim.set_u64(nets.k, 0);
        self.sim.step();

        // merge the DDR halves per bank
        let half = cfg.half_width();
        for b in 0..cfg.banks as usize {
            let dv = self.sim.get_u64(nets.dv[b]) == Some(1);
            self.outputs[b] = if dv {
                match (self.captured_lo, self.sim.get_u64(nets.dq)) {
                    (Some(lo), Some(hi)) => Some(lo | (hi << half)),
                    _ => None,
                }
            } else {
                None
            };
        }
        self.cycles += 1;
    }

    /// The word a bank produced in the last completed cycle (both DDR
    /// halves merged), if its data-valid flag was set.
    pub fn bank_output(&self, bank: u32) -> Option<u64> {
        self.outputs[bank as usize]
    }

    /// Whether a bank's parity checker fired at the last rising edge.
    pub fn parity_error(&mut self, bank: u32) -> bool {
        let net = self.design.nets.perr[bank as usize];
        self.sim.get_u64(net) == Some(1)
    }

    /// Whether the bank's write-done register is set after the last
    /// completed cycle.
    pub fn write_done(&self, bank: u32) -> bool {
        let net = self.design.nets.wdone[bank as usize];
        self.sim.get_u64(net) == Some(1)
    }

    /// Captures the driver's complete state at a protocol-cycle
    /// boundary: the simulator's value arena plus the DDR-merge
    /// bookkeeping.
    ///
    /// # Errors
    ///
    /// Fails if an X injection is armed but not yet consumed (arm it
    /// again after restoring instead).
    pub fn snapshot_state(&self) -> Result<RtlDriverSnap, String> {
        if self.pending_x.is_some() {
            return Err("cannot snapshot with an armed X injection".to_string());
        }
        Ok(RtlDriverSnap {
            sim: self.sim.export_state()?,
            cycles: self.cycles,
            captured_lo: self.captured_lo,
            outputs: self.outputs.clone(),
        })
    }

    /// Installs a snapshot taken from a driver over the same design.
    ///
    /// # Errors
    ///
    /// Fails without modifying the driver if the simulator state does
    /// not fit the design (arena size, widths, RAM geometry) or the
    /// output list has the wrong bank count.
    pub fn restore_state(&mut self, snap: &RtlDriverSnap) -> Result<(), String> {
        if snap.outputs.len() != self.outputs.len() {
            return Err(format!(
                "snapshot has {} banks, driver has {}",
                snap.outputs.len(),
                self.outputs.len()
            ));
        }
        self.sim.import_state(&snap.sim)?;
        self.cycles = snap.cycles;
        self.captured_lo = snap.captured_lo;
        self.outputs.clone_from(&snap.outputs);
        self.pending_x = None;
        Ok(())
    }
}

/// A plain-data snapshot of a [`LaRtlDriver`] at a protocol-cycle
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlDriverSnap {
    /// The interpreted simulator's exported state.
    pub sim: RtlState,
    /// Completed protocol cycles.
    pub cycles: u64,
    /// The low DDR half captured during the last high phase.
    pub captured_lo: Option<u64>,
    /// Merged output words per bank.
    pub outputs: Vec<Option<u64>>,
}

/// Clocks the 64-lane batched (PPSFP) RTL simulator through full
/// protocol cycles — one independent LA-1 stimulus stream per lane over
/// a single shared netlist evaluation.
///
/// Per-lane semantics are bit-identical to running [`LaRtlDriver`] 64
/// times: the same input encoding, the same sampling points, the same
/// DDR half merge. The clock `K` is lane-uniform (every lane sees the
/// same edges), which is exactly the PPSFP restriction.
#[derive(Debug)]
pub struct LaRtlBatchDriver {
    design: LaRtl,
    sim: BatchedRtlSim,
    cycles: u64,
    /// dq low half captured during the high phase, per lane
    captured_lo: Vec<Option<u64>>,
    /// merged output word per lane per bank, refreshed each cycle
    outputs: Vec<Vec<Option<u64>>>,
    /// pin to drive with X during the next cycle, per lane
    pending_x: Vec<Option<XPin>>,
}

impl LaRtlBatchDriver {
    /// Creates a batched driver (the design starts with `K` low in every
    /// lane).
    pub fn new(design: &LaRtl) -> Self {
        let sim = BatchedRtlSim::new(design.netlist());
        let banks = design.cfg.banks as usize;
        LaRtlBatchDriver {
            design: design.clone(),
            sim,
            cycles: 0,
            captured_lo: vec![None; LANES],
            outputs: vec![vec![None; banks]; LANES],
            pending_x: vec![None; LANES],
        }
    }

    /// Arms a four-state X injection on one lane for the next cycle
    /// (the batched analogue of [`LaRtlDriver::inject_x`]).
    pub fn inject_x(&mut self, lane: usize, pin: XPin) {
        self.pending_x[lane] = Some(pin);
    }

    /// Mutable access to the underlying batched simulator (monitor
    /// benches probe single lanes through
    /// [`BatchedRtlSim::lane_probe`]).
    pub fn sim_mut(&mut self) -> &mut BatchedRtlSim {
        &mut self.sim
    }

    /// Completed protocol cycles (lane-uniform by construction).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The configuration the driven design was built for.
    pub fn config(&self) -> &LaConfig {
        self.design.config()
    }

    /// Compiled-op evaluations performed so far; each one advances all
    /// 64 lanes.
    pub fn evals(&self) -> u64 {
        self.sim.evals()
    }

    /// Runs one full clock cycle with an independent operation list per
    /// lane. `ops[lane]` follows the [`LaRtlDriver::cycle`] contract (at
    /// most one read and one write); lanes beyond `ops.len()` idle.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`LaRtlDriver::cycle`], or if
    /// more than [`LANES`] operation lists are supplied.
    pub fn cycle(&mut self, ops: &[&[BankOp]]) {
        self.cycle_with(ops, |_| {});
    }

    /// Like [`Self::cycle`], invoking `at_rising` once the rising edge
    /// has settled (the OVL sampling point; probe individual lanes with
    /// [`BatchedRtlSim::lane_probe`]).
    pub fn cycle_with<F: FnOnce(&mut BatchedRtlSim)>(&mut self, ops: &[&[BankOp]], at_rising: F) {
        assert!(ops.len() <= LANES, "at most {LANES} lanes");
        let cfg = self.design.cfg.clone();
        let nets = self.design.nets.clone();
        let word_bits = cfg.addr_bits();
        let half = cfg.half_width();

        // decode each lane's operations once, with the scalar driver's
        // exact validation
        let mut reads = [None; LANES];
        let mut writes = [None; LANES];
        for (lane, lane_ops) in ops.iter().enumerate() {
            for op in lane_ops.iter() {
                match *op {
                    BankOp::Read { bank, addr } => {
                        assert!(
                            reads[lane].is_none(),
                            "single address bus: one read per cycle"
                        );
                        assert!(addr < cfg.words_per_bank as u64);
                        reads[lane] = Some((bank, addr));
                    }
                    BankOp::Write {
                        bank,
                        addr,
                        data,
                        byte_en,
                    } => {
                        assert!(
                            writes[lane].is_none(),
                            "single address bus: one write per cycle"
                        );
                        assert!(addr < cfg.words_per_bank as u64);
                        writes[lane] = Some((bank, addr, cfg.mask_word(data), byte_en));
                    }
                }
            }
        }
        let x_target = |pin: XPin| -> NetId {
            match pin {
                XPin::ReadSel => nets.rd_sel,
                XPin::WriteSel => nets.wr_sel,
                XPin::Addr => nets.addr,
                XPin::WData => nets.wdata,
            }
        };

        // rising edge: read select + read address + write select +
        // write data low half + low byte enables. All lanes of each
        // input are staged through one transposed bulk drive
        // (semantically 64 per-lane sets; see PackedVec::set_lanes_u64),
        // then the rare pending X injections overwrite their lane.
        let mut rd_v = [0u64; LANES];
        let mut wr_v = [0u64; LANES];
        let mut addr_v = [0u64; LANES];
        let mut data_v = [0u64; LANES];
        let mut bw_v = [0u64; LANES];
        for lane in 0..LANES {
            if let Some((b, a)) = reads[lane] {
                rd_v[lane] = 1;
                addr_v[lane] = a | ((b as u64) << word_bits);
            }
            if let Some((_, _, d, be)) = writes[lane] {
                wr_v[lane] = 1;
                data_v[lane] = cfg.low_half(d);
                bw_v[lane] = (be & ((1 << (cfg.byte_enables() / 2)) - 1)) as u64;
            }
        }
        self.sim.set_lanes_u64(nets.rd_sel, &rd_v);
        self.sim.set_lanes_u64(nets.wr_sel, &wr_v);
        self.sim.set_lanes_u64(nets.addr, &addr_v);
        self.sim.set_lanes_u64(nets.wdata, &data_v);
        self.sim.set_lanes_u64(nets.bw, &bw_v);
        for lane in 0..LANES {
            if let Some(pin) = self.pending_x[lane] {
                self.sim.set_lane_xs(x_target(pin), lane);
            }
        }
        self.sim.set_u64_all(nets.k, 1);
        self.sim.step();
        // capture the low output halves (driven while K is high)
        let mut dq = [0u64; LANES];
        let known = self.sim.lanes_u64(nets.dq, &mut dq);
        for (lane, &q) in dq.iter().enumerate() {
            self.captured_lo[lane] = (known >> lane & 1 == 1).then_some(q);
        }
        at_rising(&mut self.sim);

        // falling edge: write address + write data high half + high
        // byte enables
        for lane in 0..LANES {
            let (waddr_bus, wdata_hi, bw_hi) = match writes[lane] {
                Some((b, a, d, be)) => (
                    a | ((b as u64) << word_bits),
                    cfg.high_half(d),
                    (be >> (cfg.byte_enables() / 2)) as u64,
                ),
                None => (0, 0, 0),
            };
            addr_v[lane] = waddr_bus;
            data_v[lane] = wdata_hi;
            bw_v[lane] = bw_hi;
        }
        self.sim.set_lanes_u64(nets.addr, &addr_v);
        self.sim.set_lanes_u64(nets.wdata, &data_v);
        self.sim.set_lanes_u64(nets.bw, &bw_v);
        for lane in 0..LANES {
            if let Some(pin) = self.pending_x[lane].take() {
                self.sim.set_lane_xs(x_target(pin), lane);
            }
        }
        self.sim.set_u64_all(nets.k, 0);
        self.sim.step();

        // merge the DDR halves per lane per bank (high halves bulk-read
        // once, per-bank data-valid flags read plane-wise)
        let known_hi = self.sim.lanes_u64(nets.dq, &mut dq);
        for b in 0..cfg.banks as usize {
            let dv_ones = self.sim.get(nets.dv[b]).lanes_bit_is_one(0);
            for (lane, &q) in dq.iter().enumerate() {
                self.outputs[lane][b] = if dv_ones >> lane & 1 == 1 {
                    let hi = (known_hi >> lane & 1 == 1).then_some(q);
                    match (self.captured_lo[lane], hi) {
                        (Some(lo), Some(hi)) => Some(lo | (hi << half)),
                        _ => None,
                    }
                } else {
                    None
                };
            }
        }
        self.cycles += 1;
    }

    /// The word a bank produced for one lane in the last completed
    /// cycle, if its data-valid flag was set in that lane.
    pub fn bank_output(&self, lane: usize, bank: u32) -> Option<u64> {
        self.outputs[lane][bank as usize]
    }

    /// Whether a bank's parity checker fired in one lane at the last
    /// rising edge.
    pub fn parity_error(&self, lane: usize, bank: u32) -> bool {
        let net = self.design.nets.perr[bank as usize];
        self.sim.lane_u64(net, lane) == Some(1)
    }

    /// Whether the bank's write-done register is set in one lane after
    /// the last completed cycle.
    pub fn write_done(&self, lane: usize, bank: u32) -> bool {
        let net = self.design.nets.wdone[bank as usize];
        self.sim.lane_u64(net, lane) == Some(1)
    }

    /// Captures the batched driver's complete state at a protocol-cycle
    /// boundary — all 64 lanes at once.
    ///
    /// # Errors
    ///
    /// Fails if any lane has an armed, unconsumed X injection.
    pub fn snapshot_state(&self) -> Result<RtlBatchDriverSnap, String> {
        if self.pending_x.iter().any(Option::is_some) {
            return Err("cannot snapshot with an armed X injection".to_string());
        }
        Ok(RtlBatchDriverSnap {
            sim: self.sim.export_state()?,
            cycles: self.cycles,
            captured_lo: self.captured_lo.clone(),
            outputs: self.outputs.clone(),
        })
    }

    /// Installs a snapshot taken from a batched driver over the same
    /// design.
    ///
    /// # Errors
    ///
    /// Fails without modifying the driver if the simulator state does
    /// not fit the design or the per-lane output lists have the wrong
    /// shape.
    pub fn restore_state(&mut self, snap: &RtlBatchDriverSnap) -> Result<(), String> {
        if snap.captured_lo.len() != LANES
            || snap.outputs.len() != LANES
            || snap.outputs.iter().any(|o| o.len() != self.outputs[0].len())
        {
            return Err("snapshot lane shape does not match the driver".to_string());
        }
        self.sim.import_state(&snap.sim)?;
        self.cycles = snap.cycles;
        self.captured_lo.clone_from(&snap.captured_lo);
        self.outputs.clone_from(&snap.outputs);
        self.pending_x.fill(None);
        Ok(())
    }
}

/// A plain-data snapshot of a [`LaRtlBatchDriver`] at a protocol-cycle
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlBatchDriverSnap {
    /// The batched simulator's exported state (bit-plane encoded).
    pub sim: BatchedRtlState,
    /// Completed protocol cycles (lane-uniform).
    pub cycles: u64,
    /// The low DDR half captured during the last high phase, per lane.
    pub captured_lo: Vec<Option<u64>>,
    /// Merged output words per lane per bank.
    pub outputs: Vec<Vec<Option<u64>>>,
}

/// A ripple-carry incrementer: `net + 1` truncated to `width` bits.
fn increment(net: NetId, width: u32) -> Expr {
    let mut parts = Vec::with_capacity(width as usize);
    let mut carry = Expr::bit(true);
    for i in 0..width {
        let bit = Expr::Index(net, i);
        parts.push(Expr::xor(bit.clone(), carry.clone()));
        carry = Expr::and(carry, bit);
    }
    Expr::Concat(parts)
}
