//! The PSL property suite of the LA-1 interface.
//!
//! The paper extracts the interface's properties "from both the sequence
//! diagrams and the class diagram" and verifies the *same* properties at
//! every level of the flow. Two variants are generated:
//!
//! * [`cycle_properties`] — sampled once per full clock cycle (at the
//!   rising edge of `K`), used by the ASM explorer and the SystemC
//!   monitors;
//! * [`rtl_properties`] — sampled once per clock *edge* (the
//!   granularity at which the extracted RTL transition system steps),
//!   used by the RuleBase-style model checker.
//!
//! Signal naming is uniform across levels: `rd{b}`, `wr{b}`, `dv{b}`,
//! `perr{b}`, `wdone{b}` at cycle level; `rd_v1_{b}`, `wr_v0_{b}`,
//! `dv_{b}`, `perr_{b}`, `wdone_{b}` at the RTL level.

use crate::spec::LaConfig;
use la1_psl::{parse_directive, Directive};

/// The cycle-level property set for a `banks`-bank device.
///
/// Per bank `b`:
///
/// * `read_latency_{b}` — a read issued in cycle *n* produces valid
///   data exactly [`crate::spec::READ_LATENCY`] cycles later
///   (Fig. 3's reading-mode scenario);
/// * `no_spurious_dv_{b}` — data valid never appears without a read two
///   cycles earlier;
/// * `parity_{b}` — the output parity checker never fires;
/// * `write_commit_{b}` — a write issued in cycle *n* is committed to
///   the SRAM in cycle *n + 1*;
/// * `concurrent_rw_{b}` *(cover)* — concurrent read and write on the
///   same bank is exercised (a headline LA-1 feature).
///
/// # Panics
///
/// Panics only if the internally generated property text fails to
/// parse, which would be a bug in this crate.
pub fn cycle_properties(banks: u32) -> Vec<Directive> {
    let mut out = Vec::new();
    for b in 0..banks {
        out.push(dir(&format!(
            "assert read_latency_{b} : always {{rd{b}}} |=> next dv{b}"
        )));
        out.push(dir(&format!(
            "assert no_spurious_dv_{b} : never {{!rd{b} ; true ; dv{b}}}"
        )));
        out.push(dir(&format!("assert parity_{b} : always !perr{b}")));
        out.push(dir(&format!(
            "assert write_commit_{b} : always {{wr{b}}} |=> wdone{b}"
        )));
        out.push(dir(&format!(
            "cover concurrent_rw_{b} : eventually! {{rd{b} && wr{b}}}"
        )));
    }
    out
}

/// The property suite for a configuration, burst-aware: under the
/// LA-1B extension a read also produces a second data-valid cycle, and
/// the no-spurious check must look one cycle further back.
pub fn cycle_properties_for(config: &LaConfig) -> Vec<Directive> {
    if !config.is_burst() {
        return cycle_properties(config.banks);
    }
    let mut out = Vec::new();
    for b in 0..config.banks {
        out.push(dir(&format!(
            "assert read_latency_{b} : always {{rd{b}}} |=> next dv{b}"
        )));
        out.push(dir(&format!(
            "assert burst_second_beat_{b} : always {{rd{b}}} |=> next[2] dv{b}"
        )));
        out.push(dir(&format!(
            "assert no_spurious_dv_{b} : never {{!rd{b} ; !rd{b} ; true ; dv{b}}}"
        )));
        out.push(dir(&format!("assert parity_{b} : always !perr{b}")));
        out.push(dir(&format!(
            "assert write_commit_{b} : always {{wr{b}}} |=> wdone{b}"
        )));
    }
    out
}

/// Only the assert directives of [`cycle_properties`] (the explorer and
/// monitors treat covers separately in some harnesses).
pub fn cycle_asserts(banks: u32) -> Vec<Directive> {
    cycle_properties(banks)
        .into_iter()
        .filter(|d| d.kind == la1_psl::DirectiveKind::Assert)
        .collect()
}

/// The edge-level (RTL) property set for a `banks`-bank device.
///
/// Each extracted-transition-system step is one clock edge, so cycle
/// offsets double. Triggers use the interface's *pipeline registers*
/// (`rd_v1`, `wr_v0`) rather than raw inputs, making the properties
/// robust to arbitrary input wiggling between edges.
pub fn rtl_properties(banks: u32) -> Vec<Directive> {
    let mut out = Vec::new();
    for b in 0..banks {
        out.push(dir(&format!(
            "assert rtl_read_mode_{b} : always {{!rd_v1_{b} ; rd_v1_{b}}} |=> next[3] dv_{b}"
        )));
        out.push(dir(&format!(
            "assert rtl_write_mode_{b} : always {{!wr_v0_{b} ; wr_v0_{b}}} |=> next wdone_{b}"
        )));
        out.push(dir(&format!(
            "assert rtl_parity_{b} : always !perr_{b}"
        )));
    }
    if banks > 1 {
        out.push(dir(
            "assert rtl_no_bus_conflict : always !dv_conflict",
        ));
    }
    out
}

/// The paper's Table 2 subject: the read-mode property of bank 0 on an
/// N-bank device (the model grows with `banks`; the property does not).
pub fn rtl_read_mode_property() -> Directive {
    dir("assert read_mode : always {!rd_v1_0 ; rd_v1_0} |=> next[3] dv_0")
}

fn dir(src: &str) -> Directive {
    parse_directive(src).unwrap_or_else(|e| panic!("builtin property failed to parse: {e}: {src}"))
}
