//! The Fig. 2 flow: design-and-verification through the refinement
//! levels, with conformance checks between them.
//!
//! `run_flow` executes the paper's methodology end to end:
//!
//! 1. render the UML artefacts (class diagram + sequence diagrams);
//! 2. model-check the PSL properties on the ASM model via bounded
//!    exploration;
//! 3. translate to SystemC and run the AsmL-style **conformance test**
//!    co-executing both models on the same stimulus;
//! 4. run assertion-based verification on the SystemC model;
//! 5. derive the Verilog RTL, re-verify the same properties with the
//!    RuleBase-style symbolic model checker, and check the executed
//!    read-mode trace against the Fig. 3 sequence diagram.

use crate::asm_model::LaAsmModel;
use crate::harness::run_abv;
use crate::properties::{cycle_properties_for, rtl_properties};
use crate::rtl_model::LaRtl;
use crate::sc_model::LaSystemC;
use crate::spec::LaConfig;
use crate::uml::{la1_class_diagram, read_mode_sequence, write_mode_sequence};
use crate::workloads::RandomMix;
use la1_asm::{conformance_check, ConformanceError, ExploreConfig};
use la1_smc::{ModelChecker, SmcConfig, SmcOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one flow stage.
#[derive(Debug, Clone)]
pub enum StageResult {
    /// The stage passed.
    Passed(String),
    /// The stage failed with a reason.
    Failed(String),
}

impl StageResult {
    /// True for [`StageResult::Passed`].
    pub fn passed(&self) -> bool {
        matches!(self, StageResult::Passed(_))
    }
}

/// The complete flow report.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// `(stage name, result)` in execution order.
    pub stages: Vec<(String, StageResult)>,
    /// The emitted Verilog of the final RTL.
    pub verilog: String,
}

impl FlowReport {
    /// True when every stage passed.
    pub fn all_passed(&self) -> bool {
        self.stages.iter().all(|(_, r)| r.passed())
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::from("LA-1 design & verification flow (Fig. 2)\n");
        for (name, result) in &self.stages {
            match result {
                StageResult::Passed(detail) => {
                    out.push_str(&format!("  [pass] {name}: {detail}\n"));
                }
                StageResult::Failed(detail) => {
                    out.push_str(&format!("  [FAIL] {name}: {detail}\n"));
                }
            }
        }
        out
    }
}

/// Generates a reproducible stimulus mix for the conformance
/// co-execution (reads, writes, concurrent read+write, idles).
pub fn conformance_stimulus(config: &LaConfig, seed: u64, len: usize) -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let banks = config.banks as u64;
    let words = config.words_per_bank as u64;
    let data_max = 1u64 << config.word_width.min(32);
    let mut sequences = Vec::new();
    for _ in 0..3 {
        let mut seq = vec!["init".to_string()];
        for _ in 0..len {
            let b = rng.gen_range(0..banks);
            let a = rng.gen_range(0..words);
            let d = rng.gen_range(0..data_max);
            let action = match rng.gen_range(0..4) {
                0 => "tick".to_string(),
                1 => format!("read {b} {a}"),
                2 => format!("write {b} {a} {d}"),
                _ => {
                    let rb = rng.gen_range(0..banks);
                    let ra = rng.gen_range(0..words);
                    format!("rw {rb} {ra} {b} {a} {d}")
                }
            };
            seq.push(action);
        }
        sequences.push(seq);
    }
    sequences
}

/// Runs the complete Fig. 2 flow for `config`.
///
/// `explore` bounds the ASM exploration; `smc` configures the
/// RuleBase-style checker.
pub fn run_flow(config: &LaConfig, explore: ExploreConfig, smc: SmcConfig) -> FlowReport {
    let mut stages: Vec<(String, StageResult)> = Vec::new();

    // 1. UML level
    let cd = la1_class_diagram();
    let sd_read = read_mode_sequence();
    let sd_write = write_mode_sequence();
    stages.push((
        "uml_spec".to_string(),
        StageResult::Passed(format!(
            "{} classes, {} + {} messages in the read/write sequence diagrams",
            cd.classes.len(),
            sd_read.messages.len(),
            sd_write.messages.len()
        )),
    ));

    // 2. ASM level: model checking
    let asm = LaAsmModel::new(config);
    let mc = asm.model_check(explore);
    stages.push((
        "asm_model_checking".to_string(),
        if mc.all_pass() {
            StageResult::Passed(format!(
                "{} properties over {} states / {} transitions in {:?}",
                mc.reports.len(),
                mc.stats.states,
                mc.stats.transitions,
                mc.stats.elapsed
            ))
        } else {
            let failed: Vec<&str> = mc
                .reports
                .iter()
                .filter(|r| !r.outcome.is_pass())
                .map(|r| r.name.as_str())
                .collect();
            StageResult::Failed(format!("violated: {}", failed.join(", ")))
        },
    ));

    // 3. ASM -> SystemC conformance co-execution
    let mut asm_sys = LaAsmModel::new(config);
    let mut sc_sys = LaSystemC::new(config);
    let stimulus = conformance_stimulus(config, 2004, 40);
    let conf: Result<(), ConformanceError> =
        conformance_check(&mut asm_sys, &mut sc_sys, &stimulus);
    stages.push((
        "asm_to_systemc_conformance".to_string(),
        match conf {
            Ok(()) => StageResult::Passed(format!(
                "{} stimulus sequences co-executed",
                stimulus.len()
            )),
            Err(e) => StageResult::Failed(e.to_string()),
        },
    ));

    // 4. SystemC ABV — the generic measurement loop over the shared
    // cycle-level interface
    let mut sc = LaSystemC::new(config);
    sc.attach_monitors(&cycle_properties_for(config));
    let mut mix = RandomMix::new(config, 7, 0.5, 0.3);
    let abv = run_abv(&mut sc, &mut mix, 200);
    stages.push((
        "systemc_abv".to_string(),
        if abv.violations == 0 {
            StageResult::Passed(format!("200 cycles, {} monitors clean", config.banks * 5))
        } else {
            StageResult::Failed(format!("{:?}", sc.violations()))
        },
    ));

    // 5. RTL: emit Verilog + re-verify with the symbolic checker
    let rtl = LaRtl::build(config, None);
    let verilog = rtl.to_verilog();
    let ts = rtl.extract();
    let checker = ModelChecker::new(&ts, smc);
    let mut rtl_ok = true;
    let mut detail = String::new();
    for d in rtl_properties(config.banks) {
        match checker.check(&d) {
            Ok(report) => match report.outcome {
                SmcOutcome::Proved => {
                    detail.push_str(&format!("{} proved; ", d.name));
                }
                SmcOutcome::Violated(_) => {
                    rtl_ok = false;
                    detail.push_str(&format!("{} VIOLATED; ", d.name));
                }
                SmcOutcome::StateExplosion => {
                    // the paper hits this at 4 banks; report without
                    // failing the flow (the property is re-checked by
                    // simulation at that size)
                    detail.push_str(&format!("{} state explosion; ", d.name));
                }
                SmcOutcome::Partial { explored, reason } => {
                    // budget-limited, not a verdict either way; like
                    // explosion, simulation re-checks the property
                    detail.push_str(&format!(
                        "{} partial ({explored} iterations, {reason}); ",
                        d.name
                    ));
                }
            },
            Err(e) => {
                rtl_ok = false;
                detail.push_str(&format!("{}: {e}; ", d.name));
            }
        }
    }
    stages.push((
        "rtl_model_checking".to_string(),
        if rtl_ok {
            StageResult::Passed(detail.clone())
        } else {
            StageResult::Failed(detail.clone())
        },
    ));

    // 6. Fig. 3 trace check on the executing SystemC model
    let mut traced = LaSystemC::new(config);
    traced.enable_trace();
    traced.cycle(&[crate::spec::BankOp::read(0, 0)]);
    traced.cycle(&[]);
    traced.cycle(&[]);
    let trace = traced.trace();
    let seq = read_mode_sequence();
    stages.push((
        "read_mode_sequence_check".to_string(),
        match seq.check(&trace) {
            Ok(()) => StageResult::Passed("executed trace matches Fig. 3".to_string()),
            Err(e) => StageResult::Failed(e.to_string()),
        },
    ));

    FlowReport { stages, verilog }
}
