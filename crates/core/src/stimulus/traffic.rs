//! Realistic NPU traffic sequencers — the workloads only expressible
//! at transaction level.
//!
//! Three scenarios, all pure functions of `(seed, config)`:
//!
//! * [`contention`] — several independent masters behind one
//!   round-robin-arbitrated [`Driver`](super::Driver), modelling a
//!   multi-engine NPU sharing a single look-aside channel;
//! * [`QdrStream`] — a QDR-style sustained burst-read sweep that keeps
//!   the output bus at full occupancy, filling LA-1B burst gaps with
//!   table writes;
//! * [`PacketStream`] — seeded packet-lookup traffic: Zipf-distributed
//!   flow popularity (a few elephant flows dominate), bursty arrivals
//!   (two-state Markov on/off process), occasional control-plane
//!   updates. Lookups are emitted regardless of bus availability — the
//!   driver's delayed-not-dropped rule plays the input FIFO.

use super::driver::{stream_seed, MultiAgent, SeqContext, Sequencer};
use super::item::SequenceItem;
use crate::spec::LaConfig;
use crate::workloads::{FlowTuple, RandomMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A precomputed Zipf(s) distribution over `n` keys: key `k` is drawn
/// with probability proportional to `1 / (k + 1)^s`. Sampling is a
/// binary search over the CDF driven by one `u64` draw, so a seeded
/// generator replays exactly.
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    cdf: Vec<f64>,
}

impl ZipfKeys {
    /// The distribution over `n` keys with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative.
    pub fn new(n: usize, s: f64) -> ZipfKeys {
        assert!(n > 0, "at least one key");
        assert!(s >= 0.0, "non-negative exponent");
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfKeys { cdf }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero keys (never — see
    /// [`ZipfKeys::new`]).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one key index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        // 53 uniform mantissa bits → [0, 1)
        let u = (rng.gen::<u64>() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// The classification-table address a flow hashes to (the same
/// high-bits/low-bits striping as
/// [`PacketLookup`](crate::workloads::PacketLookup)).
fn table_address(flow: &FlowTuple, banks: u32, words: u64) -> (u32, u64) {
    let h = flow.hash();
    ((h >> 56) as u32 % banks, h % words)
}

/// Seeded packet-lookup traffic: bursty arrivals of Zipf-popular flows
/// hashed into table reads, with occasional control-plane writes. See
/// the [module docs](self).
#[derive(Debug)]
pub struct PacketStream {
    rng: StdRng,
    banks: u32,
    words: u64,
    byte_enables: u32,
    flows: Vec<FlowTuple>,
    zipf: ZipfKeys,
    /// Markov arrival state: inside a packet burst?
    in_burst: bool,
    start_prob: f64,
    stop_prob: f64,
    update_rate: f64,
    last_cycle: Option<u64>,
    queue: VecDeque<SequenceItem>,
}

impl PacketStream {
    /// A stream over `flow_pool` synthetic flows with Zipf exponent
    /// `s`. Default arrival process: bursts start with probability 0.3
    /// per idle cycle and end with probability 0.2 per burst cycle
    /// (mean burst length 5); 5 % of cycles carry a table update.
    pub fn new(config: &LaConfig, seed: u64, flow_pool: usize, s: f64) -> PacketStream {
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = (0..flow_pool.max(1))
            .map(|_| FlowTuple {
                src: rng.gen(),
                dst: rng.gen(),
                sport: rng.gen(),
                dport: rng.gen(),
                proto: if rng.gen_bool(0.7) { 6 } else { 17 },
            })
            .collect();
        PacketStream {
            rng,
            banks: config.banks,
            words: config.words_per_bank as u64,
            byte_enables: config.byte_enables(),
            flows,
            zipf: ZipfKeys::new(flow_pool.max(1), s),
            in_burst: false,
            start_prob: 0.3,
            stop_prob: 0.2,
            update_rate: 0.05,
            last_cycle: None,
            queue: VecDeque::new(),
        }
    }

    /// Overrides the arrival-process rates.
    pub fn with_rates(mut self, start: f64, stop: f64, update: f64) -> PacketStream {
        self.start_prob = start;
        self.stop_prob = stop;
        self.update_rate = update;
        self
    }

    /// One cycle's worth of traffic.
    fn fill(&mut self) {
        let lookup = if self.in_burst {
            self.in_burst = !self.rng.gen_bool(self.stop_prob);
            true
        } else {
            self.in_burst = self.rng.gen_bool(self.start_prob);
            // a burst starting this cycle carries its first packet
            self.in_burst
        };
        if lookup {
            let flow = self.flows[self.zipf.sample(&mut self.rng)];
            let (bank, addr) = table_address(&flow, self.banks, self.words);
            self.queue.push_back(SequenceItem::Read { bank, addr });
        }
        if self.rng.gen_bool(self.update_rate) {
            let flow = self.flows[self.zipf.sample(&mut self.rng)];
            let (bank, addr) = table_address(&flow, self.banks, self.words);
            let action = self.rng.gen::<u32>() as u64;
            self.queue.push_back(SequenceItem::Write {
                bank,
                addr,
                data: flow.hash() ^ action,
                byte_en: (1 << self.byte_enables) - 1,
            });
        }
    }
}

impl Sequencer for PacketStream {
    fn next_item(&mut self, ctx: &SeqContext) -> SequenceItem {
        if self.last_cycle != Some(ctx.cycle) {
            self.last_cycle = Some(ctx.cycle);
            // carry unconsumed work into the new cycle, drop the stale
            // cycle terminator
            self.queue.retain(|i| *i != SequenceItem::Idle);
            self.fill();
            self.queue.push_back(SequenceItem::Idle);
        }
        self.queue.pop_front().unwrap_or(SequenceItem::Idle)
    }
}

/// A QDR-style sustained burst-read stream: sequential
/// [`SequenceItem::Burst`] strobes sweeping every bank at maximum
/// legal rate, with seeded full-word writes filling a fraction of the
/// LA-1B burst-gap cycles. Under plain LA-1 the driver expands each
/// burst into back-to-back reads, so one sequence definition sustains
/// full bus occupancy on both configurations.
#[derive(Debug)]
pub struct QdrStream {
    rng: StdRng,
    banks: u32,
    words: u64,
    byte_enables: u32,
    burst_len: u64,
    bank: u32,
    addr: u64,
    /// probability a burst-gap cycle carries a write
    write_prob: f64,
    last_cycle: Option<u64>,
    queue: VecDeque<SequenceItem>,
}

impl QdrStream {
    /// The stream for `config`, writing in a gap cycle with
    /// probability `write_prob`.
    pub fn new(config: &LaConfig, seed: u64, write_prob: f64) -> QdrStream {
        QdrStream {
            rng: StdRng::seed_from_u64(seed),
            banks: config.banks,
            words: config.words_per_bank as u64,
            byte_enables: config.byte_enables(),
            burst_len: (config.burst_len as u64).max(2),
            bank: 0,
            addr: 0,
            write_prob,
            last_cycle: None,
            queue: VecDeque::new(),
        }
    }

    fn fill(&mut self, ctx: &SeqContext) {
        if ctx.read_legal {
            self.queue.push_back(SequenceItem::Burst {
                bank: self.bank,
                addr: self.addr,
            });
            // keep the whole burst (addr .. addr + burst_len - 1) in
            // range; wrap to the next bank at the end of the sweep
            self.addr += self.burst_len;
            if self.addr + self.burst_len > self.words {
                self.addr = 0;
                self.bank = (self.bank + 1) % self.banks;
            }
        } else if self.rng.gen_bool(self.write_prob) {
            let bank = self.rng.gen_range(0..self.banks);
            let addr = self.rng.gen_range(0..self.words);
            self.queue.push_back(SequenceItem::Write {
                bank,
                addr,
                data: self.rng.gen(),
                byte_en: (1 << self.byte_enables) - 1,
            });
        }
    }
}

impl Sequencer for QdrStream {
    fn next_item(&mut self, ctx: &SeqContext) -> SequenceItem {
        if self.last_cycle != Some(ctx.cycle) {
            self.last_cycle = Some(ctx.cycle);
            self.queue.retain(|i| *i != SequenceItem::Idle);
            self.fill(ctx);
            self.queue.push_back(SequenceItem::Idle);
        }
        self.queue.pop_front().unwrap_or(SequenceItem::Idle)
    }
}

/// A multi-master contention workload: `masters` independent full-word
/// [`RandomMix`] sequencers (per-master seeds derived with
/// [`stream_seed`]) arbitrated round-robin by one driver. Reads that
/// lose arbitration are delayed to the next cycle, never dropped —
/// the scenario the single-sequencer legacy generators could not
/// express.
///
/// # Panics
///
/// Panics if `masters` is zero.
pub fn contention(config: &LaConfig, seed: u64, masters: usize) -> MultiAgent {
    assert!(masters > 0, "at least one master");
    let seqs: Vec<Box<dyn Sequencer>> = (0..masters)
        .map(|i| {
            Box::new(RandomMix::full_word(
                config,
                stream_seed(seed, i as u64),
                0.5,
                0.3,
            )) as Box<dyn Sequencer>
        })
        .collect();
    MultiAgent::new(config, seqs)
}
