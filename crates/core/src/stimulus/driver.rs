//! The sequencer interface and the pin-level driver.

use super::item::SequenceItem;
use crate::spec::{BankOp, LaConfig};
use crate::workloads::Workload;
use std::collections::VecDeque;

/// What the driver tells a sequencer about the cycle it is filling.
///
/// `read_legal` is the LA-1B burst-spacing predicate evaluated at the
/// start of the cycle — sequencers that *drop* rather than delay an
/// inopportune read (the legacy `GuidedMix` random fill) consult it,
/// and open-loop streaming sequencers use it to fill bus-busy cycles
/// with writes.
#[derive(Debug, Clone, Copy)]
pub struct SeqContext {
    /// Cycle index the driver is assembling (0-based).
    pub cycle: u64,
    /// Whether the output bus can accept a read this cycle under the
    /// burst-spacing rule.
    pub read_legal: bool,
    /// Bank count of the configuration.
    pub banks: u32,
    /// Words per bank.
    pub words: u64,
}

/// A transaction-level stimulus source: yields one
/// [`SequenceItem`] at a time; [`SequenceItem::Idle`] closes the
/// master's cycle. Sequencers are infinite — a finished scenario keeps
/// yielding `Idle`.
pub trait Sequencer {
    /// The next item for the cycle described by `ctx`.
    fn next_item(&mut self, ctx: &SeqContext) -> SequenceItem;
}

/// Driver bookkeeping: how the item stream was mapped onto cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Read strobes driven.
    pub reads_issued: u64,
    /// Write strobes driven.
    pub writes_issued: u64,
    /// Cycles driven with no operation.
    pub idle_cycles: u64,
    /// Items the bus could not take in their cycle and the driver held
    /// for a later one (delayed, never dropped).
    pub items_delayed: u64,
    /// Cycles that carried raw (legality-bypassing) operations.
    pub raw_cycles: u64,
}

/// Maps [`SequenceItem`]s onto per-cycle pin wiggles, owning the
/// protocol legality rules (see the [module docs](super)).
///
/// One driver serves one or more masters ([`Driver::with_masters`]);
/// each cycle it pulls items from every master in round-robin priority
/// order until the master yields [`SequenceItem::Idle`] or an item the
/// bus cannot take — such an item is parked in the master's pending
/// slot and replayed first on the following cycles (delayed, not
/// dropped). Within a cycle the assembled operations are always
/// ordered read-then-write (then raw), matching the legacy generators
/// byte for byte.
#[derive(Debug)]
pub struct Driver {
    banks: u32,
    words: u64,
    burst_len: u64,
    cycle: u64,
    last_read: Option<u64>,
    /// Per-master parked item (the one the bus couldn't take yet).
    pending: Vec<Option<SequenceItem>>,
    /// Round-robin arbitration pointer: which master has priority.
    rr_next: usize,
    inject_x: bool,
    stats: DriverStats,
}

/// Serializable dynamic state of a [`Driver`]
/// ([`Driver::snapshot_state`] / [`Driver::restore_state`]): everything
/// that changes as cycles are assembled, including the parked
/// delayed-not-dropped items — dropping them on restore would shift
/// every later cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverSnap {
    /// Cycle index the driver will assemble next.
    pub cycle: u64,
    /// Cycle of the most recent read strobe (LA-1B burst spacing).
    pub last_read: Option<u64>,
    /// Per-master parked item.
    pub pending: Vec<Option<SequenceItem>>,
    /// Round-robin arbitration pointer.
    pub rr_next: u64,
    /// Armed X-injection request.
    pub inject_x: bool,
    /// Bookkeeping counters.
    pub stats: DriverStats,
}

/// Outcome of trying to place one item into the cycle being built.
enum Placed {
    /// Item taken; keep pulling from this master.
    Taken,
    /// Item taken and the master's cycle is over (raw ops, burst
    /// continuation queued).
    TakenEndsCycle,
    /// The bus cannot take the item this cycle; park it.
    Blocked(SequenceItem),
}

/// The cycle being assembled: one read slot, one write slot, raw tail.
#[derive(Default)]
struct CycleSlots {
    read: Option<BankOp>,
    write: Option<BankOp>,
    raw: Vec<BankOp>,
}

impl Driver {
    /// A single-master driver for `config`.
    pub fn new(config: &LaConfig) -> Driver {
        Driver::with_masters(config, 1)
    }

    /// A driver arbitrating `masters` sequencers (round-robin).
    ///
    /// # Panics
    ///
    /// Panics if `masters` is zero.
    pub fn with_masters(config: &LaConfig, masters: usize) -> Driver {
        assert!(masters > 0, "at least one master");
        Driver {
            banks: config.banks,
            words: config.words_per_bank as u64,
            burst_len: config.burst_len as u64,
            cycle: 0,
            last_read: None,
            pending: vec![None; masters],
            rr_next: 0,
            inject_x: false,
            stats: DriverStats::default(),
        }
    }

    /// Cycles driven so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Mapping statistics so far.
    pub fn stats(&self) -> &DriverStats {
        &self.stats
    }

    /// Whether the output bus can accept a read this cycle (LA-1B
    /// burst spacing; always true under plain LA-1). The same formula
    /// the legacy `GuidedMix` applied.
    pub fn read_legal(&self) -> bool {
        self.burst_len < 2
            || self
                .last_read
                .is_none_or(|c| self.cycle - c >= self.burst_len)
    }

    /// Drops (and returns) the item parked in `master`'s pending slot.
    ///
    /// Coverage-guided retargeting replaces a sequencer's whole plan;
    /// a read delayed out of the *old* plan must be dropped with it —
    /// exactly what the legacy generator did by clearing its plan
    /// front.
    pub fn cancel_pending(&mut self, master: usize) -> Option<SequenceItem> {
        self.pending[master].take()
    }

    /// Takes (and clears) a pending [`SequenceItem::InjectX`] request.
    /// The caller owns the model, so the caller arms the X drive —
    /// typically `LaRtlDriver::inject_x(XPin::WData)` — before the
    /// cycle runs.
    pub fn take_inject_x(&mut self) -> bool {
        std::mem::take(&mut self.inject_x)
    }

    /// Captures the driver's dynamic state (the legality parameters —
    /// bank count, word count, burst length — come back from the
    /// configuration on restore).
    pub fn snapshot_state(&self) -> DriverSnap {
        DriverSnap {
            cycle: self.cycle,
            last_read: self.last_read,
            pending: self.pending.clone(),
            rr_next: self.rr_next as u64,
            inject_x: self.inject_x,
            stats: self.stats,
        }
    }

    /// Restores state captured by [`Driver::snapshot_state`] into a
    /// driver built for the same configuration. Errors if the master
    /// count differs or the arbitration pointer is out of range.
    pub fn restore_state(&mut self, snap: &DriverSnap) -> Result<(), String> {
        if snap.pending.len() != self.pending.len() {
            return Err(format!(
                "driver snapshot has {} masters, driver has {}",
                snap.pending.len(),
                self.pending.len()
            ));
        }
        if snap.rr_next as usize >= self.pending.len() {
            return Err(format!(
                "driver snapshot arbitration pointer {} out of range",
                snap.rr_next
            ));
        }
        self.cycle = snap.cycle;
        self.last_read = snap.last_read;
        self.pending = snap.pending.clone();
        self.rr_next = snap.rr_next as usize;
        self.inject_x = snap.inject_x;
        self.stats = snap.stats;
        Ok(())
    }

    /// Assembles one cycle from a single master.
    pub fn cycle_from(&mut self, seq: &mut dyn Sequencer) -> Vec<BankOp> {
        let mut masters: [&mut dyn Sequencer; 1] = [seq];
        self.cycle_multi(&mut masters)
    }

    /// Assembles one cycle from several masters under round-robin
    /// arbitration.
    ///
    /// # Panics
    ///
    /// Panics if `masters` does not match the construction-time count.
    pub fn cycle_multi(&mut self, masters: &mut [&mut dyn Sequencer]) -> Vec<BankOp> {
        assert_eq!(
            masters.len(),
            self.pending.len(),
            "master count fixed at construction"
        );
        let ctx = SeqContext {
            cycle: self.cycle,
            read_legal: self.read_legal(),
            banks: self.banks,
            words: self.words,
        };
        let mut slots = CycleSlots::default();
        let n = masters.len();
        for k in 0..n {
            let m = (self.rr_next + k) % n;
            // the item held back from an earlier cycle goes first; if
            // the bus still cannot take it, the master stays stalled
            if let Some(item) = self.pending[m].take() {
                match self.place(m, item, &ctx, &mut slots) {
                    Placed::Taken => {}
                    Placed::TakenEndsCycle => continue,
                    Placed::Blocked(item) => {
                        self.pending[m] = Some(item);
                        continue;
                    }
                }
            }
            loop {
                match masters[m].next_item(&ctx) {
                    SequenceItem::Idle => break,
                    item => match self.place(m, item, &ctx, &mut slots) {
                        Placed::Taken => {}
                        Placed::TakenEndsCycle => break,
                        Placed::Blocked(item) => {
                            self.stats.items_delayed += 1;
                            self.pending[m] = Some(item);
                            break;
                        }
                    },
                }
            }
        }
        if n > 1 {
            self.rr_next = (self.rr_next + 1) % n;
        }
        let mut ops = Vec::new();
        ops.extend(slots.read);
        ops.extend(slots.write);
        ops.append(&mut slots.raw);
        self.stats.reads_issued += ops.iter().filter(|o| o.is_read()).count() as u64;
        self.stats.writes_issued += ops.iter().filter(|o| !o.is_read()).count() as u64;
        if ops.is_empty() {
            self.stats.idle_cycles += 1;
        }
        if ops.iter().any(BankOp::is_read) {
            self.last_read = Some(self.cycle);
        }
        self.cycle += 1;
        ops
    }

    /// Tries to take `item` into the cycle being built.
    fn place(
        &mut self,
        master: usize,
        item: SequenceItem,
        ctx: &SeqContext,
        slots: &mut CycleSlots,
    ) -> Placed {
        match item {
            SequenceItem::Read { bank, addr } => {
                if slots.read.is_none() && ctx.read_legal {
                    slots.read = Some(BankOp::read(bank, addr));
                    Placed::Taken
                } else {
                    Placed::Blocked(SequenceItem::Read { bank, addr })
                }
            }
            SequenceItem::Write {
                bank,
                addr,
                data,
                byte_en,
            } => {
                if slots.write.is_none() {
                    slots.write = Some(BankOp::write(bank, addr, data, byte_en));
                    Placed::Taken
                } else {
                    Placed::Blocked(SequenceItem::Write {
                        bank,
                        addr,
                        data,
                        byte_en,
                    })
                }
            }
            SequenceItem::Burst { bank, addr } => {
                if slots.read.is_some() || !ctx.read_legal {
                    return Placed::Blocked(SequenceItem::Burst { bank, addr });
                }
                slots.read = Some(BankOp::read(bank, addr));
                if self.burst_len >= 2 {
                    // one strobe; the device streams the beats
                    Placed::Taken
                } else {
                    // plain LA-1: emulate the burst with a queued
                    // second single-beat read
                    self.pending[master] = Some(SequenceItem::Read {
                        bank,
                        addr: addr + 1,
                    });
                    Placed::TakenEndsCycle
                }
            }
            SequenceItem::InjectX => {
                self.inject_x = true;
                Placed::Taken
            }
            SequenceItem::Raw(mut ops) => {
                self.stats.raw_cycles += 1;
                slots.raw.append(&mut ops);
                Placed::TakenEndsCycle
            }
            SequenceItem::Idle => unreachable!("Idle is handled by the pull loop"),
        }
    }
}

/// A single-sequencer agent: [`Driver`] plus its [`Sequencer`],
/// packaged as a [`Workload`] so the whole transaction stack plugs
/// into every existing measurement/co-execution/coverage loop.
#[derive(Debug)]
pub struct Agent<S: Sequencer> {
    driver: Driver,
    seq: S,
}

impl<S: Sequencer> Agent<S> {
    /// Packages `seq` behind a fresh single-master driver.
    pub fn new(config: &LaConfig, seq: S) -> Agent<S> {
        Agent {
            driver: Driver::new(config),
            seq,
        }
    }

    /// The sequencer (e.g. to retarget a coverage-guided one).
    pub fn seq_mut(&mut self) -> &mut S {
        &mut self.seq
    }

    /// The driver.
    pub fn driver(&self) -> &Driver {
        &self.driver
    }

    /// The driver, mutably (pending-slot cancellation on retarget).
    pub fn driver_mut(&mut self) -> &mut Driver {
        &mut self.driver
    }
}

impl<S: Sequencer> Workload for Agent<S> {
    fn next_cycle(&mut self) -> Vec<BankOp> {
        self.driver.cycle_from(&mut self.seq)
    }
}

/// A multi-master agent: several boxed sequencers behind one
/// arbitrating driver — the contention workload's engine.
pub struct MultiAgent {
    driver: Driver,
    masters: Vec<Box<dyn Sequencer>>,
}

impl MultiAgent {
    /// Packages `masters` behind one round-robin-arbitrating driver.
    ///
    /// # Panics
    ///
    /// Panics if `masters` is empty.
    pub fn new(config: &LaConfig, masters: Vec<Box<dyn Sequencer>>) -> MultiAgent {
        MultiAgent {
            driver: Driver::with_masters(config, masters.len()),
            masters,
        }
    }

    /// Number of masters sharing the bus.
    pub fn masters(&self) -> usize {
        self.masters.len()
    }

    /// The driver.
    pub fn driver(&self) -> &Driver {
        &self.driver
    }
}

impl Workload for MultiAgent {
    fn next_cycle(&mut self) -> Vec<BankOp> {
        let mut refs: Vec<&mut dyn Sequencer> = Vec::with_capacity(self.masters.len());
        for m in &mut self.masters {
            refs.push(&mut **m);
        }
        self.driver.cycle_multi(&mut refs)
    }
}

/// Replays a pre-computed cycle script through the transaction layer:
/// each scripted cycle becomes its items plus an [`SequenceItem::Idle`]
/// terminator; an exhausted script idles forever.
#[derive(Debug)]
pub struct ScriptSequence {
    cycles: std::vec::IntoIter<Vec<BankOp>>,
    queue: VecDeque<SequenceItem>,
}

impl ScriptSequence {
    /// A sequencer replaying `script`.
    pub fn new(script: Vec<Vec<BankOp>>) -> ScriptSequence {
        ScriptSequence {
            cycles: script.into_iter(),
            queue: VecDeque::new(),
        }
    }
}

impl Sequencer for ScriptSequence {
    fn next_item(&mut self, _ctx: &SeqContext) -> SequenceItem {
        if self.queue.is_empty() {
            match self.cycles.next() {
                Some(ops) => {
                    self.queue.extend(ops.iter().map(SequenceItem::from_op));
                    self.queue.push_back(SequenceItem::Idle);
                }
                None => return SequenceItem::Idle,
            }
        }
        self.queue.pop_front().expect("queue refilled above")
    }
}

/// Derives stream `i`'s seed from a base seed (splitmix-style
/// finalizer) — the one recipe the multi-stream closure, the
/// throughput bench and the traffic workloads all share, so lane `i`
/// of a batched run replays scalar stream `i` exactly.
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream + 1));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}
