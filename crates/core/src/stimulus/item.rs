//! The transaction vocabulary of the LA-1 stimulus stack.

use crate::spec::BankOp;

/// One transaction-level stimulus item, as yielded by a
/// [`Sequencer`](super::Sequencer) and mapped onto pins by the
/// [`Driver`](super::Driver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequenceItem {
    /// A single-word read of `(bank, addr)`.
    Read {
        /// Target bank.
        bank: u32,
        /// Word address within the bank.
        addr: u64,
    },
    /// A write of `data` to `(bank, addr)` under the byte-enable mask.
    Write {
        /// Target bank.
        bank: u32,
        /// Word address within the bank.
        addr: u64,
        /// Data word.
        data: u64,
        /// Byte-enable mask (all ones = full-word write).
        byte_en: u32,
    },
    /// A burst read starting at `(bank, addr)`. Under an LA-1B
    /// configuration this is one read strobe (the device streams
    /// `burst_len` beats); under plain LA-1 the driver expands it into
    /// back-to-back single reads of `addr` and `addr + 1`, so one
    /// burst-stream sequence runs unchanged on both configurations.
    /// The caller keeps `addr + burst_len - 1` in range.
    Burst {
        /// Target bank.
        bank: u32,
        /// First-beat word address.
        addr: u64,
    },
    /// End of this master's cycle: the driver closes the cycle (an
    /// empty cycle when nothing was placed).
    Idle,
    /// Arm a one-cycle X drive on the write-data pins (four-state RTL
    /// levels; the driver only latches the request — see
    /// [`Driver::take_inject_x`](super::Driver::take_inject_x)).
    InjectX,
    /// Raw pin-level operations emitted verbatim, bypassing the
    /// driver's legality rules and slot accounting — the escape hatch
    /// hostile/fault sequences use to put *illegal* stimulus on the
    /// bus on purpose. Ends the master's cycle.
    Raw(Vec<BankOp>),
}

impl SequenceItem {
    /// The item driving exactly `op` (used when replaying pre-computed
    /// cycle scripts through the transaction layer).
    pub fn from_op(op: &BankOp) -> SequenceItem {
        match *op {
            BankOp::Read { bank, addr } => SequenceItem::Read { bank, addr },
            BankOp::Write {
                bank,
                addr,
                data,
                byte_en,
            } => SequenceItem::Write {
                bank,
                addr,
                data,
                byte_en,
            },
        }
    }
}
