//! Transaction reconstruction from pins, with a shadow-memory
//! scoreboard.

use crate::cycle_model::{CycleModel, CycleObserver};
use crate::spec::{BankOp, LaConfig, READ_LATENCY};

/// One reconstructed transaction, as logged by
/// [`TransactionMonitor::with_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transaction {
    /// A completed (or abandoned) read lookup.
    Read {
        /// Bank the read targeted.
        bank: u32,
        /// First-beat word address.
        addr: u64,
        /// Cycle the read strobe was driven.
        issued: u64,
        /// Cycle the final beat appeared, if the lookup completed.
        completed: Option<u64>,
        /// The data beats the device produced.
        data: Vec<u64>,
    },
    /// A write whose strobe was driven at `issued`.
    Write {
        /// Bank the write targeted.
        bank: u32,
        /// Word address.
        addr: u64,
        /// Data word (as masked onto the shadow memory).
        data: u64,
        /// Byte-enable mask.
        byte_en: u32,
        /// Cycle the write strobe was driven.
        issued: u64,
        /// Whether the write-done flag came back the next cycle.
        committed: bool,
    },
}

/// Counters accumulated by the [`TransactionMonitor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Read strobes seen on the pins.
    pub reads_issued: u64,
    /// Write strobes seen on the pins.
    pub writes_issued: u64,
    /// Reads whose every beat arrived on time — completed lookups.
    pub lookups_completed: u64,
    /// Writes acknowledged by `write_done` the following cycle.
    pub writes_committed: u64,
    /// Beats whose data disagreed with the shadow memory.
    pub data_mismatches: u64,
    /// Beats that were due but never produced (dropped strobes,
    /// over-subscribed hostile reads).
    pub missing_dv: u64,
    /// Data-valid assertions with no read due — phantom outputs.
    pub spurious_dv: u64,
    /// Writes whose `write_done` never came back.
    pub missing_wdone: u64,
    /// Cycles on which a bank flagged a parity error.
    pub parity_errors: u64,
    /// Sum of issue-to-last-beat latencies over completed lookups
    /// (divide by `lookups_completed` for the mean).
    pub total_read_latency: u64,
}

impl MonitorStats {
    /// Whether any scoreboard/protocol check fired.
    pub fn clean(&self) -> bool {
        self.data_mismatches == 0
            && self.missing_dv == 0
            && self.spurious_dv == 0
            && self.missing_wdone == 0
            && self.parity_errors == 0
    }
}

/// One expected data beat of an in-flight read.
#[derive(Debug, Clone)]
struct Beat {
    addr: u64,
    /// Cycle the beat's data is due on the pins.
    due: u64,
    /// Shadow snapshot the beat must match (filled at `issued + k`,
    /// matching the refinement models' commit visibility: the first
    /// beat sees writes up to the issue cycle, the second burst beat
    /// additionally sees the next cycle's write).
    expected: Option<u64>,
    seen: Option<u64>,
}

/// One read transaction in flight between strobe and final beat.
#[derive(Debug, Clone)]
struct InFlight {
    bank: u32,
    addr: u64,
    issued: u64,
    beats: Vec<Beat>,
}

/// Reconstructs transactions from the pins of any
/// [`CycleModel`] level and scoreboards them against a shadow memory —
/// the UVM monitor of the stimulus stack. Attach it as a
/// [`CycleObserver`] (e.g. through
/// [`run_abv_observed`](crate::harness::run_abv_observed)), or call
/// [`TransactionMonitor::observe`] by hand with the *intended*
/// operations while driving the model with injected ones to score
/// fault campaigns at transaction level.
#[derive(Debug)]
pub struct TransactionMonitor {
    cfg: LaConfig,
    /// Data beats per read strobe (burst length under LA-1B, 1 under
    /// plain LA-1).
    beats_per_read: u64,
    cycle: u64,
    shadow: Vec<Vec<u64>>,
    in_flight: Vec<InFlight>,
    /// Banks written last cycle (their `write_done` is due now),
    /// with the log slot to mark committed.
    wdone_due: Vec<(u32, Option<usize>)>,
    stats: MonitorStats,
    log: Option<(Vec<Transaction>, usize)>,
}

impl TransactionMonitor {
    /// A monitor for `config` with no transaction log.
    pub fn new(config: &LaConfig) -> TransactionMonitor {
        let beats = if config.is_burst() {
            config.burst_len as u64
        } else {
            1
        };
        TransactionMonitor {
            cfg: config.clone(),
            beats_per_read: beats,
            cycle: 0,
            shadow: vec![vec![0; config.words_per_bank as usize]; config.banks as usize],
            in_flight: Vec::new(),
            wdone_due: Vec::new(),
            stats: MonitorStats::default(),
            log: None,
        }
    }

    /// A monitor that additionally keeps the most recent `cap`
    /// reconstructed transactions.
    pub fn with_log(config: &LaConfig, cap: usize) -> TransactionMonitor {
        let mut m = TransactionMonitor::new(config);
        m.log = Some((Vec::new(), cap));
        m
    }

    /// The accumulated counters.
    pub fn stats(&self) -> &MonitorStats {
        &self.stats
    }

    /// The transaction log (empty unless built with
    /// [`TransactionMonitor::with_log`]).
    pub fn transactions(&self) -> &[Transaction] {
        self.log.as_ref().map_or(&[], |(l, _)| l.as_slice())
    }

    /// The word the scoreboard believes `(bank, addr)` holds.
    pub fn shadow_word(&self, bank: u32, addr: u64) -> u64 {
        self.shadow[bank as usize][addr as usize]
    }

    /// Cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    fn push_log(&mut self, t: Transaction) -> Option<usize> {
        match &mut self.log {
            Some((log, cap)) if log.len() < *cap => {
                log.push(t);
                Some(log.len() - 1)
            }
            _ => None,
        }
    }

    /// Step 1: match this cycle's data-valid pins against due beats.
    fn check_outputs(&mut self, model: &mut dyn CycleModel) {
        let now = self.cycle;
        for bank in 0..self.cfg.banks {
            let produced = model.bank_output(bank);
            let mut consumed = false;
            for fl in self.in_flight.iter_mut().filter(|f| f.bank == bank) {
                for beat in fl.beats.iter_mut().filter(|b| b.due == now) {
                    match produced {
                        Some(word) if !consumed => {
                            consumed = true;
                            beat.seen = Some(word);
                            if beat.expected.is_some_and(|e| e != word) {
                                self.stats.data_mismatches += 1;
                            }
                        }
                        // a second due beat on the same bank (hostile
                        // double read) or no output at all: the beat
                        // is lost, never delivered late
                        _ => {
                            beat.seen = None;
                            self.stats.missing_dv += 1;
                        }
                    }
                }
            }
            if produced.is_some() && !consumed {
                self.stats.spurious_dv += 1;
            }
        }
        // retire transactions whose final beat was due this cycle
        let mut retired = Vec::new();
        self.in_flight.retain(|fl| {
            if fl.beats.last().is_some_and(|b| b.due <= now) {
                retired.push(fl.clone());
                false
            } else {
                true
            }
        });
        for fl in retired {
            let complete = fl.beats.iter().all(|b| b.seen.is_some());
            let last = fl.beats.last().map_or(fl.issued, |b| b.due);
            if complete {
                self.stats.lookups_completed += 1;
                self.stats.total_read_latency += last - fl.issued;
            }
            self.push_log(Transaction::Read {
                bank: fl.bank,
                addr: fl.addr,
                issued: fl.issued,
                completed: complete.then_some(last),
                data: fl.beats.iter().filter_map(|b| b.seen).collect(),
            });
        }
    }

    /// Step 2: writes strobed last cycle must report `write_done` now.
    fn check_wdone(&mut self, model: &mut dyn CycleModel) {
        for (bank, slot) in std::mem::take(&mut self.wdone_due) {
            if model.write_done(bank) {
                self.stats.writes_committed += 1;
                if let (Some(idx), Some((log, _))) = (slot, &mut self.log) {
                    if let Transaction::Write { committed, .. } = &mut log[idx] {
                        *committed = true;
                    }
                }
            } else {
                self.stats.missing_wdone += 1;
            }
        }
    }

    /// Steps 4–5: fold this cycle's operations into the shadow memory,
    /// open in-flight reads, and snapshot expected beat data.
    fn track_ops(&mut self, ops: &[BankOp]) {
        let now = self.cycle;
        // writes commit to the shadow first: the models make a write
        // visible to a read strobed in the very same cycle
        for op in ops {
            if let BankOp::Write {
                bank,
                addr,
                data,
                byte_en,
            } = *op
            {
                self.stats.writes_issued += 1;
                let mask = self.cfg.bit_mask_of(byte_en);
                let word = &mut self.shadow[bank as usize][addr as usize];
                *word = (*word & !mask) | (self.cfg.mask_word(data) & mask);
                let slot = self.push_log(Transaction::Write {
                    bank,
                    addr,
                    data: self.cfg.mask_word(data),
                    byte_en,
                    issued: now,
                    committed: false,
                });
                self.wdone_due.push((bank, slot));
            }
        }
        for op in ops {
            if let BankOp::Read { bank, addr } = *op {
                self.stats.reads_issued += 1;
                let words = self.cfg.words_per_bank as u64;
                let beats = (0..self.beats_per_read)
                    .map(|k| Beat {
                        addr: (addr + k) % words,
                        due: now + READ_LATENCY as u64 + k,
                        expected: None,
                        seen: None,
                    })
                    .collect();
                self.in_flight.push(InFlight {
                    bank,
                    addr,
                    issued: now,
                    beats,
                });
            }
        }
        // snapshot expected data for every beat whose visibility
        // horizon is this cycle (beat k of a read issued at n sees
        // writes up to cycle n + k)
        for fl in &mut self.in_flight {
            let bank = fl.bank as usize;
            for (k, beat) in fl.beats.iter_mut().enumerate() {
                if fl.issued + k as u64 == now {
                    beat.expected = Some(self.shadow[bank][beat.addr as usize]);
                }
            }
        }
    }
}

impl CycleObserver for TransactionMonitor {
    fn observe(&mut self, ops: &[BankOp], model: &mut dyn CycleModel) {
        self.check_outputs(model);
        self.check_wdone(model);
        for bank in 0..self.cfg.banks {
            if model.parity_error(bank) {
                self.stats.parity_errors += 1;
            }
        }
        self.track_ops(ops);
        self.cycle += 1;
    }
}
