//! The transaction-level stimulus stack (UVM-style).
//!
//! The paper's verification flow drives every refinement level with
//! per-cycle pin wiggles (`&[BankOp]`). This module layers the
//! canonical UVM decomposition on top of that cycle layer, so
//! scenarios are written once, in terms of *transactions*, and reused
//! unchanged against ASM, SystemC, interpreted RTL and RTL+OVL:
//!
//! ```text
//!   Sequencer ──items──► Driver ──ops/cycle──► CycleModel (any level)
//!      ▲                   │                        │ pins
//!      └── SeqContext ─────┘                        ▼
//!          (cycle, read_legal)             TransactionMonitor
//!                                          (reconstructed reads/writes,
//!                                           shadow-memory scoreboard)
//! ```
//!
//! * [`SequenceItem`] — one LA-1/LA-1B transaction: read, write, burst
//!   read, idle, X injection, or a raw pin-level escape hatch for
//!   hostile/fault stimulus;
//! * [`Sequencer`] — yields items; ports of the legacy generators
//!   ([`RandomMix`](crate::workloads::RandomMix), `GuidedMix` in
//!   `la1-cover`) and the new traffic models in [`traffic`] all
//!   implement it;
//! * [`Driver`] — maps items onto per-cycle pin wiggles and **owns the
//!   protocol legality rules** that used to be buried inside the
//!   generators: at most one read and one write per cycle (single
//!   address bus), LA-1B burst spacing, and delayed-not-dropped reads
//!   (an item the bus cannot take yet is held, never discarded). With
//!   several masters it arbitrates round-robin, which is what makes
//!   multi-master contention expressible at all;
//! * [`TransactionMonitor`] — reconstructs transactions back out of
//!   the pins every [`CycleModel`](crate::cycle_model::CycleModel)
//!   exposes, keeps a shadow memory, and scoreboards read data —
//!   the transaction-level detection channel the `traffic` bench
//!   scores fault injection with.
//!
//! Determinism is preserved wholesale: a [`Driver`]+[`Sequencer`] pair
//! is a pure function of `(seed, config)`, and the ports of the legacy
//! generators reproduce their exact historical cycle streams (golden
//! files under `crates/cover/golden/`).

mod driver;
mod item;
mod monitor;
pub mod traffic;

pub use driver::{
    stream_seed, Agent, Driver, DriverSnap, DriverStats, MultiAgent, ScriptSequence, SeqContext,
    Sequencer,
};
pub use item::SequenceItem;
pub use monitor::{Transaction, TransactionMonitor};
