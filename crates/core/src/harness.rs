//! The measurement loops behind the paper's experiments.
//!
//! * [`run_abv`] — the one measurement loop over any
//!   [`CycleModel`]: both Table 3 columns are thin wrappers around it;
//! * [`run_systemc_abv`] — Table 3 left column: the SystemC model with
//!   compiled PSL monitors attached;
//! * [`run_rtl_ovl`] — Table 3 right column: the interpreted RTL with
//!   OVL monitor modules loaded into the simulated design;
//! * [`asm_model_check`] — Table 1 rows;
//! * [`rulebase_read_mode`] — Table 2 rows.

use crate::asm_model::LaAsmModel;
use crate::cycle_model::{CycleModel, CycleObserver, RtlWithOvl};
use crate::properties::{cycle_properties_for, rtl_read_mode_property};
use crate::rtl_model::LaRtl;
use crate::sc_model::LaSystemC;
use crate::spec::LaConfig;
use crate::workloads::Workload;
use la1_asm::{ExploreConfig, ExploreResult};
use la1_ovl::{OvlBench, Severity};
use la1_rtl::Expr;
use la1_smc::{ModelChecker, SmcConfig, SmcReport};
use std::time::{Duration, Instant};

/// Result of a simulation-based ABV run.
#[derive(Debug, Clone)]
pub struct AbvRunStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Assertion violations observed (0 on a healthy design).
    pub violations: usize,
}

impl AbvRunStats {
    /// Average wall-clock time per simulated cycle.
    pub fn time_per_cycle(&self) -> Duration {
        if self.cycles == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.cycles as u32
        }
    }
}

/// Runs any [`CycleModel`] for `cycles` cycles of `workload` under the
/// wall clock — the one measurement loop behind both Table 3 columns.
pub fn run_abv<M, W>(model: &mut M, workload: &mut W, cycles: u64) -> AbvRunStats
where
    M: CycleModel,
    W: Workload + ?Sized,
{
    run_abv_observed(model, workload, cycles, &mut ())
}

/// [`run_abv`] with a passive [`CycleObserver`] sampling the model
/// after every cycle — the hook coverage collection attaches through.
/// `&mut ()` is the no-op observer.
pub fn run_abv_observed<W>(
    model: &mut dyn CycleModel,
    workload: &mut W,
    cycles: u64,
    observer: &mut dyn CycleObserver,
) -> AbvRunStats
where
    W: Workload + ?Sized,
{
    let start = Instant::now();
    for _ in 0..cycles {
        let ops = workload.next_cycle();
        model.cycle(&ops);
        observer.observe(&ops, model);
    }
    AbvRunStats {
        cycles,
        elapsed: start.elapsed(),
        violations: model.violation_count(),
    }
}

/// Runs the SystemC-level model for `cycles` cycles of `workload` with
/// the full cycle-level monitor suite attached (Table 3, δ_SC).
pub fn run_systemc_abv<W: Workload>(
    config: &LaConfig,
    workload: &mut W,
    cycles: u64,
) -> AbvRunStats {
    let mut la1 = LaSystemC::new(config);
    la1.attach_monitors(&cycle_properties_for(config));
    run_abv(&mut la1, workload, cycles)
}

/// Attaches the OVL equivalents of the cycle-level property suite to an
/// RTL bench: each instance is a module loaded into the simulated
/// design, exactly the cost structure the paper measures.
pub fn attach_la1_ovl(bench: &mut OvlBench, rtl: &LaRtl) {
    let nets = rtl.nets();
    let burst = rtl.config().is_burst();
    for b in 0..rtl.config().banks as usize {
        // read latency: rd_v1 -> dv two cycles later
        bench.assert_next(
            format!("ovl_read_latency_{b}"),
            Severity::Error,
            Expr::net(nets.rd_v1[b]),
            Expr::net(nets.dv[b]),
            2,
        );
        if burst {
            // LA-1B: the second beat follows one cycle later
            bench.assert_next(
                format!("ovl_burst_beat_{b}"),
                Severity::Error,
                Expr::net(nets.rd_v1[b]),
                Expr::net(nets.dv[b]),
                3,
            );
        }
        // no data valid without a read in the preceding window
        let mut seq = vec![Expr::not(Expr::net(nets.rd_v1[b]))];
        if burst {
            seq.push(Expr::not(Expr::net(nets.rd_v1[b])));
        }
        seq.push(Expr::bit(true));
        seq.push(Expr::not(Expr::net(nets.dv[b])));
        bench.assert_cycle_sequence(
            format!("ovl_no_spurious_dv_{b}"),
            Severity::Error,
            seq,
        );
        // parity never fires
        bench.assert_never(
            format!("ovl_parity_{b}"),
            Severity::Error,
            Expr::net(nets.perr[b]),
        );
        // write commit: wr_v0 (set at the falling edge of the accept
        // cycle) and wdone (set at the next rising edge) are visible at
        // the same rising-edge sample, so the OVL form is a same-cycle
        // implication
        bench.assert_implication(
            format!("ovl_write_commit_{b}"),
            Severity::Error,
            Expr::net(nets.wr_v0[b]),
            Expr::net(nets.wdone[b]),
        );
    }
    if rtl.config().banks > 1 {
        let dv_vec = Expr::Concat(nets.dv.iter().map(|&d| Expr::net(d)).collect());
        bench.assert_zero_one_hot("ovl_dv_onehot", Severity::Error, dv_vec);
    }
    // end-to-end bus integrity: whenever any bank drives, the data plus
    // its even byte parity must contain an even number of ones
    let any_dv = nets
        .dv
        .iter()
        .fold(Expr::bit(false), |acc, &d| Expr::or(acc, Expr::net(d)));
    bench.assert_even_parity(
        "ovl_bus_parity",
        Severity::Error,
        any_dv,
        Expr::Concat(vec![Expr::net(nets.dq), Expr::net(nets.dq_par)]),
    );
}

/// Runs the interpreted RTL with OVL monitors for `cycles` cycles of
/// `workload` (Table 3, δ_OVL). Monitors are sampled at each rising
/// edge of `K`.
pub fn run_rtl_ovl<W: Workload>(config: &LaConfig, workload: &mut W, cycles: u64) -> AbvRunStats {
    let mut model = RtlWithOvl::new(&LaRtl::build(config, None));
    run_abv(&mut model, workload, cycles)
}

/// Runs the ASM-level model checking of the full property suite —
/// one Table 1 row.
pub fn asm_model_check(config: &LaConfig, explore: ExploreConfig) -> ExploreResult {
    LaAsmModel::new(config).model_check(explore)
}

/// Runs the RuleBase-style symbolic model checking of the read-mode
/// property — one Table 2 row.
///
/// # Errors
///
/// Propagates [`la1_smc::UnsupportedPropertyError`] (does not occur for
/// the built-in read-mode property).
pub fn rulebase_read_mode(
    config: &LaConfig,
    smc: SmcConfig,
) -> Result<SmcReport, la1_smc::UnsupportedPropertyError> {
    let rtl = LaRtl::build(config, None);
    let ts = rtl.extract();
    ModelChecker::new(&ts, smc).check(&rtl_read_mode_property())
}
