//! Versioned, fingerprint-pinned checkpoint formats: [`Snapshot`]
//! (full model state at a cycle boundary) and [`Trace`] (a replayable
//! pin-vector recording).
//!
//! Both serialize as JSONL through [`crate::json`] — one self-contained
//! object per line, a header line first and an explicit `end` footer
//! last, exactly like the verification-farm journal:
//!
//! ```text
//! {"kind": "la1-snapshot", "version": 1, "level": "systemc", ...}
//! {"sec": "sc", ...}
//! {"sec": "bank", ...}
//! ...
//! {"end": true, "lines": 7}
//! ```
//!
//! The properties that make the format safe to use from the farm and
//! the staged-closure flow:
//!
//! * **Versioned** — the header carries a format version; a reader
//!   built for another version refuses with
//!   [`CheckpointError::VersionMismatch`] instead of misinterpreting.
//! * **Fingerprint-pinned** — the header carries a fingerprint of the
//!   `(level, LaConfig)` pair the state was captured from
//!   ([`config_fingerprint`]). Restoring into a model built from a
//!   different configuration fails with
//!   [`CheckpointError::FingerprintMismatch`] rather than producing a
//!   silently-diverging run.
//! * **Torn-line tolerant** — every line is a complete JSON object, and
//!   a proper prefix of one never parses, so a write cut short by a
//!   crash is detectable at any byte boundary. The strict parsers
//!   report [`CheckpointError::Truncated`]; [`Trace::recover`]
//!   additionally salvages every complete cycle before the tear.
//!
//! Restoring a snapshot rebuilds the model from its constructor (which
//! recreates all static structure: netlists, processes, monitors) and
//! then installs the captured dynamic state, so a restored model is
//! *structurally* a fresh model and *behaviourally* the checkpointed
//! one — the equivalence the differential test layer proves.

use std::fmt;

use la1_asm::{intern_sym, Value};
use la1_ovl::{MonitorKind, OvlDynState, OvlInstanceSnap, OvlSnap, OvlViolation, Severity};
use la1_psl::{MonitorSnap, ObSnap};
use la1_rtl::{BatchedRtlState, RtlState, LANES};

use crate::asm_model::{AsmSnap, LaAsmModel};
use crate::cycle_model::{CycleModel, RtlOvlSnap, RtlWithOvl};
use crate::json::{self, Json};
use crate::rtl_model::{LaRtl, LaRtlBatchDriver, LaRtlDriver, RtlBatchDriverSnap, RtlDriverSnap};
use crate::sc_model::{LaSystemC, ScBankSnap, ScSnap, ScViolation};
use crate::spec::{BankOp, LaConfig};
use crate::stimulus::SequenceItem;
use crate::uml::{ClockRef, ObservedMessage};

/// Snapshot format version written by this build.
pub const SNAPSHOT_VERSION: u64 = 1;
/// Trace format version written by this build.
pub const TRACE_VERSION: u64 = 1;

/// Why a checkpoint stream could not be loaded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// A line (other than a torn final one) is not the expected JSON
    /// shape. Lines are 1-based.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The stream ends early: a torn final line, a missing footer, or
    /// a footer whose line count disagrees with the lines present.
    Truncated,
    /// The header's format version is not the one this reader speaks.
    VersionMismatch {
        /// Version in the stream.
        found: u64,
        /// Version this build writes.
        expected: u64,
    },
    /// The snapshot was captured from a different `(level, LaConfig)`
    /// pair than the model it is being restored into.
    FingerprintMismatch {
        /// Fingerprint in the stream.
        found: u64,
        /// Fingerprint of the restore target.
        expected: u64,
    },
    /// The payload does not fit the restore target (wrong level, bank
    /// count, monitor lineup, …).
    Restore(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Malformed { line, reason } => {
                write!(f, "malformed checkpoint line {line}: {reason}")
            }
            CheckpointError::Truncated => f.write_str("truncated checkpoint stream"),
            CheckpointError::VersionMismatch { found, expected } => {
                write!(f, "checkpoint version {found}, reader speaks {expected}")
            }
            CheckpointError::FingerprintMismatch { found, expected } => write!(
                f,
                "checkpoint fingerprint {found:016x} does not match target {expected:016x}"
            ),
            CheckpointError::Restore(msg) => write!(f, "cannot restore checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a over the level name and the configuration's `Debug`
/// rendering — any field added to [`LaConfig`] changes the fingerprint
/// automatically, the same scheme the farm uses to pin its journal to
/// a plan.
pub fn config_fingerprint(level: &str, cfg: &LaConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{level}|{cfg:?}").bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The level-specific payload of a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LevelSnap {
    /// ASM light-simulator state.
    Asm(AsmSnap),
    /// SystemC model state (signals, SRAM, kernel counters, PSL
    /// monitors).
    SystemC(ScSnap),
    /// Interpreted-RTL driver state.
    Rtl(RtlDriverSnap),
    /// RTL driver plus OVL bench state.
    RtlOvl(RtlOvlSnap),
    /// 64-lane batched RTL driver state.
    RtlBatch(RtlBatchDriverSnap),
}

/// A complete, restorable model state captured at a protocol-cycle
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Pin to the `(level, LaConfig)` pair the state came from.
    pub fingerprint: u64,
    /// Protocol cycles completed when the state was captured.
    pub cycle: u64,
    /// The level-specific state.
    pub payload: LevelSnap,
}

impl Snapshot {
    /// The level tag written to the header (matches
    /// [`CycleModel::level`]).
    pub fn level(&self) -> &'static str {
        match &self.payload {
            LevelSnap::Asm(_) => "asm",
            LevelSnap::SystemC(_) => "systemc",
            LevelSnap::Rtl(_) => "rtl",
            LevelSnap::RtlOvl(_) => "rtl+ovl",
            LevelSnap::RtlBatch(_) => "rtl-batch",
        }
    }

    /// Captures an ASM model.
    pub fn of_asm(model: &LaAsmModel) -> Snapshot {
        Snapshot {
            fingerprint: config_fingerprint("asm", model.config()),
            cycle: model.cycles(),
            payload: LevelSnap::Asm(model.snapshot_state()),
        }
    }

    /// Captures a SystemC model at a settled cycle boundary.
    ///
    /// # Errors
    ///
    /// Fails if the event kernel is mid-delta (see
    /// [`LaSystemC::snapshot_state`]).
    pub fn of_systemc(cfg: &LaConfig, model: &LaSystemC) -> Result<Snapshot, CheckpointError> {
        Ok(Snapshot {
            fingerprint: config_fingerprint("systemc", cfg),
            cycle: model.cycles(),
            payload: LevelSnap::SystemC(model.snapshot_state().map_err(CheckpointError::Restore)?),
        })
    }

    /// Captures an interpreted-RTL driver.
    ///
    /// # Errors
    ///
    /// Fails with an armed X injection (see
    /// [`LaRtlDriver::snapshot_state`]).
    pub fn of_rtl(driver: &LaRtlDriver) -> Result<Snapshot, CheckpointError> {
        Ok(Snapshot {
            fingerprint: config_fingerprint("rtl", driver.config()),
            cycle: driver.cycles(),
            payload: LevelSnap::Rtl(driver.snapshot_state().map_err(CheckpointError::Restore)?),
        })
    }

    /// Captures an RTL+OVL model.
    ///
    /// # Errors
    ///
    /// Fails with an armed X injection.
    pub fn of_rtl_ovl(cfg: &LaConfig, model: &RtlWithOvl) -> Result<Snapshot, CheckpointError> {
        Ok(Snapshot {
            fingerprint: config_fingerprint("rtl+ovl", cfg),
            cycle: model.cycles(),
            payload: LevelSnap::RtlOvl(model.snapshot_state().map_err(CheckpointError::Restore)?),
        })
    }

    /// Captures a 64-lane batched RTL driver.
    ///
    /// # Errors
    ///
    /// Fails with an armed X injection in any lane.
    pub fn of_rtl_batch(driver: &LaRtlBatchDriver) -> Result<Snapshot, CheckpointError> {
        Ok(Snapshot {
            fingerprint: config_fingerprint("rtl-batch", driver.config()),
            cycle: driver.cycles(),
            payload: LevelSnap::RtlBatch(
                driver.snapshot_state().map_err(CheckpointError::Restore)?,
            ),
        })
    }

    fn check_pin(&self, level: &str, cfg: &LaConfig) -> Result<(), CheckpointError> {
        let expected = config_fingerprint(level, cfg);
        if self.fingerprint != expected {
            return Err(CheckpointError::FingerprintMismatch {
                found: self.fingerprint,
                expected,
            });
        }
        Ok(())
    }

    /// Builds a fresh ASM model for `cfg` and installs this state.
    ///
    /// # Errors
    ///
    /// Fails on a fingerprint or level mismatch, or when the payload
    /// does not fit the machine.
    pub fn into_asm(&self, cfg: &LaConfig) -> Result<LaAsmModel, CheckpointError> {
        self.check_pin("asm", cfg)?;
        let LevelSnap::Asm(snap) = &self.payload else {
            return Err(CheckpointError::Restore(format!(
                "snapshot level is {}, not asm",
                self.level()
            )));
        };
        let mut model = LaAsmModel::new(cfg);
        model.restore_state(snap).map_err(CheckpointError::Restore)?;
        Ok(model)
    }

    /// Builds a fresh SystemC model for `cfg` and installs this state.
    ///
    /// When the snapshot carries monitor state, the default
    /// cycle-level suite is attached first
    /// ([`LaSystemC::attach_default_monitors`]) — snapshots of models
    /// with a custom directive set must be restored by hand (build the
    /// model, attach the same directives, call
    /// [`LaSystemC::restore_state`]).
    ///
    /// # Errors
    ///
    /// Fails on a fingerprint or level mismatch, or when the monitor
    /// lineup does not match.
    pub fn into_systemc(&self, cfg: &LaConfig) -> Result<LaSystemC, CheckpointError> {
        self.check_pin("systemc", cfg)?;
        let LevelSnap::SystemC(snap) = &self.payload else {
            return Err(CheckpointError::Restore(format!(
                "snapshot level is {}, not systemc",
                self.level()
            )));
        };
        let mut model = LaSystemC::new(cfg);
        if !snap.monitors.is_empty() {
            model.attach_default_monitors();
        }
        model.restore_state(snap).map_err(CheckpointError::Restore)?;
        Ok(model)
    }

    /// Builds a fresh driver over `design` and installs this state.
    ///
    /// # Errors
    ///
    /// Fails on a fingerprint or level mismatch, or when the arena
    /// shape does not fit the design.
    pub fn into_rtl(&self, design: &LaRtl) -> Result<LaRtlDriver, CheckpointError> {
        self.check_pin("rtl", design.config())?;
        let LevelSnap::Rtl(snap) = &self.payload else {
            return Err(CheckpointError::Restore(format!(
                "snapshot level is {}, not rtl",
                self.level()
            )));
        };
        let mut driver = LaRtlDriver::new(design);
        driver
            .restore_state(snap)
            .map_err(CheckpointError::Restore)?;
        Ok(driver)
    }

    /// Builds a fresh RTL+OVL model over `design` and installs this
    /// state (the OVL suite re-attaches identically by construction).
    ///
    /// # Errors
    ///
    /// Fails on a fingerprint or level mismatch, or when the payload
    /// does not fit the design.
    pub fn into_rtl_ovl(&self, design: &LaRtl) -> Result<RtlWithOvl, CheckpointError> {
        self.check_pin("rtl+ovl", design.config())?;
        let LevelSnap::RtlOvl(snap) = &self.payload else {
            return Err(CheckpointError::Restore(format!(
                "snapshot level is {}, not rtl+ovl",
                self.level()
            )));
        };
        let mut model = RtlWithOvl::new(design);
        model.restore_state(snap).map_err(CheckpointError::Restore)?;
        Ok(model)
    }

    /// Builds a fresh batched driver over `design` and installs this
    /// state.
    ///
    /// # Errors
    ///
    /// Fails on a fingerprint or level mismatch, or when the payload
    /// does not fit the design.
    pub fn into_rtl_batch(&self, design: &LaRtl) -> Result<LaRtlBatchDriver, CheckpointError> {
        self.check_pin("rtl-batch", design.config())?;
        let LevelSnap::RtlBatch(snap) = &self.payload else {
            return Err(CheckpointError::Restore(format!(
                "snapshot level is {}, not rtl-batch",
                self.level()
            )));
        };
        let mut driver = LaRtlBatchDriver::new(design);
        driver
            .restore_state(snap)
            .map_err(CheckpointError::Restore)?;
        Ok(driver)
    }

    /// Renders the snapshot as a JSONL stream (trailing newline
    /// included). Byte-stable: `parse(to_jsonl(s)).to_jsonl()` is
    /// identical.
    pub fn to_jsonl(&self) -> String {
        let mut sections: Vec<Json> = Vec::new();
        match &self.payload {
            LevelSnap::Asm(s) => enc_asm(s, &mut sections),
            LevelSnap::SystemC(s) => enc_sc(s, &mut sections),
            LevelSnap::Rtl(s) => enc_rtl(s, &mut sections),
            LevelSnap::RtlOvl(s) => {
                enc_rtl(&s.driver, &mut sections);
                enc_ovl(&s.bench, &mut sections);
            }
            LevelSnap::RtlBatch(s) => enc_rtl_batch(s, &mut sections),
        }
        let header = obj(vec![
            ("kind", Json::str("la1-snapshot")),
            ("version", Json::num(SNAPSHOT_VERSION)),
            ("level", Json::str(self.level())),
            ("fingerprint", fp_str(self.fingerprint)),
            ("cycle", Json::num(self.cycle)),
        ]);
        let footer = obj(vec![
            ("end", Json::Bool(true)),
            ("lines", Json::num(sections.len() as u64)),
        ]);
        let mut out = String::new();
        out.push_str(&header.render());
        out.push('\n');
        for s in &sections {
            out.push_str(&s.render());
            out.push('\n');
        }
        out.push_str(&footer.render());
        out.push('\n');
        out
    }

    /// Parses a snapshot stream, strictly: every line must parse and
    /// the footer must be present with the right line count.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] when the stream is cut at any
    /// byte boundary, [`CheckpointError::VersionMismatch`] /
    /// [`CheckpointError::Malformed`] for wrong-format input. Never
    /// panics.
    pub fn parse(text: &str) -> Result<Snapshot, CheckpointError> {
        let lines = split_lines(text)?;
        let header = &lines[0];
        if header.get("kind").and_then(Json::as_str) != Some("la1-snapshot") {
            return Err(CheckpointError::Malformed {
                line: 1,
                reason: "not an la1-snapshot header".to_string(),
            });
        }
        let version = header
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| CheckpointError::Malformed {
                line: 1,
                reason: "missing version".to_string(),
            })?;
        if version != SNAPSHOT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let fingerprint = header
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(parse_fp)
            .ok_or_else(|| CheckpointError::Malformed {
                line: 1,
                reason: "missing fingerprint".to_string(),
            })?;
        let cycle = header
            .get("cycle")
            .and_then(Json::as_u64)
            .ok_or_else(|| CheckpointError::Malformed {
                line: 1,
                reason: "missing cycle".to_string(),
            })?;
        let level = header
            .get("level")
            .and_then(Json::as_str)
            .ok_or_else(|| CheckpointError::Malformed {
                line: 1,
                reason: "missing level".to_string(),
            })?
            .to_string();

        // The footer must close the stream; everything between is the
        // payload.
        if lines.len() < 2 {
            return Err(CheckpointError::Truncated);
        }
        let footer = &lines[lines.len() - 1];
        if footer.get("end").and_then(Json::as_bool) != Some(true) {
            return Err(CheckpointError::Truncated);
        }
        let payload_lines = &lines[1..lines.len() - 1];
        if footer.get("lines").and_then(Json::as_u64) != Some(payload_lines.len() as u64) {
            return Err(CheckpointError::Truncated);
        }

        let mut secs = Sections {
            items: payload_lines,
            pos: 0,
        };
        let payload = match level.as_str() {
            "asm" => LevelSnap::Asm(dec_asm(&mut secs)?),
            "systemc" => LevelSnap::SystemC(dec_sc(&mut secs)?),
            "rtl" => LevelSnap::Rtl(dec_rtl(&mut secs)?),
            "rtl+ovl" => LevelSnap::RtlOvl(RtlOvlSnap {
                driver: dec_rtl(&mut secs)?,
                bench: dec_ovl(&mut secs)?,
            }),
            "rtl-batch" => LevelSnap::RtlBatch(dec_rtl_batch(&mut secs)?),
            other => {
                return Err(CheckpointError::Malformed {
                    line: 1,
                    reason: format!("unknown level `{other}`"),
                })
            }
        };
        if secs.pos != payload_lines.len() {
            return Err(secs.malformed("trailing payload lines".to_string()));
        }
        Ok(Snapshot {
            fingerprint,
            cycle,
            payload,
        })
    }
}

/// A replayable recording of the pin vectors driven into a model, one
/// entry per protocol cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Pin to the `(level, LaConfig)` pair the trace drives.
    pub fingerprint: u64,
    /// The recorded operations, cycle by cycle (empty vectors are idle
    /// cycles and are preserved).
    pub cycles: Vec<Vec<BankOp>>,
}

impl Trace {
    /// An empty trace pinned to `fingerprint`.
    pub fn new(fingerprint: u64) -> Trace {
        Trace {
            fingerprint,
            cycles: Vec::new(),
        }
    }

    /// Records one cycle's operations.
    pub fn record(&mut self, ops: &[BankOp]) {
        self.cycles.push(ops.to_vec());
    }

    /// Drives every recorded cycle into `model`, in order.
    pub fn replay_into<M: CycleModel + ?Sized>(&self, model: &mut M) {
        for ops in &self.cycles {
            model.cycle(ops);
        }
    }

    /// Renders the trace as a JSONL stream (trailing newline
    /// included).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = obj(vec![
            ("kind", Json::str("la1-trace")),
            ("version", Json::num(TRACE_VERSION)),
            ("fingerprint", fp_str(self.fingerprint)),
        ]);
        out.push_str(&header.render());
        out.push('\n');
        for ops in &self.cycles {
            let line = obj(vec![(
                "ops",
                Json::Arr(ops.iter().map(enc_op).collect()),
            )]);
            out.push_str(&line.render());
            out.push('\n');
        }
        let footer = obj(vec![
            ("end", Json::Bool(true)),
            ("cycles", Json::num(self.cycles.len() as u64)),
        ]);
        out.push_str(&footer.render());
        out.push('\n');
        out
    }

    /// Parses a trace stream, strictly: the footer must be present and
    /// agree with the number of cycle lines.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] for any byte-boundary cut,
    /// [`CheckpointError::Malformed`] / `VersionMismatch` for
    /// wrong-format input. Never panics.
    pub fn parse(text: &str) -> Result<Trace, CheckpointError> {
        let (trace, complete) = Trace::load(text, true)?;
        if !complete {
            return Err(CheckpointError::Truncated);
        }
        Ok(trace)
    }

    /// Parses a possibly-torn trace stream, salvaging every complete
    /// cycle line. Returns the trace and whether the stream was
    /// complete (footer present and consistent).
    ///
    /// # Errors
    ///
    /// Still fails when the header itself is torn or wrong — there is
    /// nothing to salvage without a header.
    pub fn recover(text: &str) -> Result<(Trace, bool), CheckpointError> {
        Trace::load(text, false)
    }

    fn load(text: &str, strict: bool) -> Result<(Trace, bool), CheckpointError> {
        // A final line without its newline is torn mid-write: strict
        // readers refuse, recovery drops it.
        let torn_tail = !text.ends_with('\n');
        let mut raw: Vec<&str> = text.split('\n').collect();
        if raw.last() == Some(&"") {
            raw.pop();
        }
        if torn_tail && !raw.is_empty() {
            if strict {
                return Err(CheckpointError::Truncated);
            }
            raw.pop();
        }
        if raw.is_empty() {
            return Err(CheckpointError::Truncated);
        }
        let header = match json::parse(raw[0]) {
            Ok(j) => j,
            Err(_) => {
                return Err(if raw.len() == 1 {
                    CheckpointError::Truncated
                } else {
                    CheckpointError::Malformed {
                        line: 1,
                        reason: "unparseable header".to_string(),
                    }
                })
            }
        };
        if header.get("kind").and_then(Json::as_str) != Some("la1-trace") {
            return Err(CheckpointError::Malformed {
                line: 1,
                reason: "not an la1-trace header".to_string(),
            });
        }
        let version = header
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| CheckpointError::Malformed {
                line: 1,
                reason: "missing version".to_string(),
            })?;
        if version != TRACE_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: version,
                expected: TRACE_VERSION,
            });
        }
        let fingerprint = header
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(parse_fp)
            .ok_or_else(|| CheckpointError::Malformed {
                line: 1,
                reason: "missing fingerprint".to_string(),
            })?;

        let mut trace = Trace::new(fingerprint);
        let mut complete = false;
        for (i, line) in raw.iter().enumerate().skip(1) {
            let last = i + 1 == raw.len();
            let j = match json::parse(line) {
                Ok(j) => j,
                Err(e) => {
                    if last && !strict {
                        break; // torn final line: salvage what we have
                    }
                    return Err(if last {
                        CheckpointError::Truncated
                    } else {
                        CheckpointError::Malformed {
                            line: i + 1,
                            reason: format!("{e:?}"),
                        }
                    });
                }
            };
            if j.get("end").and_then(Json::as_bool) == Some(true) {
                if !last {
                    return Err(CheckpointError::Malformed {
                        line: i + 1,
                        reason: "footer before end of stream".to_string(),
                    });
                }
                complete =
                    j.get("cycles").and_then(Json::as_u64) == Some(trace.cycles.len() as u64);
                if strict && !complete {
                    return Err(CheckpointError::Truncated);
                }
                break;
            }
            let ops = j
                .get("ops")
                .and_then(Json::as_arr)
                .ok_or(CheckpointError::Malformed {
                    line: i + 1,
                    reason: "cycle line without ops".to_string(),
                })?;
            let decoded: Result<Vec<BankOp>, String> = ops.iter().map(dec_op).collect();
            trace
                .cycles
                .push(decoded.map_err(|reason| CheckpointError::Malformed {
                    line: i + 1,
                    reason,
                })?);
        }
        Ok((trace, complete))
    }
}

// ---------------------------------------------------------------------
// line plumbing

fn split_lines(text: &str) -> Result<Vec<Json>, CheckpointError> {
    // Every record ends with a newline (the journal convention); a
    // final line without one is torn mid-write.
    if !text.ends_with('\n') {
        return Err(CheckpointError::Truncated);
    }
    let mut raw: Vec<&str> = text.split('\n').collect();
    if raw.last() == Some(&"") {
        raw.pop();
    }
    if raw.is_empty() {
        return Err(CheckpointError::Truncated);
    }
    let mut out = Vec::with_capacity(raw.len());
    for (i, line) in raw.iter().enumerate() {
        match json::parse(line) {
            Ok(j) => out.push(j),
            Err(e) => {
                // A torn final line is truncation, not malformation: a
                // proper prefix of a rendered object never parses.
                return Err(if i + 1 == raw.len() {
                    CheckpointError::Truncated
                } else {
                    CheckpointError::Malformed {
                        line: i + 1,
                        reason: format!("{e:?}"),
                    }
                });
            }
        }
    }
    Ok(out)
}

/// Sequential reader over the payload lines (header excluded, so line
/// numbers in errors are offset by 2: one for the header, one for
/// 1-basing).
struct Sections<'a> {
    items: &'a [Json],
    pos: usize,
}

impl<'a> Sections<'a> {
    fn malformed(&self, reason: String) -> CheckpointError {
        CheckpointError::Malformed {
            line: self.pos + 1, // the line just consumed, 1-based with header
            reason,
        }
    }

    fn next_sec(&mut self, want: &str) -> Result<&'a Json, CheckpointError> {
        let j = self.items.get(self.pos).ok_or(CheckpointError::Truncated)?;
        self.pos += 1;
        match j.get("sec").and_then(Json::as_str) {
            Some(sec) if sec == want => Ok(j),
            Some(sec) => Err(self.malformed(format!("expected section `{want}`, found `{sec}`"))),
            None => Err(self.malformed(format!("expected section `{want}`"))),
        }
    }

    /// Wraps a field-level decode error with the current line number.
    fn field<T>(&self, r: Result<T, String>) -> Result<T, CheckpointError> {
        r.map_err(|reason| self.malformed(reason))
    }
}

// ---------------------------------------------------------------------
// field helpers

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn fp_str(fp: u64) -> Json {
    Json::str(format!("{fp:016x}"))
}

fn parse_fp(s: &str) -> Option<u64> {
    (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok()).flatten()
}

fn jopt(v: Option<u64>) -> Json {
    match v {
        Some(n) => Json::num(n),
        None => Json::Null,
    }
}

fn need<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn f_u64(j: &Json, key: &str) -> Result<u64, String> {
    need(j, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
}

fn f_u32(j: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(f_u64(j, key)?).map_err(|_| format!("field `{key}` exceeds u32"))
}

fn f_i64(j: &Json, key: &str) -> Result<i64, String> {
    match need(j, key)? {
        Json::Num(raw) => raw
            .parse()
            .map_err(|_| format!("field `{key}` is not an integer")),
        _ => Err(format!("field `{key}` is not a number")),
    }
}

fn f_bool(j: &Json, key: &str) -> Result<bool, String> {
    need(j, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a bool"))
}

fn f_str(j: &Json, key: &str) -> Result<String, String> {
    Ok(need(j, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))?
        .to_string())
}

fn f_arr<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    need(j, key)?
        .as_arr()
        .ok_or_else(|| format!("field `{key}` is not an array"))
}

fn f_u64_vec(j: &Json, key: &str) -> Result<Vec<u64>, String> {
    need(j, key)?
        .as_u64_vec()
        .ok_or_else(|| format!("field `{key}` is not an integer array"))
}

fn f_opt_u64(j: &Json, key: &str) -> Result<Option<u64>, String> {
    need(j, key)?
        .as_opt_u64()
        .ok_or_else(|| format!("field `{key}` is not an integer or null"))
}

fn f_str_vec(j: &Json, key: &str) -> Result<Vec<String>, String> {
    f_arr(j, key)?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field `{key}` holds a non-string"))
        })
        .collect()
}

fn f_opt_u64_vec(j: &Json, key: &str) -> Result<Vec<Option<u64>>, String> {
    f_arr(j, key)?
        .iter()
        .map(|v| {
            v.as_opt_u64()
                .ok_or_else(|| format!("field `{key}` holds a non-integer"))
        })
        .collect()
}

fn u64_vec(j: &Json, what: &str) -> Result<Vec<u64>, String> {
    j.as_u64_vec()
        .ok_or_else(|| format!("{what} is not an integer array"))
}

fn f_u64_vec_vec(j: &Json, key: &str) -> Result<Vec<Vec<u64>>, String> {
    f_arr(j, key)?.iter().map(|v| u64_vec(v, key)).collect()
}

fn str_arr<I: IntoIterator<Item = S>, S: Into<String>>(items: I) -> Json {
    Json::Arr(items.into_iter().map(Json::str).collect())
}

fn nested_num_arr<'a, I: IntoIterator<Item = &'a Vec<u64>>>(items: I) -> Json {
    Json::Arr(
        items
            .into_iter()
            .map(|v| Json::num_arr(v.iter().copied()))
            .collect(),
    )
}

// ---------------------------------------------------------------------
// BankOp

fn enc_op(op: &BankOp) -> Json {
    match *op {
        BankOp::Read { bank, addr } => obj(vec![
            ("op", Json::str("r")),
            ("b", Json::num(bank as u64)),
            ("a", Json::num(addr)),
        ]),
        BankOp::Write {
            bank,
            addr,
            data,
            byte_en,
        } => obj(vec![
            ("op", Json::str("w")),
            ("b", Json::num(bank as u64)),
            ("a", Json::num(addr)),
            ("d", Json::num(data)),
            ("be", Json::num(byte_en as u64)),
        ]),
    }
}

fn dec_op(j: &Json) -> Result<BankOp, String> {
    match need(j, "op")?.as_str() {
        Some("r") => Ok(BankOp::Read {
            bank: f_u32(j, "b")?,
            addr: f_u64(j, "a")?,
        }),
        Some("w") => Ok(BankOp::Write {
            bank: f_u32(j, "b")?,
            addr: f_u64(j, "a")?,
            data: f_u64(j, "d")?,
            byte_en: f_u32(j, "be")?,
        }),
        _ => Err("unknown op tag".to_string()),
    }
}

/// Encodes one [`BankOp`] in the checkpoint object form — the same
/// encoding [`Trace`] uses per cycle, exposed so higher layers (the
/// staged-closure checkpoint in `la1-cover`) serialize operations
/// identically.
pub fn op_to_json(op: &BankOp) -> Json {
    enc_op(op)
}

/// Inverts [`op_to_json`].
pub fn op_from_json(j: &Json) -> Result<BankOp, String> {
    dec_op(j)
}

/// Encodes one [`SequenceItem`] for checkpoint payloads (the parked
/// driver slots and queued sequencer items a stimulus snapshot must
/// carry).
pub fn item_to_json(item: &SequenceItem) -> Json {
    match item {
        SequenceItem::Read { bank, addr } => obj(vec![
            ("it", Json::str("r")),
            ("b", Json::num(*bank as u64)),
            ("a", Json::num(*addr)),
        ]),
        SequenceItem::Write {
            bank,
            addr,
            data,
            byte_en,
        } => obj(vec![
            ("it", Json::str("w")),
            ("b", Json::num(*bank as u64)),
            ("a", Json::num(*addr)),
            ("d", Json::num(*data)),
            ("be", Json::num(*byte_en as u64)),
        ]),
        SequenceItem::Burst { bank, addr } => obj(vec![
            ("it", Json::str("burst")),
            ("b", Json::num(*bank as u64)),
            ("a", Json::num(*addr)),
        ]),
        SequenceItem::Idle => obj(vec![("it", Json::str("idle"))]),
        SequenceItem::InjectX => obj(vec![("it", Json::str("x"))]),
        SequenceItem::Raw(ops) => obj(vec![
            ("it", Json::str("raw")),
            ("ops", Json::Arr(ops.iter().map(enc_op).collect())),
        ]),
    }
}

/// Inverts [`item_to_json`].
pub fn item_from_json(j: &Json) -> Result<SequenceItem, String> {
    match need(j, "it")?.as_str() {
        Some("r") => Ok(SequenceItem::Read {
            bank: f_u32(j, "b")?,
            addr: f_u64(j, "a")?,
        }),
        Some("w") => Ok(SequenceItem::Write {
            bank: f_u32(j, "b")?,
            addr: f_u64(j, "a")?,
            data: f_u64(j, "d")?,
            byte_en: f_u32(j, "be")?,
        }),
        Some("burst") => Ok(SequenceItem::Burst {
            bank: f_u32(j, "b")?,
            addr: f_u64(j, "a")?,
        }),
        Some("idle") => Ok(SequenceItem::Idle),
        Some("x") => Ok(SequenceItem::InjectX),
        Some("raw") => Ok(SequenceItem::Raw(
            f_arr(j, "ops")?.iter().map(dec_op).collect::<Result<_, _>>()?,
        )),
        _ => Err("unknown item tag".to_string()),
    }
}

// ---------------------------------------------------------------------
// ASM payload

fn enc_value(v: &Value) -> Json {
    match v {
        Value::Bool(b) => obj(vec![("t", Json::str("b")), ("v", Json::Bool(*b))]),
        Value::Int(i) => obj(vec![("t", Json::str("i")), ("v", Json::Num(i.to_string()))]),
        Value::Sym(s) => obj(vec![("t", Json::str("s")), ("v", Json::str(*s))]),
    }
}

fn dec_value(j: &Json) -> Result<Value, String> {
    match need(j, "t")?.as_str() {
        Some("b") => Ok(Value::Bool(f_bool(j, "v")?)),
        Some("i") => Ok(Value::Int(f_i64(j, "v")?)),
        // `Value::Sym` holds a `&'static str`; the interner gives the
        // deserialized name the required lifetime.
        Some("s") => Ok(Value::Sym(intern_sym(&f_str(j, "v")?))),
        _ => Err("unknown value tag".to_string()),
    }
}

fn enc_asm(s: &AsmSnap, out: &mut Vec<Json>) {
    out.push(obj(vec![
        ("sec", Json::str("asm")),
        ("initialized", Json::Bool(s.initialized)),
        ("cycles", Json::num(s.cycles)),
    ]));
    out.push(obj(vec![
        ("sec", Json::str("values")),
        ("vals", Json::Arr(s.values.iter().map(enc_value).collect())),
    ]));
}

fn dec_asm(secs: &mut Sections<'_>) -> Result<AsmSnap, CheckpointError> {
    let head = secs.next_sec("asm")?;
    let initialized = secs.field(f_bool(head, "initialized"))?;
    let cycles = secs.field(f_u64(head, "cycles"))?;
    let vals = secs.next_sec("values")?;
    let values: Result<Vec<Value>, String> =
        secs.field(f_arr(vals, "vals"))?.iter().map(dec_value).collect();
    Ok(AsmSnap {
        values: secs.field(values)?,
        initialized,
        cycles,
    })
}

// ---------------------------------------------------------------------
// SystemC payload

fn enc_sc(s: &ScSnap, out: &mut Vec<Json>) {
    let (t, ts, act, del, upd) = s.kernel;
    out.push(obj(vec![
        ("sec", Json::str("sc")),
        ("k", Json::Bool(s.k)),
        ("k_bar", Json::Bool(s.k_bar)),
        ("trace_enabled", Json::Bool(s.trace_enabled)),
        ("parity_fault", jopt(s.parity_fault.map(u64::from))),
        ("kernel", Json::num_arr([t, ts, act, del, upd])),
        ("cycles", Json::num(s.cycles)),
        ("last_read", jopt(s.last_read)),
        ("banks", Json::num(s.banks.len() as u64)),
        ("monitors", Json::num(s.monitors.len() as u64)),
    ]));
    for b in &s.banks {
        out.push(enc_sc_bank(b));
    }
    out.push(obj(vec![
        ("sec", Json::str("trace")),
        ("msgs", Json::Arr(s.trace.iter().map(enc_msg).collect())),
    ]));
    out.push(obj(vec![
        ("sec", Json::str("sc-violations")),
        (
            "items",
            Json::Arr(
                s.violations
                    .iter()
                    .map(|v| {
                        obj(vec![
                            ("property", Json::str(&v.property)),
                            ("cycle", Json::num(v.cycle)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]));
    for (name, m) in &s.monitors {
        out.push(enc_monitor(name, m));
    }
}

fn dec_sc(secs: &mut Sections<'_>) -> Result<ScSnap, CheckpointError> {
    let head = secs.next_sec("sc")?;
    let k = secs.field(f_bool(head, "k"))?;
    let k_bar = secs.field(f_bool(head, "k_bar"))?;
    let trace_enabled = secs.field(f_bool(head, "trace_enabled"))?;
    let parity_fault = match secs.field(f_opt_u64(head, "parity_fault"))? {
        Some(n) => Some(
            secs.field(u32::try_from(n).map_err(|_| "parity_fault exceeds u32".to_string()))?,
        ),
        None => None,
    };
    let kernel_vec = secs.field(f_u64_vec(head, "kernel"))?;
    if kernel_vec.len() != 5 {
        return Err(secs.malformed("kernel must have 5 counters".to_string()));
    }
    let kernel = (
        kernel_vec[0],
        kernel_vec[1],
        kernel_vec[2],
        kernel_vec[3],
        kernel_vec[4],
    );
    let cycles = secs.field(f_u64(head, "cycles"))?;
    let last_read = secs.field(f_opt_u64(head, "last_read"))?;
    let n_banks = secs.field(f_u64(head, "banks"))? as usize;
    let n_monitors = secs.field(f_u64(head, "monitors"))? as usize;

    let mut banks = Vec::with_capacity(n_banks);
    for _ in 0..n_banks {
        let b = secs.next_sec("bank")?;
        banks.push(secs.field(dec_sc_bank(b))?);
    }
    let tr = secs.next_sec("trace")?;
    let msgs: Result<Vec<ObservedMessage>, String> =
        secs.field(f_arr(tr, "msgs"))?.iter().map(dec_msg).collect();
    let trace = secs.field(msgs)?;
    let vi = secs.next_sec("sc-violations")?;
    let items: Result<Vec<ScViolation>, String> = secs
        .field(f_arr(vi, "items"))?
        .iter()
        .map(|v| {
            Ok(ScViolation {
                property: f_str(v, "property")?,
                cycle: f_u64(v, "cycle")?,
            })
        })
        .collect();
    let violations = secs.field(items)?;
    let mut monitors = Vec::with_capacity(n_monitors);
    for _ in 0..n_monitors {
        let m = secs.next_sec("monitor")?;
        let name = secs.field(f_str(m, "name"))?;
        monitors.push((name, secs.field(dec_monitor(m))?));
    }
    Ok(ScSnap {
        k,
        k_bar,
        banks,
        trace,
        trace_enabled,
        parity_fault,
        kernel,
        monitors,
        violations,
        cycles,
        last_read,
    })
}

fn enc_sc_bank(b: &ScBankSnap) -> Json {
    obj(vec![
        ("sec", Json::str("bank")),
        ("rd_req", Json::Bool(b.rd_req)),
        ("rd_addr", Json::num(b.rd_addr)),
        ("wr_req", Json::Bool(b.wr_req)),
        ("wr_addr", Json::num(b.wr_addr)),
        ("wr_data_lo", Json::num(b.wr_data_lo)),
        ("wr_data_hi", Json::num(b.wr_data_hi)),
        ("wr_byte_en", Json::num(b.wr_byte_en as u64)),
        ("rv1", Json::Bool(b.rv1)),
        ("rv2", Json::Bool(b.rv2)),
        ("dv", Json::Bool(b.dv)),
        ("out_lo", Json::num(b.out_lo)),
        ("out_hi", Json::num(b.out_hi)),
        ("out_par_lo", Json::num(b.out_par_lo)),
        ("out_par_hi", Json::num(b.out_par_hi)),
        ("perr", Json::Bool(b.perr)),
        ("wv", Json::Bool(b.wv)),
        ("wdone", Json::Bool(b.wdone)),
        ("ra1", Json::num(b.ra1)),
        ("ra2", Json::num(b.ra2)),
        ("word_hold", Json::num(b.word_hold)),
        ("wa_c", Json::num(b.wa_c)),
        ("wd_lo_c", Json::num(b.wd_lo_c)),
        ("wd_hi_c", Json::num(b.wd_hi_c)),
        ("be_c", Json::num(b.be_c as u64)),
        ("hi_err", Json::Bool(b.hi_err)),
        ("beat2", Json::Bool(b.beat2)),
        ("beat2_addr", Json::num(b.beat2_addr)),
        ("sram", Json::num_arr(b.sram.iter().copied())),
    ])
}

fn dec_sc_bank(j: &Json) -> Result<ScBankSnap, String> {
    Ok(ScBankSnap {
        rd_req: f_bool(j, "rd_req")?,
        rd_addr: f_u64(j, "rd_addr")?,
        wr_req: f_bool(j, "wr_req")?,
        wr_addr: f_u64(j, "wr_addr")?,
        wr_data_lo: f_u64(j, "wr_data_lo")?,
        wr_data_hi: f_u64(j, "wr_data_hi")?,
        wr_byte_en: f_u32(j, "wr_byte_en")?,
        rv1: f_bool(j, "rv1")?,
        rv2: f_bool(j, "rv2")?,
        dv: f_bool(j, "dv")?,
        out_lo: f_u64(j, "out_lo")?,
        out_hi: f_u64(j, "out_hi")?,
        out_par_lo: f_u64(j, "out_par_lo")?,
        out_par_hi: f_u64(j, "out_par_hi")?,
        perr: f_bool(j, "perr")?,
        wv: f_bool(j, "wv")?,
        wdone: f_bool(j, "wdone")?,
        ra1: f_u64(j, "ra1")?,
        ra2: f_u64(j, "ra2")?,
        word_hold: f_u64(j, "word_hold")?,
        wa_c: f_u64(j, "wa_c")?,
        wd_lo_c: f_u64(j, "wd_lo_c")?,
        wd_hi_c: f_u64(j, "wd_hi_c")?,
        be_c: f_u32(j, "be_c")?,
        hi_err: f_bool(j, "hi_err")?,
        beat2: f_bool(j, "beat2")?,
        beat2_addr: f_u64(j, "beat2_addr")?,
        sram: f_u64_vec(j, "sram")?,
    })
}

fn enc_msg(m: &ObservedMessage) -> Json {
    obj(vec![
        ("from", Json::str(&m.from)),
        ("to", Json::str(&m.to)),
        ("method", Json::str(&m.method)),
        ("cycle", Json::num(m.cycle as u64)),
        (
            "clock",
            Json::str(match m.clock {
                ClockRef::K => "K",
                ClockRef::KBar => "K#",
            }),
        ),
    ])
}

fn dec_msg(j: &Json) -> Result<ObservedMessage, String> {
    let clock = match need(j, "clock")?.as_str() {
        Some("K") => ClockRef::K,
        Some("K#") => ClockRef::KBar,
        _ => return Err("unknown clock tag".to_string()),
    };
    Ok(ObservedMessage {
        from: f_str(j, "from")?,
        to: f_str(j, "to")?,
        method: f_str(j, "method")?,
        cycle: f_u32(j, "cycle")?,
        clock,
    })
}

// ---------------------------------------------------------------------
// PSL monitor payload

fn enc_monitor(name: &str, m: &MonitorSnap) -> Json {
    obj(vec![
        ("sec", Json::str("monitor")),
        ("name", Json::str(name)),
        ("cycle", Json::num(m.cycle)),
        ("failed_at", jopt(m.failed_at)),
        ("determined_holds", Json::Bool(m.determined_holds)),
        ("covered", Json::Bool(m.covered)),
        ("obs", Json::Arr(m.obs.iter().map(enc_ob).collect())),
    ])
}

fn dec_monitor(j: &Json) -> Result<MonitorSnap, String> {
    let obs: Result<Vec<ObSnap>, String> = f_arr(j, "obs")?.iter().map(dec_ob).collect();
    Ok(MonitorSnap {
        obs: obs?,
        cycle: f_u64(j, "cycle")?,
        failed_at: f_opt_u64(j, "failed_at")?,
        determined_holds: f_bool(j, "determined_holds")?,
        covered: f_bool(j, "covered")?,
    })
}

fn enc_ob(ob: &ObSnap) -> Json {
    match ob {
        ObSnap::Always { body } => obj(vec![
            ("ob", Json::str("always")),
            ("body", Json::num(*body as u64)),
        ]),
        ObSnap::Never { sere, active } => obj(vec![
            ("ob", Json::str("never")),
            ("sere", Json::num(*sere as u64)),
            ("active", Json::num_arr(active.iter().copied())),
        ]),
        ObSnap::Eventually { sere, active } => obj(vec![
            ("ob", Json::str("eventually")),
            ("sere", Json::num(*sere as u64)),
            ("active", Json::num_arr(active.iter().copied())),
        ]),
        ObSnap::SereStrong {
            sere,
            active,
            fresh,
        } => obj(vec![
            ("ob", Json::str("sere-strong")),
            ("sere", Json::num(*sere as u64)),
            ("active", Json::num_arr(active.iter().copied())),
            ("fresh", Json::Bool(*fresh)),
        ]),
        ObSnap::Defer {
            remaining,
            strong,
            body,
        } => obj(vec![
            ("ob", Json::str("defer")),
            ("remaining", Json::num(*remaining as u64)),
            ("strong", Json::Bool(*strong)),
            ("body", Json::num(*body as u64)),
        ]),
        ObSnap::Until { p, q, strong } => obj(vec![
            ("ob", Json::str("until")),
            ("p", Json::num(*p as u64)),
            ("q", Json::num(*q as u64)),
            ("strong", Json::Bool(*strong)),
        ]),
        ObSnap::Before { p, q, strong } => obj(vec![
            ("ob", Json::str("before")),
            ("p", Json::num(*p as u64)),
            ("q", Json::num(*q as u64)),
            ("strong", Json::Bool(*strong)),
        ]),
        ObSnap::SuffixImpl {
            pre,
            active,
            post,
            overlap,
            persistent,
            fresh,
        } => obj(vec![
            ("ob", Json::str("suffix-impl")),
            ("pre", Json::num(*pre as u64)),
            ("active", Json::num_arr(active.iter().copied())),
            ("post", Json::num(*post as u64)),
            ("overlap", Json::Bool(*overlap)),
            ("persistent", Json::Bool(*persistent)),
            ("fresh", Json::Bool(*fresh)),
        ]),
    }
}

fn dec_ob(j: &Json) -> Result<ObSnap, String> {
    match need(j, "ob")?.as_str() {
        Some("always") => Ok(ObSnap::Always {
            body: f_u32(j, "body")?,
        }),
        Some("never") => Ok(ObSnap::Never {
            sere: f_u32(j, "sere")?,
            active: f_u64_vec(j, "active")?,
        }),
        Some("eventually") => Ok(ObSnap::Eventually {
            sere: f_u32(j, "sere")?,
            active: f_u64_vec(j, "active")?,
        }),
        Some("sere-strong") => Ok(ObSnap::SereStrong {
            sere: f_u32(j, "sere")?,
            active: f_u64_vec(j, "active")?,
            fresh: f_bool(j, "fresh")?,
        }),
        Some("defer") => Ok(ObSnap::Defer {
            remaining: f_u32(j, "remaining")?,
            strong: f_bool(j, "strong")?,
            body: f_u32(j, "body")?,
        }),
        Some("until") => Ok(ObSnap::Until {
            p: f_u32(j, "p")?,
            q: f_u32(j, "q")?,
            strong: f_bool(j, "strong")?,
        }),
        Some("before") => Ok(ObSnap::Before {
            p: f_u32(j, "p")?,
            q: f_u32(j, "q")?,
            strong: f_bool(j, "strong")?,
        }),
        Some("suffix-impl") => Ok(ObSnap::SuffixImpl {
            pre: f_u32(j, "pre")?,
            active: f_u64_vec(j, "active")?,
            post: f_u32(j, "post")?,
            overlap: f_bool(j, "overlap")?,
            persistent: f_bool(j, "persistent")?,
            fresh: f_bool(j, "fresh")?,
        }),
        _ => Err("unknown obligation tag".to_string()),
    }
}

// ---------------------------------------------------------------------
// RTL payload

fn enc_rtl(s: &RtlDriverSnap, out: &mut Vec<Json>) {
    out.push(obj(vec![
        ("sec", Json::str("rtl")),
        ("cycles", Json::num(s.cycles)),
        ("captured_lo", jopt(s.captured_lo)),
        (
            "outputs",
            Json::Arr(s.outputs.iter().map(|o| jopt(*o)).collect()),
        ),
        ("steps", Json::num(s.sim.steps)),
        ("evals", Json::num(s.sim.evals)),
        ("prev_clk", Json::str(&s.sim.prev_clk)),
        ("rams", Json::num(s.sim.rams.len() as u64)),
    ]));
    out.push(obj(vec![
        ("sec", Json::str("rtl-vals")),
        ("vals", str_arr(s.sim.vals.iter().map(String::as_str))),
    ]));
    for (i, words) in s.sim.rams.iter().enumerate() {
        out.push(obj(vec![
            ("sec", Json::str("rtl-ram")),
            ("idx", Json::num(i as u64)),
            ("words", str_arr(words.iter().map(String::as_str))),
        ]));
    }
}

fn dec_rtl(secs: &mut Sections<'_>) -> Result<RtlDriverSnap, CheckpointError> {
    let head = secs.next_sec("rtl")?;
    let cycles = secs.field(f_u64(head, "cycles"))?;
    let captured_lo = secs.field(f_opt_u64(head, "captured_lo"))?;
    let outputs = secs.field(f_opt_u64_vec(head, "outputs"))?;
    let steps = secs.field(f_u64(head, "steps"))?;
    let evals = secs.field(f_u64(head, "evals"))?;
    let prev_clk = secs.field(f_str(head, "prev_clk"))?;
    let n_rams = secs.field(f_u64(head, "rams"))? as usize;
    let vals_line = secs.next_sec("rtl-vals")?;
    let vals = secs.field(f_str_vec(vals_line, "vals"))?;
    let mut rams = Vec::with_capacity(n_rams);
    for i in 0..n_rams {
        let r = secs.next_sec("rtl-ram")?;
        if secs.field(f_u64(r, "idx"))? != i as u64 {
            return Err(secs.malformed(format!("ram sections out of order at index {i}")));
        }
        rams.push(secs.field(f_str_vec(r, "words"))?);
    }
    Ok(RtlDriverSnap {
        sim: RtlState {
            vals,
            rams,
            prev_clk,
            steps,
            evals,
        },
        cycles,
        captured_lo,
        outputs,
    })
}

// ---------------------------------------------------------------------
// OVL payload

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Note => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
        Severity::Fatal => "fatal",
    }
}

fn severity_from(s: &str) -> Result<Severity, String> {
    match s {
        "note" => Ok(Severity::Note),
        "warning" => Ok(Severity::Warning),
        "error" => Ok(Severity::Error),
        "fatal" => Ok(Severity::Fatal),
        _ => Err(format!("unknown severity `{s}`")),
    }
}

fn kind_from(s: &str) -> Result<MonitorKind, String> {
    const ALL: [MonitorKind; 15] = [
        MonitorKind::Always,
        MonitorKind::Never,
        MonitorKind::Proposition,
        MonitorKind::Implication,
        MonitorKind::Next,
        MonitorKind::CycleSequence,
        MonitorKind::Frame,
        MonitorKind::Change,
        MonitorKind::Unchange,
        MonitorKind::OneHot,
        MonitorKind::ZeroOneHot,
        MonitorKind::Range,
        MonitorKind::Time,
        MonitorKind::EvenParity,
        MonitorKind::Width,
    ];
    ALL.into_iter()
        .find(|k| k.ovl_name() == s)
        .ok_or_else(|| format!("unknown monitor kind `{s}`"))
}

fn enc_dyn(d: &OvlDynState) -> Json {
    match d {
        OvlDynState::None => obj(vec![("t", Json::str("none"))]),
        OvlDynState::Counters(v) => obj(vec![
            ("t", Json::str("counters")),
            ("v", Json::num_arr(v.iter().map(|&c| c as u64))),
        ]),
        OvlDynState::Threads(v) => obj(vec![
            ("t", Json::str("threads")),
            ("v", Json::num_arr(v.iter().copied())),
        ]),
        OvlDynState::ValueCounters(v) => obj(vec![
            ("t", Json::str("valctr")),
            ("v", Json::num_arr(v.iter().map(|&(val, _)| val))),
            ("c", Json::num_arr(v.iter().map(|&(_, c)| c as u64))),
        ]),
        OvlDynState::Pulse(p) => obj(vec![
            ("t", Json::str("pulse")),
            ("v", jopt(p.map(u64::from))),
        ]),
    }
}

fn dec_dyn(j: &Json) -> Result<OvlDynState, String> {
    let to_u32 = |n: u64| u32::try_from(n).map_err(|_| "counter exceeds u32".to_string());
    match need(j, "t")?.as_str() {
        Some("none") => Ok(OvlDynState::None),
        Some("counters") => Ok(OvlDynState::Counters(
            f_u64_vec(j, "v")?
                .into_iter()
                .map(to_u32)
                .collect::<Result<_, _>>()?,
        )),
        Some("threads") => Ok(OvlDynState::Threads(f_u64_vec(j, "v")?)),
        Some("valctr") => {
            let vals = f_u64_vec(j, "v")?;
            let counts = f_u64_vec(j, "c")?;
            if vals.len() != counts.len() {
                return Err("valctr arrays differ in length".to_string());
            }
            vals.into_iter()
                .zip(counts)
                .map(|(v, c)| Ok((v, to_u32(c)?)))
                .collect::<Result<Vec<_>, String>>()
                .map(OvlDynState::ValueCounters)
        }
        Some("pulse") => Ok(OvlDynState::Pulse(match f_opt_u64(j, "v")? {
            Some(n) => Some(to_u32(n)?),
            None => None,
        })),
        _ => Err("unknown dyn-state tag".to_string()),
    }
}

fn enc_ovl(s: &OvlSnap, out: &mut Vec<Json>) {
    out.push(obj(vec![
        ("sec", Json::str("ovl")),
        ("cycles", Json::num(s.cycles)),
        ("fatal", Json::Bool(s.fatal)),
        ("instances", Json::num(s.instances.len() as u64)),
    ]));
    for inst in &s.instances {
        out.push(obj(vec![
            ("sec", Json::str("ovl-inst")),
            ("name", Json::str(&inst.name)),
            ("kind", Json::str(inst.kind.ovl_name())),
            ("failures", Json::num(inst.failures)),
            ("dyn", enc_dyn(&inst.dyn_state)),
        ]));
    }
    out.push(obj(vec![
        ("sec", Json::str("ovl-violations")),
        (
            "items",
            Json::Arr(
                s.violations
                    .iter()
                    .map(|v| {
                        obj(vec![
                            ("monitor", Json::str(&v.monitor)),
                            ("kind", Json::str(v.kind.ovl_name())),
                            ("cycle", Json::num(v.cycle)),
                            ("severity", Json::str(severity_str(v.severity))),
                            ("message", Json::str(&v.message)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]));
}

fn dec_ovl(secs: &mut Sections<'_>) -> Result<OvlSnap, CheckpointError> {
    let head = secs.next_sec("ovl")?;
    let cycles = secs.field(f_u64(head, "cycles"))?;
    let fatal = secs.field(f_bool(head, "fatal"))?;
    let n = secs.field(f_u64(head, "instances"))? as usize;
    let mut instances = Vec::with_capacity(n);
    for _ in 0..n {
        let i = secs.next_sec("ovl-inst")?;
        let name = secs.field(f_str(i, "name"))?;
        let kind = secs.field(kind_from(&secs.field(f_str(i, "kind"))?))?;
        let failures = secs.field(f_u64(i, "failures"))?;
        let dyn_state = secs.field(need(i, "dyn").and_then(dec_dyn))?;
        instances.push(OvlInstanceSnap {
            name,
            kind,
            failures,
            dyn_state,
        });
    }
    let vi = secs.next_sec("ovl-violations")?;
    let items: Result<Vec<OvlViolation>, String> = secs
        .field(f_arr(vi, "items"))?
        .iter()
        .map(|v| {
            Ok(OvlViolation {
                monitor: f_str(v, "monitor")?,
                kind: kind_from(&f_str(v, "kind")?)?,
                cycle: f_u64(v, "cycle")?,
                severity: severity_from(&f_str(v, "severity")?)?,
                message: f_str(v, "message")?,
            })
        })
        .collect();
    Ok(OvlSnap {
        instances,
        violations: secs.field(items)?,
        cycles,
        fatal,
    })
}

// ---------------------------------------------------------------------
// batched RTL payload

fn enc_planes<'a, I: IntoIterator<Item = &'a (Vec<u64>, Vec<u64>)> + Clone>(
    items: I,
) -> (Json, Json) {
    let a = nested_num_arr(items.clone().into_iter().map(|(a, _)| a));
    let b = nested_num_arr(items.into_iter().map(|(_, b)| b));
    (a, b)
}

/// A list of (value, x) packed plane pairs, one per batched state word.
type PlanePairs = Vec<(Vec<u64>, Vec<u64>)>;

fn dec_planes(j: &Json, ka: &str, kb: &str) -> Result<PlanePairs, String> {
    let a = f_u64_vec_vec(j, ka)?;
    let b = f_u64_vec_vec(j, kb)?;
    if a.len() != b.len() {
        return Err(format!("plane arrays `{ka}`/`{kb}` differ in length"));
    }
    Ok(a.into_iter().zip(b).collect())
}

fn enc_rtl_batch(s: &RtlBatchDriverSnap, out: &mut Vec<Json>) {
    out.push(obj(vec![
        ("sec", Json::str("rtl-batch")),
        ("cycles", Json::num(s.cycles)),
        (
            "captured_lo",
            Json::Arr(s.captured_lo.iter().map(|o| jopt(*o)).collect()),
        ),
        ("steps", Json::num(s.sim.steps)),
        ("evals", Json::num(s.sim.evals)),
        ("prev_clk", Json::str(&s.sim.prev_clk)),
        ("rams", Json::num(s.sim.rams.len() as u64)),
    ]));
    out.push(obj(vec![
        ("sec", Json::str("batch-outputs")),
        (
            "lanes",
            Json::Arr(
                s.outputs
                    .iter()
                    .map(|lane| Json::Arr(lane.iter().map(|o| jopt(*o)).collect()))
                    .collect(),
            ),
        ),
    ]));
    let (a, b) = enc_planes(s.sim.vals.iter());
    out.push(obj(vec![
        ("sec", Json::str("batch-vals")),
        ("a", a),
        ("b", b),
    ]));
    for (i, words) in s.sim.rams.iter().enumerate() {
        let (a, b) = enc_planes(words.iter());
        out.push(obj(vec![
            ("sec", Json::str("batch-ram")),
            ("idx", Json::num(i as u64)),
            ("a", a),
            ("b", b),
        ]));
    }
}

fn dec_rtl_batch(secs: &mut Sections<'_>) -> Result<RtlBatchDriverSnap, CheckpointError> {
    let head = secs.next_sec("rtl-batch")?;
    let cycles = secs.field(f_u64(head, "cycles"))?;
    let captured_lo = secs.field(f_opt_u64_vec(head, "captured_lo"))?;
    if captured_lo.len() != LANES {
        return Err(secs.malformed(format!("captured_lo must have {LANES} lanes")));
    }
    let steps = secs.field(f_u64(head, "steps"))?;
    let evals = secs.field(f_u64(head, "evals"))?;
    let prev_clk = secs.field(f_str(head, "prev_clk"))?;
    let n_rams = secs.field(f_u64(head, "rams"))? as usize;
    let outs = secs.next_sec("batch-outputs")?;
    let lanes = secs.field(f_arr(outs, "lanes"))?;
    if lanes.len() != LANES {
        return Err(secs.malformed(format!("outputs must have {LANES} lanes")));
    }
    let outputs: Result<Vec<Vec<Option<u64>>>, String> = lanes
        .iter()
        .map(|lane| {
            lane.as_arr()
                .ok_or_else(|| "lane outputs must be an array".to_string())?
                .iter()
                .map(|o| {
                    o.as_opt_u64()
                        .ok_or_else(|| "lane output must be integer or null".to_string())
                })
                .collect()
        })
        .collect();
    let outputs = secs.field(outputs)?;
    let vals_line = secs.next_sec("batch-vals")?;
    let vals = secs.field(dec_planes(vals_line, "a", "b"))?;
    let mut rams = Vec::with_capacity(n_rams);
    for i in 0..n_rams {
        let r = secs.next_sec("batch-ram")?;
        if secs.field(f_u64(r, "idx"))? != i as u64 {
            return Err(secs.malformed(format!("ram sections out of order at index {i}")));
        }
        rams.push(secs.field(dec_planes(r, "a", "b"))?);
    }
    Ok(RtlBatchDriverSnap {
        sim: BatchedRtlState {
            vals,
            rams,
            prev_clk,
            steps,
            evals,
        },
        cycles,
        captured_lo,
        outputs,
    })
}
