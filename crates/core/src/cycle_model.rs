//! One cycle-level execution interface across the executable levels.
//!
//! The paper runs the same stimulus through three executable artefacts —
//! the ASM model's *light Verilog-like simulator* (Fig. 4), the SystemC
//! model, and the interpreted RTL — and compares what each level's pins
//! show. [`CycleModel`] captures that shared contract: drive one full
//! protocol cycle, sample the bank outputs and write-done flags, and
//! collect the attached monitors' verdicts. [`co_execute`] is the one
//! co-execution loop the conformance and fault-injection checks run on
//! top of it, replacing the hand-rolled per-pair loops.
//!
//! | implementor | level |
//! |---|---|
//! | [`LaAsmModel`](crate::asm_model::LaAsmModel) | ASM (full-word writes only) |
//! | [`LaSystemC`] | SystemC + compiled PSL monitors |
//! | [`LaRtlDriver`] | interpreted RTL, no monitors |
//! | [`RtlWithOvl`] | interpreted RTL + OVL monitor modules |
//!
//! The OVL monitors attach through the netlist's net-id arena (each
//! probe is an [`la1_rtl::Expr`] over [`la1_rtl::NetId`]s), so loading a
//! monitor never clones design state — it reads the same value slots the
//! compiled simulator evaluates into.

use crate::harness::attach_la1_ovl;
use crate::rtl_model::{LaRtl, LaRtlBatchDriver, LaRtlDriver, RtlDriverSnap};
use crate::sc_model::LaSystemC;
use crate::spec::BankOp;
use crate::workloads::Workload;
use la1_ovl::{OvlBench, OvlSnap};
use std::fmt;

/// A cycle-accurate executable model of the LA-1 interface.
///
/// All levels share the protocol: at most one read and one write per
/// cycle (single address bus), read latency of
/// [`crate::spec::READ_LATENCY`] cycles, single-cycle write commit.
pub trait CycleModel {
    /// Short name of the refinement level, for reports.
    fn level(&self) -> &'static str;

    /// Drives one full clock cycle with the given operations.
    ///
    /// # Panics
    ///
    /// Panics if more than one read or write is supplied, or an address
    /// is out of range (every level enforces the bus protocol).
    fn cycle(&mut self, ops: &[BankOp]);

    /// The word a bank produced in the last completed cycle, if its
    /// data-valid flag was set.
    fn bank_output(&self, bank: u32) -> Option<u64>;

    /// Whether the bank's write-done flag is set after the last cycle.
    fn write_done(&self, bank: u32) -> bool;

    /// Monitor violations recorded so far (0 for levels running without
    /// attached monitors).
    fn violation_count(&self) -> usize;

    /// Completed cycles.
    fn cycles(&self) -> u64;

    /// The recorded violations as `(monitor name, cycle)` pairs —
    /// the per-monitor detail behind [`CycleModel::violation_count`].
    /// Levels without attached monitors report none.
    fn violation_details(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Whether the bank's parity checker flags an error after the last
    /// cycle. Levels abstracting the parity path away (the ASM model)
    /// report `false`. Takes `&mut self` because the interpreted RTL
    /// samples the net lazily through its simulator.
    fn parity_error(&mut self, _bank: u32) -> bool {
        false
    }
}

/// A passive per-cycle observer attached to a [`CycleModel`] run:
/// called after every completed cycle with the operations that were
/// driven and the model whose pins to sample. Observation-only — an
/// observer reads pins (`bank_output`, `write_done`, `parity_error`)
/// and must not drive the model.
///
/// The unit type `()` is the no-op observer the plain loops use.
pub trait CycleObserver {
    /// Called once per completed cycle, after the model stepped.
    fn observe(&mut self, ops: &[BankOp], model: &mut dyn CycleModel);
}

impl CycleObserver for () {
    fn observe(&mut self, _ops: &[BankOp], _model: &mut dyn CycleModel) {}
}

impl CycleModel for LaSystemC {
    fn level(&self) -> &'static str {
        "systemc"
    }
    fn cycle(&mut self, ops: &[BankOp]) {
        LaSystemC::cycle(self, ops);
    }
    fn bank_output(&self, bank: u32) -> Option<u64> {
        LaSystemC::bank_output(self, bank)
    }
    fn write_done(&self, bank: u32) -> bool {
        LaSystemC::write_done(self, bank)
    }
    fn violation_count(&self) -> usize {
        self.violations().len()
    }
    fn cycles(&self) -> u64 {
        LaSystemC::cycles(self)
    }
    fn violation_details(&self) -> Vec<(String, u64)> {
        self.violations()
            .iter()
            .map(|v| (v.property.clone(), v.cycle))
            .collect()
    }
    fn parity_error(&mut self, bank: u32) -> bool {
        LaSystemC::parity_error(self, bank)
    }
}

impl CycleModel for LaRtlDriver {
    fn level(&self) -> &'static str {
        "rtl"
    }
    fn cycle(&mut self, ops: &[BankOp]) {
        LaRtlDriver::cycle(self, ops);
    }
    fn bank_output(&self, bank: u32) -> Option<u64> {
        LaRtlDriver::bank_output(self, bank)
    }
    fn write_done(&self, bank: u32) -> bool {
        LaRtlDriver::write_done(self, bank)
    }
    fn violation_count(&self) -> usize {
        0
    }
    fn cycles(&self) -> u64 {
        LaRtlDriver::cycles(self)
    }
    fn parity_error(&mut self, bank: u32) -> bool {
        LaRtlDriver::parity_error(self, bank)
    }
}

/// The interpreted RTL with the full OVL monitor suite loaded into the
/// simulated design — the Table 3 right column as one [`CycleModel`].
#[derive(Debug)]
pub struct RtlWithOvl {
    driver: LaRtlDriver,
    bench: OvlBench,
}

impl RtlWithOvl {
    /// Builds the driver and attaches the LA-1 OVL suite
    /// ([`attach_la1_ovl`]) to it.
    pub fn new(design: &LaRtl) -> Self {
        let mut bench = OvlBench::new();
        attach_la1_ovl(&mut bench, design);
        RtlWithOvl {
            driver: LaRtlDriver::new(design),
            bench,
        }
    }

    /// The underlying OVL bench (violation details, per-monitor report).
    pub fn bench(&self) -> &OvlBench {
        &self.bench
    }

    /// The underlying RTL driver.
    pub fn driver(&self) -> &LaRtlDriver {
        &self.driver
    }

    /// Mutable access to the underlying RTL driver (fault-injection
    /// hooks such as [`LaRtlDriver::inject_x`]).
    pub fn driver_mut(&mut self) -> &mut LaRtlDriver {
        &mut self.driver
    }

    /// Captures driver and OVL-bench state together at a protocol-cycle
    /// boundary.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as
    /// [`LaRtlDriver::snapshot_state`].
    pub fn snapshot_state(&self) -> Result<RtlOvlSnap, String> {
        Ok(RtlOvlSnap {
            driver: self.driver.snapshot_state()?,
            bench: self.bench.snapshot(),
        })
    }

    /// Installs a snapshot into a freshly built model over the same
    /// design (the OVL suite re-attaches identically, so the bench
    /// lines up by construction).
    ///
    /// # Errors
    ///
    /// Fails if the driver or bench state does not match this design.
    pub fn restore_state(&mut self, snap: &RtlOvlSnap) -> Result<(), String> {
        self.driver.restore_state(&snap.driver)?;
        self.bench.restore_state(&snap.bench)
    }
}

/// A plain-data snapshot of an [`RtlWithOvl`] model: the RTL driver
/// state plus the OVL bench's obligation windows and violation log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlOvlSnap {
    /// The interpreted-RTL driver state.
    pub driver: RtlDriverSnap,
    /// The OVL bench state.
    pub bench: OvlSnap,
}

impl CycleModel for RtlWithOvl {
    fn level(&self) -> &'static str {
        "rtl+ovl"
    }
    fn cycle(&mut self, ops: &[BankOp]) {
        let bench = &mut self.bench;
        self.driver.cycle_with(ops, |sim| {
            bench.on_cycle(sim);
        });
    }
    fn bank_output(&self, bank: u32) -> Option<u64> {
        self.driver.bank_output(bank)
    }
    fn write_done(&self, bank: u32) -> bool {
        self.driver.write_done(bank)
    }
    fn violation_count(&self) -> usize {
        self.bench.violations().len()
    }
    fn cycles(&self) -> u64 {
        self.driver.cycles()
    }
    fn violation_details(&self) -> Vec<(String, u64)> {
        self.bench
            .violations()
            .iter()
            .map(|v| (v.monitor.clone(), v.cycle))
            .collect()
    }
    fn parity_error(&mut self, bank: u32) -> bool {
        self.driver.parity_error(bank)
    }
}

/// An observation-only [`CycleModel`] view of one lane of a
/// [`LaRtlBatchDriver`] — lets per-model observers (coverage
/// collectors, scoreboards) sample a batched lane through the same
/// interface they use on the scalar levels.
///
/// The batched driver steps all 64 lanes together, so this view cannot
/// drive cycles itself: [`CycleModel::cycle`] panics. Use it only after
/// [`LaRtlBatchDriver::cycle`] for pin sampling.
pub struct BatchLaneModel<'a> {
    driver: &'a mut LaRtlBatchDriver,
    lane: usize,
}

impl<'a> BatchLaneModel<'a> {
    /// Borrows one lane of the batched driver as a passive model view.
    pub fn new(driver: &'a mut LaRtlBatchDriver, lane: usize) -> Self {
        BatchLaneModel { driver, lane }
    }
}

impl CycleModel for BatchLaneModel<'_> {
    fn level(&self) -> &'static str {
        "rtl"
    }
    fn cycle(&mut self, _ops: &[BankOp]) {
        unreachable!("BatchLaneModel is observation-only; drive LaRtlBatchDriver::cycle instead")
    }
    fn bank_output(&self, bank: u32) -> Option<u64> {
        self.driver.bank_output(self.lane, bank)
    }
    fn write_done(&self, bank: u32) -> bool {
        self.driver.write_done(self.lane, bank)
    }
    fn violation_count(&self) -> usize {
        0
    }
    fn cycles(&self) -> u64 {
        self.driver.cycles()
    }
    fn parity_error(&mut self, bank: u32) -> bool {
        self.driver.parity_error(self.lane, bank)
    }
}

/// A cross-level disagreement found by [`co_execute`].
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Cycle index at which the levels disagreed (0-based).
    pub cycle: u64,
    /// The bank whose pins disagreed.
    pub bank: u32,
    /// The reference level (first model).
    pub reference: &'static str,
    /// The disagreeing level.
    pub level: &'static str,
    /// What disagreed, rendered.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {} bank {}: {} disagrees with {}: {}",
            self.cycle, self.bank, self.level, self.reference, self.detail
        )
    }
}

impl std::error::Error for Divergence {}

/// Co-executes several levels on the same stimulus, comparing the
/// sampled pins after every cycle; the first model is the reference.
///
/// Returns the first [`Divergence`], or `Ok(())` when all levels agree
/// on every cycle — the generic form of the paper's conformance test
/// (and, run against a deliberately faulted design, of the scoreboard
/// that exposes injected bugs).
///
/// # Errors
///
/// Returns the first cross-level disagreement in bank output or
/// write-done state.
pub fn co_execute<W: Workload + ?Sized>(
    banks: u32,
    models: &mut [&mut dyn CycleModel],
    workload: &mut W,
    cycles: u64,
) -> Result<(), Divergence> {
    co_execute_observed(banks, models, workload, cycles, &mut [])
}

/// [`co_execute`] with passive per-model observers attached: after each
/// cycle, `observers[i]` (when present) samples `models[i]`, then the
/// levels are compared as usual. Pass fewer observers than models (or
/// none) to observe a prefix only — coverage collection typically
/// attaches one observer per level to score them all on one stimulus.
///
/// # Errors
///
/// Returns the first cross-level disagreement in bank output or
/// write-done state.
pub fn co_execute_observed<W: Workload + ?Sized>(
    banks: u32,
    models: &mut [&mut dyn CycleModel],
    workload: &mut W,
    cycles: u64,
    observers: &mut [&mut dyn CycleObserver],
) -> Result<(), Divergence> {
    for cycle in 0..cycles {
        let ops = workload.next_cycle();
        for m in models.iter_mut() {
            m.cycle(&ops);
        }
        for (obs, m) in observers.iter_mut().zip(models.iter_mut()) {
            obs.observe(&ops, &mut **m);
        }
        let (reference, rest) = models.split_first().expect("at least one model");
        for bank in 0..banks {
            let want_out = reference.bank_output(bank);
            let want_done = reference.write_done(bank);
            for m in rest.iter() {
                if m.bank_output(bank) != want_out {
                    return Err(Divergence {
                        cycle,
                        bank,
                        reference: reference.level(),
                        level: m.level(),
                        detail: format!(
                            "output {:?} vs {:?}",
                            m.bank_output(bank),
                            want_out
                        ),
                    });
                }
                if m.write_done(bank) != want_done {
                    return Err(Divergence {
                        cycle,
                        bank,
                        reference: reference.level(),
                        level: m.level(),
                        detail: format!(
                            "write_done {} vs {}",
                            m.write_done(bank),
                            want_done
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}
