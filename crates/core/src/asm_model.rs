//! The ASM-level LA-1 model.
//!
//! The paper maps the UML classes (WritePort, ReadPort, SramMemory and
//! the embedded *light Verilog-like simulator*, Fig. 4) to an ASM model
//! whose rules carry `require` preconditions, and model-checks PSL
//! properties during the AsmL tool's bounded exploration. This module
//! rebuilds that model on `la1-asm`:
//!
//! * `SimManager_Init` reproduces Fig. 4: it requires
//!   `system_flag = STARTED ∧ sim_status = INIT`, raises `m_k`, lowers
//!   `m_ks`, nondeterministically picks the per-port depth flags
//!   (`any rec in {true, false}`), clears the SRAM depth flag and moves
//!   to `CHECKING_PROP`;
//! * each `tick_*` rule advances one full clock cycle (both edges
//!   folded): the read pipeline shifts (latency
//!   [`crate::spec::READ_LATENCY`] cycles), pending writes commit, and
//!   the chosen stimulus (none / read / write / concurrent read+write —
//!   a headline LA-1 feature) is accepted at the cycle's rising edge.
//!   Rule parameters range over the AsmL-style finite domains in
//!   [`crate::spec::LaConfig`];
//! * scaling from 1 bank to N banks is "just a matter of object
//!   instantiation": [`LaAsmModel::new`] loops bank construction.

use crate::cycle_model::CycleModel;
use crate::properties::cycle_properties;
use crate::spec::{BankOp, LaConfig};
use la1_asm::{
    AsmState, ExploreConfig, ExploreResult, Explorer, Machine, MachineBuilder, StepSystem, Value,
    VarId,
};
use std::sync::Arc;

/// Variable handles for one bank.
#[derive(Debug, Clone, Copy)]
struct BankVars {
    rv1: VarId,
    ra1: VarId,
    rv2: VarId,
    ra2: VarId,
    dv: VarId,
    out: VarId,
    wv: VarId,
    wa: VarId,
    wd: VarId,
    wdone: VarId,
    /// Fig. 4's nondeterministic depth flags
    wp_depth: VarId,
    rp_depth: VarId,
}

/// Shared model parameters captured by rule closures.
struct Params {
    banks: Vec<BankVars>,
    /// `mem[b][w]`
    mem: Vec<Vec<VarId>>,
    sim_status: VarId,
    addr_domain: Vec<u64>,
    data_domain: Vec<u64>,
    word_mask: u64,
}

impl Params {
    /// The update set of one full-cycle tick with the given stimulus.
    fn tick_updates(
        &self,
        s: &AsmState,
        read: Option<(usize, u64)>,
        write: Option<(usize, u64, u64)>,
    ) -> Vec<(VarId, Value)> {
        let mut up = Vec::new();
        for (b, v) in self.banks.iter().enumerate() {
            // pipeline shift: stage 2 -> output
            let rv2 = s.bool(v.rv2);
            up.push((v.dv, Value::Bool(rv2)));
            let out = if rv2 {
                let a = s.int(v.ra2) as usize;
                s.int(self.mem[b][a])
            } else {
                0
            };
            up.push((v.out, Value::Int(out)));
            // stage 1 -> stage 2
            up.push((v.rv2, s.get(v.rv1).clone()));
            up.push((v.ra2, s.get(v.ra1).clone()));
            // new read accepted at the rising edge
            let rd = read.filter(|&(rb, _)| rb == b);
            up.push((v.rv1, Value::Bool(rd.is_some())));
            up.push((v.ra1, Value::Int(rd.map(|(_, a)| a as i64).unwrap_or(0))));
            // pending write commits at this cycle's rising edge
            let wv = s.bool(v.wv);
            up.push((v.wdone, Value::Bool(wv)));
            if wv {
                let a = s.int(v.wa) as usize;
                up.push((self.mem[b][a], s.get(v.wd).clone()));
            }
            // new write accepted (data completes on the falling edge;
            // folded into the cycle-level tick)
            let wr = write.filter(|&(wb, _, _)| wb == b);
            up.push((v.wv, Value::Bool(wr.is_some())));
            up.push((v.wa, Value::Int(wr.map(|(_, a, _)| a as i64).unwrap_or(0))));
            up.push((
                v.wd,
                Value::Int(wr.map(|(_, _, d)| (d & self.word_mask) as i64).unwrap_or(0)),
            ));
            // the init-phase depth flags are consumed by the first tick
            up.push((v.wp_depth, Value::Bool(false)));
            up.push((v.rp_depth, Value::Bool(false)));
        }
        up
    }
}

/// The LA-1 interface modeled as an Abstract State Machine.
///
/// ```
/// use la1_core::{asm_model::LaAsmModel, spec::LaConfig};
/// use la1_asm::ExploreConfig;
///
/// let model = LaAsmModel::new(&LaConfig::mc_small(1));
/// let result = model.model_check(ExploreConfig::default());
/// assert!(result.all_pass(), "{:?}", result.reports);
/// ```
pub struct LaAsmModel {
    machine: Machine,
    params: Arc<Params>,
    config: LaConfig,
    /// current state for the [`StepSystem`] interface
    state: AsmState,
    initialized: bool,
    /// full-cycle ticks executed through the step interfaces
    cycles: u64,
}

impl std::fmt::Debug for LaAsmModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaAsmModel")
            .field("banks", &self.config.banks)
            .field("vars", &self.machine.var_names().len())
            .finish()
    }
}

impl LaAsmModel {
    /// Builds the ASM model for `config`.
    ///
    /// # Panics
    ///
    /// Panics if an address in `config.mc_addr_domain` exceeds
    /// `config.words_per_bank`.
    pub fn new(config: &LaConfig) -> Self {
        assert!(
            !config.is_burst(),
            "the ASM level models the base LA-1 (burst 1); the LA-1B burst \
             extension exists at the SystemC and RTL levels"
        );
        for &a in &config.mc_addr_domain {
            assert!(
                a < config.words_per_bank as u64,
                "mc address {a} outside the bank"
            );
        }
        let mut b = MachineBuilder::new();
        let sim_status = b.var("sim_status", Value::Sym("INIT"));
        let m_k = b.var("m_k", Value::Bool(false));
        let m_ks = b.var("m_ks", Value::Bool(true));
        let mut banks = Vec::new();
        let mut mem = Vec::new();
        // "upgrade the design from 1 bank to 4 banks ... by just a
        // matter of object instantiation"
        for bank in 0..config.banks {
            let v = BankVars {
                rv1: b.var(format!("rv1_{bank}"), Value::Bool(false)),
                ra1: b.var(format!("ra1_{bank}"), Value::Int(0)),
                rv2: b.var(format!("rv2_{bank}"), Value::Bool(false)),
                ra2: b.var(format!("ra2_{bank}"), Value::Int(0)),
                dv: b.var(format!("dv_{bank}"), Value::Bool(false)),
                out: b.var(format!("out_{bank}"), Value::Int(0)),
                wv: b.var(format!("wv_{bank}"), Value::Bool(false)),
                wa: b.var(format!("wa_{bank}"), Value::Int(0)),
                wd: b.var(format!("wd_{bank}"), Value::Int(0)),
                wdone: b.var(format!("wdone_{bank}"), Value::Bool(false)),
                wp_depth: b.var(format!("wp_depth_{bank}"), Value::Bool(false)),
                rp_depth: b.var(format!("rp_depth_{bank}"), Value::Bool(false)),
            };
            // the full bank is modeled; exploration only touches the
            // configured address domain, so untouched words cost nothing
            let words: Vec<VarId> = (0..config.words_per_bank)
                .map(|w| b.var(format!("mem_{bank}_{w}"), Value::Int(0)))
                .collect();
            banks.push(v);
            mem.push(words);
        }
        let word_mask = if config.word_width >= 64 {
            u64::MAX
        } else {
            (1u64 << config.word_width) - 1
        };
        let params = Arc::new(Params {
            banks: banks.clone(),
            mem,
            sim_status,
            addr_domain: config.mc_addr_domain.clone(),
            data_domain: config.mc_data_domain.iter().map(|&d| d & word_mask).collect(),
            word_mask,
        });

        // --- SimManager_Init (Fig. 4) ---------------------------------
        {
            let p = Arc::clone(&params);
            b.rule(
                "SimManager_Init",
                move |s| s.sym(p.sim_status) == "INIT",
                {
                    let p = Arc::clone(&params);
                    move |_s| {
                        // enumerate `any rec in {true,false}` per port
                        let nb = p.banks.len();
                        let combos = 1u32 << (2 * nb as u32);
                        (0..combos)
                            .map(|c| {
                                let mut up = vec![
                                    (p.sim_status, Value::Sym("CHECKING_PROP")),
                                    (m_k, Value::Bool(true)),
                                    (m_ks, Value::Bool(false)),
                                ];
                                for (i, v) in p.banks.iter().enumerate() {
                                    up.push((
                                        v.wp_depth,
                                        Value::Bool(c >> (2 * i) & 1 == 1),
                                    ));
                                    up.push((
                                        v.rp_depth,
                                        Value::Bool(c >> (2 * i + 1) & 1 == 1),
                                    ));
                                }
                                up
                            })
                            .collect()
                    }
                },
            );
        }

        // --- tick rules ------------------------------------------------
        let running = {
            let p = Arc::clone(&params);
            move |s: &AsmState| s.sym(p.sim_status) == "CHECKING_PROP"
        };
        {
            let p = Arc::clone(&params);
            b.rule("tick_idle", running.clone(), move |s| {
                vec![p.tick_updates(s, None, None)]
            });
        }
        {
            let p = Arc::clone(&params);
            b.rule("tick_read", running.clone(), move |s| {
                let mut sets = Vec::new();
                for bank in 0..p.banks.len() {
                    for &a in &p.addr_domain {
                        sets.push(p.tick_updates(s, Some((bank, a)), None));
                    }
                }
                sets
            });
        }
        {
            let p = Arc::clone(&params);
            b.rule("tick_write", running.clone(), move |s| {
                let mut sets = Vec::new();
                for bank in 0..p.banks.len() {
                    for &a in &p.addr_domain {
                        for &d in &p.data_domain {
                            sets.push(p.tick_updates(s, None, Some((bank, a, d))));
                        }
                    }
                }
                sets
            });
        }
        {
            let p = Arc::clone(&params);
            b.rule("tick_read_write", running, move |s| {
                // concurrent read and write (same or different bank)
                let mut sets = Vec::new();
                for rb in 0..p.banks.len() {
                    for &ra in &p.addr_domain {
                        for wb in 0..p.banks.len() {
                            for &wa in &p.addr_domain {
                                for &d in &p.data_domain {
                                    sets.push(p.tick_updates(
                                        s,
                                        Some((rb, ra)),
                                        Some((wb, wa, d)),
                                    ));
                                }
                            }
                        }
                    }
                }
                sets
            });
        }

        // --- predicates for the PSL properties --------------------------
        for (bank, v) in banks.iter().copied().enumerate() {
            b.predicate(format!("rd{bank}"), move |s| s.bool(v.rv1));
            b.predicate(format!("wr{bank}"), move |s| s.bool(v.wv));
            b.predicate(format!("dv{bank}"), move |s| s.bool(v.dv));
            b.predicate(format!("wdone{bank}"), move |s| s.bool(v.wdone));
            // parity is abstracted away at the ASM level: the data path
            // carries whole words, so the parity checker cannot fire
            b.predicate(format!("perr{bank}"), |_| false);
        }

        let machine = b.build();
        let state = machine.initial_state();
        LaAsmModel {
            machine,
            params,
            config: config.clone(),
            state,
            initialized: false,
            cycles: 0,
        }
    }

    /// The underlying ASM machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The configuration the model was built for.
    pub fn config(&self) -> &LaConfig {
        &self.config
    }

    /// The paper's property suite for this bank count.
    pub fn properties(&self) -> Vec<la1_psl::Directive> {
        cycle_properties(self.config.banks)
    }

    /// Explores the model with the interface properties attached —
    /// the Table 1 experiment.
    pub fn model_check(&self, explore: ExploreConfig) -> ExploreResult {
        let dirs = self.properties();
        Explorer::new(&self.machine, explore)
            .with_directives(&dirs)
            .run()
    }

    /// Explores without properties (raw FSM generation).
    pub fn explore(&self, explore: ExploreConfig) -> ExploreResult {
        Explorer::new(&self.machine, explore).run()
    }

    /// Captures the model's dynamic state: every ASM location's value
    /// (in declaration order) plus the step-interface bookkeeping.
    pub fn snapshot_state(&self) -> AsmSnap {
        let values = self
            .machine
            .var_names()
            .iter()
            .map(|n| {
                let var = self.machine.var(n).expect("declared variable resolves");
                self.state.get(var).clone()
            })
            .collect();
        AsmSnap {
            values,
            initialized: self.initialized,
            cycles: self.cycles,
        }
    }

    /// Installs a snapshot taken from a model built for the same
    /// configuration (same variable declaration order).
    ///
    /// # Errors
    ///
    /// Fails without modifying the model if the location count differs.
    pub fn restore_state(&mut self, snap: &AsmSnap) -> Result<(), String> {
        if snap.values.len() != self.machine.var_names().len() {
            return Err(format!(
                "snapshot has {} locations, model has {}",
                snap.values.len(),
                self.machine.var_names().len()
            ));
        }
        for (name, value) in self.machine.var_names().iter().zip(&snap.values) {
            let var = self.machine.var(name).expect("declared variable resolves");
            self.state.set(var, value.clone());
        }
        self.initialized = snap.initialized;
        self.cycles = snap.cycles;
        Ok(())
    }

    fn apply_tick(
        &mut self,
        read: Option<(usize, u64)>,
        write: Option<(usize, u64, u64)>,
    ) -> bool {
        if !self.initialized {
            return false;
        }
        // validate against domains? the StepSystem accepts any in-range
        // address/data (levels must agree on acceptance)
        if let Some((b, a)) = read {
            if b >= self.params.banks.len() || a >= self.params.mem[b].len() as u64 {
                return false;
            }
        }
        if let Some((b, a, _)) = write {
            if b >= self.params.banks.len() || a >= self.params.mem[b].len() as u64 {
                return false;
            }
        }
        let updates = self.params.tick_updates(&self.state, read, write);
        for (var, value) in updates {
            self.state.set(var, value);
        }
        self.cycles += 1;
        true
    }
}

/// A plain-data snapshot of a [`LaAsmModel`]: one [`Value`] per ASM
/// location in declaration order, plus the host bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmSnap {
    /// Location values, in [`Machine::var_names`] order.
    pub values: Vec<Value>,
    /// Whether the deterministic init tick has run.
    pub initialized: bool,
    /// Completed full-cycle ticks.
    pub cycles: u64,
}

impl CycleModel for LaAsmModel {
    fn level(&self) -> &'static str {
        "asm"
    }

    /// Drives one full-cycle tick of the light simulator.
    ///
    /// The ASM level abstracts byte control (the data path carries whole
    /// words), so writes must use the full byte-enable mask.
    fn cycle(&mut self, ops: &[BankOp]) {
        if !self.initialized {
            // deterministic init, as in the StepSystem co-execution
            self.state
                .set(self.params.sim_status, Value::Sym("CHECKING_PROP"));
            self.initialized = true;
        }
        let full_be = (1u32 << self.config.byte_enables()) - 1;
        let mut read = None;
        let mut write = None;
        for op in ops {
            match *op {
                BankOp::Read { bank, addr } => {
                    assert!(read.is_none(), "single address bus: one read per cycle");
                    read = Some((bank as usize, addr));
                }
                BankOp::Write {
                    bank,
                    addr,
                    data,
                    byte_en,
                } => {
                    assert!(write.is_none(), "single address bus: one write per cycle");
                    assert_eq!(
                        byte_en, full_be,
                        "the ASM level models full-word writes only"
                    );
                    write = Some((bank as usize, addr, data));
                }
            }
        }
        assert!(
            self.apply_tick(read, write),
            "bank or address out of range for the ASM model"
        );
    }

    fn bank_output(&self, bank: u32) -> Option<u64> {
        let v = &self.params.banks[bank as usize];
        if self.state.bool(v.dv) {
            Some(self.state.int(v.out) as u64)
        } else {
            None
        }
    }

    fn write_done(&self, bank: u32) -> bool {
        self.state.bool(self.params.banks[bank as usize].wdone)
    }

    /// The light simulator carries no attached monitors; properties are
    /// checked during exploration instead.
    fn violation_count(&self) -> usize {
        0
    }

    fn cycles(&self) -> u64 {
        self.cycles
    }
}

impl StepSystem for LaAsmModel {
    fn reset(&mut self) {
        self.state = self.machine.initial_state();
        self.initialized = false;
        self.cycles = 0;
    }

    fn enabled_actions(&self) -> Vec<String> {
        if self.initialized {
            vec!["tick".to_string(), "read".to_string(), "write".to_string()]
        } else {
            vec!["init".to_string()]
        }
    }

    fn apply(&mut self, action: &str) -> bool {
        let parts: Vec<&str> = action.split_whitespace().collect();
        match parts.as_slice() {
            ["init"] => {
                if self.initialized {
                    return false;
                }
                // deterministic init for co-execution: depth flags false
                self.state
                    .set(self.params.sim_status, Value::Sym("CHECKING_PROP"));
                self.initialized = true;
                true
            }
            ["tick"] => self.apply_tick(None, None),
            ["read", b, a] => {
                let (Ok(b), Ok(a)) = (b.parse(), a.parse()) else {
                    return false;
                };
                self.apply_tick(Some((b, a)), None)
            }
            ["write", b, a, d] => {
                let (Ok(b), Ok(a), Ok(d)) = (b.parse(), a.parse(), d.parse()) else {
                    return false;
                };
                self.apply_tick(None, Some((b, a, d)))
            }
            ["rw", rb, ra, wb, wa, d] => {
                let (Ok(rb), Ok(ra), Ok(wb), Ok(wa), Ok(d)) =
                    (rb.parse(), ra.parse(), wb.parse(), wa.parse(), d.parse())
                else {
                    return false;
                };
                self.apply_tick(Some((rb, ra)), Some((wb, wa, d)))
            }
            _ => false,
        }
    }

    fn observe(&self) -> Vec<(String, Value)> {
        let mut obs = Vec::new();
        for (bank, v) in self.params.banks.iter().enumerate() {
            obs.push((format!("dv{bank}"), self.state.get(v.dv).clone()));
            obs.push((format!("out{bank}"), self.state.get(v.out).clone()));
            obs.push((format!("wdone{bank}"), self.state.get(v.wdone).clone()));
        }
        obs
    }
}
