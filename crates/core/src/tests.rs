//! Unit and integration tests for the LA-1 core: every level must obey
//! the same protocol, and the verification machinery must both pass on
//! the healthy design and catch injected faults.

use crate::asm_model::LaAsmModel;
use crate::cycle_model::{co_execute, CycleModel, CycleObserver, RtlWithOvl};
use crate::harness::{attach_la1_ovl, run_rtl_ovl, run_systemc_abv, AbvRunStats};
use crate::properties::{cycle_properties, rtl_properties, rtl_read_mode_property};
use crate::refine::{conformance_stimulus, run_flow};
use crate::rtl_model::{LaRtl, LaRtlDriver};
use crate::sc_model::LaSystemC;
use crate::spec::*;
use crate::uml::*;
use crate::workloads::{PacketLookup, RandomMix, ReadBurst, Workload};
use la1_asm::{conformance_check, CheckOutcome, ExploreConfig, StepSystem};
use la1_ovl::OvlBench;
use la1_smc::{ModelChecker, SmcConfig, SmcOutcome};

fn small_cfg(banks: u32) -> LaConfig {
    LaConfig {
        banks,
        words_per_bank: 4,
        word_width: 16,
        mc_addr_domain: vec![0, 1],
        mc_data_domain: vec![0, 0x5A5A],
        burst_len: 1,
    }
}

// ---- spec -------------------------------------------------------------------

#[test]
fn spec_halves_and_masks() {
    let cfg = LaConfig::new(1);
    assert_eq!(cfg.half_width(), 16);
    assert_eq!(cfg.low_half(0xAAAA_BBBB), 0xBBBB);
    assert_eq!(cfg.high_half(0xAAAA_BBBB), 0xAAAA);
    assert_eq!(cfg.mask_word(0xFFFF_FFFF_FFFF), 0xFFFF_FFFF);
    assert_eq!(cfg.byte_enables(), 4);
    assert_eq!(cfg.bit_mask_of(0b0011), 0x0000_FFFF);
    assert_eq!(cfg.bit_mask_of(0b1000), 0xFF00_0000);
}

#[test]
fn spec_even_parity() {
    assert!(!even_parity(0, 8));
    assert!(even_parity(1, 8));
    assert!(!even_parity(0b11, 8));
    // per-byte parity of a 16-bit half: low byte 0x03 (2 ones -> 0),
    // high byte 0x01 (1 one -> 1)
    let p = byte_parity(0x0103, 16);
    assert_eq!(p, 0b10);
}

#[test]
fn spec_pin_inventory_matches_figure1() {
    let cfg = LaConfig::new(4);
    let pins = cfg.pins();
    let names: Vec<&str> = pins.iter().map(|p| p.name.as_str()).collect();
    assert!(names.contains(&"K"));
    assert!(names.contains(&"K#"));
    assert!(names.contains(&"SA"));
    assert!(names.contains(&"R0#"));
    assert!(names.contains(&"W3#"));
    let d = pins.iter().find(|p| p.name == "D").unwrap();
    assert_eq!(d.width, DATA_PINS); // the 18-pin DDR path
    let q = pins.iter().find(|p| p.name == "Q").unwrap();
    assert_eq!(q.width, 18);
    assert_eq!(q.dir, PinDir::SlaveOut);
}

#[test]
fn spec_bank_bits() {
    assert_eq!(bank_bits(1), 0);
    assert_eq!(bank_bits(2), 1);
    assert_eq!(bank_bits(4), 2);
    assert_eq!(bank_bits(8), 3);
}

// ---- uml --------------------------------------------------------------------

#[test]
fn uml_renders() {
    let cd = la1_class_diagram();
    let txt = cd.render();
    for c in ["WritePort", "ReadPort", "SramMemory", "SimManager"] {
        assert!(txt.contains(c), "{txt}");
    }
    let sd = read_mode_sequence();
    let txt = sd.render();
    assert!(txt.contains("OnReadRequest[0]()@K"));
    assert!(txt.contains("OnReadRequest[2]()@K#"));
}

#[test]
fn uml_sequence_check_detects_deviation() {
    let sd = read_mode_sequence();
    let mut trace: Vec<ObservedMessage> = sd
        .messages
        .iter()
        .map(|m| ObservedMessage {
            from: m.from.to_string(),
            to: m.to.to_string(),
            method: m.method.to_string(),
            cycle: m.cycle,
            clock: m.clock,
        })
        .collect();
    assert!(sd.check(&trace).is_ok());
    trace[1].cycle = 3; // SRAM access too late
    let err = sd.check(&trace).unwrap_err();
    assert_eq!(err.at, 1);
}

// ---- SystemC model ------------------------------------------------------------

#[test]
fn sc_read_returns_written_word() {
    let cfg = LaConfig::new(1);
    let mut la1 = LaSystemC::new(&cfg);
    la1.cycle(&[BankOp::write(0, 5, 0xDEAD_BEEF, 0b1111)]);
    la1.cycle(&[BankOp::read(0, 5)]);
    la1.cycle(&[]);
    la1.cycle(&[]);
    assert_eq!(la1.bank_output(0), Some(0xDEAD_BEEF));
    assert!(!la1.parity_error(0));
}

#[test]
fn sc_read_latency_is_two_cycles() {
    let cfg = LaConfig::new(1);
    let mut la1 = LaSystemC::new(&cfg);
    la1.cycle(&[BankOp::write(0, 1, 0x1234_5678, 0b1111)]);
    la1.cycle(&[BankOp::read(0, 1)]); // issued cycle 1
    assert_eq!(la1.bank_output(0), None);
    la1.cycle(&[]); // cycle 2
    assert_eq!(la1.bank_output(0), None);
    la1.cycle(&[]); // cycle 3: dv for the read of cycle 1
    assert_eq!(la1.bank_output(0), Some(0x1234_5678));
    la1.cycle(&[]);
    assert_eq!(la1.bank_output(0), None, "dv is a single-cycle pulse");
}

#[test]
fn sc_byte_write_control() {
    let cfg = LaConfig::new(1);
    let mut la1 = LaSystemC::new(&cfg);
    la1.cycle(&[BankOp::write(0, 2, 0xFFFF_FFFF, 0b1111)]);
    la1.cycle(&[]); // allow the commit
    la1.cycle(&[BankOp::write(0, 2, 0x0000_0000, 0b0001)]); // clear byte 0 only
    la1.cycle(&[BankOp::read(0, 2)]);
    la1.cycle(&[]);
    la1.cycle(&[]);
    assert_eq!(la1.bank_output(0), Some(0xFFFF_FF00));
}

#[test]
fn sc_concurrent_read_write_same_bank() {
    // a headline LA-1 feature: read and write in the same cycle
    let cfg = LaConfig::new(1);
    let mut la1 = LaSystemC::new(&cfg);
    la1.cycle(&[BankOp::write(0, 0, 0xAAAA_AAAA, 0b1111)]);
    la1.cycle(&[
        BankOp::read(0, 0),
        BankOp::write(0, 0, 0x5555_5555, 0b1111),
    ]);
    la1.cycle(&[BankOp::read(0, 0)]);
    la1.cycle(&[]);
    // the cycle-1 read observes the *concurrent* cycle-1 write: the
    // single-cycle write commit lands before the two-cycle read pipeline
    // samples the array (all three levels share this ordering)
    assert_eq!(la1.bank_output(0), Some(0x5555_5555));
    la1.cycle(&[]);
    // the cycle-2 read also observes it
    assert_eq!(la1.bank_output(0), Some(0x5555_5555));
}

#[test]
fn sc_monitors_pass_on_healthy_design() {
    let cfg = LaConfig::new(2);
    let mut la1 = LaSystemC::new(&cfg);
    la1.attach_monitors(&cycle_properties(2));
    let mut w = RandomMix::new(&cfg, 11, 0.5, 0.4);
    for _ in 0..300 {
        la1.cycle(&w.next_cycle());
    }
    assert!(la1.violations().is_empty(), "{:?}", la1.violations());
}

#[test]
fn sc_monitors_catch_parity_fault() {
    let cfg = LaConfig::new(1);
    let mut la1 = LaSystemC::new(&cfg);
    la1.attach_monitors(&cycle_properties(1));
    la1.inject_parity_fault(0);
    la1.cycle(&[BankOp::write(0, 0, 0x0123_4567, 0b1111)]);
    la1.cycle(&[BankOp::read(0, 0)]);
    la1.cycle(&[]);
    la1.cycle(&[]);
    la1.cycle(&[]);
    assert!(
        la1.violations().iter().any(|v| v.property == "parity_0"),
        "{:?}",
        la1.violations()
    );
}

#[test]
fn sc_trace_matches_figure3() {
    let cfg = LaConfig::new(1);
    let mut la1 = LaSystemC::new(&cfg);
    la1.enable_trace();
    la1.cycle(&[BankOp::read(0, 0)]);
    la1.cycle(&[]);
    la1.cycle(&[]);
    let seq = read_mode_sequence();
    seq.check(&la1.trace()).expect("Fig. 3 trace");
}

// ---- ASM model -----------------------------------------------------------------

#[test]
fn asm_model_checks_clean_on_one_bank() {
    let model = LaAsmModel::new(&small_cfg(1));
    let r = model.model_check(ExploreConfig {
        max_states: 30_000,
        ..ExploreConfig::default()
    });
    assert!(r.all_pass(), "{:?}", r.reports);
    // cover of concurrent read+write must be reachable
    let cover = r
        .reports
        .iter()
        .find(|p| p.name == "concurrent_rw_0")
        .unwrap();
    assert!(matches!(cover.outcome, CheckOutcome::Covered));
}

#[test]
fn asm_step_system_read_latency() {
    let mut m = LaAsmModel::new(&small_cfg(1));
    assert!(m.apply("init"));
    assert!(m.apply("write 0 1 90"));
    assert!(m.apply("tick"));
    assert!(m.apply("read 0 1"));
    assert!(m.apply("tick"));
    let obs = m.observe();
    assert_eq!(
        obs.iter().find(|(n, _)| n == "dv0").unwrap().1,
        la1_asm::Value::Bool(false)
    );
    assert!(m.apply("tick"));
    let obs = m.observe();
    assert_eq!(
        obs.iter().find(|(n, _)| n == "dv0").unwrap().1,
        la1_asm::Value::Bool(true)
    );
    assert_eq!(
        obs.iter().find(|(n, _)| n == "out0").unwrap().1,
        la1_asm::Value::Int(90)
    );
}

#[test]
fn asm_rejects_out_of_range_actions() {
    let mut m = LaAsmModel::new(&small_cfg(1));
    assert!(m.apply("init"));
    assert!(!m.apply("read 5 0"));
    assert!(!m.apply("read 0 99"));
    assert!(!m.apply("bogus"));
    assert!(!m.apply("init"), "double init refused");
}

#[test]
fn asm_violation_produces_counterexample() {
    // claim data valid never rises: falsified by any read
    let model = LaAsmModel::new(&small_cfg(1));
    let bad = la1_psl::parse_directive("assert never_dv : always !dv0").unwrap();
    let r = la1_asm::Explorer::new(model.machine(), ExploreConfig::default())
        .with_directives(&[bad])
        .run();
    let cex = r.first_counterexample().expect("counterexample");
    assert!(cex.path.len() >= 3, "read + 2 latency cycles");
}

// ---- conformance ASM <-> SystemC --------------------------------------------------

#[test]
fn asm_systemc_conformance_small() {
    for banks in [1, 2] {
        let cfg = small_cfg(banks);
        let mut asm = LaAsmModel::new(&cfg);
        let mut sc = LaSystemC::new(&cfg);
        let stim = conformance_stimulus(&cfg, 99, 60);
        conformance_check(&mut asm, &mut sc, &stim)
            .unwrap_or_else(|e| panic!("{banks} banks: {e}"));
    }
}

// ---- RTL model --------------------------------------------------------------------

#[test]
fn rtl_read_returns_written_word() {
    let cfg = LaConfig::new(1);
    let rtl = LaRtl::build(&cfg, None);
    let mut drv = LaRtlDriver::new(&rtl);
    drv.cycle(&[BankOp::write(0, 5, 0xDEAD_BEEF, 0b1111)]);
    drv.cycle(&[BankOp::read(0, 5)]);
    drv.cycle(&[]);
    drv.cycle(&[]);
    assert_eq!(drv.bank_output(0), Some(0xDEAD_BEEF));
    assert!(!drv.parity_error(0));
}

#[test]
fn rtl_byte_write_control() {
    let cfg = LaConfig::new(1);
    let rtl = LaRtl::build(&cfg, None);
    let mut drv = LaRtlDriver::new(&rtl);
    drv.cycle(&[BankOp::write(0, 2, 0xFFFF_FFFF, 0b1111)]);
    drv.cycle(&[]);
    drv.cycle(&[BankOp::write(0, 2, 0, 0b0001)]);
    drv.cycle(&[BankOp::read(0, 2)]);
    drv.cycle(&[]);
    drv.cycle(&[]);
    assert_eq!(drv.bank_output(0), Some(0xFFFF_FF00));
}

#[test]
fn rtl_multibank_routing() {
    let cfg = LaConfig::new(4);
    let rtl = LaRtl::build(&cfg, None);
    let mut drv = LaRtlDriver::new(&rtl);
    for b in 0..4 {
        drv.cycle(&[BankOp::write(b, 1, 0x1000 + b as u64, 0b1111)]);
    }
    drv.cycle(&[]);
    let mut seen = Vec::new();
    for b in 0..4 {
        drv.cycle(&[BankOp::read(b, 1)]);
        drv.cycle(&[]);
        drv.cycle(&[]);
        seen.push(drv.bank_output(b));
    }
    assert_eq!(
        seen,
        vec![Some(0x1000), Some(0x1001), Some(0x1002), Some(0x1003)]
    );
}

#[test]
fn rtl_verilog_emission() {
    let cfg = LaConfig::new(2);
    let rtl = LaRtl::build(&cfg, None);
    let v = rtl.to_verilog();
    assert!(v.contains("module la1_2bank"));
    assert!(v.contains("always @(negedge k)"), "write address on K#");
    assert!(v.contains("'bz"), "tristate bank outputs");
    assert!(v.contains("mem_"), "per-bank SRAM arrays");
}

#[test]
fn rtl_smc_proves_read_mode_small() {
    let cfg = LaConfig::mc_small(1);
    let rtl = LaRtl::build(&cfg, None);
    let ts = rtl.extract();
    let r = ModelChecker::new(&ts, SmcConfig::default())
        .check(&rtl_read_mode_property())
        .unwrap();
    assert!(matches!(r.outcome, SmcOutcome::Proved), "{:?}", r.outcome);
}

#[test]
fn rtl_smc_proves_full_suite_small() {
    let cfg = LaConfig::mc_small(1);
    let rtl = LaRtl::build(&cfg, None);
    let ts = rtl.extract();
    let checker = ModelChecker::new(&ts, SmcConfig::default());
    for d in rtl_properties(1) {
        let r = checker.check(&d).unwrap();
        assert!(
            matches!(r.outcome, SmcOutcome::Proved),
            "{}: {:?}",
            d.name,
            r.outcome
        );
    }
}

#[test]
fn rtl_smc_catches_parity_fault() {
    let cfg = LaConfig::mc_small(1);
    let rtl = LaRtl::build(&cfg, Some(0));
    let ts = rtl.extract();
    let d = la1_psl::parse_directive("assert parity : always !perr_0").unwrap();
    let r = ModelChecker::new(&ts, SmcConfig::default())
        .check(&d)
        .unwrap();
    assert!(matches!(r.outcome, SmcOutcome::Violated(_)), "{:?}", r.outcome);
}

#[test]
fn rtl_ovl_clean_and_faulty() {
    let cfg = LaConfig::new(1);
    // healthy
    let mut w = RandomMix::new(&cfg, 3, 0.5, 0.4);
    let stats = run_rtl_ovl(&cfg, &mut w, 150);
    assert_eq!(stats.violations, 0);
    // parity-faulted design must fire the OVL parity monitor
    let mut faulty = RtlWithOvl::new(&LaRtl::build(&cfg, Some(0)));
    faulty.cycle(&[BankOp::write(0, 0, 0x0101_0101, 0b1111)]);
    for _ in 0..4 {
        faulty.cycle(&[BankOp::read(0, 0)]);
    }
    for _ in 0..3 {
        faulty.cycle(&[]);
    }
    assert!(faulty.violation_count() > 0);
    assert!(
        faulty
            .bench()
            .violations()
            .iter()
            .any(|v| v.monitor.contains("parity")),
        "{:?}",
        faulty.bench().violations()
    );
}

#[test]
fn time_per_cycle_handles_zero_cycles() {
    use std::time::Duration;
    // a run that simulated nothing has no meaningful per-cycle time;
    // dividing would panic
    let idle = AbvRunStats {
        cycles: 0,
        elapsed: Duration::from_millis(5),
        violations: 0,
    };
    assert_eq!(idle.time_per_cycle(), Duration::ZERO);
    let real = AbvRunStats {
        cycles: 4,
        elapsed: Duration::from_millis(8),
        violations: 0,
    };
    assert_eq!(real.time_per_cycle(), Duration::from_millis(2));
}

// ---- cross-level agreement ---------------------------------------------------------

#[test]
fn all_three_levels_agree_on_random_traffic() {
    let cfg = small_cfg(2);
    let mut asm = LaAsmModel::new(&cfg);
    let mut sc = LaSystemC::new(&cfg);
    let rtl = LaRtl::build(&cfg, None);
    let mut drv = LaRtlDriver::new(&rtl);

    // ASM abstracts byte enables: force full-word writes
    let mut w = RandomMix::new(&cfg, 77, 0.6, 0.5);
    let full_be = (1u32 << cfg.byte_enables()) - 1;
    let mut full_word_mix = move || {
        let mut ops = w.next_cycle();
        for op in &mut ops {
            if let BankOp::Write { byte_en, .. } = op {
                *byte_en = full_be;
            }
        }
        ops
    };
    co_execute(
        cfg.banks,
        &mut [&mut asm, &mut sc, &mut drv],
        &mut full_word_mix,
        120,
    )
    .expect("ASM, SystemC and RTL levels must agree");
    assert_eq!(CycleModel::cycles(&asm), 120);
    assert_eq!(CycleModel::cycles(&sc), 120);
    assert_eq!(CycleModel::cycles(&drv), 120);
}

/// Wraps a model and lies about one bank's sampled pins for exactly one
/// cycle — the minimal injected mismatch for divergence-report tests.
struct Corrupt {
    inner: Box<dyn CycleModel>,
    at_cycle: u64,
    bank: u32,
    flip_write_done: bool,
}

impl Corrupt {
    /// co_execute samples after stepping: while checking cycle `c` the
    /// inner model has completed `c + 1` cycles.
    fn active(&self) -> bool {
        self.inner.cycles() == self.at_cycle + 1
    }
}

impl CycleModel for Corrupt {
    fn level(&self) -> &'static str {
        self.inner.level()
    }
    fn cycle(&mut self, ops: &[BankOp]) {
        self.inner.cycle(ops);
    }
    fn bank_output(&self, bank: u32) -> Option<u64> {
        let out = self.inner.bank_output(bank);
        if !self.flip_write_done && self.active() && bank == self.bank {
            return Some(out.unwrap_or(0) ^ 1);
        }
        out
    }
    fn write_done(&self, bank: u32) -> bool {
        let done = self.inner.write_done(bank);
        if self.flip_write_done && self.active() && bank == self.bank {
            return !done;
        }
        done
    }
    fn violation_count(&self) -> usize {
        self.inner.violation_count()
    }
    fn cycles(&self) -> u64 {
        self.inner.cycles()
    }
}

fn make_model(cfg: &LaConfig, which: usize) -> Box<dyn CycleModel> {
    match which {
        0 => Box::new(LaAsmModel::new(cfg)),
        1 => Box::new(LaSystemC::new(cfg)),
        2 => Box::new(LaRtlDriver::new(&LaRtl::build(cfg, None))),
        _ => Box::new(RtlWithOvl::new(&LaRtl::build(cfg, None))),
    }
}

#[test]
fn co_execute_reports_cycle_bank_and_signal_for_every_model_pair() {
    let cfg = small_cfg(2);
    const AT: u64 = 7;
    const BANK: u32 = 1;
    let names = ["asm", "systemc", "rtl", "rtl+ovl"];
    for reference in 0..names.len() {
        for diverging in 0..names.len() {
            if reference == diverging {
                continue;
            }
            for flip_write_done in [false, true] {
                let mut golden = make_model(&cfg, reference);
                let mut corrupt = Corrupt {
                    inner: make_model(&cfg, diverging),
                    at_cycle: AT,
                    bank: BANK,
                    flip_write_done,
                };
                let mut idle = || Vec::<BankOp>::new();
                let err = co_execute(
                    cfg.banks,
                    &mut [golden.as_mut(), &mut corrupt],
                    &mut idle,
                    20,
                )
                .expect_err("the injected mismatch must be reported");
                assert_eq!(err.cycle, AT, "{err}");
                assert_eq!(err.bank, BANK, "{err}");
                assert_eq!(err.reference, names[reference], "{err}");
                assert_eq!(err.level, names[diverging], "{err}");
                let signal = if flip_write_done { "write_done" } else { "output" };
                assert!(err.detail.contains(signal), "{err}");
            }
        }
    }
}

// ---- flow + harness -----------------------------------------------------------------

#[test]
fn full_flow_passes_on_one_bank() {
    let cfg = LaConfig::mc_small(1);
    let report = run_flow(
        &cfg,
        ExploreConfig {
            max_states: 20_000,
            ..ExploreConfig::default()
        },
        SmcConfig::default(),
    );
    assert!(report.all_passed(), "{}", report.render());
    assert!(report.verilog.contains("module la1_1bank"));
}

#[test]
fn harness_systemc_abv_runs_clean() {
    let cfg = LaConfig::new(2);
    let mut w = PacketLookup::new(&cfg, 5, 0.7, 0.1, 16);
    let stats = run_systemc_abv(&cfg, &mut w, 200);
    assert_eq!(stats.cycles, 200);
    assert_eq!(stats.violations, 0);
    assert!(stats.time_per_cycle() > std::time::Duration::ZERO);
}

// ---- workloads ------------------------------------------------------------------------

#[test]
fn workloads_are_deterministic_per_seed() {
    let cfg = LaConfig::new(4);
    let collect = |seed| {
        let mut w = RandomMix::new(&cfg, seed, 0.5, 0.5);
        (0..50).flat_map(|_| w.next_cycle()).collect::<Vec<_>>()
    };
    assert_eq!(collect(1), collect(1));
    assert_ne!(collect(1), collect(2));
}

#[test]
fn workload_ops_within_bounds() {
    let cfg = LaConfig::new(3);
    let mut w = PacketLookup::new(&cfg, 9, 0.9, 0.4, 8);
    for _ in 0..200 {
        for op in w.next_cycle() {
            assert!(op.bank() < cfg.banks);
            match op {
                BankOp::Read { addr, .. } | BankOp::Write { addr, .. } => {
                    assert!(addr < cfg.words_per_bank as u64);
                }
            }
        }
    }
}

#[test]
fn read_burst_sweeps_all_addresses() {
    let cfg = small_cfg(2);
    let mut w = ReadBurst::new(&cfg);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..(2 * 4) {
        for op in w.next_cycle() {
            if let BankOp::Read { bank, addr } = op {
                seen.insert((bank, addr));
            }
        }
    }
    assert_eq!(seen.len(), 8);
}

// ---- property tests ----------------------------------------------------------------------

// ---- fault library ---------------------------------------------------------------

#[test]
fn fault_slow_read_caught_by_smc() {
    use crate::rtl_model::RtlFault;
    let cfg = LaConfig::mc_small(1);
    let rtl = LaRtl::build_with_faults(&cfg, &[RtlFault::SlowRead(0)]);
    let ts = rtl.extract();
    let r = ModelChecker::new(&ts, SmcConfig::default())
        .check(&rtl_read_mode_property())
        .unwrap();
    let SmcOutcome::Violated(trace) = &r.outcome else {
        panic!("latency bug must violate the read-mode property: {:?}", r.outcome);
    };
    assert!(trace.steps.len() >= 5, "request + latency steps");
}

#[test]
fn fault_dead_read_port_caught_by_ovl() {
    use crate::rtl_model::RtlFault;
    let cfg = LaConfig::new(1);
    let mut dead = RtlWithOvl::new(&LaRtl::build_with_faults(
        &cfg,
        &[RtlFault::DeadReadPort(0)],
    ));
    for _ in 0..6 {
        dead.cycle(&[BankOp::read(0, 0)]);
    }
    assert!(
        dead.bench()
            .violations()
            .iter()
            .any(|v| v.monitor.contains("read_latency")),
        "{:?}",
        dead.bench().violations()
    );
}

#[test]
fn fault_slow_read_diverges_from_golden_model() {
    use crate::rtl_model::RtlFault;
    let cfg = LaConfig::new(1);
    let rtl = LaRtl::build_with_faults(&cfg, &[RtlFault::SlowRead(0)]);
    let mut drv = LaRtlDriver::new(&rtl);
    let mut golden = LaSystemC::new(&cfg);
    let mut cycle = 0u64;
    let mut stimulus = move || {
        cycle += 1;
        if cycle == 2 {
            vec![BankOp::read(0, 0)]
        } else {
            vec![]
        }
    };
    let err = co_execute(1, &mut [&mut golden, &mut drv], &mut stimulus, 10)
        .expect_err("the scoreboard must expose the latency bug");
    assert_eq!(err.level, "rtl", "{err}");
}

#[test]
fn healthy_build_with_empty_fault_list_is_clean() {
    use crate::rtl_model::RtlFault;
    let cfg = LaConfig::new(1);
    let a = LaRtl::build_with_faults(&cfg, &[]);
    let b = LaRtl::build(&cfg, None);
    assert_eq!(a.to_verilog(), b.to_verilog());
    let _ = RtlFault::ParityBank(0); // the enum is part of the public API
}

// ---- LA-1B burst extension ---------------------------------------------------------

#[test]
fn burst_sc_returns_two_consecutive_words() {
    let cfg = LaConfig::la1b(1);
    let mut la1 = LaSystemC::new(&cfg);
    la1.cycle(&[BankOp::write(0, 10, 0x1111_1111, 0b1111)]);
    la1.cycle(&[BankOp::write(0, 11, 0x2222_2222, 0b1111)]);
    la1.cycle(&[BankOp::read(0, 10)]);
    la1.cycle(&[]);
    la1.cycle(&[]);
    assert_eq!(la1.bank_output(0), Some(0x1111_1111), "first beat");
    la1.cycle(&[]);
    assert_eq!(la1.bank_output(0), Some(0x2222_2222), "second beat");
    la1.cycle(&[]);
    assert_eq!(la1.bank_output(0), None, "burst over");
}

#[test]
fn burst_rtl_matches_sc() {
    let cfg = LaConfig::la1b(1);
    let mut sc = LaSystemC::new(&cfg);
    let rtl = LaRtl::build(&cfg, None);
    let mut drv = LaRtlDriver::new(&rtl);
    // preload some data through both, then random burst traffic
    let mut preload = 0u64;
    let mut w = crate::workloads::BurstLookup::new(&cfg, 404);
    let mut stimulus = move || {
        if preload < 8 {
            preload += 1;
            vec![BankOp::write(0, preload - 1, 0xFF + preload, 0b1111)]
        } else {
            w.next_cycle()
        }
    };
    co_execute(1, &mut [&mut sc, &mut drv], &mut stimulus, 88)
        .expect("burst SystemC and RTL must agree");
}

#[test]
fn burst_monitors_hold_and_catch_missing_beat() {
    let cfg = LaConfig::la1b(2);
    let mut la1 = LaSystemC::new(&cfg);
    la1.attach_default_monitors();
    let mut w = crate::workloads::BurstLookup::new(&cfg, 7);
    for _ in 0..200 {
        la1.cycle(&w.next_cycle());
    }
    assert!(la1.violations().is_empty(), "{:?}", la1.violations());

    // a non-burst device checked against the burst property set must
    // fail the second-beat property
    let plain = LaConfig::new(1);
    let mut wrong = LaSystemC::new(&plain);
    wrong.attach_monitors(&crate::properties::cycle_properties_for(&LaConfig::la1b(1)));
    wrong.cycle(&[BankOp::read(0, 0)]);
    for _ in 0..4 {
        wrong.cycle(&[]);
    }
    assert!(
        wrong
            .violations()
            .iter()
            .any(|v| v.property == "burst_second_beat_0"),
        "{:?}",
        wrong.violations()
    );
}

#[test]
fn burst_protocol_violation_panics() {
    let cfg = LaConfig::la1b(1);
    let mut la1 = LaSystemC::new(&cfg);
    la1.cycle(&[BankOp::read(0, 0)]);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        la1.cycle(&[BankOp::read(0, 2)]); // too soon: bus still busy
    }));
    assert!(result.is_err(), "back-to-back reads must be rejected");
}

#[test]
fn burst_rtl_ovl_clean() {
    let cfg = LaConfig::la1b(1);
    let mut w = crate::workloads::BurstLookup::new(&cfg, 11);
    let stats = run_rtl_ovl(&cfg, &mut w, 150);
    assert_eq!(stats.violations, 0);
    assert_eq!(stats.cycles, 150);
}

#[test]
fn burst_asm_level_rejected() {
    let result = std::panic::catch_unwind(|| LaAsmModel::new(&LaConfig::la1b(1)));
    assert!(result.is_err(), "ASM level is base LA-1 only");
}

#[test]
fn burst_throughput_beats_single_reads() {
    // the point of LA-1B: more words per address-bus slot
    let burst_cfg = LaConfig::la1b(1);
    let plain_cfg = LaConfig::new(1);
    let cycles = 300;

    let mut burst = LaSystemC::new(&burst_cfg);
    let mut wb = crate::workloads::BurstLookup::new(&burst_cfg, 5);
    let mut burst_words = 0u64;
    for _ in 0..cycles {
        burst.cycle(&wb.next_cycle());
        if burst.bank_output(0).is_some() {
            burst_words += 1;
        }
    }

    let mut plain = LaSystemC::new(&plain_cfg);
    let mut wp = crate::workloads::BurstLookup::new(&plain_cfg, 5);
    let mut plain_words = 0u64;
    let mut plain_reads = 0u64;
    let mut burst_reads = 0u64;
    for _ in 0..cycles {
        let ops = wp.next_cycle();
        plain_reads += ops.iter().filter(|o| o.is_read()).count() as u64;
        plain.cycle(&ops);
        if plain.bank_output(0).is_some() {
            plain_words += 1;
        }
    }
    let mut wb2 = crate::workloads::BurstLookup::new(&burst_cfg, 5);
    for _ in 0..cycles {
        burst_reads += wb2.next_cycle().iter().filter(|o| o.is_read()).count() as u64;
    }
    // same or more words delivered from roughly half the address slots
    assert!(burst_reads < plain_reads);
    assert!(
        burst_words as f64 >= plain_words as f64 * 0.95,
        "burst {burst_words} vs plain {plain_words}"
    );
}

// ---- compiled vs full settle: golden equivalence -----------------------------------

/// The activity-driven compiled schedule and the full Jacobi fixpoint
/// must produce bit-identical per-cycle pin traces and monitor verdicts
/// on the same stimulus — across bank counts and both interface
/// variants, including a faulted design so the monitors actually fire.
#[test]
fn golden_full_vs_activity_settle_equivalence() {
    use la1_rtl::SettleMode;
    for banks in [1u32, 2, 4] {
        for cfg in [LaConfig::new(banks), LaConfig::la1b(banks)] {
            // bank 0's parity generator is broken: every read of bank 0
            // must fire the parity monitors identically under both modes
            let rtl = LaRtl::build(&cfg, Some(0));
            let nets = rtl.nets().clone();
            let mut act = LaRtlDriver::new(&rtl);
            let mut full = LaRtlDriver::new(&rtl);
            assert_eq!(
                act.sim_mut().settle_mode(),
                SettleMode::ActivityDriven,
                "activity-driven settling is the default"
            );
            full.sim_mut().set_settle_mode(SettleMode::Full);
            let mut bench_act = OvlBench::new();
            attach_la1_ovl(&mut bench_act, &rtl);
            let mut bench_full = OvlBench::new();
            attach_la1_ovl(&mut bench_full, &rtl);

            let mut pins: Vec<_> = vec![nets.dq, nets.dq_par];
            pins.extend(&nets.dv);
            pins.extend(&nets.perr);
            pins.extend(&nets.wdone);

            let mut w = crate::workloads::BurstLookup::new(&cfg, 2004);
            for cycle in 0..100 {
                let ops = w.next_cycle();
                act.cycle_with(&ops, |s| {
                    bench_act.on_cycle(s);
                });
                full.cycle_with(&ops, |s| {
                    bench_full.on_cycle(s);
                });
                for &net in &pins {
                    let a = act.sim_mut().get(net).clone();
                    assert_eq!(
                        &a,
                        full.sim_mut().get(net),
                        "banks {banks} burst {} cycle {cycle}: pin trace diverged",
                        cfg.burst_len
                    );
                }
                for b in 0..banks {
                    assert_eq!(act.bank_output(b), full.bank_output(b));
                }
            }
            let verdicts = |bench: &OvlBench| -> Vec<(String, u64)> {
                bench
                    .violations()
                    .iter()
                    .map(|v| (v.monitor.clone(), v.cycle))
                    .collect()
            };
            assert_eq!(verdicts(&bench_act), verdicts(&bench_full));
            assert!(
                !bench_act.violations().is_empty(),
                "the injected parity fault must fire under both modes"
            );
        }
    }
}

// ---- waveform dump -----------------------------------------------------------------

#[test]
fn rtl_read_transaction_waveform() {
    use la1_rtl::VcdWriter;
    let cfg = LaConfig::new(1);
    let rtl = LaRtl::build(&cfg, None);
    let nets = rtl.nets().clone();
    let mut drv = LaRtlDriver::new(&rtl);
    // the driver owns the sim; sample through cycle_with
    let mut vcd = VcdWriter::new(rtl.netlist(), &[nets.k, nets.rd_sel, nets.dv[0], nets.dq]);
    drv.cycle_with(&[BankOp::write(0, 1, 0xABCD_1234, 0b1111)], |s| vcd.sample(s));
    drv.cycle_with(&[BankOp::read(0, 1)], |s| vcd.sample(s));
    drv.cycle_with(&[], |s| vcd.sample(s));
    drv.cycle_with(&[], |s| vcd.sample(s));
    let text = vcd.render();
    assert!(text.contains("$scope module la1_1bank $end"));
    assert!(text.contains("$var wire 16")); // the DDR dq bus
    assert!(vcd.num_changes() >= 2, "clock + dv/dq activity recorded");
    assert_eq!(drv.bank_output(0), Some(0xABCD_1234));
}

// ---- batched (PPSFP) driver equivalence -------------------------------------

/// Every lane of the batched RTL driver must match an independent
/// scalar driver run bit-for-bit: merged DDR outputs, write-done and
/// parity-error pins, and the OVL verdict stream sampled at rising `K`
/// — at 1/2/4 banks, LA-1 and LA-1B, healthy and parity-faulted, with
/// four-state X injection on a subset of lanes.
#[test]
fn batched_driver_matches_scalar_lanes() {
    use crate::cycle_model::BatchLaneModel;
    use crate::rtl_model::{LaRtlBatchDriver, RtlFault, XPin};
    use la1_rtl::LANES;

    let la1b_cfg = LaConfig {
        burst_len: 2,
        ..small_cfg(2)
    };
    let scenarios: Vec<(LaConfig, Vec<RtlFault>)> = vec![
        (small_cfg(1), vec![]),
        (small_cfg(2), vec![RtlFault::ParityBank(0)]),
        (small_cfg(4), vec![]),
        (la1b_cfg, vec![RtlFault::ParityBank(1)]),
    ];
    for (cfg, faults) in scenarios {
        let design = LaRtl::build_with_faults(&cfg, &faults);
        let mut batch = LaRtlBatchDriver::new(&design);
        let mut scalars: Vec<LaRtlDriver> =
            (0..LANES).map(|_| LaRtlDriver::new(&design)).collect();
        let attach = || {
            let mut b = OvlBench::new();
            attach_la1_ovl(&mut b, &design);
            b
        };
        let mut bench_b: Vec<OvlBench> = (0..LANES).map(|_| attach()).collect();
        let mut bench_s: Vec<OvlBench> = (0..LANES).map(|_| attach()).collect();
        let mut mixes: Vec<RandomMix> = (0..LANES)
            .map(|l| RandomMix::new(&cfg, 0xBEEF + l as u64, 0.6, 0.6))
            .collect();
        let x_pins = [XPin::WData, XPin::Addr, XPin::ReadSel, XPin::WriteSel];

        for cycle in 0..24u64 {
            let ops: Vec<Vec<BankOp>> = mixes.iter_mut().map(|m| m.next_cycle()).collect();
            if cycle == 9 {
                // X-inject a different pin on every fifth lane
                for lane in (0..LANES).step_by(5) {
                    let pin = x_pins[(lane / 5) % x_pins.len()];
                    batch.inject_x(lane, pin);
                    scalars[lane].inject_x(pin);
                }
            }
            let slices: Vec<&[BankOp]> = ops.iter().map(|v| v.as_slice()).collect();
            batch.cycle_with(&slices, |sim| {
                for (lane, bench) in bench_b.iter_mut().enumerate() {
                    bench.on_cycle(&mut sim.lane_probe(lane));
                }
            });
            for (lane, sc) in scalars.iter_mut().enumerate() {
                let bench = &mut bench_s[lane];
                sc.cycle_with(&ops[lane], |sim| {
                    bench.on_cycle(sim);
                });
            }
            for (lane, sc) in scalars.iter_mut().enumerate() {
                for b in 0..cfg.banks {
                    assert_eq!(
                        batch.bank_output(lane, b),
                        sc.bank_output(b),
                        "bank_output lane {lane} bank {b} cycle {cycle} ({}b)",
                        cfg.banks
                    );
                    assert_eq!(batch.write_done(lane, b), sc.write_done(b));
                    assert_eq!(batch.parity_error(lane, b), sc.parity_error(b));
                    let view = BatchLaneModel::new(&mut batch, lane);
                    assert_eq!(view.bank_output(b), sc.bank_output(b));
                }
            }
        }
        for lane in 0..LANES {
            let render = |b: &OvlBench| -> Vec<(String, u64, String)> {
                b.violations()
                    .iter()
                    .map(|v| (v.monitor.clone(), v.cycle, v.message.clone()))
                    .collect()
            };
            assert_eq!(
                render(&bench_b[lane]),
                render(&bench_s[lane]),
                "OVL verdicts diverged on lane {lane} ({} banks)",
                cfg.banks
            );
        }
    }
}

#[test]
fn uml_use_cases_cover_both_deployment_modes() {
    let cases = la1_use_cases();
    // the paper's two deployment modes: stand-alone IP + verification unit
    assert!(cases.iter().any(|c| c.name == "IntegrateAsIp"));
    assert!(cases.iter().any(|c| c.name == "ValidateDevice"));
    let txt = render_use_cases(&cases);
    assert!(txt.contains("NetworkProcessor"));
    assert!(txt.contains("verification unit"));
}

// ---- stimulus (transaction-level stack) ------------------------------------

use crate::harness::run_abv_observed;
use crate::stimulus::traffic::{contention, PacketStream, QdrStream, ZipfKeys};
use crate::stimulus::{
    stream_seed, Agent, Driver, ScriptSequence, SeqContext, SequenceItem, Sequencer,
    TransactionMonitor,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// A test sequencer replaying a flat item list (no per-cycle
/// structure — the driver's legality rules decide the packing).
struct ItemScript(VecDeque<SequenceItem>);

impl Sequencer for ItemScript {
    fn next_item(&mut self, _ctx: &SeqContext) -> SequenceItem {
        self.0.pop_front().unwrap_or(SequenceItem::Idle)
    }
}

fn burst_cfg(banks: u32) -> LaConfig {
    LaConfig {
        burst_len: 2,
        ..small_cfg(banks)
    }
}

#[test]
fn agent_randommix_matches_legacy_workload_stream() {
    // the Sequencer port of RandomMix, run through the Driver, must
    // reproduce the legacy Workload pin stream byte for byte
    let cfg = small_cfg(2);
    let mut legacy = RandomMix::new(&cfg, 99, 0.6, 0.4);
    let mut agent = Agent::new(&cfg, RandomMix::new(&cfg, 99, 0.6, 0.4));
    for _ in 0..400 {
        assert_eq!(legacy.next_cycle(), agent.next_cycle());
    }
}

#[test]
fn driver_expands_burst_under_la1() {
    let cfg = small_cfg(1);
    let mut drv = Driver::new(&cfg);
    let mut seq = ItemScript(VecDeque::from([SequenceItem::Burst { bank: 0, addr: 1 }]));
    assert_eq!(drv.cycle_from(&mut seq), vec![BankOp::read(0, 1)]);
    assert_eq!(drv.cycle_from(&mut seq), vec![BankOp::read(0, 2)]);
    assert_eq!(drv.cycle_from(&mut seq), vec![]);
}

#[test]
fn driver_spaces_reads_under_la1b() {
    // three reads offered back to back: the driver delays (never
    // drops) them to the legal 2-cycle spacing
    let cfg = burst_cfg(1);
    let mut drv = Driver::new(&cfg);
    let items: VecDeque<_> = (0..3)
        .map(|i| SequenceItem::Read { bank: 0, addr: i })
        .collect();
    let mut seq = ItemScript(items);
    let mut read_cycles = Vec::new();
    for c in 0..8 {
        let ops = drv.cycle_from(&mut seq);
        if ops.iter().any(BankOp::is_read) {
            read_cycles.push(c);
        }
    }
    assert_eq!(read_cycles, vec![0, 2, 4]);
    assert_eq!(drv.stats().reads_issued, 3);
    assert!(drv.stats().items_delayed > 0);
}

#[test]
fn driver_takes_one_read_and_one_write_per_cycle() {
    let cfg = small_cfg(1);
    let mut drv = Driver::new(&cfg);
    let mut seq = ItemScript(VecDeque::from([
        SequenceItem::Read { bank: 0, addr: 0 },
        SequenceItem::Write {
            bank: 0,
            addr: 1,
            data: 7,
            byte_en: 0b11,
        },
        SequenceItem::Read { bank: 0, addr: 2 },
    ]));
    // first cycle packs the read + write; the second read spills over
    let ops = drv.cycle_from(&mut seq);
    assert_eq!(ops.len(), 2);
    assert_eq!(drv.cycle_from(&mut seq), vec![BankOp::read(0, 2)]);
}

#[test]
fn driver_raw_items_bypass_legality() {
    // the hostile escape hatch: two reads in one cycle, verbatim
    let cfg = small_cfg(1);
    let mut drv = Driver::new(&cfg);
    let mut seq = ItemScript(VecDeque::from([SequenceItem::Raw(vec![
        BankOp::read(0, 0),
        BankOp::read(0, 1),
    ])]));
    let ops = drv.cycle_from(&mut seq);
    assert_eq!(ops.len(), 2);
    assert_eq!(drv.stats().raw_cycles, 1);
}

#[test]
fn driver_latches_inject_x_requests() {
    let cfg = small_cfg(1);
    let mut drv = Driver::new(&cfg);
    let mut seq = ItemScript(VecDeque::from([
        SequenceItem::InjectX,
        SequenceItem::Read { bank: 0, addr: 0 },
    ]));
    let ops = drv.cycle_from(&mut seq);
    assert_eq!(ops, vec![BankOp::read(0, 0)]);
    assert!(drv.take_inject_x());
    assert!(!drv.take_inject_x());
}

#[test]
fn script_sequence_replays_cycles_verbatim() {
    let cfg = small_cfg(2);
    let script = vec![
        vec![BankOp::read(0, 1), BankOp::write(1, 2, 0xAB, 0b11)],
        vec![],
        vec![BankOp::write(0, 3, 0xCD, 0b01)],
    ];
    let mut agent = Agent::new(&cfg, ScriptSequence::new(script.clone()));
    for cycle in &script {
        assert_eq!(&agent.next_cycle(), cycle);
    }
    assert_eq!(agent.next_cycle(), vec![]);
}

#[test]
fn multi_master_contention_arbitrates_and_replays() {
    let cfg = small_cfg(2);
    let mut a = contention(&cfg, 0xFEED, 3);
    let mut b = contention(&cfg, 0xFEED, 3);
    let mut delayed_seen = false;
    for _ in 0..300 {
        let ops = a.next_cycle();
        assert_eq!(ops, b.next_cycle(), "seeded contention must replay");
        // the single address bus holds even with three masters
        assert!(ops.iter().filter(|o| o.is_read()).count() <= 1);
        assert!(ops.iter().filter(|o| !o.is_read()).count() <= 1);
        delayed_seen |= a.driver().stats().items_delayed > 0;
    }
    assert!(delayed_seen, "three masters must collide sometimes");
    assert!(a.driver().stats().reads_issued > 100);
}

#[test]
fn monitor_scoreboards_clean_random_run() {
    let cfg = small_cfg(2);
    let mut sc = LaSystemC::new(&cfg);
    let mut w = RandomMix::new(&cfg, 5, 0.6, 0.5);
    let mut mon = TransactionMonitor::with_log(&cfg, 64);
    run_abv_observed(&mut sc, &mut w, 300, &mut mon);
    let stats = *mon.stats();
    assert!(stats.clean(), "healthy design must scoreboard clean: {stats:?}");
    assert!(stats.lookups_completed > 50);
    // only the in-flight tail (≤ READ_LATENCY cycles deep) may be open
    assert!(stats.reads_issued - stats.lookups_completed <= READ_LATENCY as u64);
    assert!(stats.writes_committed > 50);
    assert!(!mon.transactions().is_empty());
}

#[test]
fn monitor_scoreboards_clean_burst_run() {
    let cfg = burst_cfg(1);
    let mut sc = LaSystemC::new(&cfg);
    let mut agent = Agent::new(&cfg, QdrStream::new(&cfg, 11, 0.5));
    let mut mon = TransactionMonitor::new(&cfg);
    run_abv_observed(&mut sc, &mut agent, 200, &mut mon);
    let stats = *mon.stats();
    assert!(stats.clean(), "burst lookups must scoreboard clean: {stats:?}");
    // sustained QDR stream: a read strobe every burst_len cycles
    assert!(stats.reads_issued >= 95);
    assert!(stats.lookups_completed >= 90);
}

#[test]
fn monitor_catches_data_corruption() {
    // drive the model with a corrupted write while telling the monitor
    // the intended one: the transaction scoreboard must notice when
    // the lookup comes back
    let cfg = small_cfg(1);
    let mut sc = LaSystemC::new(&cfg);
    let mut mon = TransactionMonitor::new(&cfg);
    let intended = [
        vec![BankOp::write(0, 2, 0x1234, 0b11)],
        vec![BankOp::read(0, 2)],
        vec![],
        vec![],
        vec![],
    ];
    for (i, ops) in intended.iter().enumerate() {
        let driven = if i == 0 {
            vec![BankOp::write(0, 2, 0x1235, 0b11)] // injected bit flip
        } else {
            ops.clone()
        };
        sc.cycle(&driven);
        mon.observe(ops, &mut sc);
    }
    assert_eq!(mon.stats().data_mismatches, 1);
    assert_eq!(mon.stats().lookups_completed, 1);
}

#[test]
fn monitor_catches_dropped_read_strobe() {
    let cfg = small_cfg(1);
    let mut sc = LaSystemC::new(&cfg);
    let mut mon = TransactionMonitor::new(&cfg);
    let intended = [vec![BankOp::read(0, 1)], vec![], vec![], vec![]];
    for (i, ops) in intended.iter().enumerate() {
        let driven = if i == 0 { vec![] } else { ops.clone() };
        sc.cycle(&driven);
        mon.observe(ops, &mut sc);
    }
    assert_eq!(mon.stats().missing_dv, 1);
    assert_eq!(mon.stats().lookups_completed, 0);
}

#[test]
fn monitor_same_cycle_write_visible_to_read() {
    // the refinement models make a same-cycle write visible to the
    // read; the shadow memory must agree or clean runs would mismatch
    let cfg = small_cfg(1);
    let mut sc = LaSystemC::new(&cfg);
    let mut mon = TransactionMonitor::new(&cfg);
    let script = [
        vec![BankOp::write(0, 1, 0x11, 0b11)],
        vec![BankOp::read(0, 1), BankOp::write(0, 1, 0x22, 0b11)],
        vec![BankOp::write(0, 1, 0x33, 0b11)], // after issue: not visible
        vec![],
        vec![],
    ];
    for ops in &script {
        sc.cycle(ops);
        mon.observe(ops, &mut sc);
    }
    assert_eq!(mon.stats().data_mismatches, 0);
    assert_eq!(mon.stats().lookups_completed, 1);
}

#[test]
fn packet_stream_is_deterministic_and_clean() {
    let cfg = small_cfg(2);
    let mut a = Agent::new(&cfg, PacketStream::new(&cfg, 0xD00D, 32, 1.2));
    let mut b = Agent::new(&cfg, PacketStream::new(&cfg, 0xD00D, 32, 1.2));
    let mut sc = LaSystemC::new(&cfg);
    let mut mon = TransactionMonitor::new(&cfg);
    for _ in 0..300 {
        let ops = a.next_cycle();
        assert_eq!(ops, b.next_cycle(), "seeded packet traffic must replay");
        sc.cycle(&ops);
        mon.observe(&ops, &mut sc);
    }
    assert!(mon.stats().clean(), "packet traffic must scoreboard clean");
    assert!(mon.stats().lookups_completed > 30, "bursty arrivals still look up");
}

#[test]
fn zipf_keys_skew_toward_low_ranks() {
    let zipf = ZipfKeys::new(16, 1.2);
    let mut rng = StdRng::seed_from_u64(77);
    let mut counts = [0u32; 16];
    for _ in 0..4000 {
        counts[zipf.sample(&mut rng)] += 1;
    }
    assert!(counts[0] > counts[8] && counts[0] > counts[15]);
    assert!(counts.iter().sum::<u32>() == 4000);
}

#[test]
fn stream_seed_separates_streams() {
    let seeds: Vec<u64> = (0..8).map(|i| stream_seed(42, i)).collect();
    let mut unique = seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), seeds.len());
}

// Property-based tests live behind the optional `proptest` feature
// (`cargo test --workspace --features proptest`); the dependency is a
// vendored offline shim (see vendor/proptest) that cannot be resolved
// from the registry in the offline build environment.
#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn sc_rtl_equivalent_on_random_programs(seed in 0u64..500) {
            let cfg = small_cfg(1);
            let mut sc = LaSystemC::new(&cfg);
            let rtl = LaRtl::build(&cfg, None);
            let mut drv = LaRtlDriver::new(&rtl);
            let mut w = RandomMix::new(&cfg, seed, 0.7, 0.6);
            for _ in 0..60 {
                let ops = w.next_cycle();
                sc.cycle(&ops);
                drv.cycle(&ops);
                prop_assert_eq!(sc.bank_output(0), drv.bank_output(0));
            }
        }

        #[test]
        fn parity_helper_matches_xor(half in any::<u16>()) {
            let p = byte_parity(half as u64, 16);
            let lo = (half & 0xFF).count_ones() % 2;
            let hi = (half >> 8).count_ones() % 2;
            prop_assert_eq!(p, (lo as u64) | ((hi as u64) << 1));
        }

        /// Same seed ⇒ byte-identical RandomMix op streams (the
        /// determinism every campaign-style experiment leans on).
        #[test]
        fn random_mix_streams_replay(seed in 0u64..1_000, banks in 1u32..5) {
            let cfg = small_cfg(banks);
            let emit = |s: u64| {
                let mut w = RandomMix::new(&cfg, s, 0.6, 0.5);
                (0..200).map(|_| w.next_cycle()).collect::<Vec<_>>()
            };
            prop_assert_eq!(emit(seed), emit(seed));
        }

        /// Every RandomMix cycle respects the single address bus: at
        /// most one read and one write, all targets in range.
        #[test]
        fn random_mix_respects_single_address_bus(seed in 0u64..1_000, banks in 1u32..5) {
            let cfg = small_cfg(banks);
            let mut w = RandomMix::new(&cfg, seed, 0.8, 0.8);
            for _ in 0..300 {
                let ops = w.next_cycle();
                prop_assert!(ops.iter().filter(|o| o.is_read()).count() <= 1);
                prop_assert!(ops.iter().filter(|o| !o.is_read()).count() <= 1);
                for op in &ops {
                    prop_assert!(op.bank() < cfg.banks);
                    let addr = match *op {
                        BankOp::Read { addr, .. } | BankOp::Write { addr, .. } => addr,
                    };
                    prop_assert!(addr < cfg.words_per_bank as u64);
                }
            }
        }

        /// The full-word constructor keeps every write full-word and
        /// still replays byte-identically per seed.
        #[test]
        fn random_mix_full_word_is_full_word(seed in 0u64..1_000) {
            let cfg = small_cfg(2);
            let full_be = (1u32 << cfg.byte_enables()) - 1;
            let mut w = RandomMix::full_word(&cfg, seed, 0.5, 0.7);
            for _ in 0..300 {
                for op in w.next_cycle() {
                    if let BankOp::Write { byte_en, .. } = op {
                        prop_assert_eq!(byte_en, full_be);
                    }
                }
            }
        }

        /// The Driver's legality rules hold by construction for ANY
        /// item stream: at most one read and one write per cycle,
        /// LA-1B burst spacing respected, and no read is ever dropped
        /// — delayed items all drain once the stream goes idle.
        #[test]
        fn driver_legality_invariants_hold_for_any_items(seed in 0u64..400) {
            let cfg = burst_cfg(2);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut items = VecDeque::new();
            let mut reads_offered = 0u64;
            for _ in 0..60 {
                items.push_back(match rng.gen_range(0..10u32) {
                    0..=3 => {
                        reads_offered += 1;
                        SequenceItem::Read {
                            bank: rng.gen_range(0..cfg.banks),
                            addr: rng.gen_range(0..cfg.words_per_bank as u64),
                        }
                    }
                    4..=6 => SequenceItem::Write {
                        bank: rng.gen_range(0..cfg.banks),
                        addr: rng.gen_range(0..cfg.words_per_bank as u64),
                        data: rng.gen(),
                        byte_en: 0b11,
                    },
                    7..=8 => {
                        reads_offered += 1; // one strobe under LA-1B
                        SequenceItem::Burst {
                            bank: rng.gen_range(0..cfg.banks),
                            addr: rng.gen_range(0..cfg.words_per_bank as u64 - 1),
                        }
                    }
                    _ => SequenceItem::Idle,
                });
            }
            let mut drv = Driver::new(&cfg);
            let mut seq = ItemScript(items);
            let mut last_read: Option<u64> = None;
            let mut reads_seen = 0u64;
            let mut idle_streak = 0u32;
            for c in 0..2_000u64 {
                let ops = drv.cycle_from(&mut seq);
                prop_assert!(ops.iter().filter(|o| o.is_read()).count() <= 1);
                prop_assert!(ops.iter().filter(|o| !o.is_read()).count() <= 1);
                if ops.iter().any(BankOp::is_read) {
                    if let Some(prev) = last_read {
                        prop_assert!(c - prev >= cfg.burst_len as u64);
                    }
                    last_read = Some(c);
                    reads_seen += 1;
                }
                idle_streak = if ops.is_empty() { idle_streak + 1 } else { 0 };
                if idle_streak > 4 {
                    break;
                }
            }
            // delayed, never dropped: every offered read strobe came out
            prop_assert_eq!(reads_seen, reads_offered);
        }

        /// The Zipf key generator replays exactly per seed.
        #[test]
        fn zipf_sampling_replays_per_seed(seed in any::<u64>()) {
            let zipf = ZipfKeys::new(64, 0.9);
            let draw = |s: u64| {
                let mut rng = StdRng::seed_from_u64(s);
                (0..128).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
            };
            prop_assert_eq!(draw(seed), draw(seed));
        }

        /// The Sequencer port of RandomMix stays byte-identical to the
        /// legacy Workload stream for every seed, not just the golden
        /// ones.
        #[test]
        fn randommix_sequencer_port_matches_workload(seed in 0u64..1_000) {
            let cfg = small_cfg(2);
            let mut legacy = RandomMix::new(&cfg, seed, 0.7, 0.5);
            let mut agent = Agent::new(&cfg, RandomMix::new(&cfg, seed, 0.7, 0.5));
            for _ in 0..150 {
                prop_assert_eq!(legacy.next_cycle(), agent.next_cycle());
            }
        }
    }
}

// ---- checkpoint / replay ----------------------------------------------------

mod checkpoint_tests {
    use super::*;
    use crate::checkpoint::{config_fingerprint, CheckpointError, Snapshot, Trace};
    use crate::rtl_model::LaRtlBatchDriver;
    use la1_rtl::LANES;

    fn mix(cfg: &LaConfig, seed: u64, n: usize) -> Vec<Vec<BankOp>> {
        let mut w = RandomMix::new(cfg, seed, 0.45, 0.45);
        (0..n).map(|_| w.next_cycle()).collect()
    }

    /// The same stream with full-word byte enables (the ASM level
    /// abstracts byte control).
    fn full_be_mix(cfg: &LaConfig, seed: u64, n: usize) -> Vec<Vec<BankOp>> {
        let full = (1u32 << cfg.byte_enables()) - 1;
        mix(cfg, seed, n)
            .into_iter()
            .map(|ops| {
                ops.into_iter()
                    .map(|op| match op {
                        BankOp::Write {
                            bank, addr, data, ..
                        } => BankOp::write(bank, addr, data, full),
                        read => read,
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn systemc_checkpoint_restore_continues_identically() {
        let cfg = small_cfg(2);
        let ops = mix(&cfg, 11, 80);
        let mut orig = LaSystemC::new(&cfg);
        orig.attach_default_monitors();
        for c in &ops[..40] {
            orig.cycle(c);
        }
        let snap = Snapshot::of_systemc(&cfg, &orig).unwrap();
        let text = snap.to_jsonl();
        let parsed = Snapshot::parse(&text).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.to_jsonl(), text, "re-serialization is byte-stable");
        let mut restored = parsed.into_systemc(&cfg).unwrap();
        assert_eq!(restored.cycles(), orig.cycles());
        for c in &ops[40..] {
            orig.cycle(c);
            restored.cycle(c);
            for b in 0..cfg.banks {
                assert_eq!(orig.bank_output(b), restored.bank_output(b));
                assert_eq!(orig.write_done(b), restored.write_done(b));
            }
        }
        assert_eq!(orig.violation_count(), restored.violation_count());
        assert_eq!(orig.violation_details(), restored.violation_details());
    }

    #[test]
    fn asm_checkpoint_restore_continues_identically() {
        let cfg = small_cfg(2);
        let ops = full_be_mix(&cfg, 13, 60);
        let mut orig = LaAsmModel::new(&cfg);
        for c in &ops[..30] {
            orig.cycle(c);
        }
        let snap = Snapshot::of_asm(&orig);
        let parsed = Snapshot::parse(&snap.to_jsonl()).unwrap();
        assert_eq!(parsed, snap);
        let mut restored = parsed.into_asm(&cfg).unwrap();
        for c in &ops[30..] {
            orig.cycle(c);
            restored.cycle(c);
            for b in 0..cfg.banks {
                assert_eq!(orig.bank_output(b), restored.bank_output(b));
                assert_eq!(orig.write_done(b), restored.write_done(b));
            }
        }
    }

    #[test]
    fn rtl_checkpoint_restore_continues_identically() {
        let cfg = small_cfg(2);
        let design = LaRtl::build(&cfg, None);
        let ops = mix(&cfg, 17, 60);
        let mut orig = LaRtlDriver::new(&design);
        for c in &ops[..30] {
            orig.cycle(c);
        }
        let snap = Snapshot::of_rtl(&orig).unwrap();
        let parsed = Snapshot::parse(&snap.to_jsonl()).unwrap();
        assert_eq!(parsed, snap);
        let mut restored = parsed.into_rtl(&design).unwrap();
        for c in &ops[30..] {
            orig.cycle(c);
            restored.cycle(c);
            for b in 0..cfg.banks {
                assert_eq!(orig.bank_output(b), restored.bank_output(b));
                assert_eq!(orig.write_done(b), restored.write_done(b));
            }
        }
    }

    #[test]
    fn rtl_ovl_checkpoint_restore_continues_identically() {
        let cfg = small_cfg(2);
        let design = LaRtl::build(&cfg, None);
        let ops = mix(&cfg, 19, 60);
        let mut orig = RtlWithOvl::new(&design);
        for c in &ops[..30] {
            orig.cycle(c);
        }
        let snap = Snapshot::of_rtl_ovl(&cfg, &orig).unwrap();
        let parsed = Snapshot::parse(&snap.to_jsonl()).unwrap();
        assert_eq!(parsed, snap);
        let mut restored = parsed.into_rtl_ovl(&design).unwrap();
        for c in &ops[30..] {
            orig.cycle(c);
            restored.cycle(c);
            for b in 0..cfg.banks {
                assert_eq!(orig.bank_output(b), restored.bank_output(b));
            }
        }
        assert_eq!(orig.violation_count(), restored.violation_count());
        assert_eq!(orig.violation_details(), restored.violation_details());
    }

    #[test]
    fn batched_checkpoint_restore_continues_identically() {
        let cfg = small_cfg(1);
        let design = LaRtl::build(&cfg, None);
        // two distinct lanes exercised, the rest idle
        let lane_a = mix(&cfg, 23, 40);
        let lane_b = mix(&cfg, 29, 40);
        let mut orig = LaRtlBatchDriver::new(&design);
        for i in 0..20 {
            orig.cycle(&[&lane_a[i], &lane_b[i]]);
        }
        let snap = Snapshot::of_rtl_batch(&orig).unwrap();
        let parsed = Snapshot::parse(&snap.to_jsonl()).unwrap();
        assert_eq!(parsed, snap);
        let mut restored = parsed.into_rtl_batch(&design).unwrap();
        for i in 20..40 {
            orig.cycle(&[&lane_a[i], &lane_b[i]]);
            restored.cycle(&[&lane_a[i], &lane_b[i]]);
            for lane in 0..LANES {
                for b in 0..cfg.banks {
                    assert_eq!(orig.bank_output(lane, b), restored.bank_output(lane, b));
                    assert_eq!(orig.write_done(lane, b), restored.write_done(lane, b));
                }
            }
        }
    }

    #[test]
    fn snapshot_truncation_at_every_byte_is_a_typed_error() {
        let cfg = small_cfg(1);
        let mut m = LaAsmModel::new(&cfg);
        for c in &full_be_mix(&cfg, 3, 10) {
            m.cycle(c);
        }
        let text = Snapshot::of_asm(&m).to_jsonl();
        for cut in 0..text.len() {
            let err = Snapshot::parse(&text[..cut])
                .expect_err("every proper prefix must fail to parse");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::Malformed { .. }
                ),
                "unexpected error at byte {cut}: {err}"
            );
        }
        assert!(Snapshot::parse(&text).is_ok());
    }

    #[test]
    fn trace_truncation_at_every_byte_is_a_typed_error() {
        let cfg = small_cfg(2);
        let mut trace = Trace::new(config_fingerprint("systemc", &cfg));
        for c in &mix(&cfg, 5, 8) {
            trace.record(c);
        }
        let text = trace.to_jsonl();
        for cut in 0..text.len() {
            assert!(
                Trace::parse(&text[..cut]).is_err(),
                "strict parse accepted a {cut}-byte prefix"
            );
        }
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn trace_recover_salvages_complete_cycles() {
        let cfg = small_cfg(2);
        let mut trace = Trace::new(config_fingerprint("rtl", &cfg));
        let ops = mix(&cfg, 7, 6);
        for c in &ops {
            trace.record(c);
        }
        let text = trace.to_jsonl();
        // full stream: complete
        let (full, complete) = Trace::recover(&text).unwrap();
        assert!(complete);
        assert_eq!(full, trace);
        // cut inside the footer: all cycles salvaged, marked incomplete
        let footer_start = text.rfind("{\"end\"").unwrap();
        let (salvaged, complete) = Trace::recover(&text[..footer_start + 5]).unwrap();
        assert!(!complete);
        assert_eq!(salvaged.cycles, trace.cycles);
        // cut inside the last cycle line: that cycle is dropped
        let lines: Vec<&str> = text.lines().collect();
        let upto_last_cycle: usize = lines[..lines.len() - 2]
            .iter()
            .map(|l| l.len() + 1)
            .sum();
        let torn = &text[..upto_last_cycle + lines[lines.len() - 2].len() / 2];
        let (salvaged, complete) = Trace::recover(torn).unwrap();
        assert!(!complete);
        assert_eq!(salvaged.cycles, trace.cycles[..trace.cycles.len() - 1].to_vec());
    }

    #[test]
    fn snapshot_rejects_wrong_fingerprint_and_version() {
        let cfg1 = small_cfg(1);
        let cfg2 = small_cfg(2);
        let m = LaAsmModel::new(&cfg1);
        let snap = Snapshot::of_asm(&m);
        // wrong configuration
        assert!(matches!(
            snap.into_asm(&cfg2),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
        // wrong level
        assert!(matches!(
            snap.into_systemc(&cfg1),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
        // wrong version
        let text = snap.to_jsonl().replace("\"version\": 1", "\"version\": 99");
        assert_eq!(
            Snapshot::parse(&text),
            Err(CheckpointError::VersionMismatch {
                found: 99,
                expected: 1
            })
        );
        // wrong kind
        let text = snap.to_jsonl().replace("la1-snapshot", "la1-other");
        assert!(matches!(
            Snapshot::parse(&text),
            Err(CheckpointError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn trace_replays_into_a_model() {
        let cfg = small_cfg(2);
        let ops = mix(&cfg, 31, 25);
        let mut recorded = Trace::new(config_fingerprint("systemc", &cfg));
        let mut direct = LaSystemC::new(&cfg);
        for c in &ops {
            recorded.record(c);
            direct.cycle(c);
        }
        let mut replayed = LaSystemC::new(&cfg);
        recorded.replay_into(&mut replayed);
        assert_eq!(replayed.cycles(), direct.cycles());
        for b in 0..cfg.banks {
            assert_eq!(replayed.bank_output(b), direct.bank_output(b));
        }
    }

    /// Compares one serialized artifact against its committed golden
    /// file, or regenerates it under `UPDATE_GOLDEN=1`.
    fn check_golden(name: &str, golden: &str, text: &str) {
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            let path = format!("{}/golden/{name}", env!("CARGO_MANIFEST_DIR"));
            std::fs::write(&path, text).expect("update golden file");
            return;
        }
        assert_eq!(
            text, golden,
            "serialized {name} drifted from the committed golden              (crates/core/golden/{name}); the snapshot format is a              persistence contract — old checkpoints must stay loadable.              If the change is intentional, bump SNAPSHOT_VERSION and              regenerate with UPDATE_GOLDEN=1 cargo test -p la1-core"
        );
    }

    #[test]
    fn serialized_checkpoints_match_committed_goldens() {
        // one fixed seeded state per level: the byte-level format
        // contract, pinned in version control
        let cfg = small_cfg(2);
        let design = LaRtl::build(&cfg, None);
        let ops = mix(&cfg, 41, 50);
        let full = full_be_mix(&cfg, 41, 50);

        let mut asm = crate::asm_model::LaAsmModel::new(&cfg);
        full.iter().for_each(|c| asm.cycle(c));
        check_golden(
            "snapshot_asm_2bank_seed41.jsonl",
            include_str!("../golden/snapshot_asm_2bank_seed41.jsonl"),
            &Snapshot::of_asm(&asm).to_jsonl(),
        );

        let mut sc = LaSystemC::new(&cfg);
        sc.attach_default_monitors();
        ops.iter().for_each(|c| sc.cycle(c));
        check_golden(
            "snapshot_systemc_2bank_seed41.jsonl",
            include_str!("../golden/snapshot_systemc_2bank_seed41.jsonl"),
            &Snapshot::of_systemc(&cfg, &sc).unwrap().to_jsonl(),
        );

        let mut rtl = LaRtlDriver::new(&design);
        ops.iter().for_each(|c| rtl.cycle(c));
        check_golden(
            "snapshot_rtl_2bank_seed41.jsonl",
            include_str!("../golden/snapshot_rtl_2bank_seed41.jsonl"),
            &Snapshot::of_rtl(&rtl).unwrap().to_jsonl(),
        );

        let mut ovl = RtlWithOvl::new(&design);
        ops.iter().for_each(|c| ovl.cycle(c));
        check_golden(
            "snapshot_rtl_ovl_2bank_seed41.jsonl",
            include_str!("../golden/snapshot_rtl_ovl_2bank_seed41.jsonl"),
            &Snapshot::of_rtl_ovl(&cfg, &ovl).unwrap().to_jsonl(),
        );

        let mut batch = LaRtlBatchDriver::new(&design);
        for c in &ops[..20] {
            let lanes: Vec<&[BankOp]> = (0..LANES).map(|_| c.as_slice()).collect();
            batch.cycle(&lanes);
        }
        check_golden(
            "snapshot_rtl_batch_2bank_seed41.jsonl",
            include_str!("../golden/snapshot_rtl_batch_2bank_seed41.jsonl"),
            &Snapshot::of_rtl_batch(&batch).unwrap().to_jsonl(),
        );

        let mut trace = Trace::new(config_fingerprint("rtl", &cfg));
        ops[..20].iter().for_each(|c| trace.record(c));
        check_golden(
            "trace_rtl_2bank_seed41.jsonl",
            include_str!("../golden/trace_rtl_2bank_seed41.jsonl"),
            &trace.to_jsonl(),
        );
    }

    #[test]
    fn committed_golden_snapshots_still_restore() {
        // loadability, not just byte identity: each committed golden
        // must parse and restore into a live model of its level
        let cfg = small_cfg(2);
        let design = LaRtl::build(&cfg, None);
        let asm = Snapshot::parse(include_str!("../golden/snapshot_asm_2bank_seed41.jsonl"))
            .expect("parse asm golden");
        assert_eq!(asm.into_asm(&cfg).expect("restore asm golden").cycles(), 50);
        let sc = Snapshot::parse(include_str!("../golden/snapshot_systemc_2bank_seed41.jsonl"))
            .expect("parse systemc golden");
        assert_eq!(
            sc.into_systemc(&cfg).expect("restore systemc golden").cycles(),
            50
        );
        let rtl = Snapshot::parse(include_str!("../golden/snapshot_rtl_2bank_seed41.jsonl"))
            .expect("parse rtl golden");
        assert_eq!(rtl.into_rtl(&design).expect("restore rtl golden").cycles(), 50);
        let ovl = Snapshot::parse(include_str!("../golden/snapshot_rtl_ovl_2bank_seed41.jsonl"))
            .expect("parse rtl+ovl golden");
        assert_eq!(
            ovl.into_rtl_ovl(&design).expect("restore rtl+ovl golden").cycles(),
            50
        );
        let batch = Snapshot::parse(include_str!("../golden/snapshot_rtl_batch_2bank_seed41.jsonl"))
            .expect("parse batch golden");
        batch.into_rtl_batch(&design).expect("restore batch golden");
        let trace = Trace::parse(include_str!("../golden/trace_rtl_2bank_seed41.jsonl"))
            .expect("parse trace golden");
        assert_eq!(trace.cycles.len(), 20);
        let mut replayed = LaRtlDriver::new(&design);
        trace.replay_into(&mut replayed);
        assert_eq!(replayed.cycles(), 20);
    }
}
