//! The LA-1 implementation agreement: configuration, pins, transactions
//! and parity.
//!
//! The Network Processing Forum's Look-Aside (LA-1) interface connects a
//! network-processing element to look-aside coprocessors and QDR-style
//! SRAMs. The features reproduced here follow the paper's summary:
//!
//! * concurrent read and write operation,
//! * unidirectional read and write interfaces,
//! * a single address bus,
//! * an 18-pin DDR data **output** path (16 data + 2 even byte-parity
//!   bits per edge; a full 32-bit word per clock period),
//! * an 18-pin DDR data **input** path with the same format,
//! * byte write control for writes,
//! * a master clock pair `K` / `K#`, ideally 180° out of phase,
//! * 1 to N banks (the paper evaluates 1–4 and simulates up to 8).

/// Width of one DDR data half (bits transferred per clock edge).
pub const HALF_WIDTH: u32 = 16;
/// Parity bits accompanying each half (one per byte: even byte parity).
pub const PARITY_BITS: u32 = 2;
/// Data pins per direction: the "18-pin DDR data path".
pub const DATA_PINS: u32 = HALF_WIDTH + PARITY_BITS;
/// Bits in a full transferred word (two edges).
pub const WORD_WIDTH: u32 = 2 * HALF_WIDTH;
/// Byte-write-control bits per word (one per byte).
pub const BYTE_ENABLES: u32 = WORD_WIDTH / 8;
/// Read latency in full clock cycles: request at the rising edge of
/// cycle `n`, data out on both edges of cycle `n + READ_LATENCY`
/// (Fig. 3 of the paper).
pub const READ_LATENCY: u32 = 2;

/// Static configuration of an LA-1 device model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaConfig {
    /// Number of banks (the paper scales 1..=4, simulation up to 8).
    pub banks: u32,
    /// Words of SRAM per bank.
    pub words_per_bank: u32,
    /// Word width in bits (32 for the full-size interface; the
    /// model-checking configuration shrinks it).
    pub word_width: u32,
    /// Address values the ASM explorer draws from (AsmL's finite
    /// domains).
    pub mc_addr_domain: Vec<u64>,
    /// Data values the ASM explorer draws from.
    pub mc_data_domain: Vec<u64>,
    /// Read burst length: 1 for LA-1, 2 for the LA-1B-style burst
    /// extension (one address fetches two consecutive words on
    /// consecutive cycles). See [`LaConfig::la1b`].
    pub burst_len: u32,
}

impl LaConfig {
    /// Full-size configuration with the given bank count: 64 words per
    /// bank, 32-bit words, and small exploration domains.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(banks: u32) -> Self {
        assert!(banks >= 1, "an LA-1 device has at least one bank");
        LaConfig {
            banks,
            words_per_bank: 64,
            word_width: WORD_WIDTH,
            mc_addr_domain: vec![0, 1],
            mc_data_domain: vec![0, 0xFFFF_FFFF],
            burst_len: 1,
        }
    }

    /// An LA-1B-style configuration: burst-of-2 reads (the direction the
    /// paper's reference [Bhugra, CommsDesign 2003] pushes the
    /// interface). One read request returns the addressed word and its
    /// successor on consecutive cycles; the host must leave one idle
    /// cycle between reads.
    pub fn la1b(banks: u32) -> Self {
        LaConfig {
            burst_len: 2,
            ..LaConfig::new(banks)
        }
    }

    /// A deliberately small configuration for symbolic model checking
    /// (Table 2): 2 words per bank, 2-bit words — small enough that the
    /// 1-bank instance is quick, large enough that the RuleBase-era
    /// monolithic strategy still explodes as banks scale. (RuleBase
    /// users shrank datapaths for model checking the same way.)
    pub fn mc_small(banks: u32) -> Self {
        LaConfig {
            words_per_bank: 2,
            word_width: 2,
            ..LaConfig::new(banks)
        }
    }

    /// True when this configuration uses LA-1B-style burst reads.
    pub fn is_burst(&self) -> bool {
        self.burst_len >= 2
    }

    /// Bits needed for a word address within one bank.
    pub fn addr_bits(&self) -> u32 {
        self.words_per_bank.next_power_of_two().trailing_zeros().max(1)
    }

    /// Bits per DDR half-word.
    pub fn half_width(&self) -> u32 {
        self.word_width / 2
    }

    /// Parity bits per half (one per byte, minimum one).
    pub fn parity_bits(&self) -> u32 {
        (self.half_width() / 8).max(1)
    }

    /// Byte-enable bits per word (minimum two: one per half).
    pub fn byte_enables(&self) -> u32 {
        (self.word_width / 8).max(2)
    }

    /// Masks a value to the configured word width.
    pub fn mask_word(&self, value: u64) -> u64 {
        if self.word_width >= 64 {
            value
        } else {
            value & ((1u64 << self.word_width) - 1)
        }
    }

    /// The low DDR half of a word (transferred on the rising edge).
    pub fn low_half(&self, word: u64) -> u64 {
        word & ((1u64 << self.half_width()) - 1)
    }

    /// The high DDR half of a word (transferred on the falling edge).
    pub fn high_half(&self, word: u64) -> u64 {
        (word >> self.half_width()) & ((1u64 << self.half_width()) - 1)
    }

    /// Expands a byte-enable mask into a per-bit write mask.
    pub fn bit_mask_of(&self, byte_en: u32) -> u64 {
        let mut mask = 0u64;
        for byte in 0..self.byte_enables() {
            if byte_en >> byte & 1 == 1 {
                let bits_per_byte = self.word_width / self.byte_enables();
                mask |= ((1u64 << bits_per_byte) - 1) << (byte * bits_per_byte);
            }
        }
        mask
    }

    /// The pin inventory of this configuration (Fig. 1 of the paper).
    pub fn pins(&self) -> Vec<Pin> {
        let mut pins = vec![
            Pin::new("K", 1, PinDir::HostOut, "master clock"),
            Pin::new("K#", 1, PinDir::HostOut, "master clock, 180 degrees out of phase"),
        ];
        pins.push(Pin::new(
            "SA",
            self.addr_bits() + bank_bits(self.banks),
            PinDir::HostOut,
            "single address bus (bank + word)",
        ));
        for b in 0..self.banks {
            pins.push(Pin::new_owned(
                format!("R{b}#"),
                1,
                PinDir::HostOut,
                "read select, active low, sampled at rising K",
            ));
            pins.push(Pin::new_owned(
                format!("W{b}#"),
                1,
                PinDir::HostOut,
                "write select, active low, sampled at rising K",
            ));
        }
        pins.push(Pin::new(
            "D",
            self.half_width() + self.parity_bits(),
            PinDir::HostOut,
            "DDR write-data input path (data + even byte parity)",
        ));
        pins.push(Pin::new(
            "BW#",
            self.byte_enables() / 2,
            PinDir::HostOut,
            "byte write control per DDR edge, active low",
        ));
        pins.push(Pin::new(
            "Q",
            self.half_width() + self.parity_bits(),
            PinDir::SlaveOut,
            "DDR read-data output path (data + even byte parity)",
        ));
        pins.push(Pin::new("QVLD", 1, PinDir::SlaveOut, "read data valid"));
        pins
    }
}

impl Default for LaConfig {
    fn default() -> Self {
        LaConfig::new(1)
    }
}

/// Bits needed to address `banks` banks.
pub fn bank_bits(banks: u32) -> u32 {
    if banks <= 1 {
        0
    } else {
        banks.next_power_of_two().trailing_zeros()
    }
}

/// Direction of a pin, from the host (network processor) point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinDir {
    /// Driven by the host (NPE), input to the LA-1 device.
    HostOut,
    /// Driven by the LA-1 device.
    SlaveOut,
}

/// One pin (or bus) of the interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pin {
    /// Pin/bus name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Direction.
    pub dir: PinDir,
    /// Short description.
    pub purpose: &'static str,
}

impl Pin {
    fn new(name: &str, width: u32, dir: PinDir, purpose: &'static str) -> Pin {
        Pin {
            name: name.to_string(),
            width,
            dir,
            purpose,
        }
    }

    fn new_owned(name: String, width: u32, dir: PinDir, purpose: &'static str) -> Pin {
        Pin {
            name,
            width,
            dir,
            purpose,
        }
    }
}

/// One host-issued operation targeting a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankOp {
    /// Read the word at `addr` of `bank`.
    Read {
        /// Target bank.
        bank: u32,
        /// Word address within the bank.
        addr: u64,
    },
    /// Write `data` (masked by `byte_en`) to `addr` of `bank`.
    Write {
        /// Target bank.
        bank: u32,
        /// Word address within the bank.
        addr: u64,
        /// Full data word.
        data: u64,
        /// Byte-enable mask (bit per byte, 1 = write).
        byte_en: u32,
    },
}

impl BankOp {
    /// A read of `addr` on `bank`.
    pub fn read(bank: u32, addr: u64) -> BankOp {
        BankOp::Read { bank, addr }
    }

    /// A full-word write.
    pub fn write(bank: u32, addr: u64, data: u64, byte_en: u32) -> BankOp {
        BankOp::Write {
            bank,
            addr,
            data,
            byte_en,
        }
    }

    /// The targeted bank.
    pub fn bank(&self) -> u32 {
        match *self {
            BankOp::Read { bank, .. } | BankOp::Write { bank, .. } => bank,
        }
    }

    /// True for read operations.
    pub fn is_read(&self) -> bool {
        matches!(self, BankOp::Read { .. })
    }
}

/// Even parity of the low `width` bits of `value` (one bit per byte is
/// transferred on the bus; this helper computes a single byte's bit).
pub fn even_parity(value: u64, width: u32) -> bool {
    let masked = if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    };
    masked.count_ones() % 2 == 1
}

/// Per-byte even-parity bits of a half-word: bit `i` covers byte `i`.
pub fn byte_parity(half: u64, half_width: u32) -> u64 {
    let bytes = (half_width / 8).max(1);
    let bits_per_byte = half_width / bytes;
    let mut p = 0u64;
    for i in 0..bytes {
        let byte = (half >> (i * bits_per_byte)) & ((1u64 << bits_per_byte) - 1);
        if even_parity(byte, bits_per_byte) {
            p |= 1 << i;
        }
    }
    p
}
