//! Workload generators: the traffic the paper's motivating applications
//! put through a look-aside interface.
//!
//! The introduction motivates LA-1 with "packet forwarding, packet
//! classification, admission control, and security" on IPv6 systems; we
//! provide a generic random read/write mix plus a packet-classification
//! generator that hashes synthetic flow 5-tuples into table lookups.

use crate::spec::{BankOp, LaConfig};
use crate::stimulus::{SeqContext, SequenceItem, Sequencer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A per-cycle stimulus stream (at most one read and one write each
/// cycle — the single address bus allows no more).
pub trait Workload {
    /// The operations for the next cycle.
    fn next_cycle(&mut self) -> Vec<BankOp>;
}

/// Any closure producing per-cycle operations is a workload — handy for
/// ad-hoc stimulus (preloads, directed scenarios) fed to the generic
/// co-execution and measurement loops.
impl<F: FnMut() -> Vec<BankOp>> Workload for F {
    fn next_cycle(&mut self) -> Vec<BankOp> {
        self()
    }
}

/// A seeded random mix of reads, writes and idle cycles.
///
/// ```
/// use la1_core::{spec::LaConfig, workloads::{RandomMix, Workload}};
/// let mut w = RandomMix::new(&LaConfig::new(2), 42, 0.6, 0.3);
/// let ops = w.next_cycle();
/// assert!(ops.len() <= 2);
/// ```
#[derive(Debug)]
pub struct RandomMix {
    rng: StdRng,
    banks: u32,
    words: u64,
    byte_enables: u32,
    read_prob: f64,
    write_prob: f64,
    full_word_prob: f64,
    /// queued items when driven as a [`Sequencer`]
    items: VecDeque<SequenceItem>,
}

impl RandomMix {
    /// Creates a generator issuing a read with probability `read_prob`
    /// and (independently) a write with probability `write_prob` each
    /// cycle. One write in five uses byte control (partial write).
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    pub fn new(config: &LaConfig, seed: u64, read_prob: f64, write_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&read_prob));
        assert!((0.0..=1.0).contains(&write_prob));
        RandomMix {
            rng: StdRng::seed_from_u64(seed),
            banks: config.banks,
            words: config.words_per_bank as u64,
            byte_enables: config.byte_enables(),
            read_prob,
            write_prob,
            full_word_prob: 0.8,
            items: VecDeque::new(),
        }
    }

    /// Like [`RandomMix::new`], but every write is a full-word write —
    /// the subset of traffic the ASM level models, so a stream from
    /// this constructor can drive all four refinement levels at once.
    pub fn full_word(config: &LaConfig, seed: u64, read_prob: f64, write_prob: f64) -> Self {
        RandomMix {
            full_word_prob: 1.0,
            ..RandomMix::new(config, seed, read_prob, write_prob)
        }
    }

    /// Captures the generator's dynamic state (the rng's internal
    /// counter plus any items queued when driven as a [`Sequencer`]).
    /// The static traffic parameters come back from the configuration
    /// on restore.
    pub fn snapshot_state(&self) -> RandomMixSnap {
        RandomMixSnap {
            rng: self.rng.state(),
            items: self.items.iter().cloned().collect(),
        }
    }

    /// Restores state captured by [`RandomMix::snapshot_state`] into a
    /// generator built with the same configuration and probabilities.
    pub fn restore_state(&mut self, snap: &RandomMixSnap) {
        self.rng = StdRng::from_state(snap.rng);
        self.items = snap.items.iter().cloned().collect();
    }

    /// Replaces the rng with a freshly seeded one — how a restored
    /// checkpoint fans out into divergent continuation streams.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Draws one cycle's worth of operations from the seeded stream.
    fn draw(&mut self) -> Vec<BankOp> {
        let mut ops = Vec::new();
        if self.rng.gen_bool(self.read_prob) {
            let bank = self.rng.gen_range(0..self.banks);
            let addr = self.rng.gen_range(0..self.words);
            ops.push(BankOp::read(bank, addr));
        }
        if self.rng.gen_bool(self.write_prob) {
            let bank = self.rng.gen_range(0..self.banks);
            let addr = self.rng.gen_range(0..self.words);
            let data = self.rng.gen::<u64>();
            // mostly full-word writes, sometimes partial (byte control)
            let byte_en = if self.rng.gen_bool(self.full_word_prob) {
                (1 << self.byte_enables) - 1
            } else {
                self.rng.gen_range(1..(1u32 << self.byte_enables))
            };
            ops.push(BankOp::write(bank, addr, data, byte_en));
        }
        ops
    }
}

/// Serializable dynamic state of a [`RandomMix`]
/// ([`RandomMix::snapshot_state`] / [`RandomMix::restore_state`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomMixSnap {
    /// The seeded rng's internal counter state.
    pub rng: u64,
    /// Items queued when driven as a [`Sequencer`].
    pub items: Vec<SequenceItem>,
}

impl Workload for RandomMix {
    fn next_cycle(&mut self) -> Vec<BankOp> {
        self.draw()
    }
}

/// The transaction-level port: the same seeded stream, one cycle's
/// draw expanded into items plus an `Idle` terminator, so a
/// [`Driver`](crate::stimulus::Driver)-run `RandomMix` replays the
/// legacy pin stream byte for byte (golden-pinned in `la1-cover`).
impl Sequencer for RandomMix {
    fn next_item(&mut self, _ctx: &SeqContext) -> SequenceItem {
        if self.items.is_empty() {
            let ops = self.draw();
            self.items.extend(ops.iter().map(SequenceItem::from_op));
            self.items.push_back(SequenceItem::Idle);
        }
        self.items.pop_front().expect("queue refilled above")
    }
}

/// A synthetic IPv6 flow 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTuple {
    /// Source address (folded to 64 bits).
    pub src: u64,
    /// Destination address (folded to 64 bits).
    pub dst: u64,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Next-header / protocol.
    pub proto: u8,
}

impl FlowTuple {
    /// A deterministic hash of the tuple (FNV-1a over the fields).
    pub fn hash(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.src);
        mix(self.dst);
        mix(self.sport as u64);
        mix(self.dport as u64);
        mix(self.proto as u64);
        h
    }
}

/// Packet-classification traffic: each arriving packet's flow tuple is
/// hashed into a classification-table address; table updates (route
/// changes / flow insertions) are interleaved at a configurable rate.
///
/// This exercises the same code path a real NPE would: mostly reads
/// against the look-aside table with occasional control-plane writes.
#[derive(Debug)]
pub struct PacketLookup {
    rng: StdRng,
    banks: u32,
    words: u64,
    byte_enables: u32,
    /// probability a cycle carries a packet (lookup)
    packet_rate: f64,
    /// probability a cycle carries a table update
    update_rate: f64,
    /// a small pool of hot flows (temporal locality)
    flows: Vec<FlowTuple>,
}

impl PacketLookup {
    /// Creates the generator with `flow_pool` distinct flows.
    pub fn new(
        config: &LaConfig,
        seed: u64,
        packet_rate: f64,
        update_rate: f64,
        flow_pool: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = (0..flow_pool.max(1))
            .map(|_| FlowTuple {
                src: rng.gen(),
                dst: rng.gen(),
                sport: rng.gen(),
                dport: rng.gen(),
                proto: if rng.gen_bool(0.7) { 6 } else { 17 },
            })
            .collect();
        PacketLookup {
            rng,
            banks: config.banks,
            words: config.words_per_bank as u64,
            byte_enables: config.byte_enables(),
            packet_rate,
            update_rate,
            flows,
        }
    }

    /// The table address a flow maps to: the hash is striped across
    /// banks (bank = hash high bits, word = hash low bits).
    pub fn table_address(&self, flow: &FlowTuple) -> (u32, u64) {
        let h = flow.hash();
        let bank = (h >> 56) as u32 % self.banks;
        let word = h % self.words;
        (bank, word)
    }
}

impl Workload for PacketLookup {
    fn next_cycle(&mut self) -> Vec<BankOp> {
        let mut ops = Vec::new();
        if self.rng.gen_bool(self.packet_rate) {
            let idx = self.rng.gen_range(0..self.flows.len());
            let flow = self.flows[idx];
            let (bank, word) = self.table_address(&flow);
            ops.push(BankOp::read(bank, word));
        }
        if self.rng.gen_bool(self.update_rate) {
            // control-plane update: insert/refresh a classification entry
            let idx = self.rng.gen_range(0..self.flows.len());
            let flow = self.flows[idx];
            let (bank, word) = self.table_address(&flow);
            let action = self.rng.gen::<u32>() as u64; // next-hop / class id
            ops.push(BankOp::write(
                bank,
                word,
                flow.hash() ^ action,
                (1 << self.byte_enables) - 1,
            ));
        }
        ops
    }
}

/// A protocol-respecting lookup stream for burst configurations: reads
/// are spaced `burst_len` cycles apart (the LA-1B output bus carries a
/// burst for that long), with writes filling the idle cycles.
#[derive(Debug)]
pub struct BurstLookup {
    rng: StdRng,
    banks: u32,
    words: u64,
    byte_enables: u32,
    burst_len: u64,
    cycle: u64,
    last_read: Option<u64>,
}

impl BurstLookup {
    /// Creates the generator for `config` (works for burst length 1 as
    /// well, where it degenerates to back-to-back reads).
    pub fn new(config: &LaConfig, seed: u64) -> Self {
        BurstLookup {
            rng: StdRng::seed_from_u64(seed),
            banks: config.banks,
            words: config.words_per_bank as u64,
            byte_enables: config.byte_enables(),
            burst_len: config.burst_len as u64,
            cycle: 0,
            last_read: None,
        }
    }
}

impl Workload for BurstLookup {
    fn next_cycle(&mut self) -> Vec<BankOp> {
        let mut ops = Vec::new();
        let read_ok = self
            .last_read
            .is_none_or(|c| self.cycle - c >= self.burst_len);
        if read_ok {
            let bank = self.rng.gen_range(0..self.banks);
            // keep the auto-incremented second beat in range
            let addr = self.rng.gen_range(0..self.words.saturating_sub(1).max(1));
            ops.push(BankOp::read(bank, addr));
            self.last_read = Some(self.cycle);
        } else if self.rng.gen_bool(0.5) {
            let bank = self.rng.gen_range(0..self.banks);
            let addr = self.rng.gen_range(0..self.words);
            ops.push(BankOp::write(
                bank,
                addr,
                self.rng.gen(),
                (1 << self.byte_enables) - 1,
            ));
        }
        self.cycle += 1;
        ops
    }
}

/// A deterministic back-to-back read burst sweeping all addresses of
/// all banks — the worst case for output-bus occupancy.
#[derive(Debug)]
pub struct ReadBurst {
    banks: u32,
    words: u64,
    next: u64,
}

impl ReadBurst {
    /// Creates the sweep generator.
    pub fn new(config: &LaConfig) -> Self {
        ReadBurst {
            banks: config.banks,
            words: config.words_per_bank as u64,
            next: 0,
        }
    }
}

impl Workload for ReadBurst {
    fn next_cycle(&mut self) -> Vec<BankOp> {
        let total = self.banks as u64 * self.words;
        let i = self.next % total;
        self.next += 1;
        vec![BankOp::read((i / self.words) as u32, i % self.words)]
    }
}
