//! Tiny hand-rolled JSON rendering helpers shared by every report
//! type in the workspace.
//!
//! The verification reports (detection matrices, closure reports, farm
//! results) are rendered as *deterministic* JSON — ordered keys, no
//! floats derived from timing — so byte-equality doubles as a result
//! check. Before this module each crate carried its own copy of the
//! quoted-string-array and nullable-integer renderings; the farm's
//! merged reports would have added a third. They all call here now.

/// Renders strings as a JSON array body: `"a", "b", "c"` (empty string
/// for an empty list). The caller provides the surrounding brackets,
/// matching the existing report layouts.
pub fn str_array_body<S: AsRef<str>>(items: &[S]) -> String {
    items
        .iter()
        .map(|s| format!("\"{}\"", s.as_ref()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders an optional integer as JSON: the number, or `null`.
pub fn opt_u64(value: Option<u64>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Escapes a string for embedding inside a JSON string literal (the
/// quotes are the caller's). Panic payloads and fault descriptions can
/// carry quotes, backslashes and newlines; everything the farm journal
/// round-trips goes through here.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Numbers keep their source text (`Num`), so
/// 64-bit counters round-trip without a float detour; objects keep
/// their key order. This is the read side of the workspace's
/// deterministic hand-rolled JSON: just enough parser for the farm's
/// write-ahead journal (and any other report we need to read back),
/// not a general-purpose library.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (linear scan; journal objects are small).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when it is a parseable `Num`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `Some(u64)` for a `Num`, `None` for `null` — the inverse of
    /// [`opt_u64`].
    pub fn as_opt_u64(&self) -> Option<Option<u64>> {
        match self {
            Json::Null => Some(None),
            Json::Num(raw) => raw.parse().map(Some).ok(),
            _ => None,
        }
    }

    /// Renders the value as one compact JSON line fragment (no
    /// newlines, `", "` / `": "` separators — the workspace's house
    /// style for JSONL records). Deterministic: numbers render their
    /// source text verbatim and objects keep their key order, so
    /// `parse(render(v)) == v` and `render(parse(s))` is a canonical
    /// form that is byte-stable under re-parsing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\": ");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Builds a `Num` from an unsigned integer.
    pub fn num(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Builds a `Str`.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an `Arr` of unsigned integers.
    pub fn num_arr<I: IntoIterator<Item = u64>>(items: I) -> Json {
        Json::Arr(items.into_iter().map(Json::num).collect())
    }

    /// The value as a `Vec<u64>`, when it is an array of parseable
    /// `Num`s.
    pub fn as_u64_vec(&self) -> Option<Vec<u64>> {
        self.as_arr()?.iter().map(Json::as_u64).collect()
    }
}

/// Parses one JSON value; trailing content (other than whitespace) is
/// an error. Errors carry the byte offset they were detected at.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// A parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_string();
        Ok(Json::Num(raw))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar verbatim
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_array_body_quotes_and_joins() {
        assert_eq!(str_array_body::<&str>(&[]), "");
        assert_eq!(str_array_body(&["a"]), "\"a\"");
        assert_eq!(str_array_body(&["a", "b"]), "\"a\", \"b\"");
        assert_eq!(
            str_array_body(&[String::from("x_0")]),
            "\"x_0\""
        );
    }

    #[test]
    fn opt_u64_renders_null() {
        assert_eq!(opt_u64(None), "null");
        assert_eq!(opt_u64(Some(7)), "7");
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a \"quoted\" \\ back\nslash\ttab \u{1} end";
        let rendered = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let parsed = parse(&rendered).expect("escaped string parses");
        assert_eq!(parsed.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn parses_scalars_arrays_and_objects() {
        let v = parse(
            "{\"n\": null, \"t\": true, \"u\": 18446744073709551615, \
             \"neg\": -3, \"f\": 1.5, \"a\": [1, \"two\", []], \"o\": {\"x\": 0}}",
        )
        .expect("valid JSON");
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert_eq!(v.get("t").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("u").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(
            v.get("o").and_then(|o| o.get("x")).and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(v.get("n").and_then(Json::as_opt_u64), Some(None));
        assert_eq!(v.get("u").and_then(Json::as_opt_u64), Some(Some(u64::MAX)));
    }

    #[test]
    fn rejects_torn_prefixes() {
        // every proper prefix of a journal-style line must fail to
        // parse — the torn-line recovery guarantee rests on this
        let line = "{\"job\": 3, \"result\": {\"kind\": \"closure\", \"bins\": [{\"b\": 1}]}}";
        for cut in 1..line.len() {
            assert!(
                parse(&line[..cut]).is_err(),
                "prefix of length {cut} unexpectedly parsed"
            );
        }
        assert!(parse(line).is_ok());
    }

    #[test]
    fn render_round_trips_and_canonicalizes() {
        let source = "{\"n\": null, \"t\": true, \"u\": 18446744073709551615, \
                      \"s\": \"a \\\"b\\\"\\n\", \"a\": [1, [], {\"x\": 0}]}";
        let v = parse(source).expect("valid JSON");
        let rendered = v.render();
        assert_eq!(parse(&rendered).expect("render parses"), v);
        // canonical: rendering the re-parse is byte-stable
        assert_eq!(parse(&rendered).expect("render parses").render(), rendered);
        assert_eq!(Json::num(7).render(), "7");
        assert_eq!(Json::num_arr([1, 2]).render(), "[1, 2]");
        assert_eq!(
            parse("[3, 5, 8]").unwrap().as_u64_vec(),
            Some(vec![3, 5, 8])
        );
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse("\"\\u00e9\\ud83d\\ude00\"").expect("unicode escapes");
        assert_eq!(v.as_str(), Some("é😀"));
        assert!(parse("\"\\ud83d\"").is_err(), "lone surrogate must fail");
    }
}
