//! Tiny hand-rolled JSON rendering helpers shared by every report
//! type in the workspace.
//!
//! The verification reports (detection matrices, closure reports, farm
//! results) are rendered as *deterministic* JSON — ordered keys, no
//! floats derived from timing — so byte-equality doubles as a result
//! check. Before this module each crate carried its own copy of the
//! quoted-string-array and nullable-integer renderings; the farm's
//! merged reports would have added a third. They all call here now.

/// Renders strings as a JSON array body: `"a", "b", "c"` (empty string
/// for an empty list). The caller provides the surrounding brackets,
/// matching the existing report layouts.
pub fn str_array_body<S: AsRef<str>>(items: &[S]) -> String {
    items
        .iter()
        .map(|s| format!("\"{}\"", s.as_ref()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders an optional integer as JSON: the number, or `null`.
pub fn opt_u64(value: Option<u64>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_array_body_quotes_and_joins() {
        assert_eq!(str_array_body::<&str>(&[]), "");
        assert_eq!(str_array_body(&["a"]), "\"a\"");
        assert_eq!(str_array_body(&["a", "b"]), "\"a\", \"b\"");
        assert_eq!(
            str_array_body(&[String::from("x_0")]),
            "\"x_0\""
        );
    }

    #[test]
    fn opt_u64_renders_null() {
        assert_eq!(opt_u64(None), "null");
        assert_eq!(opt_u64(Some(7)), "7");
    }
}
