//! The SystemC-level LA-1 model with attached compiled PSL monitors.
//!
//! The paper translates the verified ASM model to SystemC by syntactic
//! mapping (classes → modules, preconditions → triggering conditions)
//! and attaches the PSL properties as *external monitors compiled to
//! C#*. Here the modules are processes over `la1-eventsim` signals and
//! the monitors are `la1-psl` [`BoundMonitor`]s stepped once per clock
//! cycle — compiled Rust playing the role of compiled C#/C++.
//!
//! State shared between the port processes (the SRAM array, the message
//! trace, the fault switches) lives in the kernel's channel arena and
//! is reached through the `&mut SimState` each process receives; the
//! model captures only `Copy` signal and channel handles, so the
//! per-cycle hot path runs without `Rc`/`RefCell`.
//!
//! Timing (matching the ASM model and Fig. 3):
//!
//! * rising `K` of cycle *n*: requests are sampled; the read pipeline
//!   shifts; data for a read issued at *n − 2* is driven (low half);
//!   a write accepted at *n − 1* reports `wdone`;
//! * falling `K` of cycle *n*: the read data high half is driven; the
//!   `wdone` write commits to the SRAM; the write data high half is
//!   captured.

use crate::properties::cycle_properties_for;
use crate::spec::{byte_parity, BankOp, LaConfig};
use crate::uml::{ClockRef, ObservedMessage};
use la1_asm::{StepSystem, Value};
use la1_eventsim::{Signal, Simulator};
use la1_psl::{BoundMonitor, Directive, Monitor, MonitorSnap, Property};

/// Signals of one bank's read and write ports (all `Copy` handles).
#[derive(Clone, Copy)]
struct ScBank {
    // host request side
    rd_req: Signal<bool>,
    rd_addr: Signal<u64>,
    wr_req: Signal<bool>,
    wr_addr: Signal<u64>,
    wr_data_lo: Signal<u64>,
    wr_data_hi: Signal<u64>,
    wr_byte_en: Signal<u32>,
    // read pipeline
    rv1: Signal<bool>,
    rv2: Signal<bool>,
    dv: Signal<bool>,
    out_lo: Signal<u64>,
    out_hi: Signal<u64>,
    out_par_lo: Signal<u64>,
    out_par_hi: Signal<u64>,
    perr: Signal<bool>,
    // write pipeline
    wv: Signal<bool>,
    wdone: Signal<bool>,
}

/// Internal per-bank state the port processes capture by handle. The
/// model keeps a second copy of the handles so checkpointing can read
/// and force every stateful signal without reaching into the closures.
#[derive(Clone, Copy)]
struct ScBankInternal {
    sram: u32,
    ra1: Signal<u64>,
    ra2: Signal<u64>,
    word_hold: Signal<u64>,
    wa_c: Signal<u64>,
    wd_lo_c: Signal<u64>,
    wd_hi_c: Signal<u64>,
    be_c: Signal<u32>,
    hi_err: Signal<bool>,
    beat2: Signal<bool>,
    beat2_addr: Signal<u64>,
}

/// A recorded monitor violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScViolation {
    /// Directive name.
    pub property: String,
    /// Cycle index at which the monitor reported `P_status && !P_value`.
    pub cycle: u64,
}

/// The LA-1 interface at the SystemC level.
///
/// See the crate-level quickstart for an example.
pub struct LaSystemC {
    sim: Simulator,
    cfg: LaConfig,
    k: Signal<bool>,
    k_bar: Signal<bool>,
    banks: Vec<ScBank>,
    internals: Vec<ScBankInternal>,
    monitors: Vec<(String, Property, BoundMonitor)>,
    monitor_signal_order: Vec<String>,
    violations: Vec<ScViolation>,
    cycles: u64,
    /// channel handles into the kernel arena for state shared with the
    /// port processes
    trace_chan: u32,
    trace_enabled_chan: u32,
    parity_fault_chan: u32,
    /// cycle number visible to the tracing processes
    cycle_chan: u32,
    /// reusable monitor-snapshot buffer (hot path of Table 3)
    snapshot: Vec<bool>,
    /// cycle of the most recent read request (burst protocol check)
    last_read: Option<u64>,
}

impl std::fmt::Debug for LaSystemC {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaSystemC")
            .field("banks", &self.banks.len())
            .field("cycles", &self.cycles)
            .field("monitors", &self.monitors.len())
            .finish()
    }
}

impl LaSystemC {
    /// Elaborates the model for `config`.
    pub fn new(config: &LaConfig) -> Self {
        let mut sim = Simulator::new();
        let k = sim.signal("K", false);
        let k_bar = sim.signal("K#", true);

        let word_mask = config.mask_word(u64::MAX);
        let trace_chan = sim.add_channel(Vec::<ObservedMessage>::new());
        let trace_enabled_chan = sim.add_channel(false);
        let parity_fault_chan = sim.add_channel(None::<u32>);
        let cycle_chan = sim.add_channel(0u64);

        let mut banks = Vec::new();
        let mut internals = Vec::new();
        for b in 0..config.banks {
            let bank = ScBank {
                rd_req: sim.signal(format!("rd_req_{b}"), false),
                rd_addr: sim.signal(format!("rd_addr_{b}"), 0),
                wr_req: sim.signal(format!("wr_req_{b}"), false),
                wr_addr: sim.signal(format!("wr_addr_{b}"), 0),
                wr_data_lo: sim.signal(format!("wr_data_lo_{b}"), 0),
                wr_data_hi: sim.signal(format!("wr_data_hi_{b}"), 0),
                wr_byte_en: sim.signal(format!("wr_byte_en_{b}"), 0),
                rv1: sim.signal(format!("rv1_{b}"), false),
                rv2: sim.signal(format!("rv2_{b}"), false),
                dv: sim.signal(format!("dv_{b}"), false),
                out_lo: sim.signal(format!("out_lo_{b}"), 0),
                out_hi: sim.signal(format!("out_hi_{b}"), 0),
                out_par_lo: sim.signal(format!("out_par_lo_{b}"), 0),
                out_par_hi: sim.signal(format!("out_par_hi_{b}"), 0),
                perr: sim.signal(format!("perr_{b}"), false),
                wv: sim.signal(format!("wv_{b}"), false),
                wdone: sim.signal(format!("wdone_{b}"), false),
            };
            let sram = sim.add_channel(vec![0u64; config.words_per_bank as usize]);
            // internal pipeline state shared by the two port processes
            let ra1 = sim.signal(format!("ra1_{b}"), 0u64);
            let ra2 = sim.signal(format!("ra2_{b}"), 0u64);
            let word_hold = sim.signal(format!("word_hold_{b}"), 0u64);
            let wa_c = sim.signal(format!("wa_c_{b}"), 0u64);
            let wd_lo_c = sim.signal(format!("wd_lo_c_{b}"), 0u64);
            let wd_hi_c = sim.signal(format!("wd_hi_c_{b}"), 0u64);
            let be_c = sim.signal(format!("be_c_{b}"), 0u32);
            let hi_err_latch = sim.signal(format!("hi_err_{b}"), false);
            // LA-1B burst extension: the second beat's pending flag and
            // auto-incremented address
            let beat2 = sim.signal(format!("beat2_{b}"), false);
            let beat2_addr = sim.signal(format!("beat2_addr_{b}"), 0u64);
            internals.push(ScBankInternal {
                sram,
                ra1,
                ra2,
                word_hold,
                wa_c,
                wd_lo_c,
                wd_hi_c,
                be_c,
                hi_err: hi_err_latch,
                beat2,
                beat2_addr,
            });

            // --- ReadPort module ------------------------------------
            {
                let cfg = config.clone();
                let bk = bank;
                let hi_err = hi_err_latch;
                let sens = [k.event()];
                let burst = cfg.is_burst();
                sim.process(format!("read_port_{b}"), &sens, move |st| {
                    let trace_on = *st.channel::<bool>(trace_enabled_chan);
                    let pfault = *st.channel::<Option<u32>>(parity_fault_chan);
                    let cyc = *st.channel::<u64>(cycle_chan) as u32;
                    if k.read(st) {
                        // rising edge of K; in burst mode a pending
                        // second beat also drives the bus this cycle
                        let beat = burst && beat2.read(st);
                        let producing = bk.rv2.read(st) || beat;
                        bk.dv.write(st, producing);
                        // schedule the burst's second beat
                        if burst {
                            beat2.write(st, bk.rv2.read(st));
                            beat2_addr.write(st, (ra2.read(st) + 1) % cfg.words_per_bank as u64);
                        }
                        if producing {
                            let read_addr = if bk.rv2.read(st) {
                                ra2.read(st)
                            } else {
                                beat2_addr.read(st)
                            };
                            let word = st.channel::<Vec<u64>>(sram)[read_addr as usize];
                            word_hold.write(st, word);
                            let lo = cfg.low_half(word);
                            bk.out_lo.write(st, lo);
                            let mut p = byte_parity(lo, cfg.half_width());
                            if pfault == Some(b) {
                                p ^= 1; // injected parity fault
                            }
                            bk.out_par_lo.write(st, p);
                            if trace_on {
                                st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                    ObservedMessage {
                                        from: "ReadPort".into(),
                                        to: "NetworkProcessor".into(),
                                        method: "OnReadRequest".into(),
                                        cycle: cyc,
                                        clock: ClockRef::K,
                                    },
                                );
                            }
                        } else {
                            bk.out_lo.write(st, 0);
                            bk.out_par_lo.write(st, 0);
                        }
                        // parity check of the previous rising half plus
                        // the latched falling-half verdict
                        let lo_now = if producing {
                            let read_addr = if bk.rv2.read(st) {
                                ra2.read(st)
                            } else {
                                beat2_addr.read(st)
                            };
                            cfg.low_half(st.channel::<Vec<u64>>(sram)[read_addr as usize])
                        } else {
                            0
                        };
                        let expect = byte_parity(lo_now, cfg.half_width());
                        let drive = if pfault == Some(b) && producing {
                            expect ^ 1
                        } else {
                            expect
                        };
                        bk.perr
                            .write(st, (producing && drive != expect) || hi_err.read(st));
                        // pipeline shift
                        bk.rv2.write(st, bk.rv1.read(st));
                        ra2.write(st, ra1.read(st));
                        let accepted = bk.rd_req.read(st);
                        bk.rv1.write(st, accepted);
                        ra1.write(st, bk.rd_addr.read(st));
                        if accepted && trace_on {
                            st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                ObservedMessage {
                                    from: "NetworkProcessor".into(),
                                    to: "ReadPort".into(),
                                    method: "OnReadRequest".into(),
                                    cycle: cyc,
                                    clock: ClockRef::K,
                                },
                            );
                        }
                        if bk.rv1.read(st) && trace_on {
                            // the stage-1 request accesses the SRAM now
                            st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                ObservedMessage {
                                    from: "ReadPort".into(),
                                    to: "SramMemory".into(),
                                    method: "LA1_SRAM_OnReadRequest".into(),
                                    cycle: cyc,
                                    clock: ClockRef::K,
                                },
                            );
                            st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                ObservedMessage {
                                    from: "ReadPort".into(),
                                    to: "ReadPort".into(),
                                    method: "FormatData".into(),
                                    cycle: cyc,
                                    clock: ClockRef::K,
                                },
                            );
                        }
                    } else {
                        // falling edge: drive the high DDR half
                        if bk.dv.read(st) {
                            let word = word_hold.read(st);
                            let hi = cfg.high_half(word);
                            bk.out_hi.write(st, hi);
                            let mut p = byte_parity(hi, cfg.half_width());
                            if pfault == Some(b) {
                                p ^= 1;
                            }
                            bk.out_par_hi.write(st, p);
                            hi_err.write(st, p != byte_parity(hi, cfg.half_width()));
                            if trace_on {
                                st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                    ObservedMessage {
                                        from: "ReadPort".into(),
                                        to: "NetworkProcessor".into(),
                                        method: "OnReadRequest".into(),
                                        cycle: cyc,
                                        clock: ClockRef::KBar,
                                    },
                                );
                            }
                        } else {
                            bk.out_hi.write(st, 0);
                            bk.out_par_hi.write(st, 0);
                            hi_err.write(st, false);
                        }
                    }
                });
            }

            // --- WritePort module -----------------------------------
            {
                let cfg = config.clone();
                let bk = bank;
                let sens = [k.event()];
                let mask_word = word_mask;
                sim.process(format!("write_port_{b}"), &sens, move |st| {
                    let trace_on = *st.channel::<bool>(trace_enabled_chan);
                    let cyc = *st.channel::<u64>(cycle_chan) as u32;
                    if k.read(st) {
                        // rising edge: commit the write accepted last
                        // cycle FIRST, using pre-update signal reads so
                        // back-to-back writes do not clobber the capture
                        // registers. (The read port of this bank runs
                        // earlier in the delta, so a concurrent read
                        // still observes the pre-commit memory — the
                        // read-before-write ordering all levels share.)
                        if bk.wv.read(st) {
                            let addr = wa_c.read(st) as usize;
                            let word = (wd_lo_c.read(st) | (wd_hi_c.read(st) << cfg.half_width()))
                                & mask_word;
                            let bit_mask = cfg.bit_mask_of(be_c.read(st));
                            let mem: &mut Vec<u64> = st.channel_mut(sram);
                            mem[addr] = (mem[addr] & !bit_mask) | (word & bit_mask);
                            if trace_on {
                                st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                    ObservedMessage {
                                        from: "WritePort".into(),
                                        to: "SramMemory".into(),
                                        method: "LA1_SRAM_OnWriteData".into(),
                                        cycle: cyc,
                                        clock: ClockRef::K,
                                    },
                                );
                            }
                        }
                        bk.wdone.write(st, bk.wv.read(st));
                        // accept a new write; capture address + low half
                        let accepted = bk.wr_req.read(st);
                        bk.wv.write(st, accepted);
                        if accepted {
                            wa_c.write(st, bk.wr_addr.read(st));
                            wd_lo_c.write(st, bk.wr_data_lo.read(st));
                            be_c.write(st, bk.wr_byte_en.read(st));
                            if trace_on {
                                st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                    ObservedMessage {
                                        from: "NetworkProcessor".into(),
                                        to: "WritePort".into(),
                                        method: "OnWriteRequest".into(),
                                        cycle: cyc,
                                        clock: ClockRef::K,
                                    },
                                );
                            }
                        }
                    } else {
                        // falling edge: capture the high data half of a
                        // newly accepted write (DDR input path)
                        if bk.wv.read(st) {
                            wd_hi_c.write(st, bk.wr_data_hi.read(st));
                            if trace_on {
                                st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                    ObservedMessage {
                                        from: "NetworkProcessor".into(),
                                        to: "WritePort".into(),
                                        method: "OnReceiveData".into(),
                                        cycle: cyc,
                                        clock: ClockRef::KBar,
                                    },
                                );
                            }
                        }
                    }
                });
            }

            banks.push(bank);
        }

        let mut la1 = LaSystemC {
            sim,
            cfg: config.clone(),
            k,
            k_bar,
            banks,
            internals,
            monitors: Vec::new(),
            monitor_signal_order: monitor_signal_names(config.banks),
            violations: Vec::new(),
            cycles: 0,
            trace_chan,
            trace_enabled_chan,
            parity_fault_chan,
            cycle_chan,
            snapshot: Vec::new(),
            last_read: None,
        };
        la1.sim.run_deltas(); // SystemC-style initialization run
        la1
    }

    /// Attaches PSL directives as external monitors (the paper's
    /// "assertion monitors in C#").
    pub fn attach_monitors(&mut self, directives: &[Directive]) {
        let names: Vec<&str> = self
            .monitor_signal_order
            .iter()
            .map(String::as_str)
            .collect();
        for d in directives {
            self.monitors.push((
                d.name.clone(),
                d.property.clone(),
                Monitor::new(&d.property).bind(&names),
            ));
        }
    }

    /// Attaches the default cycle-level property suite (burst-aware).
    pub fn attach_default_monitors(&mut self) {
        let dirs = cycle_properties_for(&self.cfg);
        self.attach_monitors(&dirs);
    }

    /// Advances one full clock cycle with the given operations applied
    /// at the rising edge.
    ///
    /// # Panics
    ///
    /// Panics if an operation targets a bank or address out of range.
    pub fn cycle(&mut self, ops: &[BankOp]) {
        *self.sim.channel_mut::<u64>(self.cycle_chan) = self.cycles;
        // present requests (setup before the rising edge)
        for bank in &self.banks {
            bank.rd_req.write(&mut self.sim, false);
            bank.wr_req.write(&mut self.sim, false);
        }
        for op in ops {
            let bank = self.banks[op.bank() as usize];
            match *op {
                BankOp::Read { addr, .. } => {
                    assert!(addr < self.cfg.words_per_bank as u64, "read address range");
                    if self.cfg.is_burst() {
                        // LA-1B: the output bus is busy for burst_len
                        // cycles, so reads must be spaced accordingly
                        assert!(
                            self.last_read
                                .is_none_or(|c| { self.cycles - c >= self.cfg.burst_len as u64 }),
                            "burst protocol violation: reads must be {} cycles apart",
                            self.cfg.burst_len
                        );
                    }
                    self.last_read = Some(self.cycles);
                    bank.rd_req.write(&mut self.sim, true);
                    bank.rd_addr.write(&mut self.sim, addr);
                }
                BankOp::Write {
                    addr,
                    data,
                    byte_en,
                    ..
                } => {
                    assert!(addr < self.cfg.words_per_bank as u64, "write address range");
                    bank.wr_req.write(&mut self.sim, true);
                    bank.wr_addr.write(&mut self.sim, addr);
                    let data = self.cfg.mask_word(data);
                    bank.wr_data_lo.write(&mut self.sim, self.cfg.low_half(data));
                    bank.wr_data_hi
                        .write(&mut self.sim, self.cfg.high_half(data));
                    bank.wr_byte_en.write(&mut self.sim, byte_en);
                }
            }
        }
        // rising edge of K / falling of K# (the request updates settle
        // in the same instant, before the edge-sensitive processes run)
        self.k.write(&mut self.sim, true);
        self.k_bar.write(&mut self.sim, false);
        self.sim.run_deltas();
        // sample the monitors at the settled rising edge
        self.sample_monitors();
        // falling edge of K / rising of K#
        self.k.write(&mut self.sim, false);
        self.k_bar.write(&mut self.sim, true);
        self.sim.run_deltas();
        self.cycles += 1;
    }

    fn sample_monitors(&mut self) {
        if self.monitors.is_empty() {
            return;
        }
        self.snapshot.clear();
        for bank in &self.banks {
            self.snapshot.push(bank.rv1.read(&self.sim));
            self.snapshot.push(bank.wv.read(&self.sim));
            self.snapshot.push(bank.dv.read(&self.sim));
            self.snapshot.push(bank.perr.read(&self.sim));
            self.snapshot.push(bank.wdone.read(&self.sim));
        }
        let snapshot = &self.snapshot;
        for (name, _, mon) in &mut self.monitors {
            let st = mon.step(snapshot);
            if st.is_violation() && !self.violations.iter().any(|v| v.property == *name) {
                self.violations.push(ScViolation {
                    property: name.clone(),
                    cycle: self.cycles,
                });
            }
        }
    }

    /// The word a bank is currently driving, if its data-valid flag is
    /// set (both DDR halves merged).
    pub fn bank_output(&self, bank: u32) -> Option<u64> {
        let b = &self.banks[bank as usize];
        if !b.dv.read(&self.sim) {
            return None;
        }
        Some(b.out_lo.read(&self.sim) | (b.out_hi.read(&self.sim) << self.cfg.half_width()))
    }

    /// Whether a bank's parity checker currently flags an error.
    pub fn parity_error(&self, bank: u32) -> bool {
        self.banks[bank as usize].perr.read(&self.sim)
    }

    /// Whether a bank reports a completed write this cycle.
    pub fn write_done(&self, bank: u32) -> bool {
        self.banks[bank as usize].wdone.read(&self.sim)
    }

    /// Recorded monitor violations.
    pub fn violations(&self) -> &[ScViolation] {
        &self.violations
    }

    /// Completed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total kernel process activations (simulator-load statistic).
    pub fn activations(&self) -> u64 {
        self.sim.activations()
    }

    /// Starts recording the message trace (Fig. 3 checking).
    pub fn enable_trace(&mut self) {
        *self.sim.channel_mut::<bool>(self.trace_enabled_chan) = true;
    }

    /// The recorded message trace.
    pub fn trace(&self) -> Vec<ObservedMessage> {
        self.sim
            .channel::<Vec<ObservedMessage>>(self.trace_chan)
            .clone()
    }

    /// Injects a parity-generation fault on `bank` (for testing the
    /// monitors and the OVL comparison).
    pub fn inject_parity_fault(&mut self, bank: u32) {
        *self.sim.channel_mut::<Option<u32>>(self.parity_fault_chan) = Some(bank);
    }

    /// Clears an injected parity fault.
    pub fn clear_parity_fault(&mut self) {
        *self.sim.channel_mut::<Option<u32>>(self.parity_fault_chan) = None;
    }

    /// Captures the model's complete dynamic state at a cycle boundary.
    ///
    /// At a boundary the event kernel is quiescent (no queued updates,
    /// no notified processes, no timed events), so the model's state is
    /// exactly: every signal's current value, every channel's contents,
    /// the kernel's statistic counters, the attached monitors'
    /// obligation state, and the host-side bookkeeping. Restoring that
    /// into a freshly elaborated model ([`LaSystemC::restore_state`])
    /// continues byte-for-byte identically to never having stopped.
    ///
    /// # Errors
    ///
    /// Fails if called mid-delta (only possible from inside a process)
    /// or if a monitor holds state foreign to its property.
    pub fn snapshot_state(&self) -> Result<ScSnap, String> {
        if !self.sim.is_settled() {
            return Err("cannot snapshot between delta cycles".to_string());
        }
        let st = &self.sim;
        let mut banks = Vec::with_capacity(self.banks.len());
        for (bank, inner) in self.banks.iter().zip(&self.internals) {
            banks.push(ScBankSnap {
                rd_req: bank.rd_req.read(st),
                rd_addr: bank.rd_addr.read(st),
                wr_req: bank.wr_req.read(st),
                wr_addr: bank.wr_addr.read(st),
                wr_data_lo: bank.wr_data_lo.read(st),
                wr_data_hi: bank.wr_data_hi.read(st),
                wr_byte_en: bank.wr_byte_en.read(st),
                rv1: bank.rv1.read(st),
                rv2: bank.rv2.read(st),
                dv: bank.dv.read(st),
                out_lo: bank.out_lo.read(st),
                out_hi: bank.out_hi.read(st),
                out_par_lo: bank.out_par_lo.read(st),
                out_par_hi: bank.out_par_hi.read(st),
                perr: bank.perr.read(st),
                wv: bank.wv.read(st),
                wdone: bank.wdone.read(st),
                ra1: inner.ra1.read(st),
                ra2: inner.ra2.read(st),
                word_hold: inner.word_hold.read(st),
                wa_c: inner.wa_c.read(st),
                wd_lo_c: inner.wd_lo_c.read(st),
                wd_hi_c: inner.wd_hi_c.read(st),
                be_c: inner.be_c.read(st),
                hi_err: inner.hi_err.read(st),
                beat2: inner.beat2.read(st),
                beat2_addr: inner.beat2_addr.read(st),
                sram: st.channel::<Vec<u64>>(inner.sram).clone(),
            });
        }
        let mut monitors = Vec::with_capacity(self.monitors.len());
        for (name, prop, mon) in &self.monitors {
            let snap = mon
                .snapshot(prop)
                .map_err(|e| format!("monitor {name}: {e}"))?;
            monitors.push((name.clone(), snap));
        }
        Ok(ScSnap {
            k: self.k.read(st),
            k_bar: self.k_bar.read(st),
            banks,
            trace: st.channel::<Vec<ObservedMessage>>(self.trace_chan).clone(),
            trace_enabled: *st.channel::<bool>(self.trace_enabled_chan),
            parity_fault: *st.channel::<Option<u32>>(self.parity_fault_chan),
            kernel: st.kernel_stats(),
            monitors,
            violations: self.violations.clone(),
            cycles: self.cycles,
            last_read: self.last_read,
        })
    }

    /// Installs a [`LaSystemC::snapshot_state`] snapshot into this
    /// model, which must be freshly elaborated for the same
    /// configuration with the same monitors attached in the same order.
    ///
    /// Every stateful signal is forced to its captured value, channels
    /// and kernel counters are overwritten, and each monitor's
    /// obligation state is rebuilt against its stored property — no
    /// delta cycles run, because the snapshot was taken settled.
    ///
    /// # Errors
    ///
    /// Fails (leaving the model in an unspecified state that should be
    /// discarded) if the bank count, SRAM geometry or monitor list does
    /// not match the snapshot.
    pub fn restore_state(&mut self, snap: &ScSnap) -> Result<(), String> {
        if snap.banks.len() != self.banks.len() {
            return Err(format!(
                "snapshot has {} banks, model has {}",
                snap.banks.len(),
                self.banks.len()
            ));
        }
        if snap.monitors.len() != self.monitors.len() {
            return Err(format!(
                "snapshot has {} monitors, model has {}",
                snap.monitors.len(),
                self.monitors.len()
            ));
        }
        let st = &mut self.sim;
        self.k.force(st, snap.k);
        self.k_bar.force(st, snap.k_bar);
        for ((bank, inner), bs) in self.banks.iter().zip(&self.internals).zip(&snap.banks) {
            if bs.sram.len() != st.channel::<Vec<u64>>(inner.sram).len() {
                return Err(format!(
                    "snapshot SRAM has {} words, model has {}",
                    bs.sram.len(),
                    st.channel::<Vec<u64>>(inner.sram).len()
                ));
            }
            bank.rd_req.force(st, bs.rd_req);
            bank.rd_addr.force(st, bs.rd_addr);
            bank.wr_req.force(st, bs.wr_req);
            bank.wr_addr.force(st, bs.wr_addr);
            bank.wr_data_lo.force(st, bs.wr_data_lo);
            bank.wr_data_hi.force(st, bs.wr_data_hi);
            bank.wr_byte_en.force(st, bs.wr_byte_en);
            bank.rv1.force(st, bs.rv1);
            bank.rv2.force(st, bs.rv2);
            bank.dv.force(st, bs.dv);
            bank.out_lo.force(st, bs.out_lo);
            bank.out_hi.force(st, bs.out_hi);
            bank.out_par_lo.force(st, bs.out_par_lo);
            bank.out_par_hi.force(st, bs.out_par_hi);
            bank.perr.force(st, bs.perr);
            bank.wv.force(st, bs.wv);
            bank.wdone.force(st, bs.wdone);
            inner.ra1.force(st, bs.ra1);
            inner.ra2.force(st, bs.ra2);
            inner.word_hold.force(st, bs.word_hold);
            inner.wa_c.force(st, bs.wa_c);
            inner.wd_lo_c.force(st, bs.wd_lo_c);
            inner.wd_hi_c.force(st, bs.wd_hi_c);
            inner.be_c.force(st, bs.be_c);
            inner.hi_err.force(st, bs.hi_err);
            inner.beat2.force(st, bs.beat2);
            inner.beat2_addr.force(st, bs.beat2_addr);
            st.channel_mut::<Vec<u64>>(inner.sram).clone_from(&bs.sram);
        }
        st.channel_mut::<Vec<ObservedMessage>>(self.trace_chan)
            .clone_from(&snap.trace);
        *st.channel_mut::<bool>(self.trace_enabled_chan) = snap.trace_enabled;
        *st.channel_mut::<Option<u32>>(self.parity_fault_chan) = snap.parity_fault;
        st.restore_kernel_stats(snap.kernel);
        let names: Vec<&str> = self
            .monitor_signal_order
            .iter()
            .map(String::as_str)
            .collect();
        for ((name, prop, mon), (snap_name, ms)) in
            self.monitors.iter_mut().zip(&snap.monitors)
        {
            if name != snap_name {
                return Err(format!(
                    "monitor mismatch: model has {name}, snapshot has {snap_name}"
                ));
            }
            *mon = BoundMonitor::restore(prop, &names, ms)
                .map_err(|e| format!("monitor {name}: {e}"))?;
        }
        self.violations.clone_from(&snap.violations);
        self.cycles = snap.cycles;
        self.last_read = snap.last_read;
        Ok(())
    }
}

/// Snapshot of one bank's signals and SRAM contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScBankSnap {
    /// Host-side request signals (quiescent between cycles, captured
    /// for completeness).
    pub rd_req: bool,
    /// Read address input.
    pub rd_addr: u64,
    /// Write request input.
    pub wr_req: bool,
    /// Write address input.
    pub wr_addr: u64,
    /// Write data, low DDR half.
    pub wr_data_lo: u64,
    /// Write data, high DDR half.
    pub wr_data_hi: u64,
    /// Byte enables of the pending write.
    pub wr_byte_en: u32,
    /// Read pipeline stage-1 valid.
    pub rv1: bool,
    /// Read pipeline stage-2 valid.
    pub rv2: bool,
    /// Data-valid output.
    pub dv: bool,
    /// Output word, low half.
    pub out_lo: u64,
    /// Output word, high half.
    pub out_hi: u64,
    /// Output parity, low half.
    pub out_par_lo: u64,
    /// Output parity, high half.
    pub out_par_hi: u64,
    /// Parity-error flag.
    pub perr: bool,
    /// Write accepted flag.
    pub wv: bool,
    /// Write done flag.
    pub wdone: bool,
    /// Read pipeline stage-1 address.
    pub ra1: u64,
    /// Read pipeline stage-2 address.
    pub ra2: u64,
    /// The word held for the falling-edge DDR half.
    pub word_hold: u64,
    /// Captured write address.
    pub wa_c: u64,
    /// Captured write data, low half.
    pub wd_lo_c: u64,
    /// Captured write data, high half.
    pub wd_hi_c: u64,
    /// Captured byte enables.
    pub be_c: u32,
    /// Latched high-half parity error.
    pub hi_err: bool,
    /// LA-1B second-beat pending flag.
    pub beat2: bool,
    /// LA-1B second-beat address.
    pub beat2_addr: u64,
    /// The bank's SRAM contents.
    pub sram: Vec<u64>,
}

/// A plain-data snapshot of a [`LaSystemC`] model at a cycle boundary
/// — see [`LaSystemC::snapshot_state`]. Serialization lives in the
/// checkpoint layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScSnap {
    /// Clock `K` level (low between cycles).
    pub k: bool,
    /// Clock `K#` level.
    pub k_bar: bool,
    /// Per-bank signal and SRAM state.
    pub banks: Vec<ScBankSnap>,
    /// The recorded UML message trace.
    pub trace: Vec<ObservedMessage>,
    /// Whether trace recording is on.
    pub trace_enabled: bool,
    /// An injected parity fault, if armed.
    pub parity_fault: Option<u32>,
    /// Kernel statistic counters: (time, timed_seq, activations,
    /// deltas, updates_applied).
    pub kernel: (u64, u64, u64, u64, u64),
    /// Per-monitor obligation state, in attach order.
    pub monitors: Vec<(String, MonitorSnap)>,
    /// Recorded property violations.
    pub violations: Vec<ScViolation>,
    /// Completed cycles.
    pub cycles: u64,
    /// Cycle of the most recent read (burst spacing check).
    pub last_read: Option<u64>,
}

/// The fixed monitor signal order: per bank `rd{b}`, `wr{b}`, `dv{b}`,
/// `perr{b}`, `wdone{b}`.
pub fn monitor_signal_names(banks: u32) -> Vec<String> {
    let mut names = Vec::new();
    for b in 0..banks {
        names.push(format!("rd{b}"));
        names.push(format!("wr{b}"));
        names.push(format!("dv{b}"));
        names.push(format!("perr{b}"));
        names.push(format!("wdone{b}"));
    }
    names
}

impl StepSystem for LaSystemC {
    fn reset(&mut self) {
        // rebuild from scratch: event-driven state is not otherwise
        // rewindable
        let monitors_attached = !self.monitors.is_empty();
        *self = LaSystemC::new(&self.cfg.clone());
        if monitors_attached {
            self.attach_default_monitors();
        }
    }

    fn enabled_actions(&self) -> Vec<String> {
        vec![
            "init".to_string(),
            "tick".to_string(),
            "read".to_string(),
            "write".to_string(),
        ]
    }

    fn apply(&mut self, action: &str) -> bool {
        let parts: Vec<&str> = action.split_whitespace().collect();
        let in_range = |b: usize, a: u64| b < self.banks.len() && a < self.banks_words();
        match parts.as_slice() {
            ["init"] => true, // elaboration already happened
            ["tick"] => {
                self.cycle(&[]);
                true
            }
            ["read", b, a] => {
                let (Ok(b), Ok(a)) = (b.parse::<usize>(), a.parse::<u64>()) else {
                    return false;
                };
                if !in_range(b, a) {
                    return false;
                }
                self.cycle(&[BankOp::read(b as u32, a)]);
                true
            }
            ["write", b, a, d] => {
                let (Ok(b), Ok(a), Ok(d)) = (b.parse::<usize>(), a.parse::<u64>(), d.parse::<u64>())
                else {
                    return false;
                };
                if !in_range(b, a) {
                    return false;
                }
                let full = (1u32 << self.cfg.byte_enables()) - 1;
                self.cycle(&[BankOp::write(b as u32, a, d, full)]);
                true
            }
            ["rw", rb, ra, wb, wa, d] => {
                let (Ok(rb), Ok(ra), Ok(wb), Ok(wa), Ok(d)) = (
                    rb.parse::<usize>(),
                    ra.parse::<u64>(),
                    wb.parse::<usize>(),
                    wa.parse::<u64>(),
                    d.parse::<u64>(),
                ) else {
                    return false;
                };
                if !in_range(rb, ra) || !in_range(wb, wa) {
                    return false;
                }
                let full = (1u32 << self.cfg.byte_enables()) - 1;
                self.cycle(&[
                    BankOp::read(rb as u32, ra),
                    BankOp::write(wb as u32, wa, d, full),
                ]);
                true
            }
            _ => false,
        }
    }

    fn observe(&self) -> Vec<(String, Value)> {
        let mut obs = Vec::new();
        for (b, bank) in self.banks.iter().enumerate() {
            let dv = bank.dv.read(&self.sim);
            obs.push((format!("dv{b}"), Value::Bool(dv)));
            let out = if dv {
                (bank.out_lo.read(&self.sim) | (bank.out_hi.read(&self.sim) << self.cfg.half_width()))
                    as i64
            } else {
                0
            };
            obs.push((format!("out{b}"), Value::Int(out)));
            obs.push((format!("wdone{b}"), Value::Bool(bank.wdone.read(&self.sim))));
        }
        obs
    }
}

impl LaSystemC {
    fn banks_words(&self) -> u64 {
        self.cfg.words_per_bank as u64
    }
}
