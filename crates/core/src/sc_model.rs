//! The SystemC-level LA-1 model with attached compiled PSL monitors.
//!
//! The paper translates the verified ASM model to SystemC by syntactic
//! mapping (classes → modules, preconditions → triggering conditions)
//! and attaches the PSL properties as *external monitors compiled to
//! C#*. Here the modules are processes over `la1-eventsim` signals and
//! the monitors are `la1-psl` [`BoundMonitor`]s stepped once per clock
//! cycle — compiled Rust playing the role of compiled C#/C++.
//!
//! State shared between the port processes (the SRAM array, the message
//! trace, the fault switches) lives in the kernel's channel arena and
//! is reached through the `&mut SimState` each process receives; the
//! model captures only `Copy` signal and channel handles, so the
//! per-cycle hot path runs without `Rc`/`RefCell`.
//!
//! Timing (matching the ASM model and Fig. 3):
//!
//! * rising `K` of cycle *n*: requests are sampled; the read pipeline
//!   shifts; data for a read issued at *n − 2* is driven (low half);
//!   a write accepted at *n − 1* reports `wdone`;
//! * falling `K` of cycle *n*: the read data high half is driven; the
//!   `wdone` write commits to the SRAM; the write data high half is
//!   captured.

use crate::properties::cycle_properties_for;
use crate::spec::{byte_parity, BankOp, LaConfig};
use crate::uml::{ClockRef, ObservedMessage};
use la1_asm::{StepSystem, Value};
use la1_eventsim::{Signal, Simulator};
use la1_psl::{BoundMonitor, Directive, Monitor};

/// Signals of one bank's read and write ports (all `Copy` handles).
#[derive(Clone, Copy)]
struct ScBank {
    // host request side
    rd_req: Signal<bool>,
    rd_addr: Signal<u64>,
    wr_req: Signal<bool>,
    wr_addr: Signal<u64>,
    wr_data_lo: Signal<u64>,
    wr_data_hi: Signal<u64>,
    wr_byte_en: Signal<u32>,
    // read pipeline
    rv1: Signal<bool>,
    rv2: Signal<bool>,
    dv: Signal<bool>,
    out_lo: Signal<u64>,
    out_hi: Signal<u64>,
    out_par_lo: Signal<u64>,
    out_par_hi: Signal<u64>,
    perr: Signal<bool>,
    // write pipeline
    wv: Signal<bool>,
    wdone: Signal<bool>,
}

/// A recorded monitor violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScViolation {
    /// Directive name.
    pub property: String,
    /// Cycle index at which the monitor reported `P_status && !P_value`.
    pub cycle: u64,
}

/// The LA-1 interface at the SystemC level.
///
/// See the crate-level quickstart for an example.
pub struct LaSystemC {
    sim: Simulator,
    cfg: LaConfig,
    k: Signal<bool>,
    k_bar: Signal<bool>,
    banks: Vec<ScBank>,
    monitors: Vec<(String, BoundMonitor)>,
    monitor_signal_order: Vec<String>,
    violations: Vec<ScViolation>,
    cycles: u64,
    /// channel handles into the kernel arena for state shared with the
    /// port processes
    trace_chan: u32,
    trace_enabled_chan: u32,
    parity_fault_chan: u32,
    /// cycle number visible to the tracing processes
    cycle_chan: u32,
    /// reusable monitor-snapshot buffer (hot path of Table 3)
    snapshot: Vec<bool>,
    /// cycle of the most recent read request (burst protocol check)
    last_read: Option<u64>,
}

impl std::fmt::Debug for LaSystemC {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaSystemC")
            .field("banks", &self.banks.len())
            .field("cycles", &self.cycles)
            .field("monitors", &self.monitors.len())
            .finish()
    }
}

impl LaSystemC {
    /// Elaborates the model for `config`.
    pub fn new(config: &LaConfig) -> Self {
        let mut sim = Simulator::new();
        let k = sim.signal("K", false);
        let k_bar = sim.signal("K#", true);

        let word_mask = config.mask_word(u64::MAX);
        let trace_chan = sim.add_channel(Vec::<ObservedMessage>::new());
        let trace_enabled_chan = sim.add_channel(false);
        let parity_fault_chan = sim.add_channel(None::<u32>);
        let cycle_chan = sim.add_channel(0u64);

        let mut banks = Vec::new();
        for b in 0..config.banks {
            let bank = ScBank {
                rd_req: sim.signal(format!("rd_req_{b}"), false),
                rd_addr: sim.signal(format!("rd_addr_{b}"), 0),
                wr_req: sim.signal(format!("wr_req_{b}"), false),
                wr_addr: sim.signal(format!("wr_addr_{b}"), 0),
                wr_data_lo: sim.signal(format!("wr_data_lo_{b}"), 0),
                wr_data_hi: sim.signal(format!("wr_data_hi_{b}"), 0),
                wr_byte_en: sim.signal(format!("wr_byte_en_{b}"), 0),
                rv1: sim.signal(format!("rv1_{b}"), false),
                rv2: sim.signal(format!("rv2_{b}"), false),
                dv: sim.signal(format!("dv_{b}"), false),
                out_lo: sim.signal(format!("out_lo_{b}"), 0),
                out_hi: sim.signal(format!("out_hi_{b}"), 0),
                out_par_lo: sim.signal(format!("out_par_lo_{b}"), 0),
                out_par_hi: sim.signal(format!("out_par_hi_{b}"), 0),
                perr: sim.signal(format!("perr_{b}"), false),
                wv: sim.signal(format!("wv_{b}"), false),
                wdone: sim.signal(format!("wdone_{b}"), false),
            };
            let sram = sim.add_channel(vec![0u64; config.words_per_bank as usize]);
            // internal pipeline state shared by the two port processes
            let ra1 = sim.signal(format!("ra1_{b}"), 0u64);
            let ra2 = sim.signal(format!("ra2_{b}"), 0u64);
            let word_hold = sim.signal(format!("word_hold_{b}"), 0u64);
            let wa_c = sim.signal(format!("wa_c_{b}"), 0u64);
            let wd_lo_c = sim.signal(format!("wd_lo_c_{b}"), 0u64);
            let be_c = sim.signal(format!("be_c_{b}"), 0u32);
            let hi_err_latch = sim.signal(format!("hi_err_{b}"), false);
            // LA-1B burst extension: the second beat's pending flag and
            // auto-incremented address
            let beat2 = sim.signal(format!("beat2_{b}"), false);
            let beat2_addr = sim.signal(format!("beat2_addr_{b}"), 0u64);

            // --- ReadPort module ------------------------------------
            {
                let cfg = config.clone();
                let bk = bank;
                let hi_err = hi_err_latch;
                let sens = [k.event()];
                let burst = cfg.is_burst();
                sim.process(format!("read_port_{b}"), &sens, move |st| {
                    let trace_on = *st.channel::<bool>(trace_enabled_chan);
                    let pfault = *st.channel::<Option<u32>>(parity_fault_chan);
                    let cyc = *st.channel::<u64>(cycle_chan) as u32;
                    if k.read(st) {
                        // rising edge of K; in burst mode a pending
                        // second beat also drives the bus this cycle
                        let beat = burst && beat2.read(st);
                        let producing = bk.rv2.read(st) || beat;
                        bk.dv.write(st, producing);
                        // schedule the burst's second beat
                        if burst {
                            beat2.write(st, bk.rv2.read(st));
                            beat2_addr.write(st, (ra2.read(st) + 1) % cfg.words_per_bank as u64);
                        }
                        if producing {
                            let read_addr = if bk.rv2.read(st) {
                                ra2.read(st)
                            } else {
                                beat2_addr.read(st)
                            };
                            let word = st.channel::<Vec<u64>>(sram)[read_addr as usize];
                            word_hold.write(st, word);
                            let lo = cfg.low_half(word);
                            bk.out_lo.write(st, lo);
                            let mut p = byte_parity(lo, cfg.half_width());
                            if pfault == Some(b) {
                                p ^= 1; // injected parity fault
                            }
                            bk.out_par_lo.write(st, p);
                            if trace_on {
                                st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                    ObservedMessage {
                                        from: "ReadPort".into(),
                                        to: "NetworkProcessor".into(),
                                        method: "OnReadRequest".into(),
                                        cycle: cyc,
                                        clock: ClockRef::K,
                                    },
                                );
                            }
                        } else {
                            bk.out_lo.write(st, 0);
                            bk.out_par_lo.write(st, 0);
                        }
                        // parity check of the previous rising half plus
                        // the latched falling-half verdict
                        let lo_now = if producing {
                            let read_addr = if bk.rv2.read(st) {
                                ra2.read(st)
                            } else {
                                beat2_addr.read(st)
                            };
                            cfg.low_half(st.channel::<Vec<u64>>(sram)[read_addr as usize])
                        } else {
                            0
                        };
                        let expect = byte_parity(lo_now, cfg.half_width());
                        let drive = if pfault == Some(b) && producing {
                            expect ^ 1
                        } else {
                            expect
                        };
                        bk.perr
                            .write(st, (producing && drive != expect) || hi_err.read(st));
                        // pipeline shift
                        bk.rv2.write(st, bk.rv1.read(st));
                        ra2.write(st, ra1.read(st));
                        let accepted = bk.rd_req.read(st);
                        bk.rv1.write(st, accepted);
                        ra1.write(st, bk.rd_addr.read(st));
                        if accepted && trace_on {
                            st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                ObservedMessage {
                                    from: "NetworkProcessor".into(),
                                    to: "ReadPort".into(),
                                    method: "OnReadRequest".into(),
                                    cycle: cyc,
                                    clock: ClockRef::K,
                                },
                            );
                        }
                        if bk.rv1.read(st) && trace_on {
                            // the stage-1 request accesses the SRAM now
                            st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                ObservedMessage {
                                    from: "ReadPort".into(),
                                    to: "SramMemory".into(),
                                    method: "LA1_SRAM_OnReadRequest".into(),
                                    cycle: cyc,
                                    clock: ClockRef::K,
                                },
                            );
                            st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                ObservedMessage {
                                    from: "ReadPort".into(),
                                    to: "ReadPort".into(),
                                    method: "FormatData".into(),
                                    cycle: cyc,
                                    clock: ClockRef::K,
                                },
                            );
                        }
                    } else {
                        // falling edge: drive the high DDR half
                        if bk.dv.read(st) {
                            let word = word_hold.read(st);
                            let hi = cfg.high_half(word);
                            bk.out_hi.write(st, hi);
                            let mut p = byte_parity(hi, cfg.half_width());
                            if pfault == Some(b) {
                                p ^= 1;
                            }
                            bk.out_par_hi.write(st, p);
                            hi_err.write(st, p != byte_parity(hi, cfg.half_width()));
                            if trace_on {
                                st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                    ObservedMessage {
                                        from: "ReadPort".into(),
                                        to: "NetworkProcessor".into(),
                                        method: "OnReadRequest".into(),
                                        cycle: cyc,
                                        clock: ClockRef::KBar,
                                    },
                                );
                            }
                        } else {
                            bk.out_hi.write(st, 0);
                            bk.out_par_hi.write(st, 0);
                            hi_err.write(st, false);
                        }
                    }
                });
            }

            // --- WritePort module -----------------------------------
            {
                let cfg = config.clone();
                let bk = bank;
                let wd_hi_c = sim.signal(format!("wd_hi_c_{b}"), 0u64);
                let sens = [k.event()];
                let mask_word = word_mask;
                sim.process(format!("write_port_{b}"), &sens, move |st| {
                    let trace_on = *st.channel::<bool>(trace_enabled_chan);
                    let cyc = *st.channel::<u64>(cycle_chan) as u32;
                    if k.read(st) {
                        // rising edge: commit the write accepted last
                        // cycle FIRST, using pre-update signal reads so
                        // back-to-back writes do not clobber the capture
                        // registers. (The read port of this bank runs
                        // earlier in the delta, so a concurrent read
                        // still observes the pre-commit memory — the
                        // read-before-write ordering all levels share.)
                        if bk.wv.read(st) {
                            let addr = wa_c.read(st) as usize;
                            let word = (wd_lo_c.read(st) | (wd_hi_c.read(st) << cfg.half_width()))
                                & mask_word;
                            let bit_mask = cfg.bit_mask_of(be_c.read(st));
                            let mem: &mut Vec<u64> = st.channel_mut(sram);
                            mem[addr] = (mem[addr] & !bit_mask) | (word & bit_mask);
                            if trace_on {
                                st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                    ObservedMessage {
                                        from: "WritePort".into(),
                                        to: "SramMemory".into(),
                                        method: "LA1_SRAM_OnWriteData".into(),
                                        cycle: cyc,
                                        clock: ClockRef::K,
                                    },
                                );
                            }
                        }
                        bk.wdone.write(st, bk.wv.read(st));
                        // accept a new write; capture address + low half
                        let accepted = bk.wr_req.read(st);
                        bk.wv.write(st, accepted);
                        if accepted {
                            wa_c.write(st, bk.wr_addr.read(st));
                            wd_lo_c.write(st, bk.wr_data_lo.read(st));
                            be_c.write(st, bk.wr_byte_en.read(st));
                            if trace_on {
                                st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                    ObservedMessage {
                                        from: "NetworkProcessor".into(),
                                        to: "WritePort".into(),
                                        method: "OnWriteRequest".into(),
                                        cycle: cyc,
                                        clock: ClockRef::K,
                                    },
                                );
                            }
                        }
                    } else {
                        // falling edge: capture the high data half of a
                        // newly accepted write (DDR input path)
                        if bk.wv.read(st) {
                            wd_hi_c.write(st, bk.wr_data_hi.read(st));
                            if trace_on {
                                st.channel_mut::<Vec<ObservedMessage>>(trace_chan).push(
                                    ObservedMessage {
                                        from: "NetworkProcessor".into(),
                                        to: "WritePort".into(),
                                        method: "OnReceiveData".into(),
                                        cycle: cyc,
                                        clock: ClockRef::KBar,
                                    },
                                );
                            }
                        }
                    }
                });
            }

            banks.push(bank);
        }

        let mut la1 = LaSystemC {
            sim,
            cfg: config.clone(),
            k,
            k_bar,
            banks,
            monitors: Vec::new(),
            monitor_signal_order: monitor_signal_names(config.banks),
            violations: Vec::new(),
            cycles: 0,
            trace_chan,
            trace_enabled_chan,
            parity_fault_chan,
            cycle_chan,
            snapshot: Vec::new(),
            last_read: None,
        };
        la1.sim.run_deltas(); // SystemC-style initialization run
        la1
    }

    /// Attaches PSL directives as external monitors (the paper's
    /// "assertion monitors in C#").
    pub fn attach_monitors(&mut self, directives: &[Directive]) {
        let names: Vec<&str> = self
            .monitor_signal_order
            .iter()
            .map(String::as_str)
            .collect();
        for d in directives {
            self.monitors
                .push((d.name.clone(), Monitor::new(&d.property).bind(&names)));
        }
    }

    /// Attaches the default cycle-level property suite (burst-aware).
    pub fn attach_default_monitors(&mut self) {
        let dirs = cycle_properties_for(&self.cfg);
        self.attach_monitors(&dirs);
    }

    /// Advances one full clock cycle with the given operations applied
    /// at the rising edge.
    ///
    /// # Panics
    ///
    /// Panics if an operation targets a bank or address out of range.
    pub fn cycle(&mut self, ops: &[BankOp]) {
        *self.sim.channel_mut::<u64>(self.cycle_chan) = self.cycles;
        // present requests (setup before the rising edge)
        for bank in &self.banks {
            bank.rd_req.write(&mut self.sim, false);
            bank.wr_req.write(&mut self.sim, false);
        }
        for op in ops {
            let bank = self.banks[op.bank() as usize];
            match *op {
                BankOp::Read { addr, .. } => {
                    assert!(addr < self.cfg.words_per_bank as u64, "read address range");
                    if self.cfg.is_burst() {
                        // LA-1B: the output bus is busy for burst_len
                        // cycles, so reads must be spaced accordingly
                        assert!(
                            self.last_read
                                .is_none_or(|c| { self.cycles - c >= self.cfg.burst_len as u64 }),
                            "burst protocol violation: reads must be {} cycles apart",
                            self.cfg.burst_len
                        );
                    }
                    self.last_read = Some(self.cycles);
                    bank.rd_req.write(&mut self.sim, true);
                    bank.rd_addr.write(&mut self.sim, addr);
                }
                BankOp::Write {
                    addr,
                    data,
                    byte_en,
                    ..
                } => {
                    assert!(addr < self.cfg.words_per_bank as u64, "write address range");
                    bank.wr_req.write(&mut self.sim, true);
                    bank.wr_addr.write(&mut self.sim, addr);
                    let data = self.cfg.mask_word(data);
                    bank.wr_data_lo.write(&mut self.sim, self.cfg.low_half(data));
                    bank.wr_data_hi
                        .write(&mut self.sim, self.cfg.high_half(data));
                    bank.wr_byte_en.write(&mut self.sim, byte_en);
                }
            }
        }
        // rising edge of K / falling of K# (the request updates settle
        // in the same instant, before the edge-sensitive processes run)
        self.k.write(&mut self.sim, true);
        self.k_bar.write(&mut self.sim, false);
        self.sim.run_deltas();
        // sample the monitors at the settled rising edge
        self.sample_monitors();
        // falling edge of K / rising of K#
        self.k.write(&mut self.sim, false);
        self.k_bar.write(&mut self.sim, true);
        self.sim.run_deltas();
        self.cycles += 1;
    }

    fn sample_monitors(&mut self) {
        if self.monitors.is_empty() {
            return;
        }
        self.snapshot.clear();
        for bank in &self.banks {
            self.snapshot.push(bank.rv1.read(&self.sim));
            self.snapshot.push(bank.wv.read(&self.sim));
            self.snapshot.push(bank.dv.read(&self.sim));
            self.snapshot.push(bank.perr.read(&self.sim));
            self.snapshot.push(bank.wdone.read(&self.sim));
        }
        let snapshot = &self.snapshot;
        for (name, mon) in &mut self.monitors {
            let st = mon.step(snapshot);
            if st.is_violation() && !self.violations.iter().any(|v| v.property == *name) {
                self.violations.push(ScViolation {
                    property: name.clone(),
                    cycle: self.cycles,
                });
            }
        }
    }

    /// The word a bank is currently driving, if its data-valid flag is
    /// set (both DDR halves merged).
    pub fn bank_output(&self, bank: u32) -> Option<u64> {
        let b = &self.banks[bank as usize];
        if !b.dv.read(&self.sim) {
            return None;
        }
        Some(b.out_lo.read(&self.sim) | (b.out_hi.read(&self.sim) << self.cfg.half_width()))
    }

    /// Whether a bank's parity checker currently flags an error.
    pub fn parity_error(&self, bank: u32) -> bool {
        self.banks[bank as usize].perr.read(&self.sim)
    }

    /// Whether a bank reports a completed write this cycle.
    pub fn write_done(&self, bank: u32) -> bool {
        self.banks[bank as usize].wdone.read(&self.sim)
    }

    /// Recorded monitor violations.
    pub fn violations(&self) -> &[ScViolation] {
        &self.violations
    }

    /// Completed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total kernel process activations (simulator-load statistic).
    pub fn activations(&self) -> u64 {
        self.sim.activations()
    }

    /// Starts recording the message trace (Fig. 3 checking).
    pub fn enable_trace(&mut self) {
        *self.sim.channel_mut::<bool>(self.trace_enabled_chan) = true;
    }

    /// The recorded message trace.
    pub fn trace(&self) -> Vec<ObservedMessage> {
        self.sim
            .channel::<Vec<ObservedMessage>>(self.trace_chan)
            .clone()
    }

    /// Injects a parity-generation fault on `bank` (for testing the
    /// monitors and the OVL comparison).
    pub fn inject_parity_fault(&mut self, bank: u32) {
        *self.sim.channel_mut::<Option<u32>>(self.parity_fault_chan) = Some(bank);
    }

    /// Clears an injected parity fault.
    pub fn clear_parity_fault(&mut self) {
        *self.sim.channel_mut::<Option<u32>>(self.parity_fault_chan) = None;
    }
}

/// The fixed monitor signal order: per bank `rd{b}`, `wr{b}`, `dv{b}`,
/// `perr{b}`, `wdone{b}`.
pub fn monitor_signal_names(banks: u32) -> Vec<String> {
    let mut names = Vec::new();
    for b in 0..banks {
        names.push(format!("rd{b}"));
        names.push(format!("wr{b}"));
        names.push(format!("dv{b}"));
        names.push(format!("perr{b}"));
        names.push(format!("wdone{b}"));
    }
    names
}

impl StepSystem for LaSystemC {
    fn reset(&mut self) {
        // rebuild from scratch: event-driven state is not otherwise
        // rewindable
        let monitors_attached = !self.monitors.is_empty();
        *self = LaSystemC::new(&self.cfg.clone());
        if monitors_attached {
            self.attach_default_monitors();
        }
    }

    fn enabled_actions(&self) -> Vec<String> {
        vec![
            "init".to_string(),
            "tick".to_string(),
            "read".to_string(),
            "write".to_string(),
        ]
    }

    fn apply(&mut self, action: &str) -> bool {
        let parts: Vec<&str> = action.split_whitespace().collect();
        let in_range = |b: usize, a: u64| b < self.banks.len() && a < self.banks_words();
        match parts.as_slice() {
            ["init"] => true, // elaboration already happened
            ["tick"] => {
                self.cycle(&[]);
                true
            }
            ["read", b, a] => {
                let (Ok(b), Ok(a)) = (b.parse::<usize>(), a.parse::<u64>()) else {
                    return false;
                };
                if !in_range(b, a) {
                    return false;
                }
                self.cycle(&[BankOp::read(b as u32, a)]);
                true
            }
            ["write", b, a, d] => {
                let (Ok(b), Ok(a), Ok(d)) = (b.parse::<usize>(), a.parse::<u64>(), d.parse::<u64>())
                else {
                    return false;
                };
                if !in_range(b, a) {
                    return false;
                }
                let full = (1u32 << self.cfg.byte_enables()) - 1;
                self.cycle(&[BankOp::write(b as u32, a, d, full)]);
                true
            }
            ["rw", rb, ra, wb, wa, d] => {
                let (Ok(rb), Ok(ra), Ok(wb), Ok(wa), Ok(d)) = (
                    rb.parse::<usize>(),
                    ra.parse::<u64>(),
                    wb.parse::<usize>(),
                    wa.parse::<u64>(),
                    d.parse::<u64>(),
                ) else {
                    return false;
                };
                if !in_range(rb, ra) || !in_range(wb, wa) {
                    return false;
                }
                let full = (1u32 << self.cfg.byte_enables()) - 1;
                self.cycle(&[
                    BankOp::read(rb as u32, ra),
                    BankOp::write(wb as u32, wa, d, full),
                ]);
                true
            }
            _ => false,
        }
    }

    fn observe(&self) -> Vec<(String, Value)> {
        let mut obs = Vec::new();
        for (b, bank) in self.banks.iter().enumerate() {
            let dv = bank.dv.read(&self.sim);
            obs.push((format!("dv{b}"), Value::Bool(dv)));
            let out = if dv {
                (bank.out_lo.read(&self.sim) | (bank.out_hi.read(&self.sim) << self.cfg.half_width()))
                    as i64
            } else {
                0
            };
            obs.push((format!("out{b}"), Value::Int(out)));
            obs.push((format!("wdone{b}"), Value::Bool(bank.wdone.read(&self.sim))));
        }
        obs
    }
}

impl LaSystemC {
    fn banks_words(&self) -> u64 {
        self.cfg.words_per_bank as u64
    }
}
