//! # la1-core — the Look-Aside (LA-1) interface, designed and verified
//!
//! This crate is the primary contribution of the reproduced paper,
//! *On the Design and Verification Methodology of the Look-Aside
//! Interface* (Habibi, Ahmed, Ait Mohamed, Tahar — DATE 2004): an IP
//! model of the NPF **LA-1** interface built top-down through four
//! refinement levels, with verification integrated at each level.
//!
//! ```text
//!   UML  ──►  ASM  ──►  SystemC  ──►  Verilog RTL
//!  (spec)   (model     (assertion    (RuleBase-style
//!           checking    based          model checking
//!           of PSL)     verification)  + OVL simulation)
//! ```
//!
//! | module | paper artefact |
//! |---|---|
//! | [`spec`] | the LA-1 implementation agreement: pins, timing, parity |
//! | [`uml`] | the UML class diagram and clock-annotated sequence diagrams (Fig. 3) |
//! | [`properties`] | the PSL property suite shared by every level |
//! | [`asm_model`] | the ASM model incl. the light Verilog-like simulator (Fig. 4) |
//! | [`sc_model`] | the SystemC model with attached compiled PSL monitors |
//! | [`rtl_model`] | the synthesizable RTL: DDR paths, tristate banks, byte writes |
//! | [`cycle_model`] | the one cycle-level interface all executable levels share |
//! | [`refine`] | the Fig. 2 flow: conformance + property re-verification |
//! | [`workloads`] | traffic generators (random mixes, packet lookups) |
//! | [`stimulus`] | UVM-style transaction stack: sequencers, driver, monitor |
//! | [`harness`] | the ABV measurement loops behind the paper's Table 3 |
//!
//! # Quickstart
//!
//! ```
//! use la1_core::spec::LaConfig;
//! use la1_core::sc_model::LaSystemC;
//! use la1_core::spec::BankOp;
//!
//! let cfg = LaConfig::new(1);
//! let mut la1 = LaSystemC::new(&cfg);
//! la1.cycle(&[BankOp::write(0, 3, 0xCAFE_F00D, 0b1111)]);
//! la1.cycle(&[BankOp::read(0, 3)]);
//! la1.cycle(&[]); // SRAM access cycle
//! la1.cycle(&[]); // data-out cycle
//! assert_eq!(la1.bank_output(0), Some(0xCAFE_F00D));
//! ```

pub mod asm_model;
pub mod checkpoint;
pub mod cycle_model;
pub mod harness;
pub mod json;
pub mod properties;
pub mod refine;
pub mod rtl_model;
pub mod sc_model;
pub mod spec;
pub mod stimulus;
pub mod uml;
pub mod workloads;

#[cfg(test)]
mod tests;
