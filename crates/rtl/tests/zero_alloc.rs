//! Steady-state stepping of the compiled simulator must not touch the
//! heap: every buffer (value arena, dirty worklist, settle heap, input
//! staging) is preallocated at construction, and per-step work reuses
//! it. A counting global allocator proves it.

use la1_rtl::{BatchedRtlSim, Expr, Netlist, RtlSim, SettleMode, LANES};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

// Per-thread counter: the libtest harness allocates on its own threads
// (progress printing, panic plumbing) concurrently with a measurement
// window, so a process-global counter flakes. `Cell<usize>` has no
// destructor, so the const-initialized TLS access never allocates or
// recurses into the allocator; `try_with` covers thread teardown.
thread_local! {
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

fn allocs_on_this_thread() -> usize {
    ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// A design exercising every sequential and combinational node kind the
/// LA-1 netlist uses: DFF pipeline, masked RAM, tristate bus, reduction
/// logic.
fn representative_design() -> (Netlist, Vec<la1_rtl::NetId>) {
    let mut n = Netlist::new("alloc_probe");
    let clk = n.input("clk", 1);
    let we = n.input("we", 1);
    let addr = n.input("addr", 3);
    let wdata = n.input("wdata", 16);
    let en0 = n.input("en0", 1);
    let en1 = n.input("en1", 1);

    let a1 = n.reg("a1", 3);
    n.dff_posedge(clk, Expr::net(addr), a1);
    let a2 = n.reg("a2", 3);
    n.dff_posedge(clk, Expr::net(a1), a2);

    let rdata = n.wire("rdata", 16);
    n.ram(
        clk,
        Expr::net(we),
        Expr::net(addr),
        Expr::net(wdata),
        Some(Expr::value(0x00FF, 16)),
        Expr::net(a2),
        rdata,
        8,
        16,
    );

    let parity = n.wire("parity", 1);
    n.assign(parity, Expr::ReduceXor(Box::new(Expr::net(rdata))));

    let bus = n.wire("bus", 16);
    n.tristate(bus, Expr::net(en0), Expr::net(rdata));
    n.tristate(bus, Expr::net(en1), Expr::not(Expr::net(rdata)));
    n.mark_output(bus);

    (n, vec![clk, we, addr, wdata, en0, en1])
}

fn drive_cycles(sim: &mut RtlSim, ins: &[la1_rtl::NetId], cycles: u64) {
    let [clk, we, addr, wdata, en0, en1] = ins else {
        unreachable!()
    };
    for c in 0..cycles {
        sim.set_u64(*we, c & 1);
        sim.set_u64(*addr, c % 8);
        sim.set_u64(*wdata, c.wrapping_mul(0x9E37) & 0xFFFF);
        sim.set_u64(*en0, (c >> 1) & 1);
        sim.set_u64(*en1, (c >> 1) & 1 ^ 1);
        sim.set_u64(*clk, 1);
        sim.step();
        sim.set_u64(*clk, 0);
        sim.step();
    }
}

/// Same stimulus for the 64-lane batched simulator: clocks and write
/// enables are lane-uniform, data/address/bus enables vary per lane so
/// every lane exercises a distinct trajectory.
fn drive_cycles_batched(sim: &mut BatchedRtlSim, ins: &[la1_rtl::NetId], cycles: u64) {
    let [clk, we, addr, wdata, en0, en1] = ins else {
        unreachable!()
    };
    for c in 0..cycles {
        sim.set_u64_all(*we, c & 1);
        for lane in 0..LANES {
            let s = c.wrapping_add(lane as u64);
            sim.set_lane_u64(*addr, lane, s % 8);
            sim.set_lane_u64(*wdata, lane, s.wrapping_mul(0x9E37) & 0xFFFF);
            sim.set_lane_u64(*en0, lane, (s >> 1) & 1);
            sim.set_lane_u64(*en1, lane, (s >> 1) & 1 ^ 1);
        }
        sim.set_u64_all(*clk, 1);
        sim.step();
        sim.set_u64_all(*clk, 0);
        sim.step();
    }
}

#[test]
fn steady_state_stepping_does_not_allocate() {
    for mode in [SettleMode::ActivityDriven, SettleMode::Full] {
        let (n, ins) = representative_design();
        let mut sim = RtlSim::new(&n);
        sim.set_settle_mode(mode);
        // warm-up: lets every lazily-grown buffer (settle heap, dirty
        // worklist) reach its steady-state capacity
        drive_cycles(&mut sim, &ins, 64);

        let before = allocs_on_this_thread();
        drive_cycles(&mut sim, &ins, 256);
        let after = allocs_on_this_thread();
        assert_eq!(
            after - before,
            0,
            "{mode:?} stepping allocated {} times",
            after - before
        );
    }
}

#[test]
fn batched_steady_state_stepping_does_not_allocate() {
    for mode in [SettleMode::ActivityDriven, SettleMode::Full] {
        let (n, ins) = representative_design();
        let mut sim = BatchedRtlSim::new(&n);
        sim.set_settle_mode(mode);
        drive_cycles_batched(&mut sim, &ins, 64);

        let before = allocs_on_this_thread();
        drive_cycles_batched(&mut sim, &ins, 256);
        let after = allocs_on_this_thread();
        assert_eq!(
            after - before,
            0,
            "batched {mode:?} stepping allocated {} times",
            after - before
        );
    }
}
