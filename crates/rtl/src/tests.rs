//! Unit and property tests for the RTL crate.

use crate::*;

// ---- logic values -----------------------------------------------------------

#[test]
fn logic_not_table() {
    assert_eq!(Logic::L0.not(), Logic::L1);
    assert_eq!(Logic::L1.not(), Logic::L0);
    assert_eq!(Logic::X.not(), Logic::X);
    assert_eq!(Logic::Z.not(), Logic::X);
}

#[test]
fn logic_and_dominant_zero() {
    assert_eq!(Logic::L0.and(Logic::X), Logic::L0);
    assert_eq!(Logic::X.and(Logic::L0), Logic::L0);
    assert_eq!(Logic::L1.and(Logic::L1), Logic::L1);
    assert_eq!(Logic::L1.and(Logic::X), Logic::X);
    assert_eq!(Logic::Z.and(Logic::L1), Logic::X);
}

#[test]
fn logic_or_dominant_one() {
    assert_eq!(Logic::L1.or(Logic::X), Logic::L1);
    assert_eq!(Logic::X.or(Logic::L1), Logic::L1);
    assert_eq!(Logic::L0.or(Logic::L0), Logic::L0);
    assert_eq!(Logic::L0.or(Logic::Z), Logic::X);
}

#[test]
fn logic_resolution() {
    assert_eq!(Logic::Z.resolve(Logic::L1), Logic::L1);
    assert_eq!(Logic::L0.resolve(Logic::Z), Logic::L0);
    assert_eq!(Logic::Z.resolve(Logic::Z), Logic::Z);
    assert_eq!(Logic::L0.resolve(Logic::L1), Logic::X);
    assert_eq!(Logic::L1.resolve(Logic::L1), Logic::L1);
}

#[test]
fn logic_vec_round_trip() {
    let v = LogicVec::from_u64(0b1011, 4);
    assert_eq!(v.to_u64(), Some(0b1011));
    assert_eq!(v.width(), 4);
    assert_eq!(v.bit(0), Logic::L1);
    assert_eq!(v.bit(2), Logic::L0);
    assert_eq!(v.to_string(), "1011");
    assert!(LogicVec::xs(3).to_u64().is_none());
    assert_eq!(LogicVec::zeros(3).to_u64(), Some(0));
}

#[test]
fn logic_vec_slice_and_parity() {
    let v = LogicVec::from_u64(0b1101, 4);
    assert_eq!(v.slice(2, 1).to_u64(), Some(0b10));
    assert_eq!(v.reduce_xor(), Logic::L1); // three ones
    assert_eq!(v.reduce_or(), Logic::L1);
    assert_eq!(LogicVec::zeros(4).reduce_or(), Logic::L0);
}

// ---- netlist + simulator ----------------------------------------------------

/// A toggling register driven by a clock input.
fn toggler() -> (Netlist, NetId, NetId) {
    let mut n = Netlist::new("toggler");
    let clk = n.input("clk", 1);
    let q = n.reg("q", 1);
    n.dff_posedge(clk, Expr::not(Expr::net(q)), q);
    (n, clk, q)
}

/// Drives `clk` through `cycles` full clock periods.
fn run_clock(sim: &mut RtlSim, clk: NetId, cycles: usize) {
    for _ in 0..cycles {
        sim.set_u64(clk, 1);
        sim.step();
        sim.set_u64(clk, 0);
        sim.step();
    }
}

#[test]
fn dff_posedge_toggles() {
    let (n, clk, q) = toggler();
    let mut sim = RtlSim::new(&n);
    assert_eq!(sim.get_u64(q), Some(0));
    run_clock(&mut sim, clk, 1);
    assert_eq!(sim.get_u64(q), Some(1));
    run_clock(&mut sim, clk, 1);
    assert_eq!(sim.get_u64(q), Some(0));
    assert_eq!(sim.steps(), 4);
    assert!(sim.evals() > 0);
}

#[test]
fn dff_negedge_and_enable() {
    let mut n = Netlist::new("d");
    let clk = n.input("clk", 1);
    let en = n.input("en", 1);
    let d = n.input("d", 4);
    let q = n.reg("q", 4);
    n.dff_en(clk, Edge::Neg, Expr::net(en), Expr::net(d), q);
    let mut sim = RtlSim::new(&n);
    sim.set_u64(d, 9);
    sim.set_u64(en, 0);
    sim.set_u64(clk, 1);
    sim.step();
    sim.set_u64(clk, 0); // falling edge, enable low: no capture
    sim.step();
    assert_eq!(sim.get_u64(q), Some(0));
    sim.set_u64(en, 1);
    sim.set_u64(clk, 1);
    sim.step();
    sim.set_u64(clk, 0); // falling edge, enabled
    sim.step();
    assert_eq!(sim.get_u64(q), Some(9));
}

#[test]
fn ddr_captures_both_edges() {
    let mut n = Netlist::new("ddr");
    let clk = n.input("clk", 1);
    let hi = n.input("hi", 8);
    let lo = n.input("lo", 8);
    let q = n.reg("q", 8);
    n.ddr(clk, Expr::net(hi), Expr::net(lo), q);
    let mut sim = RtlSim::new(&n);
    sim.set_u64(hi, 0xAB);
    sim.set_u64(lo, 0xCD);
    sim.set_u64(clk, 1);
    sim.step(); // rising: captures hi
    assert_eq!(sim.get_u64(q), Some(0xAB));
    sim.set_u64(clk, 0);
    sim.step(); // falling: captures lo
    assert_eq!(sim.get_u64(q), Some(0xCD));
}

#[test]
fn combinational_assign_settles() {
    let mut n = Netlist::new("comb");
    let a = n.input("a", 4);
    let b = n.input("b", 4);
    let x = n.wire("x", 4);
    let y = n.wire("y", 4);
    n.assign(x, Expr::and(Expr::net(a), Expr::net(b)));
    n.assign(y, Expr::not(Expr::net(x)));
    let mut sim = RtlSim::new(&n);
    sim.set_u64(a, 0b1100);
    sim.set_u64(b, 0b1010);
    sim.step();
    assert_eq!(sim.get_u64(x), Some(0b1000));
    assert_eq!(sim.get_u64(y), Some(0b0111));
}

#[test]
fn tristate_resolution_on_shared_bus() {
    let mut n = Netlist::new("bus");
    let en0 = n.input("en0", 1);
    let en1 = n.input("en1", 1);
    let bus = n.wire("bus", 4);
    n.tristate(bus, Expr::net(en0), Expr::value(0x5, 4));
    n.tristate(bus, Expr::net(en1), Expr::value(0xA, 4));
    let mut sim = RtlSim::new(&n);
    // nobody drives: Z
    sim.step();
    assert_eq!(*sim.get(bus), LogicVec::zs(4));
    // driver 0 only
    sim.set_u64(en0, 1);
    sim.step();
    assert_eq!(sim.get_u64(bus), Some(0x5));
    // both drive conflicting values: X
    sim.set_u64(en1, 1);
    sim.step();
    assert!(sim.get(bus).iter().all(|b| b == Logic::X));
}

#[test]
fn ram_write_read_with_mask() {
    let mut n = Netlist::new("ram");
    let clk = n.input("clk", 1);
    let we = n.input("we", 1);
    let waddr = n.input("waddr", 2);
    let wdata = n.input("wdata", 8);
    let wmask = n.input("wmask", 8);
    let raddr = n.input("raddr", 2);
    let rdata = n.wire("rdata", 8);
    n.ram(
        clk,
        Expr::net(we),
        Expr::net(waddr),
        Expr::net(wdata),
        Some(Expr::net(wmask)),
        Expr::net(raddr),
        rdata,
        4,
        8,
    );
    let mut sim = RtlSim::new(&n);
    sim.set_u64(we, 1);
    sim.set_u64(waddr, 2);
    sim.set_u64(wdata, 0xFF);
    sim.set_u64(wmask, 0x0F); // low nibble only (byte-write control)
    sim.set_u64(clk, 1);
    sim.step();
    sim.set_u64(clk, 0);
    sim.set_u64(we, 0);
    sim.set_u64(raddr, 2);
    sim.step();
    assert_eq!(sim.get_u64(rdata), Some(0x0F));
    assert_eq!(sim.ram_word(0, 2).to_u64(), Some(0x0F));
    // unwritten word reads zero
    sim.set_u64(raddr, 1);
    sim.step();
    assert_eq!(sim.get_u64(rdata), Some(0));
}

#[test]
fn parity_generator() {
    let mut n = Netlist::new("par");
    let d = n.input("d", 8);
    let p = n.wire("p", 1);
    n.assign(p, Expr::ReduceXor(Box::new(Expr::net(d))));
    let mut sim = RtlSim::new(&n);
    sim.set_u64(d, 0b1011_0001);
    sim.step();
    assert_eq!(sim.get_u64(p), Some(0)); // four ones: even parity 0
    sim.set_u64(d, 0b1011_0000);
    sim.step();
    assert_eq!(sim.get_u64(p), Some(1));
}

#[test]
fn expr_width_checking() {
    let mut n = Netlist::new("w");
    let a = n.input("a", 4);
    let b = n.input("b", 2);
    assert_eq!(n.expr_width(&Expr::net(a)), 4);
    assert_eq!(n.expr_width(&Expr::eq(Expr::net(a), Expr::net(a))), 1);
    assert_eq!(
        n.expr_width(&Expr::Concat(vec![Expr::net(a), Expr::net(b)])),
        6
    );
    let bad = Expr::and(Expr::net(a), Expr::net(b));
    assert!(std::panic::catch_unwind(|| n.expr_width(&bad)).is_err());
}

#[test]
fn find_and_names() {
    let (n, clk, q) = toggler();
    assert_eq!(n.find("clk"), Some(clk));
    assert_eq!(n.find("q"), Some(q));
    assert_eq!(n.find("zzz"), None);
    assert_eq!(n.net_name(q), "q");
    assert_eq!(n.num_nets(), 2);
    assert_eq!(n.num_items(), 1);
}

// ---- Verilog emission --------------------------------------------------------

#[test]
fn verilog_emission_contains_structures() {
    let mut n = Netlist::new("unit");
    let clk = n.input("clk", 1);
    let d = n.input("d", 8);
    let q = n.reg("q", 8);
    let bus = n.wire("bus", 8);
    n.dff_posedge(clk, Expr::net(d), q);
    n.ddr(clk, Expr::net(d), Expr::net(q), q);
    n.tristate(bus, Expr::bit(true), Expr::net(q));
    n.mark_output(bus);
    let v = n.to_verilog();
    assert!(v.contains("module unit"));
    assert!(v.contains("input  wire clk"));
    assert!(v.contains("always @(posedge clk)"));
    assert!(v.contains("always @(negedge clk)"));
    assert!(v.contains("8'bz"));
    assert!(v.contains("output wire [7:0] bus"));
    assert!(v.contains("endmodule"));
}

#[test]
fn verilog_ram_emission() {
    let mut n = Netlist::new("mram");
    let clk = n.input("clk", 1);
    let rdata = n.wire("rdata", 4);
    n.ram(
        clk,
        Expr::bit(true),
        Expr::value(0, 2),
        Expr::value(5, 4),
        None,
        Expr::value(0, 2),
        rdata,
        4,
        4,
    );
    let v = n.to_verilog();
    assert!(v.contains("reg [3:0] mem_0 [0:3];"));
    assert!(v.contains("assign rdata = mem_0["));
}

// ---- extraction --------------------------------------------------------------

#[test]
fn extract_toggler_transition_system() {
    let (n, clk, _) = toggler();
    let ts = n.extract(&[clk]);
    assert_eq!(ts.num_state_bits(), 2); // clk + q
    assert_eq!(ts.num_input_bits(), 0);
    // simulate 4 steps by hand: clk toggles; q toggles on rising edges
    let mut state: Vec<bool> = ts.init.clone();
    let mut qs = Vec::new();
    for _ in 0..6 {
        let next: Vec<bool> = ts
            .next
            .iter()
            .map(|&f| ts.eval_node(f, &state, &[]))
            .collect();
        state = next;
        qs.push(state[1]);
    }
    // clk starts 0; steps: rising, falling, rising, ... q toggles on rising
    assert_eq!(qs, vec![true, true, false, false, true, true]);
}

#[test]
fn extract_probe_names_cover_all_nets() {
    let (n, clk, _) = toggler();
    let ts = n.extract(&[clk]);
    let names: Vec<&str> = ts.probe_names().collect();
    assert!(names.contains(&"clk"));
    assert!(names.contains(&"q"));
    assert!(ts.probe("q").is_some());
    assert!(ts.probe("nope").is_none());
}

#[test]
fn extract_matches_simulator_on_counter() {
    // 3-bit counter with enable input: compare extraction vs RtlSim
    let mut n = Netlist::new("ctr");
    let clk = n.input("clk", 1);
    let en = n.input("en", 1);
    let q = n.reg("q", 3);
    // q + 1 as ripple: bit0 ^= en; carry chain
    let b0 = Expr::Index(q, 0);
    let b1 = Expr::Index(q, 1);
    let b2 = Expr::Index(q, 2);
    let c0 = Expr::net(en);
    let c1 = Expr::and(c0.clone(), b0.clone());
    let c2 = Expr::and(c1.clone(), b1.clone());
    let d = Expr::Concat(vec![
        Expr::xor(b0, c0),
        Expr::xor(b1, c1),
        Expr::xor(b2, c2),
    ]);
    n.dff_posedge(clk, d, q);
    let ts = n.extract(&[clk]);
    let mut sim = RtlSim::new(&n);

    let mut state = ts.init.clone();
    let en_seq = [true, true, false, true, true, true, false, true, true];
    for &e in &en_seq {
        // extraction step (clk bit is state 0; q bits follow)
        let inputs = [e];
        let next: Vec<bool> = ts
            .next
            .iter()
            .map(|&f| ts.eval_node(f, &state, &inputs))
            .collect();
        state = next;
        // sim: full clock cycle (rising edge with en, then falling)
        sim.set_u64(en, e as u64);
        sim.set_u64(clk, 1);
        sim.step();
        sim.set_u64(clk, 0);
        sim.step();
        // compare after each full period (extraction needs 2 steps/period)
        let inputs2 = [e];
        let next2: Vec<bool> = ts
            .next
            .iter()
            .map(|&f| ts.eval_node(f, &state, &inputs2))
            .collect();
        state = next2;
        let q_ts = state[1] as u64 | (state[2] as u64) << 1 | (state[3] as u64) << 2;
        assert_eq!(sim.get_u64(q), Some(q_ts), "divergence at enable={e}");
    }
}

// ---- property tests -----------------------------------------------------------

// Property-based tests live behind the optional `proptest` feature
// (`cargo test --workspace --features proptest`); the dependency is a
// vendored offline shim (see vendor/proptest) that cannot be resolved
// from the registry in the offline build environment.
#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use proptest::prelude::*;

    /// Any of the four states, uniformly.
    fn any_logic() -> impl Strategy<Value = Logic> {
        (0usize..4).prop_map(|i| [Logic::L0, Logic::L1, Logic::X, Logic::Z][i])
    }

    /// A four-state vector of 1..=24 bits.
    fn any_logic_vec() -> impl Strategy<Value = LogicVec> {
        prop::collection::vec(any_logic(), 1..=24).prop_map(LogicVec::from_bits)
    }

    /// `refined` must agree with `pessimistic` wherever the pessimistic
    /// answer is known: concretizing an X/Z input may only *add*
    /// information, never contradict it.
    fn refines(pessimistic: Logic, refined: Logic) -> bool {
        !pessimistic.is_known() || pessimistic == refined
    }

    proptest! {
        #[test]
        fn de_morgan_holds_on_all_four_states(a in any_logic(), b in any_logic()) {
            prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
            prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
        }

        #[test]
        fn x_pessimism_is_monotone(a in any_logic(), u in 0usize..2, c in any::<bool>()) {
            // replacing an unknown operand with a concrete bit can only
            // refine the result (IEEE 1364 gates are X-pessimistic)
            let unknown = [Logic::X, Logic::Z][u];
            let concrete = Logic::from_bool(c);
            prop_assert!(refines(a.and(unknown), a.and(concrete)));
            prop_assert!(refines(a.or(unknown), a.or(concrete)));
            prop_assert!(refines(a.xor(unknown), a.xor(concrete)));
            prop_assert!(refines(unknown.not(), concrete.not()));
        }

        #[test]
        fn slice_and_index_round_trip(v in any_logic_vec(), lo_pick in 0u32..1000, hi_pick in 0u32..1000) {
            let w = v.width();
            let lo = lo_pick % w;
            let hi = lo.max(hi_pick % w);
            let s = v.slice(hi, lo);
            prop_assert_eq!(s.width(), hi - lo + 1);
            for i in 0..s.width() {
                prop_assert_eq!(s.bit(i), v.bit(lo + i));
            }
            // reassembling every bit reproduces the vector
            let rebuilt = LogicVec::from_bits(v.iter().collect());
            prop_assert_eq!(&rebuilt, &v);
        }

        #[test]
        fn set_bit_round_trips_and_is_local(v in any_logic_vec(), idx_pick in 0u32..1000, l in any_logic()) {
            let idx = idx_pick % v.width();
            let mut w = v.clone();
            w.set_bit(idx, l);
            prop_assert_eq!(w.bit(idx), l);
            for i in 0..v.width() {
                if i != idx {
                    prop_assert_eq!(w.bit(i), v.bit(i));
                }
            }
        }
        #[test]
        fn logicvec_u64_round_trip(v in any::<u64>(), w in 1u32..=64) {
            let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
            let lv = LogicVec::from_u64(masked, w);
            prop_assert_eq!(lv.to_u64(), Some(masked));
        }

        #[test]
        fn resolution_is_commutative(a in 0usize..4, b in 0usize..4) {
            let all = [Logic::L0, Logic::L1, Logic::X, Logic::Z];
            prop_assert_eq!(all[a].resolve(all[b]), all[b].resolve(all[a]));
        }

        #[test]
        fn and_or_de_morgan_on_known(a in any::<bool>(), b in any::<bool>()) {
            let (la, lb) = (Logic::from_bool(a), Logic::from_bool(b));
            prop_assert_eq!(la.and(lb).not(), la.not().or(lb.not()));
        }

        #[test]
        fn sim_parity_matches_count_ones(d in any::<u8>()) {
            let mut n = Netlist::new("p");
            let i = n.input("d", 8);
            let p = n.wire("p", 1);
            n.assign(p, Expr::ReduceXor(Box::new(Expr::net(i))));
            let mut sim = RtlSim::new(&n);
            sim.set_u64(i, d as u64);
            sim.step();
            prop_assert_eq!(sim.get_u64(p), Some((d.count_ones() % 2) as u64));
        }

        #[test]
        fn dff_pipeline_delays_by_n(data in prop::collection::vec(any::<u8>(), 4..12)) {
            // two-stage pipeline: q2 lags the input by 2 cycles
            let mut n = Netlist::new("pipe");
            let clk = n.input("clk", 1);
            let d = n.input("d", 8);
            let q1 = n.reg("q1", 8);
            let q2 = n.reg("q2", 8);
            n.dff_posedge(clk, Expr::net(d), q1);
            n.dff_posedge(clk, Expr::net(q1), q2);
            let mut sim = RtlSim::new(&n);
            let mut seen = Vec::new();
            for &v in &data {
                sim.set_u64(d, v as u64);
                sim.set_u64(clk, 1);
                sim.step();
                sim.set_u64(clk, 0);
                sim.step();
                seen.push(sim.get_u64(q2).unwrap() as u8);
            }
            // both stages sample before committing, so after full cycle i
            // q2 holds the input of cycle i-1
            for i in 1..data.len() {
                prop_assert_eq!(seen[i], data[i - 1]);
            }
        }
    }

    // ---- packed two-plane algebra vs scalar Logic, lane by lane ----

    /// 64 lanes of four-state vectors of one width, as (packed, lanes).
    fn any_packed(width: u32) -> impl Strategy<Value = (PackedVec, Vec<LogicVec>)> {
        prop::collection::vec(
            prop::collection::vec(any_logic(), width as usize..=width as usize)
                .prop_map(LogicVec::from_bits),
            LANES..=LANES,
        )
        .prop_map(move |lanes| {
            let mut p = PackedVec::zeros(width);
            for (l, v) in lanes.iter().enumerate() {
                p.set_lane(l, v);
            }
            (p, lanes)
        })
    }

    /// Scalar whole-vector equality with the compiled `Op::Eq` semantics.
    fn scalar_eq(a: &LogicVec, b: &LogicVec) -> Logic {
        if !a.is_known() || !b.is_known() {
            Logic::X
        } else {
            Logic::from_bool(a == b)
        }
    }

    proptest! {
        #[test]
        fn packed_lane_round_trip((p, lanes) in any_packed(7)) {
            for (l, v) in lanes.iter().enumerate() {
                prop_assert_eq!(&p.get_lane(l), v);
                for i in 0..v.width() {
                    prop_assert_eq!(p.lane_bit(l, i), v.bit(i));
                }
                prop_assert_eq!(p.lane_to_u64(l), v.to_u64());
            }
        }

        /// The transposed bulk drive/sample paths agree with the
        /// per-lane scalar paths: `set_lanes_u64` equals 64
        /// `set_lane_u64` calls, and `lanes_u64` demuxes exactly what
        /// `lane_to_u64` reports per lane.
        #[test]
        fn packed_transposed_bulk_paths_match_per_lane(
            vals in prop::collection::vec(any::<u64>(), LANES..=LANES),
            (px, _) in any_packed(9),
        ) {
            let mut all = [0u64; LANES];
            all.copy_from_slice(&vals);
            let mut bulk = PackedVec::zeros(9);
            let mut scalar = PackedVec::zeros(9);
            bulk.set_lanes_u64(&all);
            for (l, v) in all.iter().enumerate() {
                scalar.set_lane_u64(l, *v);
            }
            prop_assert_eq!(&bulk, &scalar);

            let mut out = [0u64; LANES];
            let known = bulk.lanes_u64(&mut out);
            for (l, &o) in out.iter().enumerate() {
                prop_assert_eq!(known >> l & 1, 1);
                prop_assert_eq!(Some(o), bulk.lane_to_u64(l));
            }

            // a packed vector with X/Z lanes: the known mask must match
            // lane_to_u64's Some/None split, and known lanes' words the
            // per-lane value
            let kx = px.lanes_u64(&mut out);
            for (l, &o) in out.iter().enumerate() {
                match px.lane_to_u64(l) {
                    Some(v) => {
                        prop_assert_eq!(kx >> l & 1, 1);
                        prop_assert_eq!(o, v);
                    }
                    None => prop_assert_eq!(kx >> l & 1, 0),
                }
            }
        }

        #[test]
        fn packed_bitwise_ops_match_scalar_per_lane(
            (pa, la) in any_packed(6),
            (pb, lb) in any_packed(6),
        ) {
            let mut not = PackedVec::zeros(6);
            let mut and = PackedVec::zeros(6);
            let mut or = PackedVec::zeros(6);
            let mut xor = PackedVec::zeros(6);
            let mut res = PackedVec::zeros(6);
            not.not_from(&pa);
            and.and_from(&pa, &pb);
            or.or_from(&pa, &pb);
            xor.xor_from(&pa, &pb);
            res.resolve_from(&pa, &pb);
            for l in 0..LANES {
                for i in 0..6 {
                    let (a, b) = (la[l].bit(i), lb[l].bit(i));
                    prop_assert_eq!(not.lane_bit(l, i), a.not(), "not lane {} bit {}", l, i);
                    prop_assert_eq!(and.lane_bit(l, i), a.and(b), "and lane {} bit {}", l, i);
                    prop_assert_eq!(or.lane_bit(l, i), a.or(b), "or lane {} bit {}", l, i);
                    prop_assert_eq!(xor.lane_bit(l, i), a.xor(b), "xor lane {} bit {}", l, i);
                    prop_assert_eq!(res.lane_bit(l, i), a.resolve(b), "resolve lane {} bit {}", l, i);
                }
            }
        }

        #[test]
        fn packed_vector_ops_match_scalar_per_lane(
            (pa, la) in any_packed(5),
            (pb, lb) in any_packed(5),
            (psel, lsel) in any_packed(1),
        ) {
            let mut eq = PackedVec::zeros(1);
            let mut rxor = PackedVec::zeros(1);
            let mut ror = PackedVec::zeros(1);
            let mut mux = PackedVec::zeros(5);
            eq.eq_from(&pa, &pb);
            rxor.reduce_xor_from(&pa);
            ror.reduce_or_from(&pa);
            mux.mux_from(&psel, &pa, &pb);
            for l in 0..LANES {
                prop_assert_eq!(eq.lane_bit(l, 0), scalar_eq(&la[l], &lb[l]));
                prop_assert_eq!(rxor.lane_bit(l, 0), la[l].reduce_xor());
                prop_assert_eq!(ror.lane_bit(l, 0), la[l].reduce_or());
                let want = match lsel[l].bit(0) {
                    Logic::L1 => la[l].clone(),
                    Logic::L0 => lb[l].clone(),
                    _ => LogicVec::xs(5),
                };
                prop_assert_eq!(mux.get_lane(l), want, "mux lane {}", l);
            }
        }

        #[test]
        fn packed_tristate_fold_matches_scalar_per_lane(
            (pe0, le0) in any_packed(1),
            (pv0, lv0) in any_packed(4),
            (pe1, le1) in any_packed(1),
            (pv1, lv1) in any_packed(4),
        ) {
            let mut acc = PackedVec::zeros(4);
            acc.fill_z();
            acc.tri_accumulate(&pe0, &pv0);
            acc.tri_accumulate(&pe1, &pv1);
            for l in 0..LANES {
                for i in 0..4 {
                    let mut want = Logic::Z;
                    for (en, val) in [(le0[l].bit(0), lv0[l].bit(i)), (le1[l].bit(0), lv1[l].bit(i))] {
                        let contribution = match en {
                            Logic::L1 => val,
                            Logic::L0 => Logic::Z,
                            _ => Logic::X,
                        };
                        want = want.resolve(contribution);
                    }
                    prop_assert_eq!(acc.lane_bit(l, i), want, "tri lane {} bit {}", l, i);
                }
            }
        }

        #[test]
        fn packed_de_morgan_and_x_monotone_per_lane(
            (pa, _la) in any_packed(3),
            (pb, lb) in any_packed(3),
        ) {
            // De Morgan: ~(a & b) == ~a | ~b, lane by lane
            let mut and = PackedVec::zeros(3);
            let mut lhs = PackedVec::zeros(3);
            and.and_from(&pa, &pb);
            lhs.not_from(&and);
            let mut na = PackedVec::zeros(3);
            let mut nb = PackedVec::zeros(3);
            let mut rhs = PackedVec::zeros(3);
            na.not_from(&pa);
            nb.not_from(&pb);
            rhs.or_from(&na, &nb);
            prop_assert_eq!(&lhs, &rhs);
            // X-monotonicity: concretizing b's unknown bits to 0 can only
            // refine a & b per lane (never contradict a known result)
            let mut b0 = pb.clone();
            for (l, vb) in lb.iter().enumerate() {
                let mut v = vb.clone();
                for i in 0..3 {
                    if !v.bit(i).is_known() {
                        v.set_bit(i, Logic::L0);
                    }
                }
                b0.set_lane(l, &v);
            }
            let mut refined = PackedVec::zeros(3);
            refined.and_from(&pa, &b0);
            for l in 0..LANES {
                for i in 0..3 {
                    let p = and.lane_bit(l, i);
                    let r = refined.lane_bit(l, i);
                    prop_assert!(refines(p, r), "lane {} bit {}: {} -> {}", l, i, p, r);
                }
            }
        }
    }
}

// ---- batched (PPSFP) simulator ---------------------------------------------

/// A design exercising every node kind at once: DFF pipeline, enabled
/// DFF, DDR capture, masked RAM, mux/eq/concat/reduction logic and a
/// two-driver tristate bus.
fn batched_probe_design() -> (Netlist, Vec<NetId>) {
    let mut n = Netlist::new("batched_probe");
    let clk = n.input("clk", 1);
    let we = n.input("we", 1);
    let addr = n.input("addr", 3);
    let wdata = n.input("wdata", 16);
    let en0 = n.input("en0", 1);
    let en1 = n.input("en1", 1);

    let a1 = n.reg("a1", 3);
    n.dff_posedge(clk, Expr::net(addr), a1);
    let a2 = n.reg("a2", 3);
    n.dff_en(clk, Edge::Pos, Expr::net(en0), Expr::net(a1), a2);

    let rdata = n.wire("rdata", 16);
    n.ram(
        clk,
        Expr::net(we),
        Expr::net(addr),
        Expr::net(wdata),
        Some(Expr::value(0x0FF0, 16)),
        Expr::net(a2),
        rdata,
        8,
        16,
    );

    let ddr_q = n.reg("ddr_q", 8);
    n.ddr(
        clk,
        Expr::Slice(wdata, 7, 0),
        Expr::Slice(wdata, 15, 8),
        ddr_q,
    );

    let parity = n.wire("parity", 1);
    n.assign(parity, Expr::ReduceXor(Box::new(Expr::net(rdata))));
    let any = n.wire("any", 1);
    n.assign(any, Expr::ReduceOr(Box::new(Expr::net(ddr_q))));
    let same = n.wire("same", 1);
    n.assign(same, Expr::eq(Expr::net(a1), Expr::net(a2)));
    let mix = n.wire("mix", 16);
    n.assign(
        mix,
        Expr::mux(
            Expr::net(same),
            Expr::net(rdata),
            Expr::Concat(vec![Expr::net(ddr_q), Expr::Slice(rdata, 15, 8)]),
        ),
    );

    let bus = n.wire("bus", 16);
    n.tristate(bus, Expr::net(en0), Expr::net(mix));
    n.tristate(bus, Expr::net(en1), Expr::not(Expr::net(rdata)));
    n.mark_output(bus);

    (n, vec![clk, we, addr, wdata, en0, en1])
}

/// Per-lane stimulus: a cheap deterministic hash of (lane, cycle).
fn lane_stim(lane: u64, cycle: u64) -> u64 {
    let mut z = lane
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z ^= z >> 29;
    z.wrapping_mul(0x94D0_49BB_1331_11EB)
}

/// 64 lanes of the batched simulator against 64 independently-driven
/// scalar simulators: every net identical every cycle, including lanes
/// carrying X injections on the write-data bus.
#[test]
fn batched_lanes_match_scalar_simulators() {
    let (n, ins) = batched_probe_design();
    let [clk, we, addr, wdata, en0, en1] = ins[..] else {
        unreachable!()
    };
    for mode in [SettleMode::ActivityDriven, SettleMode::Full] {
        let mut batched = BatchedRtlSim::new(&n);
        batched.set_settle_mode(mode);
        let mut scalars: Vec<RtlSim> = (0..LANES)
            .map(|_| {
                let mut s = RtlSim::new(&n);
                s.set_settle_mode(mode);
                s
            })
            .collect();
        for cycle in 0..48u64 {
            for (lane, sc) in scalars.iter_mut().enumerate() {
                let s = lane_stim(lane as u64, cycle);
                let xlane = s.is_multiple_of(7); // some lanes inject X wdata
                batched.set_lane_u64(we, lane, s & 1);
                batched.set_lane_u64(addr, lane, s >> 1 & 7);
                if xlane {
                    batched.set_lane_xs(wdata, lane);
                } else {
                    batched.set_lane_u64(wdata, lane, s >> 4 & 0xFFFF);
                }
                batched.set_lane_u64(en0, lane, s >> 20 & 1);
                batched.set_lane_u64(en1, lane, s >> 21 & 1);
                sc.set_u64(we, s & 1);
                sc.set_u64(addr, s >> 1 & 7);
                if xlane {
                    sc.set(wdata, LogicVec::xs(16));
                } else {
                    sc.set_u64(wdata, s >> 4 & 0xFFFF);
                }
                sc.set_u64(en0, s >> 20 & 1);
                sc.set_u64(en1, s >> 21 & 1);
            }
            for phase in [1u64, 0] {
                batched.set_u64_all(clk, phase);
                batched.step();
                for (lane, sc) in scalars.iter_mut().enumerate() {
                    sc.set_u64(clk, phase);
                    sc.step();
                    for net in 0..n.num_nets() as u32 {
                        assert_eq!(
                            &batched.get_lane(NetId(net), lane),
                            sc.get(NetId(net)),
                            "{mode:?} lane {lane} cycle {cycle} phase {phase} net {}",
                            n.net_name(NetId(net))
                        );
                    }
                }
            }
        }
    }
}

/// The lane probe must agree with the scalar probe on arbitrary
/// expressions (the monitor path).
#[test]
fn lane_probe_matches_scalar_probe() {
    let (n, ins) = batched_probe_design();
    let [clk, we, addr, wdata, en0, en1] = ins[..] else {
        unreachable!()
    };
    let rdata = n.find("rdata").unwrap();
    let bus = n.find("bus").unwrap();
    let probe_expr = Expr::mux(
        Expr::eq(Expr::net(addr), Expr::value(3, 3)),
        Expr::and(Expr::net(rdata), Expr::net(bus)),
        Expr::xor(Expr::net(rdata), Expr::net(bus)),
    );
    let mut batched = BatchedRtlSim::new(&n);
    let mut scalars: Vec<RtlSim> = (0..LANES).map(|_| RtlSim::new(&n)).collect();
    for cycle in 0..16u64 {
        for (lane, sc) in scalars.iter_mut().enumerate() {
            let s = lane_stim(lane as u64, cycle);
            for (net, val) in [
                (we, s & 1),
                (addr, s >> 1 & 7),
                (wdata, s >> 4 & 0xFFFF),
                (en0, s >> 20 & 1),
                (en1, s >> 21 & 1),
            ] {
                batched.set_lane_u64(net, lane, val);
                sc.set_u64(net, val);
            }
        }
        for phase in [1u64, 0] {
            batched.set_u64_all(clk, phase);
            batched.step();
            for sc in scalars.iter_mut() {
                sc.set_u64(clk, phase);
                sc.step();
            }
        }
        for (lane, sc) in scalars.iter_mut().enumerate() {
            assert_eq!(
                batched.lane_probe(lane).probe(&probe_expr),
                RtlProbe::probe(sc, &probe_expr),
                "probe lane {lane} cycle {cycle}"
            );
        }
    }
}
