//! Structural netlist: nets, expressions and synthesizable items.

use crate::logic::LogicVec;
use std::fmt;

/// Index of a net in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// The storage class of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// Driven by continuous assignments / tristates (Verilog `wire`).
    Wire,
    /// Holds state between clock edges (Verilog `reg` behind an
    /// `always @(edge)` block).
    Reg,
    /// A primary input.
    Input,
}

/// A combinational expression over nets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal value.
    Const(LogicVec),
    /// A whole net.
    Net(NetId),
    /// A single bit of a net (1-bit result).
    Index(NetId, u32),
    /// Bits `lo..=hi` of a net.
    Slice(NetId, u32, u32),
    /// Bitwise negation.
    Not(Box<Expr>),
    /// Bitwise and.
    And(Box<Expr>, Box<Expr>),
    /// Bitwise or.
    Or(Box<Expr>, Box<Expr>),
    /// Bitwise xor.
    Xor(Box<Expr>, Box<Expr>),
    /// Equality comparison (1-bit result; `X` if either side unknown).
    Eq(Box<Expr>, Box<Expr>),
    /// Two-way multiplexer: `sel ? a : b` (`sel` must be 1 bit).
    Mux {
        /// 1-bit select.
        sel: Box<Expr>,
        /// Value when `sel` is 1.
        a: Box<Expr>,
        /// Value when `sel` is 0.
        b: Box<Expr>,
    },
    /// Concatenation; the **first** element is the least significant
    /// part (note: opposite of Verilog's `{}` display order).
    Concat(Vec<Expr>),
    /// Reduction xor (parity) of the operand — 1-bit result.
    ReduceXor(Box<Expr>),
    /// Reduction or of the operand — 1-bit result.
    ReduceOr(Box<Expr>),
}

impl Expr {
    /// A whole-net reference.
    pub fn net(id: NetId) -> Expr {
        Expr::Net(id)
    }

    /// A 1-bit constant.
    pub fn bit(value: bool) -> Expr {
        Expr::Const(LogicVec::from_u64(value as u64, 1))
    }

    /// A `width`-bit constant.
    pub fn value(value: u64, width: u32) -> Expr {
        Expr::Const(LogicVec::from_u64(value, width))
    }

    /// Bitwise not.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// Bitwise and.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// Bitwise or.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Bitwise xor.
    pub fn xor(a: Expr, b: Expr) -> Expr {
        Expr::Xor(Box::new(a), Box::new(b))
    }

    /// Equality (1-bit).
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    /// `sel ? a : b`.
    pub fn mux(sel: Expr, a: Expr, b: Expr) -> Expr {
        Expr::Mux {
            sel: Box::new(sel),
            a: Box::new(a),
            b: Box::new(b),
        }
    }

    /// Equality with a constant of the given width.
    pub fn eq_const(a: Expr, value: u64, width: u32) -> Expr {
        Expr::eq(a, Expr::value(value, width))
    }
}

/// The clock edge a sequential element reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Rising edge.
    Pos,
    /// Falling edge.
    Neg,
}

/// A synthesizable item.
#[derive(Debug, Clone)]
pub enum Item {
    /// `assign target = expr;`
    Assign {
        /// Target wire.
        target: NetId,
        /// Driving expression.
        expr: Expr,
    },
    /// An edge-triggered register with optional clock enable.
    Dff {
        /// 1-bit clock net.
        clock: NetId,
        /// Triggering edge.
        edge: Edge,
        /// Optional 1-bit enable expression.
        enable: Option<Expr>,
        /// Next-value expression.
        d: Expr,
        /// Target register.
        q: NetId,
    },
    /// A double-data-rate register: captures `d_rise` on rising and
    /// `d_fall` on falling clock edges (the LA-1 18-pin DDR data paths).
    DdrFf {
        /// 1-bit clock net.
        clock: NetId,
        /// Captured on the rising edge.
        d_rise: Expr,
        /// Captured on the falling edge.
        d_fall: Expr,
        /// Target register.
        q: NetId,
    },
    /// A RAM block with synchronous write (with per-bit mask) and
    /// asynchronous read.
    Ram {
        /// 1-bit clock net (writes on the rising edge).
        clock: NetId,
        /// 1-bit write-enable expression.
        we: Expr,
        /// Write address expression.
        waddr: Expr,
        /// Write data expression.
        wdata: Expr,
        /// Per-bit write mask (all-ones when `None`) — byte write
        /// control for the LA-1.
        wmask: Option<Expr>,
        /// Read address expression.
        raddr: Expr,
        /// Read data target wire (combinational).
        rdata: NetId,
        /// Number of words.
        words: u32,
        /// Word width in bits.
        width: u32,
    },
    /// One tristate driver onto a shared wire. Multiple drivers of the
    /// same target are resolved (`Z` yields, conflict is `X`).
    Tristate {
        /// Target wire.
        target: NetId,
        /// 1-bit output-enable expression.
        enable: Expr,
        /// Driven value when enabled.
        value: Expr,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct NetDecl {
    pub(crate) name: String,
    pub(crate) width: u32,
    pub(crate) kind: NetKind,
    pub(crate) init: Option<LogicVec>,
}

/// A structural hardware design.
///
/// Build with the `input`/`wire`/`reg` constructors and the item
/// methods, then simulate with [`crate::RtlSim`], extract a
/// [`crate::TransitionSystem`] for model checking, or emit Verilog.
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) nets: Vec<NetDecl>,
    pub(crate) items: Vec<Item>,
    pub(crate) outputs: Vec<NetId>,
}

impl Netlist {
    /// Creates an empty design named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nets: Vec::new(),
            items: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn add_net(&mut self, name: String, width: u32, kind: NetKind) -> NetId {
        assert!(width > 0, "net {name} must have nonzero width");
        assert!(
            !self.nets.iter().any(|n| n.name == name),
            "net {name} declared twice"
        );
        self.nets.push(NetDecl {
            name,
            width,
            kind,
            init: None,
        });
        NetId(self.nets.len() as u32 - 1)
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> NetId {
        self.add_net(name.into(), width, NetKind::Input)
    }

    /// Declares a wire.
    pub fn wire(&mut self, name: impl Into<String>, width: u32) -> NetId {
        self.add_net(name.into(), width, NetKind::Wire)
    }

    /// Declares a register (initialized to zero).
    pub fn reg(&mut self, name: impl Into<String>, width: u32) -> NetId {
        self.add_net(name.into(), width, NetKind::Reg)
    }

    /// Declares a register with an explicit initial value.
    pub fn reg_init(&mut self, name: impl Into<String>, width: u32, init: u64) -> NetId {
        let id = self.add_net(name.into(), width, NetKind::Reg);
        self.nets[id.0 as usize].init = Some(LogicVec::from_u64(init, width));
        id
    }

    /// Marks a net as a module output (affects Verilog emission only).
    pub fn mark_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Adds `assign target = expr`.
    pub fn assign(&mut self, target: NetId, expr: Expr) {
        self.items.push(Item::Assign { target, expr });
    }

    /// Adds a rising-edge register.
    pub fn dff_posedge(&mut self, clock: NetId, d: Expr, q: NetId) {
        self.items.push(Item::Dff {
            clock,
            edge: Edge::Pos,
            enable: None,
            d,
            q,
        });
    }

    /// Adds a falling-edge register.
    pub fn dff_negedge(&mut self, clock: NetId, d: Expr, q: NetId) {
        self.items.push(Item::Dff {
            clock,
            edge: Edge::Neg,
            enable: None,
            d,
            q,
        });
    }

    /// Adds an edge-triggered register with a clock enable.
    pub fn dff_en(&mut self, clock: NetId, edge: Edge, enable: Expr, d: Expr, q: NetId) {
        self.items.push(Item::Dff {
            clock,
            edge,
            enable: Some(enable),
            d,
            q,
        });
    }

    /// Adds a DDR register (captures on both edges).
    pub fn ddr(&mut self, clock: NetId, d_rise: Expr, d_fall: Expr, q: NetId) {
        self.items.push(Item::DdrFf {
            clock,
            d_rise,
            d_fall,
            q,
        });
    }

    /// Adds a RAM block; `rdata` must be a wire of width `width`.
    #[allow(clippy::too_many_arguments)]
    pub fn ram(
        &mut self,
        clock: NetId,
        we: Expr,
        waddr: Expr,
        wdata: Expr,
        wmask: Option<Expr>,
        raddr: Expr,
        rdata: NetId,
        words: u32,
        width: u32,
    ) {
        self.items.push(Item::Ram {
            clock,
            we,
            waddr,
            wdata,
            wmask,
            raddr,
            rdata,
            words,
            width,
        });
    }

    /// Adds a tristate driver of `target`.
    pub fn tristate(&mut self, target: NetId, enable: Expr, value: Expr) {
        self.items.push(Item::Tristate {
            target,
            enable,
            value,
        });
    }

    /// The width of a net.
    pub fn width(&self, net: NetId) -> u32 {
        self.nets[net.0 as usize].width
    }

    /// The name of a net.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.nets[net.0 as usize].name
    }

    /// Looks up a net by name.
    pub fn find(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| NetId(i as u32))
    }

    /// Number of declared nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of synthesizable items (a size proxy for reports).
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// The items in declaration order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Computes the result width of an expression in this design.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches between binary operands — the same
    /// errors Verilog elaboration would reject.
    pub fn expr_width(&self, e: &Expr) -> u32 {
        match e {
            Expr::Const(v) => v.width(),
            Expr::Net(n) => self.width(*n),
            Expr::Index(..) => 1,
            Expr::Slice(_, hi, lo) => hi - lo + 1,
            Expr::Not(a) => self.expr_width(a),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                let (wa, wb) = (self.expr_width(a), self.expr_width(b));
                assert_eq!(wa, wb, "width mismatch in binary expression");
                wa
            }
            Expr::Eq(a, b) => {
                assert_eq!(
                    self.expr_width(a),
                    self.expr_width(b),
                    "width mismatch in comparison"
                );
                1
            }
            Expr::Mux { sel, a, b } => {
                assert_eq!(self.expr_width(sel), 1, "mux select must be 1 bit");
                let (wa, wb) = (self.expr_width(a), self.expr_width(b));
                assert_eq!(wa, wb, "width mismatch in mux arms");
                wa
            }
            Expr::Concat(parts) => parts.iter().map(|p| self.expr_width(p)).sum(),
            Expr::ReduceXor(_) | Expr::ReduceOr(_) => 1,
        }
    }
}
