//! The shared compiled schedule.
//!
//! [`Schedule::compile`] lowers a [`Netlist`] **once** into a flat array
//! of [`Op`]s over an abstract value arena: slots `0..num_nets` hold the
//! net values, the remaining slots hold constants and expression
//! temporaries. The schedule is pure data — it says nothing about how a
//! slot is represented. Two executors interpret it:
//!
//! * [`RtlSim`](crate::RtlSim) — one [`LogicVec`] per slot (one stimulus
//!   vector per pass);
//! * [`BatchedRtlSim`](crate::BatchedRtlSim) — one
//!   [`PackedVec`](crate::PackedVec) per slot (64 independent stimulus
//!   lanes per pass, PPSFP style).
//!
//! Keeping the compiler in one place guarantees both executors agree on
//! slot numbering, op order, topological ranks and fanout — the batched
//! simulator is *defined* to be 64 copies of the scalar one.

use crate::logic::LogicVec;
use crate::netlist::{Edge, Expr, Item, Netlist};

/// A compiled operation over value-arena slots. `dst` is always a
/// dedicated temporary, so evaluation mutates `dst` in place while
/// reading its operand slots.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// `dst = a` (dedicates a net/const root to its node).
    Copy { a: u32, dst: u32 },
    /// `dst = a[bit]`.
    Index { a: u32, bit: u32, dst: u32 },
    /// `dst = a[lo +: width(dst)]`.
    Slice { a: u32, lo: u32, dst: u32 },
    /// `dst = ~a`.
    Not { a: u32, dst: u32 },
    /// `dst = a & b`.
    And { a: u32, b: u32, dst: u32 },
    /// `dst = a | b`.
    Or { a: u32, b: u32, dst: u32 },
    /// `dst = a ^ b`.
    Xor { a: u32, b: u32, dst: u32 },
    /// `dst = (a == b)` — `X` if either side has unknown bits.
    Eq { a: u32, b: u32, dst: u32 },
    /// `dst = sel ? a : b` — all-`X` when `sel` is unknown.
    Mux { sel: u32, a: u32, b: u32, dst: u32 },
    /// `dst = {…parts…}` (first part is the LSB); `parts` indexes the
    /// side table.
    Concat { parts: (u32, u32), dst: u32 },
    /// `dst = ^a`.
    ReduceXor { a: u32, dst: u32 },
    /// `dst = |a`.
    ReduceOr { a: u32, dst: u32 },
}

impl Op {
    pub(crate) fn dst(&self) -> u32 {
        match *self {
            Op::Copy { dst, .. }
            | Op::Index { dst, .. }
            | Op::Slice { dst, .. }
            | Op::Not { dst, .. }
            | Op::And { dst, .. }
            | Op::Or { dst, .. }
            | Op::Xor { dst, .. }
            | Op::Eq { dst, .. }
            | Op::Mux { dst, .. }
            | Op::Concat { dst, .. }
            | Op::ReduceXor { dst, .. }
            | Op::ReduceOr { dst, .. } => dst,
        }
    }
}

/// `(start, end)` range into the op array.
pub(crate) type OpsRange = (u32, u32);

/// A compiled combinational driver.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CombNode {
    /// `assign target = …` — run `ops`, result lands in `src`.
    Assign {
        ops: OpsRange,
        src: u32,
        target: u32,
    },
    /// Asynchronous RAM read port: run `ops` (the read address lands in
    /// `addr`), copy the addressed word — or all-`X` when the address is
    /// unknown/out of range — into `out`.
    RamRead {
        ops: OpsRange,
        addr: u32,
        ram: u32,
        words: u32,
        target: u32,
        out: u32,
    },
    /// All tristate drivers of one shared wire, resolved into `acc`.
    Tri {
        target: u32,
        acc: u32,
        drivers: (u32, u32),
    },
}

impl CombNode {
    pub(crate) fn target(&self) -> u32 {
        match *self {
            CombNode::Assign { target, .. }
            | CombNode::RamRead { target, .. }
            | CombNode::Tri { target, .. } => target,
        }
    }
}

/// One tristate driver within a [`CombNode::Tri`] group.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TriDriver {
    pub(crate) ops: OpsRange,
    pub(crate) en: u32,
    pub(crate) value: u32,
}

/// A compiled clocked element, sampled on clock edges during a step.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SeqNode {
    Dff {
        clock: u32,
        edge: Edge,
        en: Option<(OpsRange, u32)>,
        d: (OpsRange, u32),
        q: u32,
    },
    Ddr {
        clock: u32,
        rise: (OpsRange, u32),
        fall: (OpsRange, u32),
        q: u32,
    },
    RamWrite {
        clock: u32,
        we: (OpsRange, u32),
        waddr: (OpsRange, u32),
        wdata: (OpsRange, u32),
        wmask: Option<(OpsRange, u32)>,
        ram: u32,
        words: u32,
        width: u32,
        /// dedicated slot the read-modify-write word is built in
        word: u32,
    },
}

/// The immutable compiled form of one [`Netlist`]: flat ops, node lists,
/// topological ranks, CSR fanout and arena layout. Shared verbatim by
/// the scalar and batched executors.
#[derive(Debug, Clone)]
pub(crate) struct Schedule {
    pub(crate) ops: Vec<Op>,
    pub(crate) parts: Vec<u32>,
    pub(crate) comb: Vec<CombNode>,
    pub(crate) tri: Vec<TriDriver>,
    pub(crate) seq: Vec<SeqNode>,
    /// topological rank per comb node (valid when `!fallback_full`)
    pub(crate) rank: Vec<u32>,
    /// CSR fanout: net id → comb nodes reading it
    pub(crate) fanout_off: Vec<u32>,
    pub(crate) fanout: Vec<u32>,
    /// RAM item index → comb nodes reading that RAM
    pub(crate) ram_readers: Vec<Vec<u32>>,
    /// tri-group comb node ids sorted by target net (full-settle order)
    pub(crate) tri_order: Vec<u32>,
    /// nets used as clocks by any sequential node
    pub(crate) clock_nets: Vec<u32>,
    /// cyclic or multiply-driven: activity-driven settling is unsound,
    /// always use the full fixpoint
    pub(crate) fallback_full: bool,
    /// width of every arena slot (nets, then consts and temps)
    pub(crate) widths: Vec<u32>,
    /// `(slot, value)` constants to preload into the arena
    pub(crate) consts: Vec<(u32, LogicVec)>,
}

/// Compiles expression trees into the flat op schedule.
struct Compiler<'a> {
    design: &'a Netlist,
    ops: Vec<Op>,
    parts: Vec<u32>,
    /// width of every slot allocated so far
    widths: Vec<u32>,
    /// `(slot, value)` constants to preload into the arena
    consts: Vec<(u32, LogicVec)>,
    /// nets read by the expressions compiled since the last `take_reads`
    reads: Vec<u32>,
}

impl<'a> Compiler<'a> {
    fn new(design: &'a Netlist) -> Self {
        let widths = design.nets.iter().map(|n| n.width).collect();
        Compiler {
            design,
            ops: Vec::new(),
            parts: Vec::new(),
            widths,
            consts: Vec::new(),
            reads: Vec::new(),
        }
    }

    fn num_nets(&self) -> u32 {
        self.design.nets.len() as u32
    }

    fn slot(&mut self, width: u32) -> u32 {
        self.widths.push(width);
        self.widths.len() as u32 - 1
    }

    /// Compiles `e`, returning the slot its value lives in after the
    /// emitted ops run. Net and const leaves return their own slot
    /// without emitting an op.
    fn compile(&mut self, e: &Expr) -> u32 {
        match e {
            Expr::Const(v) => {
                let dst = self.slot(v.width());
                self.consts.push((dst, v.clone()));
                dst
            }
            Expr::Net(n) => {
                self.reads.push(n.0);
                n.0
            }
            Expr::Index(n, i) => {
                self.reads.push(n.0);
                let dst = self.slot(1);
                self.ops.push(Op::Index {
                    a: n.0,
                    bit: *i,
                    dst,
                });
                dst
            }
            Expr::Slice(n, hi, lo) => {
                self.reads.push(n.0);
                assert!(
                    hi >= lo && *hi < self.widths[n.0 as usize],
                    "slice out of range on {}",
                    self.design.net_name(*n)
                );
                let dst = self.slot(hi - lo + 1);
                self.ops.push(Op::Slice { a: n.0, lo: *lo, dst });
                dst
            }
            Expr::Not(a) => {
                let a = self.compile(a);
                let dst = self.slot(self.widths[a as usize]);
                self.ops.push(Op::Not { a, dst });
                dst
            }
            Expr::And(a, b) => self.compile_binop(a, b, |a, b, dst| Op::And { a, b, dst }),
            Expr::Or(a, b) => self.compile_binop(a, b, |a, b, dst| Op::Or { a, b, dst }),
            Expr::Xor(a, b) => self.compile_binop(a, b, |a, b, dst| Op::Xor { a, b, dst }),
            Expr::Eq(a, b) => {
                let (a, b) = (self.compile(a), self.compile(b));
                assert_eq!(
                    self.widths[a as usize], self.widths[b as usize],
                    "width mismatch in comparison"
                );
                let dst = self.slot(1);
                self.ops.push(Op::Eq { a, b, dst });
                dst
            }
            Expr::Mux { sel, a, b } => {
                let sel = self.compile(sel);
                assert_eq!(self.widths[sel as usize], 1, "mux select must be 1 bit");
                let (a, b) = (self.compile(a), self.compile(b));
                assert_eq!(
                    self.widths[a as usize], self.widths[b as usize],
                    "width mismatch in mux arms"
                );
                let dst = self.slot(self.widths[a as usize]);
                self.ops.push(Op::Mux { sel, a, b, dst });
                dst
            }
            Expr::Concat(ps) => {
                let slots: Vec<u32> = ps.iter().map(|p| self.compile(p)).collect();
                let width = slots.iter().map(|&s| self.widths[s as usize]).sum();
                let p0 = self.parts.len() as u32;
                self.parts.extend_from_slice(&slots);
                let p1 = self.parts.len() as u32;
                let dst = self.slot(width);
                self.ops.push(Op::Concat {
                    parts: (p0, p1),
                    dst,
                });
                dst
            }
            Expr::ReduceXor(a) => {
                let a = self.compile(a);
                let dst = self.slot(1);
                self.ops.push(Op::ReduceXor { a, dst });
                dst
            }
            Expr::ReduceOr(a) => {
                let a = self.compile(a);
                let dst = self.slot(1);
                self.ops.push(Op::ReduceOr { a, dst });
                dst
            }
        }
    }

    fn compile_binop(&mut self, a: &Expr, b: &Expr, mk: fn(u32, u32, u32) -> Op) -> u32 {
        let (a, b) = (self.compile(a), self.compile(b));
        assert_eq!(
            self.widths[a as usize], self.widths[b as usize],
            "width mismatch in binary expression"
        );
        let dst = self.slot(self.widths[a as usize]);
        self.ops.push(mk(a, b, dst));
        dst
    }

    /// Compiles `e` as a node root: the returned `(ops, slot)` pair has a
    /// slot that no other node writes and that is not a live net, so its
    /// value survives until the commit phase.
    fn compile_root(&mut self, e: &Expr) -> (OpsRange, u32) {
        let start = self.ops.len() as u32;
        let mut s = self.compile(e);
        if s < self.num_nets() {
            // a bare net reference: dedicate a temp so deferred commits
            // read the value sampled now, not the net's later value
            let dst = self.slot(self.widths[s as usize]);
            self.ops.push(Op::Copy { a: s, dst });
            s = dst;
        }
        (((start), self.ops.len() as u32), s)
    }

    /// Compiles `e` for an immediately-consumed control value (clock
    /// enables, addresses): no dedication needed.
    fn compile_ctrl(&mut self, e: &Expr) -> (OpsRange, u32) {
        let start = self.ops.len() as u32;
        let s = self.compile(e);
        ((start, self.ops.len() as u32), s)
    }

    fn take_reads(&mut self) -> Vec<u32> {
        let mut r = std::mem::take(&mut self.reads);
        r.sort_unstable();
        r.dedup();
        r
    }
}

impl Schedule {
    /// Compiles `design` into the flat schedule.
    ///
    /// # Panics
    ///
    /// Panics on expression width mismatches (the same errors Verilog
    /// elaboration would reject).
    pub(crate) fn compile(design: &Netlist) -> Schedule {
        let num_nets = design.nets.len();
        let mut c = Compiler::new(design);
        let mut comb: Vec<CombNode> = Vec::new();
        let mut tri: Vec<TriDriver> = Vec::new();
        let mut seq: Vec<SeqNode> = Vec::new();
        let mut node_reads: Vec<Vec<u32>> = Vec::new();
        let mut ram_readers: Vec<Vec<u32>> = vec![Vec::new(); design.items.len()];
        // tristate groups: target net → (comb node index, driver list)
        let mut tri_groups: Vec<(u32, Vec<TriDriver>, Vec<u32>)> = Vec::new();

        for (idx, item) in design.items.iter().enumerate() {
            match item {
                Item::Assign { target, expr } => {
                    let (ops, src) = c.compile_root(expr);
                    comb.push(CombNode::Assign {
                        ops,
                        src,
                        target: target.0,
                    });
                    node_reads.push(c.take_reads());
                }
                Item::Tristate {
                    target,
                    enable,
                    value,
                } => {
                    let (e_ops, en) = c.compile_ctrl(enable);
                    let (v_ops, value) = c.compile_ctrl(value);
                    // one op range covering both (they are contiguous)
                    let driver = TriDriver {
                        ops: (e_ops.0, v_ops.1),
                        en,
                        value,
                    };
                    let reads = c.take_reads();
                    match tri_groups.iter_mut().find(|(t, ..)| *t == target.0) {
                        Some((_, drivers, group_reads)) => {
                            drivers.push(driver);
                            group_reads.extend(reads);
                        }
                        None => tri_groups.push((target.0, vec![driver], reads)),
                    }
                }
                Item::Ram {
                    raddr,
                    rdata,
                    words,
                    width,
                    clock,
                    we,
                    waddr,
                    wdata,
                    wmask,
                    ..
                } => {
                    // asynchronous read port (combinational)
                    let (ops, addr) = c.compile_ctrl(raddr);
                    let out = c.slot(*width);
                    ram_readers[idx].push(comb.len() as u32);
                    comb.push(CombNode::RamRead {
                        ops,
                        addr,
                        ram: idx as u32,
                        words: *words,
                        target: rdata.0,
                        out,
                    });
                    node_reads.push(c.take_reads());
                    // synchronous write port (sequential)
                    let we = c.compile_ctrl(we);
                    let waddr = c.compile_ctrl(waddr);
                    let wdata = c.compile_ctrl(wdata);
                    let wmask = wmask.as_ref().map(|m| c.compile_ctrl(m));
                    c.reads.clear(); // seq inputs need no fanout edges
                    let word = c.slot(*width);
                    seq.push(SeqNode::RamWrite {
                        clock: clock.0,
                        we,
                        waddr,
                        wdata,
                        wmask,
                        ram: idx as u32,
                        words: *words,
                        width: *width,
                        word,
                    });
                }
                Item::Dff {
                    clock,
                    edge,
                    enable,
                    d,
                    q,
                } => {
                    let en = enable.as_ref().map(|e| c.compile_ctrl(e));
                    let d = c.compile_root(d);
                    c.reads.clear();
                    seq.push(SeqNode::Dff {
                        clock: clock.0,
                        edge: *edge,
                        en,
                        d,
                        q: q.0,
                    });
                }
                Item::DdrFf {
                    clock,
                    d_rise,
                    d_fall,
                    q,
                } => {
                    let rise = c.compile_root(d_rise);
                    let fall = c.compile_root(d_fall);
                    c.reads.clear();
                    seq.push(SeqNode::Ddr {
                        clock: clock.0,
                        rise,
                        fall,
                        q: q.0,
                    });
                }
            }
        }
        // append the tristate groups after the single-driver nodes (per
        // settle pass all nodes read pass-start values, so eval order
        // within a pass is immaterial)
        for (target, drivers, mut reads) in tri_groups {
            let acc = c.slot(design.nets[target as usize].width);
            let d0 = tri.len() as u32;
            tri.extend(drivers);
            let d1 = tri.len() as u32;
            comb.push(CombNode::Tri {
                target,
                acc,
                drivers: (d0, d1),
            });
            reads.sort_unstable();
            reads.dedup();
            node_reads.push(reads);
        }

        // producer per net; multiply-driven wires force the full-settle
        // fallback (activity-driven single-producer reasoning is unsound)
        let mut producer: Vec<Option<u32>> = vec![None; num_nets];
        let mut fallback_full = false;
        for (ni, node) in comb.iter().enumerate() {
            let t = node.target() as usize;
            if producer[t].is_some() {
                fallback_full = true;
            }
            producer[t] = Some(ni as u32);
        }

        // Kahn topological ranking over comb nodes (edges: producer of a
        // read net → reader); a leftover node means a combinational cycle
        let mut rank = vec![0u32; comb.len()];
        if !fallback_full {
            let mut indegree = vec![0u32; comb.len()];
            // adjacency: producer node → reader nodes
            let mut succ: Vec<Vec<u32>> = vec![Vec::new(); comb.len()];
            for (ni, reads) in node_reads.iter().enumerate() {
                for &n in reads {
                    if let Some(p) = producer[n as usize] {
                        succ[p as usize].push(ni as u32);
                        indegree[ni] += 1;
                    }
                }
            }
            let mut queue: Vec<u32> = (0..comb.len() as u32)
                .filter(|&n| indegree[n as usize] == 0)
                .collect();
            let mut next = 0usize;
            let mut placed = 0u32;
            while next < queue.len() {
                let n = queue[next];
                next += 1;
                rank[n as usize] = placed;
                placed += 1;
                for &s in &succ[n as usize] {
                    indegree[s as usize] -= 1;
                    if indegree[s as usize] == 0 {
                        queue.push(s);
                    }
                }
            }
            if (placed as usize) != comb.len() {
                fallback_full = true; // combinational cycle
            }
        }

        // CSR fanout: net → comb nodes reading it
        let mut fanout_off = vec![0u32; num_nets + 1];
        for reads in &node_reads {
            for &n in reads {
                fanout_off[n as usize + 1] += 1;
            }
        }
        for i in 0..num_nets {
            fanout_off[i + 1] += fanout_off[i];
        }
        let mut fanout = vec![0u32; fanout_off[num_nets] as usize];
        let mut cursor = fanout_off.clone();
        for (ni, reads) in node_reads.iter().enumerate() {
            for &n in reads {
                fanout[cursor[n as usize] as usize] = ni as u32;
                cursor[n as usize] += 1;
            }
        }

        let mut tri_order: Vec<u32> = comb
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, CombNode::Tri { .. }))
            .map(|(i, _)| i as u32)
            .collect();
        tri_order.sort_unstable_by_key(|&i| comb[i as usize].target());

        let mut clock_nets: Vec<u32> = seq
            .iter()
            .map(|s| match *s {
                SeqNode::Dff { clock, .. }
                | SeqNode::Ddr { clock, .. }
                | SeqNode::RamWrite { clock, .. } => clock,
            })
            .collect();
        clock_nets.sort_unstable();
        clock_nets.dedup();

        Schedule {
            ops: c.ops,
            parts: c.parts,
            comb,
            tri,
            seq,
            rank,
            fanout_off,
            fanout,
            ram_readers,
            tri_order,
            clock_nets,
            fallback_full,
            widths: c.widths,
            consts: c.consts,
        }
    }
}
