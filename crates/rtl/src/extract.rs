//! Bit-blasting a two-valued netlist into a transition system for
//! symbolic model checking.
//!
//! The extraction gives every register bit (and every RAM bit) a state
//! variable, every non-clock primary-input bit a free input variable,
//! and designated clock nets an auto-toggling state bit (`c' = !c`), so
//! one transition of the system is one half-period of the clock — the
//! granularity at which the LA-1's DDR behaviour is visible.
//!
//! Four-state behaviour is not modelled: `Z` on a tristate bus is
//! treated as 0 and drivers are combined as `OR(enable_i AND value_i)`,
//! which is exact when at most one driver is enabled (the LA-1 bank
//! decoder guarantees this; the `la1-smc` checker can verify the
//! one-hotness as a property).

use crate::netlist::{Edge, Expr, Item, NetId, NetKind, Netlist};
use std::collections::HashMap;

/// Index of a node in a [`TransitionSystem`]'s DAG.
pub type BitId = u32;

/// A node of the bit-level combinational DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitExpr {
    /// Constant.
    Const(bool),
    /// A variable: **input bits first, then state bits** — so appending
    /// monitor state (as `la1-smc` does) never renumbers existing
    /// references.
    Var(u32),
    /// Negation of another node.
    Not(BitId),
    /// Conjunction.
    And(BitId, BitId),
    /// Disjunction.
    Or(BitId, BitId),
    /// Exclusive or.
    Xor(BitId, BitId),
}

/// A bit-level finite transition system extracted from a [`Netlist`].
#[derive(Debug, Clone)]
pub struct TransitionSystem {
    /// The shared combinational DAG.
    pub nodes: Vec<BitExpr>,
    /// Names of the state bits (variables `num_input_bits()..`).
    pub state_bits: Vec<String>,
    /// Names of the free input bits (variables `0..num_input_bits()`).
    pub input_bits: Vec<String>,
    /// Initial value of each state bit.
    pub init: Vec<bool>,
    /// Next-state function of each state bit, as a node id.
    pub next: Vec<BitId>,
    /// Current-cycle value of every net, for property predicates:
    /// `(net name, bit functions lsb-first)`.
    probes: HashMap<String, Vec<BitId>>,
}

impl TransitionSystem {
    /// Number of state bits.
    pub fn num_state_bits(&self) -> usize {
        self.state_bits.len()
    }

    /// Number of free input bits.
    pub fn num_input_bits(&self) -> usize {
        self.input_bits.len()
    }

    /// The bit functions (lsb first) giving the current value of a net.
    pub fn probe(&self, net_name: &str) -> Option<&[BitId]> {
        self.probes.get(net_name).map(Vec::as_slice)
    }

    /// Names of all probeable nets.
    pub fn probe_names(&self) -> impl Iterator<Item = &str> {
        self.probes.keys().map(String::as_str)
    }

    /// Evaluates a node under full assignments to state and input bits
    /// (used for testing and for counterexample replay).
    pub fn eval_node(&self, id: BitId, state: &[bool], inputs: &[bool]) -> bool {
        let var = |v: u32| {
            let ni = self.input_bits.len() as u32;
            if v < ni {
                inputs[v as usize]
            } else {
                state[(v - ni) as usize]
            }
        };
        // iterative memoized evaluation over the DAG prefix
        let mut memo = vec![None::<bool>; self.nodes.len()];
        fn go(
            nodes: &[BitExpr],
            memo: &mut [Option<bool>],
            var: &dyn Fn(u32) -> bool,
            id: BitId,
        ) -> bool {
            if let Some(v) = memo[id as usize] {
                return v;
            }
            let v = match nodes[id as usize] {
                BitExpr::Const(b) => b,
                BitExpr::Var(i) => var(i),
                BitExpr::Not(a) => !go(nodes, memo, var, a),
                BitExpr::And(a, b) => go(nodes, memo, var, a) && go(nodes, memo, var, b),
                BitExpr::Or(a, b) => go(nodes, memo, var, a) || go(nodes, memo, var, b),
                BitExpr::Xor(a, b) => go(nodes, memo, var, a) ^ go(nodes, memo, var, b),
            };
            memo[id as usize] = Some(v);
            v
        }
        go(&self.nodes, &mut memo, &var, id)
    }
}

struct Builder {
    nodes: Vec<BitExpr>,
    dedup: HashMap<BitExpr, BitId>,
}

impl Builder {
    fn new() -> Self {
        let mut b = Builder {
            nodes: Vec::new(),
            dedup: HashMap::new(),
        };
        b.mk(BitExpr::Const(false));
        b.mk(BitExpr::Const(true));
        b
    }

    fn mk(&mut self, e: BitExpr) -> BitId {
        if let Some(&id) = self.dedup.get(&e) {
            return id;
        }
        let id = self.nodes.len() as BitId;
        self.nodes.push(e);
        self.dedup.insert(e, id);
        id
    }

    fn konst(&mut self, b: bool) -> BitId {
        self.mk(BitExpr::Const(b))
    }

    fn var(&mut self, v: u32) -> BitId {
        self.mk(BitExpr::Var(v))
    }

    fn not(&mut self, a: BitId) -> BitId {
        match self.nodes[a as usize] {
            BitExpr::Const(b) => self.konst(!b),
            BitExpr::Not(inner) => inner,
            _ => self.mk(BitExpr::Not(a)),
        }
    }

    fn and(&mut self, a: BitId, b: BitId) -> BitId {
        match (self.nodes[a as usize], self.nodes[b as usize]) {
            (BitExpr::Const(false), _) | (_, BitExpr::Const(false)) => self.konst(false),
            (BitExpr::Const(true), _) => b,
            (_, BitExpr::Const(true)) => a,
            _ if a == b => a,
            _ => self.mk(BitExpr::And(a.min(b), a.max(b))),
        }
    }

    fn or(&mut self, a: BitId, b: BitId) -> BitId {
        match (self.nodes[a as usize], self.nodes[b as usize]) {
            (BitExpr::Const(true), _) | (_, BitExpr::Const(true)) => self.konst(true),
            (BitExpr::Const(false), _) => b,
            (_, BitExpr::Const(false)) => a,
            _ if a == b => a,
            _ => self.mk(BitExpr::Or(a.min(b), a.max(b))),
        }
    }

    fn xor(&mut self, a: BitId, b: BitId) -> BitId {
        match (self.nodes[a as usize], self.nodes[b as usize]) {
            (BitExpr::Const(false), _) => b,
            (_, BitExpr::Const(false)) => a,
            (BitExpr::Const(true), _) => self.not(b),
            (_, BitExpr::Const(true)) => self.not(a),
            _ if a == b => self.konst(false),
            _ => self.mk(BitExpr::Xor(a.min(b), a.max(b))),
        }
    }

    fn mux(&mut self, sel: BitId, a: BitId, b: BitId) -> BitId {
        let sa = self.and(sel, a);
        let ns = self.not(sel);
        let nsb = self.and(ns, b);
        self.or(sa, nsb)
    }

    fn eq_vec(&mut self, a: &[BitId], b: &[BitId]) -> BitId {
        assert_eq!(a.len(), b.len(), "eq width mismatch");
        let mut acc = self.konst(true);
        for (&x, &y) in a.iter().zip(b) {
            let d = self.xor(x, y);
            let nd = self.not(d);
            acc = self.and(acc, nd);
        }
        acc
    }
}

impl Netlist {
    /// Extracts the bit-level transition system of a two-valued design.
    ///
    /// `clocks` lists the input nets to convert into auto-toggling state
    /// bits (each transition is one half-period). Every sequential item
    /// must be clocked by one of them.
    ///
    /// # Panics
    ///
    /// Panics if a sequential item is clocked by a net not in `clocks`,
    /// if the combinational network has a cycle, or if a wire is
    /// undriven.
    pub fn extract(&self, clocks: &[NetId]) -> TransitionSystem {
        let mut b = Builder::new();
        // input bits are numbered first (variables `0..num_inputs`) so
        // that later state-bit additions never renumber them
        let mut input_base: HashMap<NetId, u32> = HashMap::new();
        let mut input_bits: Vec<String> = Vec::new();
        for (i, decl) in self.nets.iter().enumerate() {
            let id = NetId(i as u32);
            if decl.kind == NetKind::Input && !clocks.contains(&id) {
                input_base.insert(id, input_bits.len() as u32);
                for bit in 0..decl.width {
                    input_bits.push(format!("{}[{bit}]", decl.name));
                }
            }
        }
        let num_inputs = input_bits.len() as u32;

        let mut state_bits: Vec<String> = Vec::new();
        let mut init: Vec<bool> = Vec::new();
        // allocate state bits: clocks first, then regs, then RAM bits
        let mut clock_state: HashMap<NetId, u32> = HashMap::new();
        for &c in clocks {
            assert_eq!(self.width(c), 1, "clock nets must be 1 bit");
            clock_state.insert(c, state_bits.len() as u32);
            state_bits.push(self.net_name(c).to_string());
            init.push(false); // clocks start low; first transition is a rising edge
        }
        // Register and RAM bits are allocated in net-declaration order,
        // with each RAM's bits anchored at its read-data wire's position:
        // builders declare related nets together, so this keeps each
        // subsystem's state variables adjacent — which matters a great
        // deal for the BDD variable order the model checker derives.
        let mut reg_state: HashMap<NetId, u32> = HashMap::new();
        let mut ram_state: HashMap<usize, u32> = HashMap::new();
        let ram_by_rdata: HashMap<NetId, usize> = self
            .items
            .iter()
            .enumerate()
            .filter_map(|(idx, item)| match item {
                Item::Ram { rdata, .. } => Some((*rdata, idx)),
                _ => None,
            })
            .collect();
        for (i, decl) in self.nets.iter().enumerate() {
            let id = NetId(i as u32);
            if decl.kind == NetKind::Reg {
                reg_state.insert(id, state_bits.len() as u32);
                for bit in 0..decl.width {
                    state_bits.push(format!("{}[{bit}]", decl.name));
                    let iv = decl
                        .init
                        .as_ref()
                        .map(|v| v.bit(bit).to_bool().unwrap_or(false))
                        .unwrap_or(false);
                    init.push(iv);
                }
            }
            if let Some(&idx) = ram_by_rdata.get(&id) {
                if let Item::Ram { words, width, .. } = &self.items[idx] {
                    ram_state.insert(idx, state_bits.len() as u32);
                    for w in 0..*words {
                        for bit in 0..*width {
                            state_bits.push(format!("{}.mem[{w}][{bit}]", decl.name));
                            init.push(false);
                        }
                    }
                }
            }
        }
        // current-value bit functions per net (state vars live above
        // the input vars)
        let mut net_bits: HashMap<NetId, Vec<BitId>> = HashMap::new();
        for (&net, &base) in &clock_state {
            let v = b.var(num_inputs + base);
            net_bits.insert(net, vec![v]);
        }
        for (&net, &base) in &reg_state {
            let w = self.width(net);
            let bits = (0..w).map(|i| b.var(num_inputs + base + i)).collect();
            net_bits.insert(net, bits);
        }
        for (&net, &base) in &input_base {
            let w = self.width(net);
            let bits = (0..w).map(|i| b.var(base + i)).collect();
            net_bits.insert(net, bits);
        }

        // resolve combinational items to fixpoint (handles any
        // declaration order); tristate targets need all their drivers
        let mut tristate_targets: HashMap<NetId, Vec<(&Expr, &Expr)>> = HashMap::new();
        for item in &self.items {
            if let Item::Tristate {
                target,
                enable,
                value,
            } = item
            {
                tristate_targets.entry(*target).or_default().push((enable, value));
            }
        }
        let mut progress = true;
        while progress {
            progress = false;
            for (idx, item) in self.items.iter().enumerate() {
                match item {
                    Item::Assign { target, expr }
                        if !net_bits.contains_key(target) => {
                            if let Some(bits) = eval_bits(self, &mut b, &net_bits, expr) {
                                net_bits.insert(*target, bits);
                                progress = true;
                            }
                        }
                    Item::Ram {
                        raddr,
                        rdata,
                        words,
                        width,
                        ..
                    }
                        if !net_bits.contains_key(rdata) => {
                            if let Some(addr) = eval_bits(self, &mut b, &net_bits, raddr) {
                                let base = ram_state[&idx];
                                let mut out = vec![b.konst(false); *width as usize];
                                for w in 0..*words {
                                    let addr_const: Vec<BitId> = (0..addr.len())
                                        .map(|i| b.konst(w >> i & 1 == 1))
                                        .collect();
                                    let hit = b.eq_vec(&addr, &addr_const);
                                    for bit in 0..*width {
                                        let cell = b.var(num_inputs + base + w * width + bit);
                                        let sel = b.and(hit, cell);
                                        out[bit as usize] = b.or(out[bit as usize], sel);
                                    }
                                }
                                net_bits.insert(*rdata, out);
                                progress = true;
                            }
                        }
                    _ => {}
                }
            }
            // tristate targets: need every driver's expressions resolved
            let targets: Vec<NetId> = tristate_targets.keys().copied().collect();
            for target in targets {
                if net_bits.contains_key(&target) {
                    continue;
                }
                let drivers = &tristate_targets[&target];
                let resolved: Option<Vec<(Vec<BitId>, Vec<BitId>)>> = drivers
                    .iter()
                    .map(|(en, val)| {
                        let e = eval_bits(self, &mut b, &net_bits, en)?;
                        let v = eval_bits(self, &mut b, &net_bits, val)?;
                        Some((e, v))
                    })
                    .collect();
                if let Some(resolved) = resolved {
                    let w = self.width(target) as usize;
                    let mut out = vec![b.konst(false); w];
                    for (en, val) in resolved {
                        for i in 0..w {
                            let gated = b.and(en[0], val[i]);
                            out[i] = b.or(out[i], gated);
                        }
                    }
                    net_bits.insert(target, out);
                    progress = true;
                }
            }
        }
        // every wire must be driven by now
        for (i, decl) in self.nets.iter().enumerate() {
            assert!(
                net_bits.contains_key(&NetId(i as u32)),
                "net {} is undriven or part of a combinational cycle",
                decl.name
            );
        }

        // next-state functions
        let mut next: Vec<BitId> = (0..state_bits.len())
            .map(|i| b.var(num_inputs + i as u32)) // default: hold
            .collect();
        for (&c, &bit) in &clock_state {
            let cur = b.var(num_inputs + bit);
            next[bit as usize] = b.not(cur);
            let _ = c;
        }
        for (idx, item) in self.items.iter().enumerate() {
            match item {
                Item::Dff {
                    clock,
                    edge,
                    enable,
                    d,
                    q,
                } => {
                    let cbit = *clock_state
                        .get(clock)
                        .unwrap_or_else(|| panic!("dff clocked by non-clock net {}", self.net_name(*clock)));
                    let c = b.var(num_inputs + cbit);
                    // posedge fires on transitions where the clock is
                    // currently low (it will be high next step)
                    let fire = match edge {
                        Edge::Pos => b.not(c),
                        Edge::Neg => c,
                    };
                    let fire = match enable {
                        Some(en) => {
                            let e = eval_bits(self, &mut b, &net_bits, en)
                                .expect("enable resolves")[0];
                            b.and(fire, e)
                        }
                        None => fire,
                    };
                    let dbits = eval_bits(self, &mut b, &net_bits, d).expect("d resolves");
                    let qbase = reg_state[q];
                    for (i, &dbit) in dbits.iter().enumerate() {
                        let hold = b.var(num_inputs + qbase + i as u32);
                        next[(qbase + i as u32) as usize] = b.mux(fire, dbit, hold);
                    }
                }
                Item::DdrFf {
                    clock,
                    d_rise,
                    d_fall,
                    q,
                } => {
                    let cbit = *clock_state
                        .get(clock)
                        .unwrap_or_else(|| panic!("ddr clocked by non-clock net {}", self.net_name(*clock)));
                    let c = b.var(num_inputs + cbit);
                    let rise = b.not(c); // every step is an edge
                    let r = eval_bits(self, &mut b, &net_bits, d_rise).expect("d_rise resolves");
                    let f = eval_bits(self, &mut b, &net_bits, d_fall).expect("d_fall resolves");
                    let qbase = reg_state[q];
                    for i in 0..r.len() {
                        next[(qbase + i as u32) as usize] = b.mux(rise, r[i], f[i]);
                    }
                }
                Item::Ram {
                    clock,
                    we,
                    waddr,
                    wdata,
                    wmask,
                    words,
                    width,
                    ..
                } => {
                    let cbit = *clock_state
                        .get(clock)
                        .unwrap_or_else(|| panic!("ram clocked by non-clock net {}", self.net_name(*clock)));
                    let c = b.var(num_inputs + cbit);
                    let fire0 = b.not(c); // writes on the rising edge
                    let webit = eval_bits(self, &mut b, &net_bits, we).expect("we resolves")[0];
                    let fire = b.and(fire0, webit);
                    let addr = eval_bits(self, &mut b, &net_bits, waddr).expect("waddr resolves");
                    let data = eval_bits(self, &mut b, &net_bits, wdata).expect("wdata resolves");
                    let mask: Vec<BitId> = match wmask {
                        Some(m) => eval_bits(self, &mut b, &net_bits, m).expect("wmask resolves"),
                        None => vec![b.konst(true); *width as usize],
                    };
                    let base = ram_state[&idx];
                    for w in 0..*words {
                        let addr_const: Vec<BitId> = (0..addr.len())
                            .map(|i| b.konst(w >> i & 1 == 1))
                            .collect();
                        let hit = b.eq_vec(&addr, &addr_const);
                        let write_word = b.and(fire, hit);
                        for bit in 0..*width {
                            let svar = base + w * width + bit;
                            let cur = b.var(num_inputs + svar);
                            let wr = b.and(write_word, mask[bit as usize]);
                            next[svar as usize] = b.mux(wr, data[bit as usize], cur);
                        }
                    }
                }
                _ => {}
            }
        }

        let probes = self
            .nets
            .iter()
            .enumerate()
            .map(|(i, decl)| (decl.name.clone(), net_bits[&NetId(i as u32)].clone()))
            .collect();

        TransitionSystem {
            nodes: b.nodes,
            state_bits,
            input_bits,
            init,
            next,
            probes,
        }
    }
}

/// Bit-blasts `e`, returning `None` if a referenced net is unresolved.
#[allow(clippy::only_used_in_recursion)] // `design` kept for future width checks
fn eval_bits(
    design: &Netlist,
    b: &mut Builder,
    net_bits: &HashMap<NetId, Vec<BitId>>,
    e: &Expr,
) -> Option<Vec<BitId>> {
    Some(match e {
        Expr::Const(v) => v
            .iter()
            .map(|l| b.konst(l.to_bool().expect("constants must be two-valued for extraction")))
            .collect(),
        Expr::Net(n) => net_bits.get(n)?.clone(),
        Expr::Index(n, i) => vec![net_bits.get(n)?[*i as usize]],
        Expr::Slice(n, hi, lo) => net_bits.get(n)?[*lo as usize..=*hi as usize].to_vec(),
        Expr::Not(a) => {
            let v = eval_bits(design, b, net_bits, a)?;
            v.into_iter().map(|x| b.not(x)).collect()
        }
        Expr::And(x, y) => {
            let (vx, vy) = (
                eval_bits(design, b, net_bits, x)?,
                eval_bits(design, b, net_bits, y)?,
            );
            vx.into_iter().zip(vy).map(|(p, q)| b.and(p, q)).collect()
        }
        Expr::Or(x, y) => {
            let (vx, vy) = (
                eval_bits(design, b, net_bits, x)?,
                eval_bits(design, b, net_bits, y)?,
            );
            vx.into_iter().zip(vy).map(|(p, q)| b.or(p, q)).collect()
        }
        Expr::Xor(x, y) => {
            let (vx, vy) = (
                eval_bits(design, b, net_bits, x)?,
                eval_bits(design, b, net_bits, y)?,
            );
            vx.into_iter().zip(vy).map(|(p, q)| b.xor(p, q)).collect()
        }
        Expr::Eq(x, y) => {
            let (vx, vy) = (
                eval_bits(design, b, net_bits, x)?,
                eval_bits(design, b, net_bits, y)?,
            );
            vec![b.eq_vec(&vx, &vy)]
        }
        Expr::Mux { sel, a, b: alt } => {
            let s = eval_bits(design, b, net_bits, sel)?[0];
            let (va, vb) = (
                eval_bits(design, b, net_bits, a)?,
                eval_bits(design, b, net_bits, alt)?,
            );
            va.into_iter()
                .zip(vb)
                .map(|(p, q)| b.mux(s, p, q))
                .collect()
        }
        Expr::Concat(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(eval_bits(design, b, net_bits, p)?);
            }
            out
        }
        Expr::ReduceXor(a) => {
            let v = eval_bits(design, b, net_bits, a)?;
            let mut acc = b.konst(false);
            for x in v {
                acc = b.xor(acc, x);
            }
            vec![acc]
        }
        Expr::ReduceOr(a) => {
            let v = eval_bits(design, b, net_bits, a)?;
            let mut acc = b.konst(false);
            for x in v {
                acc = b.or(acc, x);
            }
            vec![acc]
        }
    })
}
