//! The bit-parallel batched RTL simulator (PPSFP executor).
//!
//! [`BatchedRtlSim`] runs the **same compiled schedule** as the scalar
//! [`RtlSim`](crate::RtlSim) — same slot numbering, same op order, same
//! activity-driven settle — but its value arena holds a [`PackedVec`]
//! per slot instead of a `LogicVec`: 64 independent stimulus lanes
//! advance through every `Op` with word-wide boolean operations. Each
//! lane is, by construction, bit-identical to a scalar simulation fed
//! the same per-lane inputs:
//!
//! * every op kernel is the word-parallel transcription of the scalar
//!   four-state operator (see [`packed`](crate::packed));
//! * activity-driven dirty propagation unions lanes — a node re-settles
//!   when *any* lane changed. Re-evaluating a node whose inputs are
//!   unchanged in some lane reproduces that lane's value (node kernels
//!   are lane-wise pure), so the union is conservative and exact;
//! * clocks must be **lane-uniform** (drive them with
//!   [`set_u64_all`](BatchedRtlSim::set_u64_all)): all lanes share one
//!   edge schedule, which is what lets sequential sampling stay
//!   word-parallel. Per-lane divergence lives in the data path, the
//!   enables (committed with per-lane masks) and the RAM write
//!   addresses (committed with per-word lane masks);
//! * per-lane verdict demux goes through [`lane_u64`](Self::lane_u64) /
//!   [`get_lane`](Self::get_lane) / [`LaneProbe`] — the latter gives
//!   assertion monitors the same [`RtlProbe`] view they have of the
//!   scalar simulator.
//!
//! Steady-state stepping performs no heap allocation, exactly like the
//! scalar executor: inputs stage into preallocated packed buffers, ops
//! reuse their packed temporaries, RAM writes sample into dedicated
//! scratch, commits merge in place.

use crate::logic::{Logic, LogicVec};
use crate::netlist::{Edge, Expr, Item, NetId, NetKind, Netlist};
use crate::packed::{PackedVec, LANES};
use crate::schedule::{CombNode, Op, OpsRange, Schedule, SeqNode, TriDriver};
use crate::sim::{RtlProbe, SettleMode};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Compiled batched simulation state for one [`Netlist`]: 64 lanes per
/// pass over the shared flat schedule.
#[derive(Debug, Clone)]
pub struct BatchedRtlSim {
    design: Netlist,
    mode: SettleMode,
    sched: Schedule,
    // --- simulation state ---
    /// packed value arena: `0..num_nets` are net values, then consts/temps
    vals: Vec<PackedVec>,
    rams: Vec<Vec<PackedVec>>,
    /// staged input writes applied at the start of the next step
    input_stage: Vec<PackedVec>,
    staged: Vec<bool>,
    stage_list: Vec<u32>,
    /// previous end-of-step clock-bit values (lane-uniform by contract)
    prev_clk: Vec<Logic>,
    // --- worklist (reused, never reallocated in steady state) ---
    dirty: Vec<bool>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// sampled seq nodes awaiting commit
    fired: Vec<u32>,
    /// per seq node: lane mask to commit (DFF enable lanes)
    commit_mask: Vec<u64>,
    /// per RAM-write seq node: per-word lane select masks
    wsel: Vec<Vec<u64>>,
    /// per RAM-write seq node: write data sampled at the edge
    wdata_scratch: Vec<PackedVec>,
    /// per RAM-write seq node: write mask sampled at the edge
    wmask_scratch: Vec<PackedVec>,
    /// full-settle scratch: (target, result, differs-from-pass-start)
    full_assign: Vec<(u32, u32, bool)>,
    steps: u64,
    evals: u64,
}

/// A single-lane [`RtlProbe`] view of a [`BatchedRtlSim`], for monitors
/// that evaluate arbitrary expressions against one pattern's state.
pub struct LaneProbe<'a> {
    sim: &'a mut BatchedRtlSim,
    lane: usize,
}

impl RtlProbe for LaneProbe<'_> {
    fn probe(&mut self, e: &Expr) -> LogicVec {
        self.sim.probe_lane(self.lane, e)
    }
}

/// Lane-wise tree-walk evaluation (the batched counterpart of the
/// scalar `eval_expr`, used for monitor probes only — the compiled
/// schedule never calls it).
fn eval_expr_lane(
    design: &Netlist,
    values: &[PackedVec],
    lane: usize,
    evals: &mut u64,
    e: &Expr,
) -> LogicVec {
    *evals += 1;
    match e {
        Expr::Const(v) => v.clone(),
        Expr::Net(n) => values[n.0 as usize].get_lane(lane),
        Expr::Index(n, i) => LogicVec::from_bits(vec![values[n.0 as usize].lane_bit(lane, *i)]),
        Expr::Slice(n, hi, lo) => LogicVec::from_bits(
            (*lo..=*hi)
                .map(|i| values[n.0 as usize].lane_bit(lane, i))
                .collect(),
        ),
        Expr::Not(a) => {
            let v = eval_expr_lane(design, values, lane, evals, a);
            LogicVec::from_bits(v.iter().map(Logic::not).collect())
        }
        Expr::And(a, b) => binop_lane(design, values, lane, evals, a, b, Logic::and),
        Expr::Or(a, b) => binop_lane(design, values, lane, evals, a, b, Logic::or),
        Expr::Xor(a, b) => binop_lane(design, values, lane, evals, a, b, Logic::xor),
        Expr::Eq(a, b) => {
            let va = eval_expr_lane(design, values, lane, evals, a);
            let vb = eval_expr_lane(design, values, lane, evals, b);
            if !va.is_known() || !vb.is_known() {
                return LogicVec::xs(1);
            }
            LogicVec::from_bits(vec![Logic::from_bool(va == vb)])
        }
        Expr::Mux { sel, a, b } => {
            let s = eval_expr_lane(design, values, lane, evals, sel).bit(0);
            match s {
                Logic::L1 => eval_expr_lane(design, values, lane, evals, a),
                Logic::L0 => eval_expr_lane(design, values, lane, evals, b),
                _ => LogicVec::xs(design.expr_width(a)),
            }
        }
        Expr::Concat(parts) => {
            let mut bits = Vec::new();
            for p in parts {
                bits.extend(eval_expr_lane(design, values, lane, evals, p).iter());
            }
            LogicVec::from_bits(bits)
        }
        Expr::ReduceXor(a) => {
            let v = eval_expr_lane(design, values, lane, evals, a);
            LogicVec::from_bits(vec![v.reduce_xor()])
        }
        Expr::ReduceOr(a) => {
            let v = eval_expr_lane(design, values, lane, evals, a);
            LogicVec::from_bits(vec![v.reduce_or()])
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn binop_lane(
    design: &Netlist,
    values: &[PackedVec],
    lane: usize,
    evals: &mut u64,
    a: &Expr,
    b: &Expr,
    f: fn(Logic, Logic) -> Logic,
) -> LogicVec {
    let va = eval_expr_lane(design, values, lane, evals, a);
    let vb = eval_expr_lane(design, values, lane, evals, b);
    debug_assert_eq!(va.width(), vb.width(), "operand width mismatch");
    LogicVec::from_bits(va.iter().zip(vb.iter()).map(|(x, y)| f(x, y)).collect())
}

impl BatchedRtlSim {
    /// Compiles `design` and initializes the packed arena; every lane
    /// starts in the scalar simulator's initial state (registers at
    /// their declared init, wires at `X`, inputs at `0`).
    ///
    /// # Panics
    ///
    /// Panics on expression width mismatches (the same errors Verilog
    /// elaboration would reject).
    pub fn new(design: &Netlist) -> Self {
        let num_nets = design.nets.len();
        let sched = Schedule::compile(design);

        let mut vals: Vec<PackedVec> = design
            .nets
            .iter()
            .map(|n| match n.kind {
                NetKind::Reg => n
                    .init
                    .as_ref()
                    .map(PackedVec::splat)
                    .unwrap_or_else(|| PackedVec::zeros(n.width)),
                NetKind::Input => PackedVec::zeros(n.width),
                NetKind::Wire => PackedVec::xs(n.width),
            })
            .collect();
        for w in &sched.widths[num_nets..] {
            vals.push(PackedVec::xs(*w));
        }
        for (slot, v) in &sched.consts {
            vals[*slot as usize] = PackedVec::splat(v);
        }
        let rams: Vec<Vec<PackedVec>> = design
            .items
            .iter()
            .map(|item| match item {
                Item::Ram { words, width, .. } => {
                    vec![PackedVec::zeros(*width); *words as usize]
                }
                _ => Vec::new(),
            })
            .collect();
        let input_stage = design
            .nets
            .iter()
            .map(|n| match n.kind {
                NetKind::Input => PackedVec::zeros(n.width),
                _ => PackedVec::zeros(0),
            })
            .collect();

        let seq_len = sched.seq.len();
        let comb_len = sched.comb.len();
        let mut wsel = vec![Vec::new(); seq_len];
        let mut wdata_scratch = vec![PackedVec::zeros(0); seq_len];
        let mut wmask_scratch = vec![PackedVec::zeros(0); seq_len];
        for (s, node) in sched.seq.iter().enumerate() {
            if let SeqNode::RamWrite {
                words,
                width,
                wmask,
                ..
            } = node
            {
                wsel[s] = vec![0u64; *words as usize];
                wdata_scratch[s] = PackedVec::zeros(*width);
                if wmask.is_some() {
                    wmask_scratch[s] = PackedVec::zeros(*width);
                }
            }
        }

        let mut sim = BatchedRtlSim {
            design: design.clone(),
            mode: SettleMode::default(),
            sched,
            vals,
            rams,
            input_stage,
            staged: vec![false; num_nets],
            stage_list: Vec::with_capacity(num_nets),
            prev_clk: vec![Logic::L0; num_nets],
            dirty: vec![false; comb_len],
            heap: BinaryHeap::with_capacity(comb_len + 1),
            fired: Vec::with_capacity(seq_len),
            commit_mask: vec![0; seq_len],
            wsel,
            wdata_scratch,
            wmask_scratch,
            full_assign: Vec::with_capacity(comb_len),
            steps: 0,
            evals: 0,
        };
        for n in 0..comb_len as u32 {
            sim.mark(n);
        }
        sim.settle();
        for i in 0..sim.sched.clock_nets.len() {
            let cnet = sim.sched.clock_nets[i] as usize;
            debug_assert!(
                sim.vals[cnet].bit_uniform(0),
                "clock net must be lane-uniform"
            );
            sim.prev_clk[cnet] = sim.vals[cnet].lane_bit(0, 0);
        }
        sim
    }

    /// The settle strategy in use.
    pub fn settle_mode(&self) -> SettleMode {
        self.mode
    }

    /// Selects the settle strategy (same semantics as the scalar
    /// simulator; both produce bit-identical lane values for acyclic
    /// single-driver designs).
    pub fn set_settle_mode(&mut self, mode: SettleMode) {
        self.mode = mode;
    }

    fn stage_entry(&mut self, net: NetId) -> &mut PackedVec {
        let decl = &self.design.nets[net.0 as usize];
        assert!(
            decl.kind == NetKind::Input,
            "net {} is not an input",
            decl.name
        );
        if !self.staged[net.0 as usize] {
            self.staged[net.0 as usize] = true;
            self.stage_list.push(net.0);
            // carry the currently-applied value so lanes not re-set this
            // cycle keep their inputs (allocation-free split borrow)
            let BatchedRtlSim {
                vals, input_stage, ..
            } = self;
            input_stage[net.0 as usize].assign_from(&vals[net.0 as usize]);
        }
        &mut self.input_stage[net.0 as usize]
    }

    /// Stages the same value into **every** lane of an input (clocks and
    /// broadcast control).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or the width differs.
    pub fn set_all(&mut self, net: NetId, value: &LogicVec) {
        self.stage_entry(net).set_all_lanes(value);
    }

    /// Stages the same integer into every lane of an input.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input.
    pub fn set_u64_all(&mut self, net: NetId, value: u64) {
        self.stage_entry(net).set_all_lanes_u64(value);
    }

    /// Stages one lane of an input from a scalar vector.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input, the width differs, or
    /// `lane >= LANES`.
    pub fn set_lane(&mut self, net: NetId, lane: usize, value: &LogicVec) {
        self.stage_entry(net).set_lane(lane, value);
    }

    /// Stages one lane of an input from an integer (allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or `lane >= LANES`.
    pub fn set_lane_u64(&mut self, net: NetId, lane: usize, value: u64) {
        self.stage_entry(net).set_lane_u64(lane, value);
    }

    /// Stages **every** lane of an input from per-lane integers in one
    /// bit-matrix transpose — the bulk-drive fast path (equivalent to 64
    /// [`Self::set_lane_u64`] calls).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or wider than 64 bits.
    pub fn set_lanes_u64(&mut self, net: NetId, vals: &[u64; LANES]) {
        self.stage_entry(net).set_lanes_u64(vals);
    }

    /// Stages all-`X` into one lane of an input (X-injection).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or `lane >= LANES`.
    pub fn set_lane_xs(&mut self, net: NetId, lane: usize) {
        self.stage_entry(net).set_lane_xs(lane);
    }

    /// The current packed value of any net.
    pub fn get(&self, net: NetId) -> &PackedVec {
        &self.vals[net.0 as usize]
    }

    /// One lane of a net as a scalar vector (allocates).
    pub fn get_lane(&self, net: NetId, lane: usize) -> LogicVec {
        self.vals[net.0 as usize].get_lane(lane)
    }

    /// One lane of a net as an integer, if fully known (allocation-free).
    pub fn lane_u64(&self, net: NetId, lane: usize) -> Option<u64> {
        self.vals[net.0 as usize].lane_to_u64(lane)
    }

    /// Reads **every** lane of a net as integers in one bit-matrix
    /// transpose; returns the fully-known lane mask (see
    /// [`PackedVec::lanes_u64`]) — the bulk-sample fast path.
    ///
    /// # Panics
    ///
    /// Panics if the net is wider than 64 bits.
    pub fn lanes_u64(&self, net: NetId, out: &mut [u64; LANES]) -> u64 {
        self.vals[net.0 as usize].lanes_u64(out)
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Compiled-op evaluations performed so far. Each op here advances
    /// all 64 lanes, so comparing against the scalar simulator's
    /// [`evals`](crate::RtlSim::evals) for the same stimulus measures
    /// the PPSFP win directly.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Evaluates an arbitrary expression against one lane's current
    /// values (monitor probes).
    pub fn probe_lane(&mut self, lane: usize, e: &Expr) -> LogicVec {
        eval_expr_lane(&self.design, &self.vals, lane, &mut self.evals, e)
    }

    /// A borrowing [`RtlProbe`] view of one lane.
    pub fn lane_probe(&mut self, lane: usize) -> LaneProbe<'_> {
        LaneProbe { sim: self, lane }
    }

    /// Marks a comb node dirty and queues it by topological rank.
    fn mark(&mut self, node: u32) {
        if !self.dirty[node as usize] {
            self.dirty[node as usize] = true;
            self.heap
                .push(Reverse((self.sched.rank[node as usize], node)));
        }
    }

    /// Marks every comb node reading `net`.
    fn mark_fanout(&mut self, net: u32) {
        let lo = self.sched.fanout_off[net as usize] as usize;
        let hi = self.sched.fanout_off[net as usize + 1] as usize;
        for i in lo..hi {
            let n = self.sched.fanout[i];
            self.mark(n);
        }
    }

    /// Runs a compiled op range in place over the packed arena: one
    /// kernel call per op, 64 lanes per call.
    fn run_ops(&mut self, range: OpsRange) {
        let BatchedRtlSim {
            sched, vals, evals, ..
        } = self;
        let (ops, parts, widths) = (&sched.ops, &sched.parts, &sched.widths);
        for op in &ops[range.0 as usize..range.1 as usize] {
            *evals += 1;
            let dst = op.dst() as usize;
            let mut d = std::mem::replace(&mut vals[dst], PackedVec::zeros(0));
            match *op {
                Op::Copy { a, .. } => d.copy_from(&vals[a as usize]),
                Op::Index { a, bit, .. } => d.index_from(&vals[a as usize], bit),
                Op::Slice { a, lo, .. } => d.slice_from(&vals[a as usize], lo),
                Op::Not { a, .. } => d.not_from(&vals[a as usize]),
                Op::And { a, b, .. } => d.and_from(&vals[a as usize], &vals[b as usize]),
                Op::Or { a, b, .. } => d.or_from(&vals[a as usize], &vals[b as usize]),
                Op::Xor { a, b, .. } => d.xor_from(&vals[a as usize], &vals[b as usize]),
                Op::Eq { a, b, .. } => d.eq_from(&vals[a as usize], &vals[b as usize]),
                Op::Mux { sel, a, b, .. } => d.mux_from(
                    &vals[sel as usize],
                    &vals[a as usize],
                    &vals[b as usize],
                ),
                Op::Concat {
                    parts: (p0, p1), ..
                } => {
                    let mut off = 0u32;
                    for &p in &parts[p0 as usize..p1 as usize] {
                        d.place_from(off, &vals[p as usize]);
                        off += widths[p as usize];
                    }
                }
                Op::ReduceXor { a, .. } => d.reduce_xor_from(&vals[a as usize]),
                Op::ReduceOr { a, .. } => d.reduce_or_from(&vals[a as usize]),
            }
            vals[dst] = d;
        }
    }

    /// Evaluates one comb node; returns `(target net, result slot)`
    /// without committing.
    fn eval_node(&mut self, id: u32) -> (u32, u32) {
        let node = self.sched.comb[id as usize];
        match node {
            CombNode::Assign { ops, src, target } => {
                self.run_ops(ops);
                (target, src)
            }
            CombNode::RamRead {
                ops,
                addr,
                ram,
                words,
                target,
                out,
            } => {
                self.run_ops(ops);
                let mut o = std::mem::replace(&mut self.vals[out as usize], PackedVec::zeros(0));
                // gather: lanes whose (known) address selects word `a`
                // copy it; unknown or out-of-range lanes stay all-X
                o.fill_x();
                let addrv = &self.vals[addr as usize];
                if addrv.width() <= 64 {
                    for a in 0..words {
                        let m = addrv.lanes_eq_u64(a as u64);
                        if m != 0 {
                            o.merge_masked(&self.rams[ram as usize][a as usize], m);
                        }
                    }
                }
                self.vals[out as usize] = o;
                (target, out)
            }
            CombNode::Tri {
                target,
                acc,
                drivers,
            } => {
                for di in drivers.0..drivers.1 {
                    let dops = self.sched.tri[di as usize].ops;
                    self.run_ops(dops);
                }
                let mut a = std::mem::replace(&mut self.vals[acc as usize], PackedVec::zeros(0));
                a.fill_z();
                for di in drivers.0..drivers.1 {
                    let TriDriver { en, value, .. } = self.sched.tri[di as usize];
                    a.tri_accumulate(&self.vals[en as usize], &self.vals[value as usize]);
                }
                self.vals[acc as usize] = a;
                (target, acc)
            }
        }
    }

    /// Copies `result` into `target` if any lane differs; returns
    /// whether the target changed.
    fn commit_pair(&mut self, target: u32, result: u32) -> bool {
        if self.vals[target as usize] == self.vals[result as usize] {
            return false;
        }
        let mut t = std::mem::replace(&mut self.vals[target as usize], PackedVec::zeros(0));
        t.assign_from(&self.vals[result as usize]);
        self.vals[target as usize] = t;
        true
    }

    /// Settles the combinational network (mode- and topology-dependent).
    fn settle(&mut self) {
        if self.heap.is_empty() {
            return;
        }
        if self.mode == SettleMode::Full || self.sched.fallback_full {
            self.settle_full();
        } else {
            self.settle_activity();
        }
    }

    /// Activity-driven settle over the lane union: a node re-evaluates
    /// when any lane's input changed. Kernels are lane-wise pure, so
    /// lanes with unchanged inputs recompute their previous value.
    fn settle_activity(&mut self) {
        while let Some(Reverse((_, n))) = self.heap.pop() {
            if !self.dirty[n as usize] {
                continue;
            }
            self.dirty[n as usize] = false;
            let (target, result) = self.eval_node(n);
            if self.commit_pair(target, result) {
                self.mark_fanout(target);
            }
        }
    }

    /// Full Jacobi fixpoint (pass-batched semantics, all lanes at once).
    ///
    /// # Panics
    ///
    /// Panics if the network does not settle within 1000 passes.
    fn settle_full(&mut self) {
        for _pass in 0..1000 {
            let mut changed = false;
            let mut fa = std::mem::take(&mut self.full_assign);
            fa.clear();
            for id in 0..self.sched.comb.len() as u32 {
                if matches!(self.sched.comb[id as usize], CombNode::Tri { .. }) {
                    continue;
                }
                let (target, result) = self.eval_node(id);
                fa.push((target, result, false));
            }
            for ti in 0..self.sched.tri_order.len() {
                let id = self.sched.tri_order[ti];
                self.eval_node(id);
            }
            for e in fa.iter_mut() {
                e.2 = self.vals[e.0 as usize] != self.vals[e.1 as usize];
                changed |= e.2;
            }
            for &(target, result, differs) in fa.iter() {
                if differs {
                    self.commit_pair(target, result);
                }
            }
            for ti in 0..self.sched.tri_order.len() {
                let id = self.sched.tri_order[ti];
                let (target, acc) = match self.sched.comb[id as usize] {
                    CombNode::Tri { target, acc, .. } => (target, acc),
                    _ => unreachable!(),
                };
                changed |= self.commit_pair(target, acc);
            }
            fa.clear();
            self.full_assign = fa;
            if !changed {
                self.heap.clear();
                self.dirty.fill(false);
                return;
            }
        }
        panic!("combinational network did not settle within 1000 passes");
    }

    /// Applies staged inputs, settles, captures clock edges (all lanes
    /// in lockstep — clocks are lane-uniform), commits with per-lane
    /// masks, settles again.
    pub fn step(&mut self) {
        self.steps += 1;
        // 1. apply staged inputs
        for i in 0..self.stage_list.len() {
            let net = self.stage_list[i] as usize;
            self.staged[net] = false;
            if self.vals[net] != self.input_stage[net] {
                let mut t = std::mem::replace(&mut self.vals[net], PackedVec::zeros(0));
                t.assign_from(&self.input_stage[net]);
                self.vals[net] = t;
                self.mark_fanout(net as u32);
            }
        }
        self.stage_list.clear();
        // 2. settle
        self.settle();
        // 3. sample clocked elements (nonblocking semantics: all samples
        //    before any commit)
        self.fired.clear();
        for s in 0..self.sched.seq.len() {
            let node = self.sched.seq[s];
            match node {
                SeqNode::Dff {
                    clock, edge, en, d, ..
                } => {
                    if self.edge_on(clock, edge) {
                        let mask = match en {
                            Some((ops, slot)) => {
                                self.run_ops(ops);
                                self.vals[slot as usize].lanes_bit_is_one(0)
                            }
                            None => !0,
                        };
                        if mask != 0 {
                            self.run_ops(d.0);
                            self.commit_mask[s] = mask;
                            self.fired.push(s as u32);
                        }
                    }
                }
                SeqNode::Ddr { clock, rise, fall, .. } => {
                    let src = if self.edge_on(clock, Edge::Pos) {
                        Some(rise)
                    } else if self.edge_on(clock, Edge::Neg) {
                        Some(fall)
                    } else {
                        None
                    };
                    if let Some(src) = src {
                        self.run_ops(src.0);
                        self.commit_mask[s] = !0;
                        self.fired.push(s as u32);
                    }
                }
                SeqNode::RamWrite {
                    clock,
                    we,
                    waddr,
                    wdata,
                    wmask,
                    words,
                    ..
                } => {
                    if !self.edge_on(clock, Edge::Pos) {
                        continue;
                    }
                    self.run_ops(we.0);
                    let we1 = self.vals[we.1 as usize].lanes_bit_is_one(0);
                    if we1 == 0 {
                        continue;
                    }
                    self.run_ops(waddr.0);
                    self.run_ops(wdata.0);
                    if let Some((mops, _)) = wmask {
                        self.run_ops(mops);
                    }
                    // per-word lane select: enabled lanes whose address
                    // is fully known and equals the word index (unknown
                    // or out-of-range addresses drop the lane, exactly
                    // like the scalar skip)
                    let addrv = &self.vals[waddr.1 as usize];
                    let mut any = 0u64;
                    if addrv.width() <= 64 {
                        for a in 0..words as usize {
                            let m = we1 & addrv.lanes_eq_u64(a as u64);
                            self.wsel[s][a] = m;
                            any |= m;
                        }
                    } else {
                        self.wsel[s].fill(0);
                    }
                    if any == 0 {
                        continue;
                    }
                    // sample write data/mask now — their source nets may
                    // be regs that other seq nodes commit before phase 4
                    let BatchedRtlSim {
                        vals,
                        wdata_scratch,
                        wmask_scratch,
                        ..
                    } = self;
                    wdata_scratch[s].assign_from(&vals[wdata.1 as usize]);
                    if let Some((_, mslot)) = wmask {
                        wmask_scratch[s].assign_from(&vals[mslot as usize]);
                    }
                    self.fired.push(s as u32);
                }
            }
        }
        // 4. commit
        for i in 0..self.fired.len() {
            let s = self.fired[i] as usize;
            match self.sched.seq[s] {
                SeqNode::Dff { q, d, .. } => {
                    if self.commit_merge(q, d.1, self.commit_mask[s]) {
                        self.mark_fanout(q);
                    }
                }
                SeqNode::Ddr { q, rise, fall, clock, .. } => {
                    let slot = if self.edge_on(clock, Edge::Pos) {
                        rise.1
                    } else {
                        fall.1
                    };
                    if self.commit_merge(q, slot, !0) {
                        self.mark_fanout(q);
                    }
                }
                SeqNode::RamWrite {
                    ram, words, wmask, ..
                } => {
                    let ram = ram as usize;
                    let mut any_changed = false;
                    for a in 0..words as usize {
                        let m = self.wsel[s][a];
                        if m == 0 {
                            continue;
                        }
                        let BatchedRtlSim {
                            rams,
                            wdata_scratch,
                            wmask_scratch,
                            ..
                        } = self;
                        let wm = wmask.map(|_| &wmask_scratch[s]);
                        any_changed |=
                            rams[ram][a].ram_write_masked(&wdata_scratch[s], m, wm);
                    }
                    if any_changed {
                        for ri in 0..self.sched.ram_readers[ram].len() {
                            let reader = self.sched.ram_readers[ram][ri];
                            self.mark(reader);
                        }
                    }
                }
            }
        }
        // 5. settle on the post-edge state
        self.settle();
        // remember clock levels for the next step's edge detection
        for i in 0..self.sched.clock_nets.len() {
            let cnet = self.sched.clock_nets[i] as usize;
            debug_assert!(
                self.vals[cnet].bit_uniform(0),
                "clock net must be lane-uniform"
            );
            self.prev_clk[cnet] = self.vals[cnet].lane_bit(0, 0);
        }
    }

    /// Lane-masked sequential commit of `slot` into `q`.
    fn commit_merge(&mut self, q: u32, slot: u32, mask: u64) -> bool {
        let mut t = std::mem::replace(&mut self.vals[q as usize], PackedVec::zeros(0));
        let changed = t.merge_masked_changed(&self.vals[slot as usize], mask);
        self.vals[q as usize] = t;
        changed
    }

    fn edge_on(&self, clock: u32, edge: Edge) -> bool {
        let p = self.prev_clk[clock as usize];
        let c = self.vals[clock as usize].lane_bit(0, 0);
        match edge {
            Edge::Pos => p == Logic::L0 && c == Logic::L1,
            Edge::Neg => p == Logic::L1 && c == Logic::L0,
        }
    }

    /// Exports the batched simulator's full mutable state — every
    /// packed arena slot as its two raw bit-planes, the packed RAM
    /// contents, the lane-uniform clock levels and the counters — as
    /// plain data for the checkpoint layer. The batched counterpart of
    /// [`RtlSim::export_state`](crate::RtlSim::export_state), with the
    /// same quiescent-boundary precondition; per-step scratch
    /// (commit masks, RAM write selects/samples) is rewritten before it
    /// is read each step and is deliberately not captured.
    pub fn export_state(&self) -> Result<BatchedRtlState, String> {
        if !self.stage_list.is_empty() {
            return Err("cannot export with staged inputs pending".to_string());
        }
        if !self.heap.is_empty() {
            return Err("cannot export with an unsettled network".to_string());
        }
        let planes = |p: &PackedVec| {
            let (v, x) = p.planes();
            (v.to_vec(), x.to_vec())
        };
        Ok(BatchedRtlState {
            vals: self.vals.iter().map(planes).collect(),
            rams: self
                .rams
                .iter()
                .map(|ram| ram.iter().map(planes).collect())
                .collect(),
            prev_clk: self.prev_clk.iter().map(|l| l.to_char()).collect(),
            steps: self.steps,
            evals: self.evals,
        })
    }

    /// Restores a state exported from a batched simulator compiled from
    /// the *same* netlist; shape-checks every slot and rejects
    /// mismatches without modifying `self`.
    pub fn import_state(&mut self, st: &BatchedRtlState) -> Result<(), String> {
        if st.vals.len() != self.vals.len() {
            return Err(format!(
                "arena size mismatch: snapshot has {} slots, design has {}",
                st.vals.len(),
                self.vals.len()
            ));
        }
        if st.rams.len() != self.rams.len() || st.prev_clk.chars().count() != self.prev_clk.len()
        {
            return Err("RAM/clock table shape mismatch".to_string());
        }
        let mut vals = Vec::with_capacity(st.vals.len());
        for (i, (v, x)) in st.vals.iter().enumerate() {
            let p = PackedVec::from_planes(self.vals[i].width(), v.clone(), x.clone())
                .ok_or_else(|| format!("bad planes in arena slot {i}"))?;
            vals.push(p);
        }
        let mut rams = Vec::with_capacity(st.rams.len());
        for (r, words) in st.rams.iter().enumerate() {
            if words.len() != self.rams[r].len() {
                return Err(format!("RAM {r} word-count mismatch"));
            }
            let width = self.rams[r].first().map_or(0, PackedVec::width);
            let mut ram = Vec::with_capacity(words.len());
            for (a, (v, x)) in words.iter().enumerate() {
                let p = PackedVec::from_planes(width, v.clone(), x.clone())
                    .ok_or_else(|| format!("bad word {a} in RAM {r}"))?;
                ram.push(p);
            }
            rams.push(ram);
        }
        let prev_clk = st
            .prev_clk
            .chars()
            .map(Logic::from_char)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| "bad clock-level table".to_string())?;
        self.vals = vals;
        self.rams = rams;
        self.prev_clk = prev_clk;
        self.steps = st.steps;
        self.evals = st.evals;
        self.heap.clear();
        self.dirty.fill(false);
        self.stage_list.clear();
        self.staged.fill(false);
        Ok(())
    }
}

/// A plain-data export of a [`BatchedRtlSim`]'s full mutable state:
/// every packed arena slot and RAM word as `(value plane, X plane)`
/// word vectors, plus clock levels and counters. Built by
/// [`BatchedRtlSim::export_state`], consumed by
/// [`BatchedRtlSim::import_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchedRtlState {
    /// Every arena slot's bit-planes (one word per bit position).
    pub vals: Vec<(Vec<u64>, Vec<u64>)>,
    /// Packed RAM contents, indexed by netlist item then word address.
    pub rams: Vec<Vec<(Vec<u64>, Vec<u64>)>>,
    /// Previous end-of-step clock levels, one character per net.
    pub prev_clk: String,
    /// Steps executed.
    pub steps: u64,
    /// Compiled-op evaluations performed.
    pub evals: u64,
}
