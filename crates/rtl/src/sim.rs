//! The interpreted RTL simulator.
//!
//! Each [`RtlSim::step`] applies pending input changes, settles the
//! combinational network, captures every clocked element whose clock saw
//! an edge (with Verilog nonblocking-assignment semantics: all samples
//! happen before any commit), commits, and settles again.

use crate::logic::{Logic, LogicVec};
use crate::netlist::{Edge, Expr, Item, NetId, NetKind, Netlist};

/// Interpreted simulation state for one [`Netlist`].
///
/// The simulator is an *interpreter*: every cycle it re-evaluates
/// expression trees over four-state vectors, which is exactly the cost
/// profile of the event-driven HDL simulators the paper benchmarks
/// against compiled SystemC in Table 3.
#[derive(Debug, Clone)]
pub struct RtlSim {
    design: Netlist,
    values: Vec<LogicVec>,
    prev_values: Vec<LogicVec>,
    rams: Vec<Vec<LogicVec>>,
    /// pending input writes applied at the start of the next step
    pending: Vec<(NetId, LogicVec)>,
    steps: u64,
    /// expression evaluations performed (a load statistic for Table 3)
    evals: u64,
}

/// Evaluates `e` against `values`; `evals` counts expression-node visits.
fn eval_expr(design: &Netlist, values: &[LogicVec], evals: &mut u64, e: &Expr) -> LogicVec {
    *evals += 1;
    match e {
        Expr::Const(v) => v.clone(),
        Expr::Net(n) => values[n.0 as usize].clone(),
        Expr::Index(n, i) => LogicVec::from_bits(vec![values[n.0 as usize].bit(*i)]),
        Expr::Slice(n, hi, lo) => values[n.0 as usize].slice(*hi, *lo),
        Expr::Not(a) => {
            let v = eval_expr(design, values, evals, a);
            LogicVec::from_bits(v.iter().map(Logic::not).collect())
        }
        Expr::And(a, b) => binop(design, values, evals, a, b, Logic::and),
        Expr::Or(a, b) => binop(design, values, evals, a, b, Logic::or),
        Expr::Xor(a, b) => binop(design, values, evals, a, b, Logic::xor),
        Expr::Eq(a, b) => {
            let va = eval_expr(design, values, evals, a);
            let vb = eval_expr(design, values, evals, b);
            if !va.is_known() || !vb.is_known() {
                return LogicVec::xs(1);
            }
            LogicVec::from_bits(vec![Logic::from_bool(va == vb)])
        }
        Expr::Mux { sel, a, b } => {
            let s = eval_expr(design, values, evals, sel).bit(0);
            match s {
                Logic::L1 => eval_expr(design, values, evals, a),
                Logic::L0 => eval_expr(design, values, evals, b),
                _ => LogicVec::xs(design.expr_width(a)),
            }
        }
        Expr::Concat(parts) => {
            let mut bits = Vec::new();
            for p in parts {
                bits.extend(eval_expr(design, values, evals, p).iter());
            }
            LogicVec::from_bits(bits)
        }
        Expr::ReduceXor(a) => {
            let v = eval_expr(design, values, evals, a);
            LogicVec::from_bits(vec![v.reduce_xor()])
        }
        Expr::ReduceOr(a) => {
            let v = eval_expr(design, values, evals, a);
            LogicVec::from_bits(vec![v.reduce_or()])
        }
    }
}

fn binop(
    design: &Netlist,
    values: &[LogicVec],
    evals: &mut u64,
    a: &Expr,
    b: &Expr,
    f: fn(Logic, Logic) -> Logic,
) -> LogicVec {
    let va = eval_expr(design, values, evals, a);
    let vb = eval_expr(design, values, evals, b);
    debug_assert_eq!(va.width(), vb.width(), "operand width mismatch");
    LogicVec::from_bits(va.iter().zip(vb.iter()).map(|(x, y)| f(x, y)).collect())
}

impl RtlSim {
    /// Creates a simulator; registers take their declared initial
    /// values, wires start at `X`, inputs at `0`.
    pub fn new(design: &Netlist) -> Self {
        let values: Vec<LogicVec> = design
            .nets
            .iter()
            .map(|n| match n.kind {
                NetKind::Reg => n.init.clone().unwrap_or_else(|| LogicVec::zeros(n.width)),
                NetKind::Input => LogicVec::zeros(n.width),
                NetKind::Wire => LogicVec::xs(n.width),
            })
            .collect();
        let rams = design
            .items
            .iter()
            .map(|item| match item {
                Item::Ram { words, width, .. } => {
                    vec![LogicVec::zeros(*width); *words as usize]
                }
                _ => Vec::new(),
            })
            .collect();
        let mut sim = RtlSim {
            design: design.clone(),
            prev_values: values.clone(),
            values,
            rams,
            pending: Vec::new(),
            steps: 0,
            evals: 0,
        };
        sim.settle();
        sim.prev_values = sim.values.clone();
        sim
    }

    /// Schedules an input change for the next [`step`](Self::step).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or the width differs.
    pub fn set(&mut self, net: NetId, value: LogicVec) {
        let decl = &self.design.nets[net.0 as usize];
        assert!(
            decl.kind == NetKind::Input,
            "net {} is not an input",
            decl.name
        );
        assert_eq!(decl.width, value.width(), "width mismatch on {}", decl.name);
        self.pending.push((net, value));
    }

    /// Schedules an input change given as an integer.
    pub fn set_u64(&mut self, net: NetId, value: u64) {
        let width = self.design.width(net);
        self.set(net, LogicVec::from_u64(value, width));
    }

    /// The current value of any net.
    pub fn get(&self, net: NetId) -> &LogicVec {
        &self.values[net.0 as usize]
    }

    /// The current value of a net as an integer, if fully known.
    pub fn get_u64(&self, net: NetId) -> Option<u64> {
        self.get(net).to_u64()
    }

    /// A RAM word, for inspection (`item_index` is the position of the
    /// RAM in the netlist's item list).
    ///
    /// # Panics
    ///
    /// Panics if the item is not a RAM or the address is out of range.
    pub fn ram_word(&self, item_index: usize, addr: usize) -> &LogicVec {
        assert!(matches!(self.design.items[item_index], Item::Ram { .. }));
        &self.rams[item_index][addr]
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Expression evaluations performed so far (the interpreter-load
    /// statistic used by the Table 3 harness).
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Evaluates an arbitrary expression against the current values
    /// (used by assertion monitors observing internal nets).
    pub fn probe(&mut self, e: &Expr) -> LogicVec {
        eval_expr(&self.design, &self.values, &mut self.evals, e)
    }

    /// Applies pending inputs, settles, captures clock edges, commits
    /// and settles again.
    pub fn step(&mut self) {
        self.steps += 1;
        // 1. apply inputs
        let pending = std::mem::take(&mut self.pending);
        for (net, value) in pending {
            self.values[net.0 as usize] = value;
        }
        // 2. settle so D inputs are coherent with the new primary inputs
        //    (inputs have setup before the edge)
        self.settle();
        // 3. sample clocked elements on detected edges
        let mut commits: Vec<(NetId, LogicVec)> = Vec::new();
        let mut ram_writes: Vec<(usize, usize, LogicVec)> = Vec::new();
        {
            let design = &self.design;
            let values = &self.values;
            let prev = &self.prev_values;
            let rams = &self.rams;
            let evals = &mut self.evals;
            let edge_on = |clock: NetId, edge: Edge| {
                let p = prev[clock.0 as usize].bit(0);
                let c = values[clock.0 as usize].bit(0);
                match edge {
                    Edge::Pos => p == Logic::L0 && c == Logic::L1,
                    Edge::Neg => p == Logic::L1 && c == Logic::L0,
                }
            };
            for (idx, item) in design.items.iter().enumerate() {
                match item {
                    Item::Dff {
                        clock,
                        edge,
                        enable,
                        d,
                        q,
                    } => {
                        if edge_on(*clock, *edge) {
                            let en = match enable {
                                Some(e) => {
                                    eval_expr(design, values, evals, e).bit(0) == Logic::L1
                                }
                                None => true,
                            };
                            if en {
                                commits.push((*q, eval_expr(design, values, evals, d)));
                            }
                        }
                    }
                    Item::DdrFf {
                        clock,
                        d_rise,
                        d_fall,
                        q,
                    } => {
                        if edge_on(*clock, Edge::Pos) {
                            commits.push((*q, eval_expr(design, values, evals, d_rise)));
                        } else if edge_on(*clock, Edge::Neg) {
                            commits.push((*q, eval_expr(design, values, evals, d_fall)));
                        }
                    }
                    Item::Ram {
                        clock,
                        we,
                        waddr,
                        wdata,
                        wmask,
                        width,
                        words,
                        ..
                    } => {
                        if edge_on(*clock, Edge::Pos)
                            && eval_expr(design, values, evals, we).bit(0) == Logic::L1
                        {
                            if let Some(addr) =
                                eval_expr(design, values, evals, waddr).to_u64()
                            {
                                if (addr as u32) < *words {
                                    let data = eval_expr(design, values, evals, wdata);
                                    let mask = match wmask {
                                        Some(m) => eval_expr(design, values, evals, m),
                                        None => LogicVec::from_u64(u64::MAX, *width),
                                    };
                                    let mut word = rams[idx][addr as usize].clone();
                                    for i in 0..*width {
                                        if mask.bit(i) == Logic::L1 {
                                            word.set_bit(i, data.bit(i));
                                        }
                                    }
                                    ram_writes.push((idx, addr as usize, word));
                                }
                            }
                        }
                    }
                    Item::Assign { .. } | Item::Tristate { .. } => {}
                }
            }
        }
        // 4. commit
        for (q, v) in commits {
            self.values[q.0 as usize] = v;
        }
        for (idx, addr, word) in ram_writes {
            self.rams[idx][addr] = word;
        }
        // 5. settle combinational logic on the post-edge state
        self.settle();
        // remember values for the next step's edge detection
        self.prev_values = self.values.clone();
    }

    /// Iterates combinational items to a fixpoint.
    ///
    /// # Panics
    ///
    /// Panics if the network does not settle within 1000 passes
    /// (combinational loop).
    fn settle(&mut self) {
        // precompute ram index per rdata net for the async read ports
        for _pass in 0..1000 {
            let mut changed = false;
            let num_nets = self.design.nets.len();
            let mut tristate_acc: Vec<Option<LogicVec>> = vec![None; num_nets];
            let mut writes: Vec<(usize, LogicVec)> = Vec::new();
            {
                let design = &self.design;
                let values = &self.values;
                let rams = &self.rams;
                let evals = &mut self.evals;
                for (idx, item) in design.items.iter().enumerate() {
                    match item {
                        Item::Assign { target, expr } => {
                            let v = eval_expr(design, values, evals, expr);
                            if values[target.0 as usize] != v {
                                writes.push((target.0 as usize, v));
                            }
                        }
                        Item::Tristate {
                            target,
                            enable,
                            value,
                        } => {
                            let en = eval_expr(design, values, evals, enable).bit(0);
                            let w = design.width(*target);
                            let contribution = match en {
                                Logic::L1 => eval_expr(design, values, evals, value),
                                Logic::L0 => LogicVec::zs(w),
                                _ => LogicVec::xs(w),
                            };
                            let acc = &mut tristate_acc[target.0 as usize];
                            *acc = Some(match acc.take() {
                                Some(prev) => prev.resolve(&contribution),
                                None => contribution,
                            });
                        }
                        Item::Ram {
                            raddr,
                            rdata,
                            words,
                            width,
                            ..
                        } => {
                            let v = match eval_expr(design, values, evals, raddr).to_u64() {
                                Some(a) if (a as u32) < *words => rams[idx][a as usize].clone(),
                                _ => LogicVec::xs(*width),
                            };
                            if values[rdata.0 as usize] != v {
                                writes.push((rdata.0 as usize, v));
                            }
                        }
                        _ => {}
                    }
                }
            }
            for (i, v) in writes {
                self.values[i] = v;
                changed = true;
            }
            for (i, acc) in tristate_acc.into_iter().enumerate() {
                if let Some(v) = acc {
                    if self.values[i] != v {
                        self.values[i] = v;
                        changed = true;
                    }
                }
            }
            if !changed {
                return;
            }
        }
        panic!("combinational network did not settle within 1000 passes");
    }
}
