//! The compiled RTL simulator (scalar executor).
//!
//! [`RtlSim::new`] compiles the netlist **once** (via the shared
//! [`Schedule`](crate::schedule::Schedule)) into a flat array of ops over
//! a preallocated value arena: slots `0..num_nets` hold the net values,
//! the remaining slots hold constants and expression temporaries. Each
//! combinational item becomes a *node* whose ops evaluate in place (no
//! per-node `LogicVec` clones); settling is activity-driven — a CSR
//! fanout (net → reading nodes) feeds a topologically-ranked dirty
//! worklist, so an idle cycle touches only the cone of the nets that
//! actually changed.
//!
//! Designs with cyclic combinational dependencies or multiply-driven
//! (non-tristate) wires fall back to the full Jacobi fixpoint
//! ([`SettleMode::Full`]), which replicates the original interpreter's
//! pass-batched semantics exactly — including the 1000-pass
//! combinational-loop panic. The full mode stays selectable via
//! [`RtlSim::set_settle_mode`] so the two schedules can be checked
//! against each other; for acyclic single-driver networks (every wire a
//! unique function of registers and inputs) both settle to the same
//! unique fixpoint, bit for bit.
//!
//! Each [`RtlSim::step`] applies staged input changes, settles the
//! combinational network, captures every clocked element whose clock saw
//! an edge (with Verilog nonblocking-assignment semantics: all samples
//! happen before any commit), commits, and settles again. Steady-state
//! stepping performs no heap allocation: inputs stage into preallocated
//! per-net buffers, ops reuse their temporaries, and commits copy within
//! existing capacity.

use crate::logic::{Logic, LogicVec};
use crate::netlist::{Edge, Expr, Item, NetId, NetKind, Netlist};
use crate::schedule::{CombNode, Op, OpsRange, Schedule, SeqNode, TriDriver};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How [`RtlSim`] settles the combinational network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SettleMode {
    /// Iterate every combinational item to a fixpoint each settle (the
    /// interpreter's original algorithm).
    Full,
    /// Evaluate only the topological cone of changed nets (compiled
    /// schedule). Falls back to [`SettleMode::Full`] semantics when the
    /// design is combinationally cyclic or has multiply-driven wires.
    #[default]
    ActivityDriven,
}

/// Read-only expression evaluation against a simulator's current state.
///
/// Assertion monitors observe internal nets through arbitrary [`Expr`]s
/// not present in the compiled schedule. Both the scalar [`RtlSim`] and
/// a single lane of the batched simulator
/// ([`LaneProbe`](crate::LaneProbe)) expose that tree-walk evaluation
/// through this trait, so monitor code written once runs unchanged
/// against either executor.
pub trait RtlProbe {
    /// Evaluates `e` against the current settled values.
    fn probe(&mut self, e: &Expr) -> LogicVec;
}

/// Compiled simulation state for one [`Netlist`].
///
/// The netlist is compiled once at construction; per-cycle evaluation
/// runs the flat op schedule in place over the value arena. See the
/// module docs for the settling strategy.
#[derive(Debug, Clone)]
pub struct RtlSim {
    design: Netlist,
    mode: SettleMode,
    /// compiled schedule (immutable after construction)
    sched: Schedule,
    // --- simulation state ---
    /// value arena: `0..num_nets` are net values, then consts and temps
    vals: Vec<LogicVec>,
    rams: Vec<Vec<LogicVec>>,
    /// staged input writes applied at the start of the next step
    input_stage: Vec<LogicVec>,
    staged: Vec<bool>,
    stage_list: Vec<u32>,
    /// previous end-of-step clock-bit values for edge detection
    prev_clk: Vec<Logic>,
    // --- worklist (reused, never reallocated in steady state) ---
    dirty: Vec<bool>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// sampled seq nodes awaiting commit: (seq index, result slot)
    fired: Vec<(u32, u32)>,
    /// sampled RAM write address per seq node
    ram_addr: Vec<u32>,
    /// full-settle scratch: (target, result, differs-from-pass-start)
    full_assign: Vec<(u32, u32, bool)>,
    steps: u64,
    /// expression/op evaluations performed (a load statistic for Table 3)
    evals: u64,
}

/// Evaluates `e` against `values` by tree walk (kept for [`RtlSim::probe`],
/// which must handle arbitrary monitor expressions not in the compiled
/// schedule); `evals` counts expression-node visits.
fn eval_expr(design: &Netlist, values: &[LogicVec], evals: &mut u64, e: &Expr) -> LogicVec {
    *evals += 1;
    match e {
        Expr::Const(v) => v.clone(),
        Expr::Net(n) => values[n.0 as usize].clone(),
        Expr::Index(n, i) => LogicVec::from_bits(vec![values[n.0 as usize].bit(*i)]),
        Expr::Slice(n, hi, lo) => values[n.0 as usize].slice(*hi, *lo),
        Expr::Not(a) => {
            let v = eval_expr(design, values, evals, a);
            LogicVec::from_bits(v.iter().map(Logic::not).collect())
        }
        Expr::And(a, b) => binop(design, values, evals, a, b, Logic::and),
        Expr::Or(a, b) => binop(design, values, evals, a, b, Logic::or),
        Expr::Xor(a, b) => binop(design, values, evals, a, b, Logic::xor),
        Expr::Eq(a, b) => {
            let va = eval_expr(design, values, evals, a);
            let vb = eval_expr(design, values, evals, b);
            if !va.is_known() || !vb.is_known() {
                return LogicVec::xs(1);
            }
            LogicVec::from_bits(vec![Logic::from_bool(va == vb)])
        }
        Expr::Mux { sel, a, b } => {
            let s = eval_expr(design, values, evals, sel).bit(0);
            match s {
                Logic::L1 => eval_expr(design, values, evals, a),
                Logic::L0 => eval_expr(design, values, evals, b),
                _ => LogicVec::xs(design.expr_width(a)),
            }
        }
        Expr::Concat(parts) => {
            let mut bits = Vec::new();
            for p in parts {
                bits.extend(eval_expr(design, values, evals, p).iter());
            }
            LogicVec::from_bits(bits)
        }
        Expr::ReduceXor(a) => {
            let v = eval_expr(design, values, evals, a);
            LogicVec::from_bits(vec![v.reduce_xor()])
        }
        Expr::ReduceOr(a) => {
            let v = eval_expr(design, values, evals, a);
            LogicVec::from_bits(vec![v.reduce_or()])
        }
    }
}

fn binop(
    design: &Netlist,
    values: &[LogicVec],
    evals: &mut u64,
    a: &Expr,
    b: &Expr,
    f: fn(Logic, Logic) -> Logic,
) -> LogicVec {
    let va = eval_expr(design, values, evals, a);
    let vb = eval_expr(design, values, evals, b);
    debug_assert_eq!(va.width(), vb.width(), "operand width mismatch");
    LogicVec::from_bits(va.iter().zip(vb.iter()).map(|(x, y)| f(x, y)).collect())
}

impl RtlSim {
    /// Compiles `design` and initializes the arena; registers take their
    /// declared initial values, wires start at `X`, inputs at `0`.
    ///
    /// # Panics
    ///
    /// Panics on expression width mismatches (the same errors Verilog
    /// elaboration would reject).
    pub fn new(design: &Netlist) -> Self {
        let num_nets = design.nets.len();
        let sched = Schedule::compile(design);

        // --- the value arena ---
        let mut vals: Vec<LogicVec> = design
            .nets
            .iter()
            .map(|n| match n.kind {
                NetKind::Reg => n.init.clone().unwrap_or_else(|| LogicVec::zeros(n.width)),
                NetKind::Input => LogicVec::zeros(n.width),
                NetKind::Wire => LogicVec::xs(n.width),
            })
            .collect();
        for w in &sched.widths[num_nets..] {
            vals.push(LogicVec::xs(*w));
        }
        for (slot, v) in &sched.consts {
            vals[*slot as usize] = v.clone();
        }
        let rams = design
            .items
            .iter()
            .map(|item| match item {
                Item::Ram { words, width, .. } => {
                    vec![LogicVec::zeros(*width); *words as usize]
                }
                _ => Vec::new(),
            })
            .collect();
        let input_stage = design
            .nets
            .iter()
            .map(|n| match n.kind {
                NetKind::Input => LogicVec::zeros(n.width),
                _ => LogicVec::from_bits(Vec::new()),
            })
            .collect();

        let seq_len = sched.seq.len();
        let comb_len = sched.comb.len();
        let mut sim = RtlSim {
            design: design.clone(),
            mode: SettleMode::default(),
            sched,
            vals,
            rams,
            input_stage,
            staged: vec![false; num_nets],
            stage_list: Vec::with_capacity(num_nets),
            prev_clk: vec![Logic::L0; num_nets],
            dirty: vec![false; comb_len],
            heap: BinaryHeap::with_capacity(comb_len + 1),
            fired: Vec::with_capacity(seq_len),
            ram_addr: vec![0; seq_len],
            full_assign: Vec::with_capacity(comb_len),
            steps: 0,
            evals: 0,
        };
        for n in 0..comb_len as u32 {
            sim.mark(n);
        }
        sim.settle();
        for i in 0..sim.sched.clock_nets.len() {
            let cnet = sim.sched.clock_nets[i] as usize;
            sim.prev_clk[cnet] = sim.vals[cnet].bit(0);
        }
        sim
    }

    /// The settle strategy in use.
    pub fn settle_mode(&self) -> SettleMode {
        self.mode
    }

    /// Selects the settle strategy. Both modes produce bit-identical net
    /// values for acyclic single-driver designs; switching is safe at any
    /// step boundary.
    pub fn set_settle_mode(&mut self, mode: SettleMode) {
        self.mode = mode;
    }

    /// Schedules an input change for the next [`step`](Self::step).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or the width differs.
    pub fn set(&mut self, net: NetId, value: LogicVec) {
        let decl = &self.design.nets[net.0 as usize];
        assert!(
            decl.kind == NetKind::Input,
            "net {} is not an input",
            decl.name
        );
        assert_eq!(decl.width, value.width(), "width mismatch on {}", decl.name);
        self.input_stage[net.0 as usize].assign_from(&value);
        if !self.staged[net.0 as usize] {
            self.staged[net.0 as usize] = true;
            self.stage_list.push(net.0);
        }
    }

    /// Schedules an input change given as an integer (allocation-free:
    /// the value is staged into a preallocated per-net buffer).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input.
    pub fn set_u64(&mut self, net: NetId, value: u64) {
        let decl = &self.design.nets[net.0 as usize];
        assert!(
            decl.kind == NetKind::Input,
            "net {} is not an input",
            decl.name
        );
        let stage = &mut self.input_stage[net.0 as usize];
        for i in 0..decl.width {
            stage.set_bit(i, Logic::from_bool(value >> i & 1 == 1));
        }
        if !self.staged[net.0 as usize] {
            self.staged[net.0 as usize] = true;
            self.stage_list.push(net.0);
        }
    }

    /// The current value of any net.
    pub fn get(&self, net: NetId) -> &LogicVec {
        &self.vals[net.0 as usize]
    }

    /// The current value of a net as an integer, if fully known.
    pub fn get_u64(&self, net: NetId) -> Option<u64> {
        self.get(net).to_u64()
    }

    /// A RAM word, for inspection (`item_index` is the position of the
    /// RAM in the netlist's item list).
    ///
    /// # Panics
    ///
    /// Panics if the item is not a RAM or the address is out of range.
    pub fn ram_word(&self, item_index: usize, addr: usize) -> &LogicVec {
        assert!(matches!(self.design.items[item_index], Item::Ram { .. }));
        &self.rams[item_index][addr]
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Expression/op evaluations performed so far (the simulator-load
    /// statistic used by the Table 3 harness). Activity-driven settling
    /// legitimately performs far fewer evaluations than the full
    /// fixpoint for the same stimulus.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Evaluates an arbitrary expression against the current values
    /// (used by assertion monitors observing internal nets). Monitor
    /// expressions attach through the same net-id arena the compiled
    /// schedule evaluates into.
    pub fn probe(&mut self, e: &Expr) -> LogicVec {
        eval_expr(&self.design, &self.vals, &mut self.evals, e)
    }

    /// Marks a comb node dirty and queues it by topological rank.
    fn mark(&mut self, node: u32) {
        if !self.dirty[node as usize] {
            self.dirty[node as usize] = true;
            self.heap
                .push(Reverse((self.sched.rank[node as usize], node)));
        }
    }

    /// Marks every comb node reading `net`.
    fn mark_fanout(&mut self, net: u32) {
        let lo = self.sched.fanout_off[net as usize] as usize;
        let hi = self.sched.fanout_off[net as usize + 1] as usize;
        for i in lo..hi {
            let n = self.sched.fanout[i];
            self.mark(n);
        }
    }

    /// Runs a compiled op range in place over the arena.
    fn run_ops(&mut self, range: OpsRange) {
        let RtlSim {
            sched, vals, evals, ..
        } = self;
        let (ops, parts) = (&sched.ops, &sched.parts);
        for op in &ops[range.0 as usize..range.1 as usize] {
            *evals += 1;
            let dst = op.dst() as usize;
            let mut d = std::mem::replace(&mut vals[dst], LogicVec::from_bits(Vec::new()));
            {
                let db = d.bits_raw_mut();
                match *op {
                    Op::Copy { a, .. } => db.copy_from_slice(vals[a as usize].bits_raw()),
                    Op::Index { a, bit, .. } => db[0] = vals[a as usize].bit(bit),
                    Op::Slice { a, lo, .. } => {
                        let lo = lo as usize;
                        db.copy_from_slice(&vals[a as usize].bits_raw()[lo..lo + db.len()]);
                    }
                    Op::Not { a, .. } => {
                        for (o, s) in db.iter_mut().zip(vals[a as usize].bits_raw()) {
                            *o = s.not();
                        }
                    }
                    Op::And { a, b, .. } => {
                        let (va, vb) = (vals[a as usize].bits_raw(), vals[b as usize].bits_raw());
                        for (i, o) in db.iter_mut().enumerate() {
                            *o = va[i].and(vb[i]);
                        }
                    }
                    Op::Or { a, b, .. } => {
                        let (va, vb) = (vals[a as usize].bits_raw(), vals[b as usize].bits_raw());
                        for (i, o) in db.iter_mut().enumerate() {
                            *o = va[i].or(vb[i]);
                        }
                    }
                    Op::Xor { a, b, .. } => {
                        let (va, vb) = (vals[a as usize].bits_raw(), vals[b as usize].bits_raw());
                        for (i, o) in db.iter_mut().enumerate() {
                            *o = va[i].xor(vb[i]);
                        }
                    }
                    Op::Eq { a, b, .. } => {
                        let (va, vb) = (&vals[a as usize], &vals[b as usize]);
                        db[0] = if !va.is_known() || !vb.is_known() {
                            Logic::X
                        } else {
                            Logic::from_bool(va == vb)
                        };
                    }
                    Op::Mux { sel, a, b, .. } => match vals[sel as usize].bit(0) {
                        Logic::L1 => db.copy_from_slice(vals[a as usize].bits_raw()),
                        Logic::L0 => db.copy_from_slice(vals[b as usize].bits_raw()),
                        _ => db.fill(Logic::X),
                    },
                    Op::Concat {
                        parts: (p0, p1), ..
                    } => {
                        let mut j = 0;
                        for &p in &parts[p0 as usize..p1 as usize] {
                            for &bit in vals[p as usize].bits_raw() {
                                db[j] = bit;
                                j += 1;
                            }
                        }
                    }
                    Op::ReduceXor { a, .. } => db[0] = vals[a as usize].reduce_xor(),
                    Op::ReduceOr { a, .. } => db[0] = vals[a as usize].reduce_or(),
                }
            }
            vals[dst] = d;
        }
    }

    /// Evaluates one comb node; returns `(target net, result slot)`
    /// without committing.
    fn eval_node(&mut self, id: u32) -> (u32, u32) {
        let node = self.sched.comb[id as usize];
        match node {
            CombNode::Assign { ops, src, target } => {
                self.run_ops(ops);
                (target, src)
            }
            CombNode::RamRead {
                ops,
                addr,
                ram,
                words,
                target,
                out,
            } => {
                self.run_ops(ops);
                let a = self.vals[addr as usize].to_u64();
                let mut o = std::mem::replace(
                    &mut self.vals[out as usize],
                    LogicVec::from_bits(Vec::new()),
                );
                match a {
                    Some(a) if (a as u32) < words => {
                        o.assign_from(&self.rams[ram as usize][a as usize])
                    }
                    _ => o.bits_raw_mut().fill(Logic::X),
                }
                self.vals[out as usize] = o;
                (target, out)
            }
            CombNode::Tri {
                target,
                acc,
                drivers,
            } => {
                for di in drivers.0..drivers.1 {
                    let dops = self.sched.tri[di as usize].ops;
                    self.run_ops(dops);
                }
                let mut a = std::mem::replace(
                    &mut self.vals[acc as usize],
                    LogicVec::from_bits(Vec::new()),
                );
                {
                    let ab = a.bits_raw_mut();
                    ab.fill(Logic::Z);
                    for di in drivers.0..drivers.1 {
                        let TriDriver { en, value, .. } = self.sched.tri[di as usize];
                        let en = self.vals[en as usize].bit(0);
                        let vb = self.vals[value as usize].bits_raw();
                        for (i, o) in ab.iter_mut().enumerate() {
                            let contribution = match en {
                                Logic::L1 => vb[i],
                                Logic::L0 => Logic::Z,
                                _ => Logic::X,
                            };
                            *o = o.resolve(contribution);
                        }
                    }
                }
                self.vals[acc as usize] = a;
                (target, acc)
            }
        }
    }

    /// Copies `result` into `target` if they differ; returns whether the
    /// target changed. Allocation-free: the copy reuses capacity.
    fn commit_pair(&mut self, target: u32, result: u32) -> bool {
        if self.vals[target as usize] == self.vals[result as usize] {
            return false;
        }
        let mut t =
            std::mem::replace(&mut self.vals[target as usize], LogicVec::from_bits(Vec::new()));
        t.assign_from(&self.vals[result as usize]);
        self.vals[target as usize] = t;
        true
    }

    /// Settles the combinational network (mode- and topology-dependent).
    fn settle(&mut self) {
        if self.heap.is_empty() {
            return; // nothing marked since the last settle
        }
        if self.mode == SettleMode::Full || self.sched.fallback_full {
            self.settle_full();
        } else {
            self.settle_activity();
        }
    }

    /// Activity-driven settle: drain the dirty worklist in topological
    /// rank order; each node evaluates at most once, and an unchanged
    /// target stops propagation.
    fn settle_activity(&mut self) {
        while let Some(Reverse((_, n))) = self.heap.pop() {
            if !self.dirty[n as usize] {
                continue; // stale duplicate entry
            }
            self.dirty[n as usize] = false;
            let (target, result) = self.eval_node(n);
            if self.commit_pair(target, result) {
                self.mark_fanout(target);
            }
        }
    }

    /// Full Jacobi fixpoint replicating the interpreter's pass-batched
    /// semantics: every pass evaluates all nodes against pass-start net
    /// values, then commits the changed single-driver targets in item
    /// order, then the resolved tristate targets in net order.
    ///
    /// # Panics
    ///
    /// Panics if the network does not settle within 1000 passes
    /// (combinational loop).
    fn settle_full(&mut self) {
        for _pass in 0..1000 {
            let mut changed = false;
            let mut fa = std::mem::take(&mut self.full_assign);
            fa.clear();
            for id in 0..self.sched.comb.len() as u32 {
                if matches!(self.sched.comb[id as usize], CombNode::Tri { .. }) {
                    continue; // evaluated below, committed last
                }
                let (target, result) = self.eval_node(id);
                fa.push((target, result, false));
            }
            for ti in 0..self.sched.tri_order.len() {
                let id = self.sched.tri_order[ti];
                self.eval_node(id); // result stays in the group's acc slot
            }
            // compare every single-driver result against the pass-start
            // value, then apply the changed ones in item order
            for e in fa.iter_mut() {
                e.2 = self.vals[e.0 as usize] != self.vals[e.1 as usize];
                changed |= e.2;
            }
            for &(target, result, differs) in fa.iter() {
                if differs {
                    self.commit_pair(target, result);
                }
            }
            // tristate targets: compare against the post-assign values
            for ti in 0..self.sched.tri_order.len() {
                let id = self.sched.tri_order[ti];
                let (target, acc) = match self.sched.comb[id as usize] {
                    CombNode::Tri { target, acc, .. } => (target, acc),
                    _ => unreachable!(),
                };
                changed |= self.commit_pair(target, acc);
            }
            fa.clear();
            self.full_assign = fa;
            if !changed {
                self.heap.clear();
                self.dirty.fill(false);
                return;
            }
        }
        panic!("combinational network did not settle within 1000 passes");
    }

    /// Applies staged inputs, settles, captures clock edges, commits
    /// and settles again.
    pub fn step(&mut self) {
        self.steps += 1;
        // 1. apply staged inputs (changed nets wake their fanout)
        for i in 0..self.stage_list.len() {
            let net = self.stage_list[i] as usize;
            self.staged[net] = false;
            if self.vals[net] != self.input_stage[net] {
                let mut t =
                    std::mem::replace(&mut self.vals[net], LogicVec::from_bits(Vec::new()));
                t.assign_from(&self.input_stage[net]);
                self.vals[net] = t;
                self.mark_fanout(net as u32);
            }
        }
        self.stage_list.clear();
        // 2. settle so D inputs are coherent with the new primary inputs
        //    (inputs have setup before the edge)
        self.settle();
        // 3. sample clocked elements on detected edges (all samples
        //    before any commit — nonblocking-assignment semantics)
        self.fired.clear();
        for s in 0..self.sched.seq.len() {
            let node = self.sched.seq[s];
            match node {
                SeqNode::Dff {
                    clock,
                    edge,
                    en,
                    d,
                    q,
                } => {
                    if self.edge_on(clock, edge) {
                        let enabled = match en {
                            Some((ops, slot)) => {
                                self.run_ops(ops);
                                self.vals[slot as usize].bit(0) == Logic::L1
                            }
                            None => true,
                        };
                        if enabled {
                            self.run_ops(d.0);
                            self.fired.push((s as u32, d.1));
                            let _ = q;
                        }
                    }
                }
                SeqNode::Ddr {
                    clock, rise, fall, ..
                } => {
                    if self.edge_on(clock, Edge::Pos) {
                        self.run_ops(rise.0);
                        self.fired.push((s as u32, rise.1));
                    } else if self.edge_on(clock, Edge::Neg) {
                        self.run_ops(fall.0);
                        self.fired.push((s as u32, fall.1));
                    }
                }
                SeqNode::RamWrite {
                    clock,
                    we,
                    waddr,
                    wdata,
                    wmask,
                    ram,
                    words,
                    width,
                    word,
                } => {
                    if !self.edge_on(clock, Edge::Pos) {
                        continue;
                    }
                    self.run_ops(we.0);
                    if self.vals[we.1 as usize].bit(0) != Logic::L1 {
                        continue;
                    }
                    self.run_ops(waddr.0);
                    let Some(addr) = self.vals[waddr.1 as usize].to_u64() else {
                        continue;
                    };
                    if (addr as u32) >= words {
                        continue;
                    }
                    self.run_ops(wdata.0);
                    if let Some((mops, _)) = wmask {
                        self.run_ops(mops);
                    }
                    // read-modify-write the addressed word into the
                    // node's dedicated slot
                    let mut w = std::mem::replace(
                        &mut self.vals[word as usize],
                        LogicVec::from_bits(Vec::new()),
                    );
                    w.assign_from(&self.rams[ram as usize][addr as usize]);
                    {
                        let wb = w.bits_raw_mut();
                        let data = self.vals[wdata.1 as usize].bits_raw();
                        match wmask {
                            Some((_, mslot)) => {
                                let mask = self.vals[mslot as usize].bits_raw();
                                for i in 0..width as usize {
                                    if mask[i] == Logic::L1 {
                                        wb[i] = data[i];
                                    }
                                }
                            }
                            None => wb.copy_from_slice(data),
                        }
                    }
                    self.vals[word as usize] = w;
                    self.ram_addr[s] = addr as u32;
                    self.fired.push((s as u32, word));
                }
            }
        }
        // 4. commit
        for i in 0..self.fired.len() {
            let (s, slot) = self.fired[i];
            match self.sched.seq[s as usize] {
                SeqNode::Dff { q, .. } | SeqNode::Ddr { q, .. } => {
                    if self.commit_pair(q, slot) {
                        self.mark_fanout(q);
                    }
                }
                SeqNode::RamWrite { ram, .. } => {
                    let addr = self.ram_addr[s as usize] as usize;
                    let ram = ram as usize;
                    if self.rams[ram][addr] != self.vals[slot as usize] {
                        let mut w = std::mem::replace(
                            &mut self.rams[ram][addr],
                            LogicVec::from_bits(Vec::new()),
                        );
                        w.assign_from(&self.vals[slot as usize]);
                        self.rams[ram][addr] = w;
                        for ri in 0..self.sched.ram_readers[ram].len() {
                            let reader = self.sched.ram_readers[ram][ri];
                            self.mark(reader);
                        }
                    }
                }
            }
        }
        // 5. settle combinational logic on the post-edge state
        self.settle();
        // remember the clock levels for the next step's edge detection
        for i in 0..self.sched.clock_nets.len() {
            let cnet = self.sched.clock_nets[i] as usize;
            self.prev_clk[cnet] = self.vals[cnet].bit(0);
        }
    }

    fn edge_on(&self, clock: u32, edge: Edge) -> bool {
        let p = self.prev_clk[clock as usize];
        let c = self.vals[clock as usize].bit(0);
        match edge {
            Edge::Pos => p == Logic::L0 && c == Logic::L1,
            Edge::Neg => p == Logic::L1 && c == Logic::L0,
        }
    }

    /// Exports the simulator's full mutable state as plain data (the
    /// checkpoint layer serializes it). Exporting every arena slot —
    /// nets, constants *and* expression temporaries — makes
    /// [`RtlSim::import_state`] a pure copy with no re-settle, so a
    /// restored simulator is byte-identical to the one exported.
    ///
    /// Only legal at a quiescent step boundary: staged inputs applied,
    /// dirty worklist drained. (Every caller in the workspace snapshots
    /// between [`RtlSim::step`]s, where both hold by construction.)
    pub fn export_state(&self) -> Result<RtlState, String> {
        if !self.stage_list.is_empty() {
            return Err("cannot export with staged inputs pending".to_string());
        }
        if !self.heap.is_empty() {
            return Err("cannot export with an unsettled network".to_string());
        }
        Ok(RtlState {
            vals: self.vals.iter().map(LogicVec::to_string).collect(),
            rams: self
                .rams
                .iter()
                .map(|ram| ram.iter().map(LogicVec::to_string).collect())
                .collect(),
            prev_clk: self.prev_clk.iter().map(|l| l.to_char()).collect(),
            steps: self.steps,
            evals: self.evals,
        })
    }

    /// Restores a state exported from a simulator compiled from the
    /// *same* netlist. Shape-checks every slot (arena length, widths,
    /// RAM geometry) and rejects mismatches without modifying `self`.
    pub fn import_state(&mut self, st: &RtlState) -> Result<(), String> {
        if st.vals.len() != self.vals.len() {
            return Err(format!(
                "arena size mismatch: snapshot has {} slots, design has {}",
                st.vals.len(),
                self.vals.len()
            ));
        }
        if st.rams.len() != self.rams.len() || st.prev_clk.chars().count() != self.prev_clk.len()
        {
            return Err("RAM/clock table shape mismatch".to_string());
        }
        let mut vals = Vec::with_capacity(st.vals.len());
        for (i, s) in st.vals.iter().enumerate() {
            let v = LogicVec::parse_fourstate(s)
                .filter(|v| v.width() == self.vals[i].width())
                .ok_or_else(|| format!("bad value in arena slot {i}"))?;
            vals.push(v);
        }
        let mut rams = Vec::with_capacity(st.rams.len());
        for (r, words) in st.rams.iter().enumerate() {
            if words.len() != self.rams[r].len() {
                return Err(format!("RAM {r} word-count mismatch"));
            }
            let mut ram = Vec::with_capacity(words.len());
            for (a, s) in words.iter().enumerate() {
                let v = LogicVec::parse_fourstate(s)
                    .filter(|v| v.width() == self.rams[r].first().map_or(0, LogicVec::width))
                    .ok_or_else(|| format!("bad word {a} in RAM {r}"))?;
                ram.push(v);
            }
            rams.push(ram);
        }
        let prev_clk = st
            .prev_clk
            .chars()
            .map(Logic::from_char)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| "bad clock-level table".to_string())?;
        self.vals = vals;
        self.rams = rams;
        self.prev_clk = prev_clk;
        self.steps = st.steps;
        self.evals = st.evals;
        // the imported arena is settled by the export precondition
        self.heap.clear();
        self.dirty.fill(false);
        self.stage_list.clear();
        self.staged.fill(false);
        Ok(())
    }
}

/// A plain-data export of an [`RtlSim`]'s full mutable state: every
/// arena slot (four-state strings, MSB first), the RAM contents, the
/// per-net previous clock levels, and the step/eval counters. Built by
/// [`RtlSim::export_state`], consumed by [`RtlSim::import_state`];
/// serialization lives in the checkpoint layer (`la1-core`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlState {
    /// Every arena slot (nets, then constants and temporaries).
    pub vals: Vec<String>,
    /// RAM contents, indexed by netlist item then word address.
    pub rams: Vec<Vec<String>>,
    /// Previous end-of-step clock levels, one character per net.
    pub prev_clk: String,
    /// Steps executed.
    pub steps: u64,
    /// Expression/op evaluations performed.
    pub evals: u64,
}

impl RtlProbe for RtlSim {
    fn probe(&mut self, e: &Expr) -> LogicVec {
        RtlSim::probe(self, e)
    }
}
