//! The compiled RTL simulator.
//!
//! [`RtlSim::new`] compiles the netlist **once** into a flat array of
//! [`Op`]s over a preallocated value arena: slots `0..num_nets` hold the
//! net values, the remaining slots hold constants and expression
//! temporaries. Each combinational item becomes a *node* whose ops
//! evaluate in place (no per-node `LogicVec` clones); settling is
//! activity-driven — a CSR fanout (net → reading nodes) feeds a
//! topologically-ranked dirty worklist, so an idle cycle touches only
//! the cone of the nets that actually changed.
//!
//! Designs with cyclic combinational dependencies or multiply-driven
//! (non-tristate) wires fall back to the full Jacobi fixpoint
//! ([`SettleMode::Full`]), which replicates the original interpreter's
//! pass-batched semantics exactly — including the 1000-pass
//! combinational-loop panic. The full mode stays selectable via
//! [`RtlSim::set_settle_mode`] so the two schedules can be checked
//! against each other; for acyclic single-driver networks (every wire a
//! unique function of registers and inputs) both settle to the same
//! unique fixpoint, bit for bit.
//!
//! Each [`RtlSim::step`] applies staged input changes, settles the
//! combinational network, captures every clocked element whose clock saw
//! an edge (with Verilog nonblocking-assignment semantics: all samples
//! happen before any commit), commits, and settles again. Steady-state
//! stepping performs no heap allocation: inputs stage into preallocated
//! per-net buffers, ops reuse their temporaries, and commits copy within
//! existing capacity.

use crate::logic::{Logic, LogicVec};
use crate::netlist::{Edge, Expr, Item, NetId, NetKind, Netlist};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How [`RtlSim`] settles the combinational network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SettleMode {
    /// Iterate every combinational item to a fixpoint each settle (the
    /// interpreter's original algorithm).
    Full,
    /// Evaluate only the topological cone of changed nets (compiled
    /// schedule). Falls back to [`SettleMode::Full`] semantics when the
    /// design is combinationally cyclic or has multiply-driven wires.
    #[default]
    ActivityDriven,
}

/// A compiled operation over value-arena slots. `dst` is always a
/// dedicated temporary, so evaluation mutates `dst` in place while
/// reading its operand slots.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `dst = a` (dedicates a net/const root to its node).
    Copy { a: u32, dst: u32 },
    /// `dst = a[bit]`.
    Index { a: u32, bit: u32, dst: u32 },
    /// `dst = a[lo +: width(dst)]`.
    Slice { a: u32, lo: u32, dst: u32 },
    /// `dst = ~a`.
    Not { a: u32, dst: u32 },
    /// `dst = a & b`.
    And { a: u32, b: u32, dst: u32 },
    /// `dst = a | b`.
    Or { a: u32, b: u32, dst: u32 },
    /// `dst = a ^ b`.
    Xor { a: u32, b: u32, dst: u32 },
    /// `dst = (a == b)` — `X` if either side has unknown bits.
    Eq { a: u32, b: u32, dst: u32 },
    /// `dst = sel ? a : b` — all-`X` when `sel` is unknown.
    Mux { sel: u32, a: u32, b: u32, dst: u32 },
    /// `dst = {…parts…}` (first part is the LSB); `parts` indexes the
    /// side table.
    Concat { parts: (u32, u32), dst: u32 },
    /// `dst = ^a`.
    ReduceXor { a: u32, dst: u32 },
    /// `dst = |a`.
    ReduceOr { a: u32, dst: u32 },
}

impl Op {
    fn dst(&self) -> u32 {
        match *self {
            Op::Copy { dst, .. }
            | Op::Index { dst, .. }
            | Op::Slice { dst, .. }
            | Op::Not { dst, .. }
            | Op::And { dst, .. }
            | Op::Or { dst, .. }
            | Op::Xor { dst, .. }
            | Op::Eq { dst, .. }
            | Op::Mux { dst, .. }
            | Op::Concat { dst, .. }
            | Op::ReduceXor { dst, .. }
            | Op::ReduceOr { dst, .. } => dst,
        }
    }
}

/// `(start, end)` range into the op array.
type OpsRange = (u32, u32);

/// A compiled combinational driver.
#[derive(Debug, Clone, Copy)]
enum CombNode {
    /// `assign target = …` — run `ops`, result lands in `src`.
    Assign {
        ops: OpsRange,
        src: u32,
        target: u32,
    },
    /// Asynchronous RAM read port: run `ops` (the read address lands in
    /// `addr`), copy the addressed word — or all-`X` when the address is
    /// unknown/out of range — into `out`.
    RamRead {
        ops: OpsRange,
        addr: u32,
        ram: u32,
        words: u32,
        target: u32,
        out: u32,
    },
    /// All tristate drivers of one shared wire, resolved into `acc`.
    Tri {
        target: u32,
        acc: u32,
        drivers: (u32, u32),
    },
}

impl CombNode {
    fn target(&self) -> u32 {
        match *self {
            CombNode::Assign { target, .. }
            | CombNode::RamRead { target, .. }
            | CombNode::Tri { target, .. } => target,
        }
    }
}

/// One tristate driver within a [`CombNode::Tri`] group.
#[derive(Debug, Clone, Copy)]
struct TriDriver {
    ops: OpsRange,
    en: u32,
    value: u32,
}

/// A compiled clocked element, sampled on clock edges during
/// [`RtlSim::step`].
#[derive(Debug, Clone, Copy)]
enum SeqNode {
    Dff {
        clock: u32,
        edge: Edge,
        en: Option<(OpsRange, u32)>,
        d: (OpsRange, u32),
        q: u32,
    },
    Ddr {
        clock: u32,
        rise: (OpsRange, u32),
        fall: (OpsRange, u32),
        q: u32,
    },
    RamWrite {
        clock: u32,
        we: (OpsRange, u32),
        waddr: (OpsRange, u32),
        wdata: (OpsRange, u32),
        wmask: Option<(OpsRange, u32)>,
        ram: u32,
        words: u32,
        width: u32,
        /// dedicated slot the read-modify-write word is built in
        word: u32,
    },
}

/// Compiled simulation state for one [`Netlist`].
///
/// The netlist is compiled once at construction; per-cycle evaluation
/// runs the flat op schedule in place over the value arena. See the
/// module docs for the settling strategy.
#[derive(Debug, Clone)]
pub struct RtlSim {
    design: Netlist,
    mode: SettleMode,
    // --- compiled schedule (immutable after construction) ---
    ops: Vec<Op>,
    parts: Vec<u32>,
    comb: Vec<CombNode>,
    tri: Vec<TriDriver>,
    seq: Vec<SeqNode>,
    /// topological rank per comb node (valid when `!fallback_full`)
    rank: Vec<u32>,
    /// CSR fanout: net id → comb nodes reading it
    fanout_off: Vec<u32>,
    fanout: Vec<u32>,
    /// RAM item index → comb nodes reading that RAM
    ram_readers: Vec<Vec<u32>>,
    /// tri-group comb node ids sorted by target net (full-settle order)
    tri_order: Vec<u32>,
    /// nets used as clocks by any sequential node
    clock_nets: Vec<u32>,
    /// cyclic or multiply-driven: activity-driven settling is unsound,
    /// always use the full fixpoint
    fallback_full: bool,
    // --- simulation state ---
    /// value arena: `0..num_nets` are net values, then consts and temps
    vals: Vec<LogicVec>,
    rams: Vec<Vec<LogicVec>>,
    /// staged input writes applied at the start of the next step
    input_stage: Vec<LogicVec>,
    staged: Vec<bool>,
    stage_list: Vec<u32>,
    /// previous end-of-step clock-bit values for edge detection
    prev_clk: Vec<Logic>,
    // --- worklist (reused, never reallocated in steady state) ---
    dirty: Vec<bool>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// sampled seq nodes awaiting commit: (seq index, result slot)
    fired: Vec<(u32, u32)>,
    /// sampled RAM write address per seq node
    ram_addr: Vec<u32>,
    /// full-settle scratch: (target, result, differs-from-pass-start)
    full_assign: Vec<(u32, u32, bool)>,
    steps: u64,
    /// expression/op evaluations performed (a load statistic for Table 3)
    evals: u64,
}

/// Evaluates `e` against `values` by tree walk (kept for [`RtlSim::probe`],
/// which must handle arbitrary monitor expressions not in the compiled
/// schedule); `evals` counts expression-node visits.
fn eval_expr(design: &Netlist, values: &[LogicVec], evals: &mut u64, e: &Expr) -> LogicVec {
    *evals += 1;
    match e {
        Expr::Const(v) => v.clone(),
        Expr::Net(n) => values[n.0 as usize].clone(),
        Expr::Index(n, i) => LogicVec::from_bits(vec![values[n.0 as usize].bit(*i)]),
        Expr::Slice(n, hi, lo) => values[n.0 as usize].slice(*hi, *lo),
        Expr::Not(a) => {
            let v = eval_expr(design, values, evals, a);
            LogicVec::from_bits(v.iter().map(Logic::not).collect())
        }
        Expr::And(a, b) => binop(design, values, evals, a, b, Logic::and),
        Expr::Or(a, b) => binop(design, values, evals, a, b, Logic::or),
        Expr::Xor(a, b) => binop(design, values, evals, a, b, Logic::xor),
        Expr::Eq(a, b) => {
            let va = eval_expr(design, values, evals, a);
            let vb = eval_expr(design, values, evals, b);
            if !va.is_known() || !vb.is_known() {
                return LogicVec::xs(1);
            }
            LogicVec::from_bits(vec![Logic::from_bool(va == vb)])
        }
        Expr::Mux { sel, a, b } => {
            let s = eval_expr(design, values, evals, sel).bit(0);
            match s {
                Logic::L1 => eval_expr(design, values, evals, a),
                Logic::L0 => eval_expr(design, values, evals, b),
                _ => LogicVec::xs(design.expr_width(a)),
            }
        }
        Expr::Concat(parts) => {
            let mut bits = Vec::new();
            for p in parts {
                bits.extend(eval_expr(design, values, evals, p).iter());
            }
            LogicVec::from_bits(bits)
        }
        Expr::ReduceXor(a) => {
            let v = eval_expr(design, values, evals, a);
            LogicVec::from_bits(vec![v.reduce_xor()])
        }
        Expr::ReduceOr(a) => {
            let v = eval_expr(design, values, evals, a);
            LogicVec::from_bits(vec![v.reduce_or()])
        }
    }
}

fn binop(
    design: &Netlist,
    values: &[LogicVec],
    evals: &mut u64,
    a: &Expr,
    b: &Expr,
    f: fn(Logic, Logic) -> Logic,
) -> LogicVec {
    let va = eval_expr(design, values, evals, a);
    let vb = eval_expr(design, values, evals, b);
    debug_assert_eq!(va.width(), vb.width(), "operand width mismatch");
    LogicVec::from_bits(va.iter().zip(vb.iter()).map(|(x, y)| f(x, y)).collect())
}

/// Compiles expression trees into the flat op schedule.
struct Compiler<'a> {
    design: &'a Netlist,
    ops: Vec<Op>,
    parts: Vec<u32>,
    /// width of every slot allocated so far
    widths: Vec<u32>,
    /// `(slot, value)` constants to preload into the arena
    consts: Vec<(u32, LogicVec)>,
    /// nets read by the expressions compiled since the last `take_reads`
    reads: Vec<u32>,
}

impl<'a> Compiler<'a> {
    fn new(design: &'a Netlist) -> Self {
        let widths = design.nets.iter().map(|n| n.width).collect();
        Compiler {
            design,
            ops: Vec::new(),
            parts: Vec::new(),
            widths,
            consts: Vec::new(),
            reads: Vec::new(),
        }
    }

    fn num_nets(&self) -> u32 {
        self.design.nets.len() as u32
    }

    fn slot(&mut self, width: u32) -> u32 {
        self.widths.push(width);
        self.widths.len() as u32 - 1
    }

    /// Compiles `e`, returning the slot its value lives in after the
    /// emitted ops run. Net and const leaves return their own slot
    /// without emitting an op.
    fn compile(&mut self, e: &Expr) -> u32 {
        match e {
            Expr::Const(v) => {
                let dst = self.slot(v.width());
                self.consts.push((dst, v.clone()));
                dst
            }
            Expr::Net(n) => {
                self.reads.push(n.0);
                n.0
            }
            Expr::Index(n, i) => {
                self.reads.push(n.0);
                let dst = self.slot(1);
                self.ops.push(Op::Index {
                    a: n.0,
                    bit: *i,
                    dst,
                });
                dst
            }
            Expr::Slice(n, hi, lo) => {
                self.reads.push(n.0);
                assert!(
                    hi >= lo && *hi < self.widths[n.0 as usize],
                    "slice out of range on {}",
                    self.design.net_name(*n)
                );
                let dst = self.slot(hi - lo + 1);
                self.ops.push(Op::Slice { a: n.0, lo: *lo, dst });
                dst
            }
            Expr::Not(a) => {
                let a = self.compile(a);
                let dst = self.slot(self.widths[a as usize]);
                self.ops.push(Op::Not { a, dst });
                dst
            }
            Expr::And(a, b) => self.compile_binop(a, b, |a, b, dst| Op::And { a, b, dst }),
            Expr::Or(a, b) => self.compile_binop(a, b, |a, b, dst| Op::Or { a, b, dst }),
            Expr::Xor(a, b) => self.compile_binop(a, b, |a, b, dst| Op::Xor { a, b, dst }),
            Expr::Eq(a, b) => {
                let (a, b) = (self.compile(a), self.compile(b));
                assert_eq!(
                    self.widths[a as usize], self.widths[b as usize],
                    "width mismatch in comparison"
                );
                let dst = self.slot(1);
                self.ops.push(Op::Eq { a, b, dst });
                dst
            }
            Expr::Mux { sel, a, b } => {
                let sel = self.compile(sel);
                assert_eq!(self.widths[sel as usize], 1, "mux select must be 1 bit");
                let (a, b) = (self.compile(a), self.compile(b));
                assert_eq!(
                    self.widths[a as usize], self.widths[b as usize],
                    "width mismatch in mux arms"
                );
                let dst = self.slot(self.widths[a as usize]);
                self.ops.push(Op::Mux { sel, a, b, dst });
                dst
            }
            Expr::Concat(ps) => {
                let slots: Vec<u32> = ps.iter().map(|p| self.compile(p)).collect();
                let width = slots.iter().map(|&s| self.widths[s as usize]).sum();
                let p0 = self.parts.len() as u32;
                self.parts.extend_from_slice(&slots);
                let p1 = self.parts.len() as u32;
                let dst = self.slot(width);
                self.ops.push(Op::Concat {
                    parts: (p0, p1),
                    dst,
                });
                dst
            }
            Expr::ReduceXor(a) => {
                let a = self.compile(a);
                let dst = self.slot(1);
                self.ops.push(Op::ReduceXor { a, dst });
                dst
            }
            Expr::ReduceOr(a) => {
                let a = self.compile(a);
                let dst = self.slot(1);
                self.ops.push(Op::ReduceOr { a, dst });
                dst
            }
        }
    }

    fn compile_binop(&mut self, a: &Expr, b: &Expr, mk: fn(u32, u32, u32) -> Op) -> u32 {
        let (a, b) = (self.compile(a), self.compile(b));
        assert_eq!(
            self.widths[a as usize], self.widths[b as usize],
            "width mismatch in binary expression"
        );
        let dst = self.slot(self.widths[a as usize]);
        self.ops.push(mk(a, b, dst));
        dst
    }

    /// Compiles `e` as a node root: the returned `(ops, slot)` pair has a
    /// slot that no other node writes and that is not a live net, so its
    /// value survives until the commit phase.
    fn compile_root(&mut self, e: &Expr) -> (OpsRange, u32) {
        let start = self.ops.len() as u32;
        let mut s = self.compile(e);
        if s < self.num_nets() {
            // a bare net reference: dedicate a temp so deferred commits
            // read the value sampled now, not the net's later value
            let dst = self.slot(self.widths[s as usize]);
            self.ops.push(Op::Copy { a: s, dst });
            s = dst;
        }
        (((start), self.ops.len() as u32), s)
    }

    /// Compiles `e` for an immediately-consumed control value (clock
    /// enables, addresses): no dedication needed.
    fn compile_ctrl(&mut self, e: &Expr) -> (OpsRange, u32) {
        let start = self.ops.len() as u32;
        let s = self.compile(e);
        ((start, self.ops.len() as u32), s)
    }

    fn take_reads(&mut self) -> Vec<u32> {
        let mut r = std::mem::take(&mut self.reads);
        r.sort_unstable();
        r.dedup();
        r
    }
}

impl RtlSim {
    /// Compiles `design` and initializes the arena; registers take their
    /// declared initial values, wires start at `X`, inputs at `0`.
    ///
    /// # Panics
    ///
    /// Panics on expression width mismatches (the same errors Verilog
    /// elaboration would reject).
    pub fn new(design: &Netlist) -> Self {
        let num_nets = design.nets.len();
        let mut c = Compiler::new(design);
        let mut comb: Vec<CombNode> = Vec::new();
        let mut tri: Vec<TriDriver> = Vec::new();
        let mut seq: Vec<SeqNode> = Vec::new();
        let mut node_reads: Vec<Vec<u32>> = Vec::new();
        let mut ram_readers: Vec<Vec<u32>> = vec![Vec::new(); design.items.len()];
        // tristate groups: target net → (comb node index, driver list)
        let mut tri_groups: Vec<(u32, Vec<TriDriver>, Vec<u32>)> = Vec::new();

        for (idx, item) in design.items.iter().enumerate() {
            match item {
                Item::Assign { target, expr } => {
                    let (ops, src) = c.compile_root(expr);
                    comb.push(CombNode::Assign {
                        ops,
                        src,
                        target: target.0,
                    });
                    node_reads.push(c.take_reads());
                }
                Item::Tristate {
                    target,
                    enable,
                    value,
                } => {
                    let (e_ops, en) = c.compile_ctrl(enable);
                    let (v_ops, value) = c.compile_ctrl(value);
                    // one op range covering both (they are contiguous)
                    let driver = TriDriver {
                        ops: (e_ops.0, v_ops.1),
                        en,
                        value,
                    };
                    let reads = c.take_reads();
                    match tri_groups.iter_mut().find(|(t, ..)| *t == target.0) {
                        Some((_, drivers, group_reads)) => {
                            drivers.push(driver);
                            group_reads.extend(reads);
                        }
                        None => tri_groups.push((target.0, vec![driver], reads)),
                    }
                }
                Item::Ram {
                    raddr,
                    rdata,
                    words,
                    width,
                    clock,
                    we,
                    waddr,
                    wdata,
                    wmask,
                    ..
                } => {
                    // asynchronous read port (combinational)
                    let (ops, addr) = c.compile_ctrl(raddr);
                    let out = c.slot(*width);
                    ram_readers[idx].push(comb.len() as u32);
                    comb.push(CombNode::RamRead {
                        ops,
                        addr,
                        ram: idx as u32,
                        words: *words,
                        target: rdata.0,
                        out,
                    });
                    node_reads.push(c.take_reads());
                    // synchronous write port (sequential)
                    let we = c.compile_ctrl(we);
                    let waddr = c.compile_ctrl(waddr);
                    let wdata = c.compile_ctrl(wdata);
                    let wmask = wmask.as_ref().map(|m| c.compile_ctrl(m));
                    c.reads.clear(); // seq inputs need no fanout edges
                    let word = c.slot(*width);
                    seq.push(SeqNode::RamWrite {
                        clock: clock.0,
                        we,
                        waddr,
                        wdata,
                        wmask,
                        ram: idx as u32,
                        words: *words,
                        width: *width,
                        word,
                    });
                }
                Item::Dff {
                    clock,
                    edge,
                    enable,
                    d,
                    q,
                } => {
                    let en = enable.as_ref().map(|e| c.compile_ctrl(e));
                    let d = c.compile_root(d);
                    c.reads.clear();
                    seq.push(SeqNode::Dff {
                        clock: clock.0,
                        edge: *edge,
                        en,
                        d,
                        q: q.0,
                    });
                }
                Item::DdrFf {
                    clock,
                    d_rise,
                    d_fall,
                    q,
                } => {
                    let rise = c.compile_root(d_rise);
                    let fall = c.compile_root(d_fall);
                    c.reads.clear();
                    seq.push(SeqNode::Ddr {
                        clock: clock.0,
                        rise,
                        fall,
                        q: q.0,
                    });
                }
            }
        }
        // append the tristate groups after the single-driver nodes (per
        // settle pass all nodes read pass-start values, so eval order
        // within a pass is immaterial)
        for (target, drivers, mut reads) in tri_groups {
            let acc = c.slot(design.nets[target as usize].width);
            let d0 = tri.len() as u32;
            tri.extend(drivers);
            let d1 = tri.len() as u32;
            comb.push(CombNode::Tri {
                target,
                acc,
                drivers: (d0, d1),
            });
            reads.sort_unstable();
            reads.dedup();
            node_reads.push(reads);
        }

        // producer per net; multiply-driven wires force the full-settle
        // fallback (activity-driven single-producer reasoning is unsound)
        let mut producer: Vec<Option<u32>> = vec![None; num_nets];
        let mut fallback_full = false;
        for (ni, node) in comb.iter().enumerate() {
            let t = node.target() as usize;
            if producer[t].is_some() {
                fallback_full = true;
            }
            producer[t] = Some(ni as u32);
        }

        // Kahn topological ranking over comb nodes (edges: producer of a
        // read net → reader); a leftover node means a combinational cycle
        let mut rank = vec![0u32; comb.len()];
        if !fallback_full {
            let mut indegree = vec![0u32; comb.len()];
            // adjacency: producer node → reader nodes
            let mut succ: Vec<Vec<u32>> = vec![Vec::new(); comb.len()];
            for (ni, reads) in node_reads.iter().enumerate() {
                for &n in reads {
                    if let Some(p) = producer[n as usize] {
                        succ[p as usize].push(ni as u32);
                        indegree[ni] += 1;
                    }
                }
            }
            let mut queue: Vec<u32> = (0..comb.len() as u32)
                .filter(|&n| indegree[n as usize] == 0)
                .collect();
            let mut next = 0usize;
            let mut placed = 0u32;
            while next < queue.len() {
                let n = queue[next];
                next += 1;
                rank[n as usize] = placed;
                placed += 1;
                for &s in &succ[n as usize] {
                    indegree[s as usize] -= 1;
                    if indegree[s as usize] == 0 {
                        queue.push(s);
                    }
                }
            }
            if (placed as usize) != comb.len() {
                fallback_full = true; // combinational cycle
            }
        }

        // CSR fanout: net → comb nodes reading it
        let mut fanout_off = vec![0u32; num_nets + 1];
        for reads in &node_reads {
            for &n in reads {
                fanout_off[n as usize + 1] += 1;
            }
        }
        for i in 0..num_nets {
            fanout_off[i + 1] += fanout_off[i];
        }
        let mut fanout = vec![0u32; fanout_off[num_nets] as usize];
        let mut cursor = fanout_off.clone();
        for (ni, reads) in node_reads.iter().enumerate() {
            for &n in reads {
                fanout[cursor[n as usize] as usize] = ni as u32;
                cursor[n as usize] += 1;
            }
        }

        let mut tri_order: Vec<u32> = comb
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, CombNode::Tri { .. }))
            .map(|(i, _)| i as u32)
            .collect();
        tri_order.sort_unstable_by_key(|&i| comb[i as usize].target());

        let mut clock_nets: Vec<u32> = seq
            .iter()
            .map(|s| match *s {
                SeqNode::Dff { clock, .. }
                | SeqNode::Ddr { clock, .. }
                | SeqNode::RamWrite { clock, .. } => clock,
            })
            .collect();
        clock_nets.sort_unstable();
        clock_nets.dedup();

        // --- the value arena ---
        let mut vals: Vec<LogicVec> = design
            .nets
            .iter()
            .map(|n| match n.kind {
                NetKind::Reg => n.init.clone().unwrap_or_else(|| LogicVec::zeros(n.width)),
                NetKind::Input => LogicVec::zeros(n.width),
                NetKind::Wire => LogicVec::xs(n.width),
            })
            .collect();
        for w in &c.widths[num_nets..] {
            vals.push(LogicVec::xs(*w));
        }
        for (slot, v) in &c.consts {
            vals[*slot as usize] = v.clone();
        }
        let rams = design
            .items
            .iter()
            .map(|item| match item {
                Item::Ram { words, width, .. } => {
                    vec![LogicVec::zeros(*width); *words as usize]
                }
                _ => Vec::new(),
            })
            .collect();
        let input_stage = design
            .nets
            .iter()
            .map(|n| match n.kind {
                NetKind::Input => LogicVec::zeros(n.width),
                _ => LogicVec::from_bits(Vec::new()),
            })
            .collect();

        let seq_len = seq.len();
        let comb_len = comb.len();
        let mut sim = RtlSim {
            design: design.clone(),
            mode: SettleMode::default(),
            ops: c.ops,
            parts: c.parts,
            comb,
            tri,
            seq,
            rank,
            fanout_off,
            fanout,
            ram_readers,
            tri_order,
            clock_nets,
            fallback_full,
            vals,
            rams,
            input_stage,
            staged: vec![false; num_nets],
            stage_list: Vec::with_capacity(num_nets),
            prev_clk: vec![Logic::L0; num_nets],
            dirty: vec![false; comb_len],
            heap: BinaryHeap::with_capacity(comb_len + 1),
            fired: Vec::with_capacity(seq_len),
            ram_addr: vec![0; seq_len],
            full_assign: Vec::with_capacity(comb_len),
            steps: 0,
            evals: 0,
        };
        for n in 0..comb_len as u32 {
            sim.mark(n);
        }
        sim.settle();
        for i in 0..sim.clock_nets.len() {
            let cnet = sim.clock_nets[i] as usize;
            sim.prev_clk[cnet] = sim.vals[cnet].bit(0);
        }
        sim
    }

    /// The settle strategy in use.
    pub fn settle_mode(&self) -> SettleMode {
        self.mode
    }

    /// Selects the settle strategy. Both modes produce bit-identical net
    /// values for acyclic single-driver designs; switching is safe at any
    /// step boundary.
    pub fn set_settle_mode(&mut self, mode: SettleMode) {
        self.mode = mode;
    }

    /// Schedules an input change for the next [`step`](Self::step).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or the width differs.
    pub fn set(&mut self, net: NetId, value: LogicVec) {
        let decl = &self.design.nets[net.0 as usize];
        assert!(
            decl.kind == NetKind::Input,
            "net {} is not an input",
            decl.name
        );
        assert_eq!(decl.width, value.width(), "width mismatch on {}", decl.name);
        self.input_stage[net.0 as usize].assign_from(&value);
        if !self.staged[net.0 as usize] {
            self.staged[net.0 as usize] = true;
            self.stage_list.push(net.0);
        }
    }

    /// Schedules an input change given as an integer (allocation-free:
    /// the value is staged into a preallocated per-net buffer).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input.
    pub fn set_u64(&mut self, net: NetId, value: u64) {
        let decl = &self.design.nets[net.0 as usize];
        assert!(
            decl.kind == NetKind::Input,
            "net {} is not an input",
            decl.name
        );
        let stage = &mut self.input_stage[net.0 as usize];
        for i in 0..decl.width {
            stage.set_bit(i, Logic::from_bool(value >> i & 1 == 1));
        }
        if !self.staged[net.0 as usize] {
            self.staged[net.0 as usize] = true;
            self.stage_list.push(net.0);
        }
    }

    /// The current value of any net.
    pub fn get(&self, net: NetId) -> &LogicVec {
        &self.vals[net.0 as usize]
    }

    /// The current value of a net as an integer, if fully known.
    pub fn get_u64(&self, net: NetId) -> Option<u64> {
        self.get(net).to_u64()
    }

    /// A RAM word, for inspection (`item_index` is the position of the
    /// RAM in the netlist's item list).
    ///
    /// # Panics
    ///
    /// Panics if the item is not a RAM or the address is out of range.
    pub fn ram_word(&self, item_index: usize, addr: usize) -> &LogicVec {
        assert!(matches!(self.design.items[item_index], Item::Ram { .. }));
        &self.rams[item_index][addr]
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Expression/op evaluations performed so far (the simulator-load
    /// statistic used by the Table 3 harness). Activity-driven settling
    /// legitimately performs far fewer evaluations than the full
    /// fixpoint for the same stimulus.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Evaluates an arbitrary expression against the current values
    /// (used by assertion monitors observing internal nets). Monitor
    /// expressions attach through the same net-id arena the compiled
    /// schedule evaluates into.
    pub fn probe(&mut self, e: &Expr) -> LogicVec {
        eval_expr(&self.design, &self.vals, &mut self.evals, e)
    }

    /// Marks a comb node dirty and queues it by topological rank.
    fn mark(&mut self, node: u32) {
        if !self.dirty[node as usize] {
            self.dirty[node as usize] = true;
            self.heap.push(Reverse((self.rank[node as usize], node)));
        }
    }

    /// Marks every comb node reading `net`.
    fn mark_fanout(&mut self, net: u32) {
        let lo = self.fanout_off[net as usize] as usize;
        let hi = self.fanout_off[net as usize + 1] as usize;
        for i in lo..hi {
            let n = self.fanout[i];
            self.mark(n);
        }
    }

    /// Runs a compiled op range in place over the arena.
    fn run_ops(&mut self, range: OpsRange) {
        let RtlSim {
            ops,
            parts,
            vals,
            evals,
            ..
        } = self;
        for op in &ops[range.0 as usize..range.1 as usize] {
            *evals += 1;
            let dst = op.dst() as usize;
            let mut d = std::mem::replace(&mut vals[dst], LogicVec::from_bits(Vec::new()));
            {
                let db = d.bits_raw_mut();
                match *op {
                    Op::Copy { a, .. } => db.copy_from_slice(vals[a as usize].bits_raw()),
                    Op::Index { a, bit, .. } => db[0] = vals[a as usize].bit(bit),
                    Op::Slice { a, lo, .. } => {
                        let lo = lo as usize;
                        db.copy_from_slice(&vals[a as usize].bits_raw()[lo..lo + db.len()]);
                    }
                    Op::Not { a, .. } => {
                        for (o, s) in db.iter_mut().zip(vals[a as usize].bits_raw()) {
                            *o = s.not();
                        }
                    }
                    Op::And { a, b, .. } => {
                        let (va, vb) = (vals[a as usize].bits_raw(), vals[b as usize].bits_raw());
                        for (i, o) in db.iter_mut().enumerate() {
                            *o = va[i].and(vb[i]);
                        }
                    }
                    Op::Or { a, b, .. } => {
                        let (va, vb) = (vals[a as usize].bits_raw(), vals[b as usize].bits_raw());
                        for (i, o) in db.iter_mut().enumerate() {
                            *o = va[i].or(vb[i]);
                        }
                    }
                    Op::Xor { a, b, .. } => {
                        let (va, vb) = (vals[a as usize].bits_raw(), vals[b as usize].bits_raw());
                        for (i, o) in db.iter_mut().enumerate() {
                            *o = va[i].xor(vb[i]);
                        }
                    }
                    Op::Eq { a, b, .. } => {
                        let (va, vb) = (&vals[a as usize], &vals[b as usize]);
                        db[0] = if !va.is_known() || !vb.is_known() {
                            Logic::X
                        } else {
                            Logic::from_bool(va == vb)
                        };
                    }
                    Op::Mux { sel, a, b, .. } => match vals[sel as usize].bit(0) {
                        Logic::L1 => db.copy_from_slice(vals[a as usize].bits_raw()),
                        Logic::L0 => db.copy_from_slice(vals[b as usize].bits_raw()),
                        _ => db.fill(Logic::X),
                    },
                    Op::Concat {
                        parts: (p0, p1), ..
                    } => {
                        let mut j = 0;
                        for &p in &parts[p0 as usize..p1 as usize] {
                            for &bit in vals[p as usize].bits_raw() {
                                db[j] = bit;
                                j += 1;
                            }
                        }
                    }
                    Op::ReduceXor { a, .. } => db[0] = vals[a as usize].reduce_xor(),
                    Op::ReduceOr { a, .. } => db[0] = vals[a as usize].reduce_or(),
                }
            }
            vals[dst] = d;
        }
    }

    /// Evaluates one comb node; returns `(target net, result slot)`
    /// without committing.
    fn eval_node(&mut self, id: u32) -> (u32, u32) {
        let node = self.comb[id as usize];
        match node {
            CombNode::Assign { ops, src, target } => {
                self.run_ops(ops);
                (target, src)
            }
            CombNode::RamRead {
                ops,
                addr,
                ram,
                words,
                target,
                out,
            } => {
                self.run_ops(ops);
                let a = self.vals[addr as usize].to_u64();
                let mut o =
                    std::mem::replace(&mut self.vals[out as usize], LogicVec::from_bits(Vec::new()));
                match a {
                    Some(a) if (a as u32) < words => {
                        o.assign_from(&self.rams[ram as usize][a as usize])
                    }
                    _ => o.bits_raw_mut().fill(Logic::X),
                }
                self.vals[out as usize] = o;
                (target, out)
            }
            CombNode::Tri {
                target,
                acc,
                drivers,
            } => {
                for di in drivers.0..drivers.1 {
                    let dops = self.tri[di as usize].ops;
                    self.run_ops(dops);
                }
                let mut a =
                    std::mem::replace(&mut self.vals[acc as usize], LogicVec::from_bits(Vec::new()));
                {
                    let ab = a.bits_raw_mut();
                    ab.fill(Logic::Z);
                    for di in drivers.0..drivers.1 {
                        let TriDriver { en, value, .. } = self.tri[di as usize];
                        let en = self.vals[en as usize].bit(0);
                        let vb = self.vals[value as usize].bits_raw();
                        for (i, o) in ab.iter_mut().enumerate() {
                            let contribution = match en {
                                Logic::L1 => vb[i],
                                Logic::L0 => Logic::Z,
                                _ => Logic::X,
                            };
                            *o = o.resolve(contribution);
                        }
                    }
                }
                self.vals[acc as usize] = a;
                (target, acc)
            }
        }
    }

    /// Copies `result` into `target` if they differ; returns whether the
    /// target changed. Allocation-free: the copy reuses capacity.
    fn commit_pair(&mut self, target: u32, result: u32) -> bool {
        if self.vals[target as usize] == self.vals[result as usize] {
            return false;
        }
        let mut t =
            std::mem::replace(&mut self.vals[target as usize], LogicVec::from_bits(Vec::new()));
        t.assign_from(&self.vals[result as usize]);
        self.vals[target as usize] = t;
        true
    }

    /// Settles the combinational network (mode- and topology-dependent).
    fn settle(&mut self) {
        if self.heap.is_empty() {
            return; // nothing marked since the last settle
        }
        if self.mode == SettleMode::Full || self.fallback_full {
            self.settle_full();
        } else {
            self.settle_activity();
        }
    }

    /// Activity-driven settle: drain the dirty worklist in topological
    /// rank order; each node evaluates at most once, and an unchanged
    /// target stops propagation.
    fn settle_activity(&mut self) {
        while let Some(Reverse((_, n))) = self.heap.pop() {
            if !self.dirty[n as usize] {
                continue; // stale duplicate entry
            }
            self.dirty[n as usize] = false;
            let (target, result) = self.eval_node(n);
            if self.commit_pair(target, result) {
                self.mark_fanout(target);
            }
        }
    }

    /// Full Jacobi fixpoint replicating the interpreter's pass-batched
    /// semantics: every pass evaluates all nodes against pass-start net
    /// values, then commits the changed single-driver targets in item
    /// order, then the resolved tristate targets in net order.
    ///
    /// # Panics
    ///
    /// Panics if the network does not settle within 1000 passes
    /// (combinational loop).
    fn settle_full(&mut self) {
        for _pass in 0..1000 {
            let mut changed = false;
            let mut fa = std::mem::take(&mut self.full_assign);
            fa.clear();
            for id in 0..self.comb.len() as u32 {
                if matches!(self.comb[id as usize], CombNode::Tri { .. }) {
                    continue; // evaluated below, committed last
                }
                let (target, result) = self.eval_node(id);
                fa.push((target, result, false));
            }
            for ti in 0..self.tri_order.len() {
                let id = self.tri_order[ti];
                self.eval_node(id); // result stays in the group's acc slot
            }
            // compare every single-driver result against the pass-start
            // value, then apply the changed ones in item order
            for e in fa.iter_mut() {
                e.2 = self.vals[e.0 as usize] != self.vals[e.1 as usize];
                changed |= e.2;
            }
            for &(target, result, differs) in fa.iter() {
                if differs {
                    self.commit_pair(target, result);
                }
            }
            // tristate targets: compare against the post-assign values
            for ti in 0..self.tri_order.len() {
                let id = self.tri_order[ti];
                let (target, acc) = match self.comb[id as usize] {
                    CombNode::Tri { target, acc, .. } => (target, acc),
                    _ => unreachable!(),
                };
                changed |= self.commit_pair(target, acc);
            }
            fa.clear();
            self.full_assign = fa;
            if !changed {
                self.heap.clear();
                self.dirty.fill(false);
                return;
            }
        }
        panic!("combinational network did not settle within 1000 passes");
    }

    /// Applies staged inputs, settles, captures clock edges, commits
    /// and settles again.
    pub fn step(&mut self) {
        self.steps += 1;
        // 1. apply staged inputs (changed nets wake their fanout)
        for i in 0..self.stage_list.len() {
            let net = self.stage_list[i] as usize;
            self.staged[net] = false;
            if self.vals[net] != self.input_stage[net] {
                let mut t =
                    std::mem::replace(&mut self.vals[net], LogicVec::from_bits(Vec::new()));
                t.assign_from(&self.input_stage[net]);
                self.vals[net] = t;
                self.mark_fanout(net as u32);
            }
        }
        self.stage_list.clear();
        // 2. settle so D inputs are coherent with the new primary inputs
        //    (inputs have setup before the edge)
        self.settle();
        // 3. sample clocked elements on detected edges (all samples
        //    before any commit — nonblocking-assignment semantics)
        self.fired.clear();
        for s in 0..self.seq.len() {
            let node = self.seq[s];
            match node {
                SeqNode::Dff {
                    clock,
                    edge,
                    en,
                    d,
                    q,
                } => {
                    if self.edge_on(clock, edge) {
                        let enabled = match en {
                            Some((ops, slot)) => {
                                self.run_ops(ops);
                                self.vals[slot as usize].bit(0) == Logic::L1
                            }
                            None => true,
                        };
                        if enabled {
                            self.run_ops(d.0);
                            self.fired.push((s as u32, d.1));
                            let _ = q;
                        }
                    }
                }
                SeqNode::Ddr {
                    clock, rise, fall, ..
                } => {
                    if self.edge_on(clock, Edge::Pos) {
                        self.run_ops(rise.0);
                        self.fired.push((s as u32, rise.1));
                    } else if self.edge_on(clock, Edge::Neg) {
                        self.run_ops(fall.0);
                        self.fired.push((s as u32, fall.1));
                    }
                }
                SeqNode::RamWrite {
                    clock,
                    we,
                    waddr,
                    wdata,
                    wmask,
                    ram,
                    words,
                    width,
                    word,
                } => {
                    if !self.edge_on(clock, Edge::Pos) {
                        continue;
                    }
                    self.run_ops(we.0);
                    if self.vals[we.1 as usize].bit(0) != Logic::L1 {
                        continue;
                    }
                    self.run_ops(waddr.0);
                    let Some(addr) = self.vals[waddr.1 as usize].to_u64() else {
                        continue;
                    };
                    if (addr as u32) >= words {
                        continue;
                    }
                    self.run_ops(wdata.0);
                    if let Some((mops, _)) = wmask {
                        self.run_ops(mops);
                    }
                    // read-modify-write the addressed word into the
                    // node's dedicated slot
                    let mut w = std::mem::replace(
                        &mut self.vals[word as usize],
                        LogicVec::from_bits(Vec::new()),
                    );
                    w.assign_from(&self.rams[ram as usize][addr as usize]);
                    {
                        let wb = w.bits_raw_mut();
                        let data = self.vals[wdata.1 as usize].bits_raw();
                        match wmask {
                            Some((_, mslot)) => {
                                let mask = self.vals[mslot as usize].bits_raw();
                                for i in 0..width as usize {
                                    if mask[i] == Logic::L1 {
                                        wb[i] = data[i];
                                    }
                                }
                            }
                            None => wb.copy_from_slice(data),
                        }
                    }
                    self.vals[word as usize] = w;
                    self.ram_addr[s] = addr as u32;
                    self.fired.push((s as u32, word));
                }
            }
        }
        // 4. commit
        for i in 0..self.fired.len() {
            let (s, slot) = self.fired[i];
            match self.seq[s as usize] {
                SeqNode::Dff { q, .. } | SeqNode::Ddr { q, .. } => {
                    if self.commit_pair(q, slot) {
                        self.mark_fanout(q);
                    }
                }
                SeqNode::RamWrite { ram, .. } => {
                    let addr = self.ram_addr[s as usize] as usize;
                    let ram = ram as usize;
                    if self.rams[ram][addr] != self.vals[slot as usize] {
                        let mut w = std::mem::replace(
                            &mut self.rams[ram][addr],
                            LogicVec::from_bits(Vec::new()),
                        );
                        w.assign_from(&self.vals[slot as usize]);
                        self.rams[ram][addr] = w;
                        for ri in 0..self.ram_readers[ram].len() {
                            let reader = self.ram_readers[ram][ri];
                            self.mark(reader);
                        }
                    }
                }
            }
        }
        // 5. settle combinational logic on the post-edge state
        self.settle();
        // remember the clock levels for the next step's edge detection
        for i in 0..self.clock_nets.len() {
            let cnet = self.clock_nets[i] as usize;
            self.prev_clk[cnet] = self.vals[cnet].bit(0);
        }
    }

    fn edge_on(&self, clock: u32, edge: Edge) -> bool {
        let p = self.prev_clk[clock as usize];
        let c = self.vals[clock as usize].bit(0);
        match edge {
            Edge::Pos => p == Logic::L0 && c == Logic::L1,
            Edge::Neg => p == Logic::L1 && c == Logic::L0,
        }
    }
}
