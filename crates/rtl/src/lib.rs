//! # la1-rtl — a Verilog-like RTL netlist, simulator and emitter
//!
//! The lowest level of the reproduced paper's design flow (*On the Design
//! and Verification Methodology of the Look-Aside Interface*, DATE 2004)
//! is a synthesizable Verilog implementation simulated by a commercial
//! Verilog simulator and model-checked by RuleBase. This crate rebuilds
//! that layer:
//!
//! * [`Logic`] / [`LogicVec`] — IEEE-1364 four-state values
//!   (`0`, `1`, `X`, `Z`) with tristate resolution;
//! * [`Netlist`] — a structural design: wires, registers, continuous
//!   assignments over [`Expr`]s, positive/negative-edge and **DDR**
//!   flip-flops (the LA-1 data paths transfer on both edges of `K`),
//!   synchronous-write/asynchronous-read RAM blocks with per-bit write
//!   masks (byte write control), and tristate drivers (the paper connects
//!   multi-bank control signals "using tristate buffers");
//! * [`RtlSim`] — an interpreted event/cycle simulator: apply inputs,
//!   settle combinational logic, capture clocked elements on detected
//!   edges, settle again. Interpretation cost per cycle is the point of
//!   the paper's Table 3 (compiled SystemC vs. interpreted HDL);
//! * [`TransitionSystem`] — a bit-blasted next-state-function view of a
//!   two-valued netlist for the `la1-smc` symbolic model checker
//!   ([`Netlist::extract`]);
//! * [`Netlist::to_verilog`] — emits the design as synthesizable
//!   Verilog-2001 text, the flow's final artefact;
//! * [`VcdWriter`] — IEEE-1364 Value Change Dump output for waveform
//!   inspection.
//!
//! # Example
//!
//! ```
//! use la1_rtl::{Netlist, Expr, NetKind, RtlSim, LogicVec};
//!
//! let mut n = Netlist::new("toggler");
//! let clk = n.input("clk", 1);
//! let q = n.reg("q", 1);
//! let d = Expr::not(Expr::net(q));
//! n.dff_posedge(clk, d, q);
//! let _ = NetKind::Wire; // public kind enum
//!
//! let mut sim = RtlSim::new(&n);
//! sim.set(clk, LogicVec::from_u64(0, 1));
//! sim.step();
//! sim.set(clk, LogicVec::from_u64(1, 1)); // rising edge
//! sim.step();
//! assert_eq!(sim.get(q).to_u64(), Some(1));
//! ```

mod batched;
mod extract;
mod logic;
mod netlist;
mod packed;
mod schedule;
mod sim;
mod vcd;
mod verilog;

pub use batched::{BatchedRtlSim, BatchedRtlState, LaneProbe};
pub use extract::{BitExpr, BitId, TransitionSystem};
pub use logic::{Logic, LogicVec};
pub use netlist::{Edge, Expr, Item, NetId, NetKind, Netlist};
pub use packed::{PackedVec, LANES};
pub use sim::{RtlProbe, RtlSim, RtlState, SettleMode};
pub use vcd::VcdWriter;

#[cfg(test)]
mod tests;
