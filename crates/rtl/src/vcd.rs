//! Value Change Dump (IEEE 1364 §18) output — waveforms any HDL
//! engineer can open, the natural inspection artefact of an RTL
//! simulator.

use crate::logic::{Logic, LogicVec};
use crate::netlist::{NetId, Netlist};
use crate::sim::RtlSim;
use std::fmt::Write;

/// Records selected nets each step and renders an IEEE-1364 VCD file.
///
/// ```
/// use la1_rtl::{Netlist, Expr, RtlSim, VcdWriter};
/// let mut n = Netlist::new("t");
/// let clk = n.input("clk", 1);
/// let q = n.reg("q", 1);
/// n.dff_posedge(clk, Expr::not(Expr::net(q)), q);
/// let mut sim = RtlSim::new(&n);
/// let mut vcd = VcdWriter::new(&n, &[clk, q]);
/// for i in 0..4 {
///     sim.set_u64(clk, i % 2);
///     sim.step();
///     vcd.sample(&sim);
/// }
/// let text = vcd.render();
/// assert!(text.contains("$var wire 1"));
/// assert!(text.contains("$enddefinitions"));
/// ```
#[derive(Debug, Clone)]
pub struct VcdWriter {
    module: String,
    nets: Vec<(NetId, String, u32, String)>, // (net, name, width, id code)
    /// (time, changes) — only changed values are recorded
    changes: Vec<(u64, Vec<(usize, LogicVec)>)>,
    last: Vec<Option<LogicVec>>,
    time: u64,
}

impl VcdWriter {
    /// Creates a writer watching `nets` of `design`.
    pub fn new(design: &Netlist, nets: &[NetId]) -> Self {
        let entries = nets
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                (
                    n,
                    design.net_name(n).to_string(),
                    design.width(n),
                    idcode(i),
                )
            })
            .collect::<Vec<_>>();
        VcdWriter {
            module: design.name().to_string(),
            last: vec![None; entries.len()],
            nets: entries,
            changes: Vec::new(),
            time: 0,
        }
    }

    /// Samples the watched nets at the next time step.
    pub fn sample(&mut self, sim: &RtlSim) {
        let mut delta = Vec::new();
        for (i, (net, ..)) in self.nets.iter().enumerate() {
            let v = sim.get(*net).clone();
            if self.last[i].as_ref() != Some(&v) {
                self.last[i] = Some(v.clone());
                delta.push((i, v));
            }
        }
        if !delta.is_empty() {
            self.changes.push((self.time, delta));
        }
        self.time += 1;
    }

    /// Renders the collected samples as VCD text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date la1-rtl $end");
        let _ = writeln!(out, "$version la1-rtl vcd writer $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for (_, name, width, code) in &self.nets {
            let clean = name.replace(['[', ']'], "_");
            let _ = writeln!(out, "$var wire {width} {code} {clean} $end");
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        for (t, delta) in &self.changes {
            let _ = writeln!(out, "#{t}");
            for (i, v) in delta {
                let (_, _, width, code) = &self.nets[*i];
                if *width == 1 {
                    let _ = writeln!(out, "{}{code}", logic_char(v.bit(0)));
                } else {
                    let bits: String = (0..*width)
                        .rev()
                        .map(|b| logic_char(v.bit(b)))
                        .collect();
                    let _ = writeln!(out, "b{bits} {code}");
                }
            }
        }
        out
    }

    /// Number of change records collected so far.
    pub fn num_changes(&self) -> usize {
        self.changes.len()
    }
}

fn logic_char(l: Logic) -> char {
    match l {
        Logic::L0 => '0',
        Logic::L1 => '1',
        Logic::X => 'x',
        Logic::Z => 'z',
    }
}

/// VCD identifier codes: printable ASCII 33..=126, multi-char when
/// needed.
fn idcode(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

#[cfg(test)]
mod vcd_tests {
    use super::*;
    use crate::netlist::Expr;

    #[test]
    fn vcd_structure_and_changes() {
        let mut n = Netlist::new("dut");
        let clk = n.input("clk", 1);
        let d = n.input("d", 4);
        let q = n.reg("q", 4);
        n.dff_posedge(clk, Expr::net(d), q);
        let mut sim = RtlSim::new(&n);
        let mut vcd = VcdWriter::new(&n, &[clk, d, q]);
        sim.set_u64(d, 0b1010);
        for i in 0..6u64 {
            sim.set_u64(clk, i % 2);
            sim.step();
            vcd.sample(&sim);
        }
        let text = vcd.render();
        assert!(text.contains("$scope module dut $end"));
        assert!(text.contains("$var wire 4"));
        assert!(text.contains("b1010 "));
        assert!(text.starts_with("$date"));
        assert!(vcd.num_changes() >= 3, "clock toggles recorded");
    }

    #[test]
    fn idcodes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = idcode(i);
            assert!(c.bytes().all(|b| (33..=126).contains(&b)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn unchanged_values_are_not_dumped() {
        let mut n = Netlist::new("d2");
        let a = n.input("a", 1);
        let mut sim = RtlSim::new(&n);
        let mut vcd = VcdWriter::new(&n, &[a]);
        for _ in 0..5 {
            sim.step();
            vcd.sample(&sim);
        }
        // initial record only
        assert_eq!(vcd.num_changes(), 1);
    }
}
