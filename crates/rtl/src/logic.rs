//! Four-state logic values and vectors.

use std::fmt;

/// A single four-state logic value (IEEE 1364).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic low.
    #[default]
    L0,
    /// Logic high.
    L1,
    /// Unknown.
    X,
    /// High impedance (undriven).
    Z,
}

impl Logic {
    /// Converts a `bool`.
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::L1
        } else {
            Logic::L0
        }
    }

    /// The definite Boolean value, if any (`X`/`Z` yield `None`).
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::L0 => Some(false),
            Logic::L1 => Some(true),
            _ => None,
        }
    }

    /// True for `0` or `1`.
    pub fn is_known(self) -> bool {
        matches!(self, Logic::L0 | Logic::L1)
    }

    /// Logical negation; `X`/`Z` stay unknown.
    #[allow(clippy::should_implement_trait)] // deliberate: `Logic` is not Boolean
    pub fn not(self) -> Logic {
        match self {
            Logic::L0 => Logic::L1,
            Logic::L1 => Logic::L0,
            _ => Logic::X,
        }
    }

    /// Logical and; `0` is dominant.
    pub fn and(self, other: Logic) -> Logic {
        match (self.to_bool(), other.to_bool()) {
            (Some(false), _) | (_, Some(false)) => Logic::L0,
            (Some(true), Some(true)) => Logic::L1,
            _ => Logic::X,
        }
    }

    /// Logical or; `1` is dominant.
    pub fn or(self, other: Logic) -> Logic {
        match (self.to_bool(), other.to_bool()) {
            (Some(true), _) | (_, Some(true)) => Logic::L1,
            (Some(false), Some(false)) => Logic::L0,
            _ => Logic::X,
        }
    }

    /// Exclusive or; unknown if either side is unknown.
    pub fn xor(self, other: Logic) -> Logic {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }

    /// The character [`fmt::Display`] renders for this value.
    pub fn to_char(self) -> char {
        match self {
            Logic::L0 => '0',
            Logic::L1 => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }

    /// Inverse of [`Logic::to_char`]; `None` for anything else.
    pub fn from_char(c: char) -> Option<Logic> {
        match c {
            '0' => Some(Logic::L0),
            '1' => Some(Logic::L1),
            'x' => Some(Logic::X),
            'z' => Some(Logic::Z),
            _ => None,
        }
    }

    /// Wired resolution of two drivers: `Z` yields to the other driver,
    /// agreement keeps the value, conflict is `X`.
    pub fn resolve(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Z, o) => o,
            (s, Logic::Z) => s,
            (a, b) if a == b => a,
            _ => Logic::X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::L0 => '0',
            Logic::L1 => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        };
        write!(f, "{c}")
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Logic {
        Logic::from_bool(b)
    }
}

/// A fixed-width vector of four-state values; bit 0 is the LSB.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    bits: Vec<Logic>,
}

impl LogicVec {
    /// All-zero vector of the given width.
    pub fn zeros(width: u32) -> Self {
        LogicVec {
            bits: vec![Logic::L0; width as usize],
        }
    }

    /// All-`X` vector of the given width.
    pub fn xs(width: u32) -> Self {
        LogicVec {
            bits: vec![Logic::X; width as usize],
        }
    }

    /// All-`Z` vector of the given width.
    pub fn zs(width: u32) -> Self {
        LogicVec {
            bits: vec![Logic::Z; width as usize],
        }
    }

    /// Builds a vector from the low `width` bits of `value`.
    pub fn from_u64(value: u64, width: u32) -> Self {
        LogicVec {
            bits: (0..width)
                .map(|i| Logic::from_bool(value >> i & 1 == 1))
                .collect(),
        }
    }

    /// Builds a vector from individual bits (LSB first).
    pub fn from_bits(bits: Vec<Logic>) -> Self {
        LogicVec { bits }
    }

    /// Parses the MSB-first four-state string [`fmt::Display`] renders
    /// (`"01xz"` characters); `None` on any other character. The
    /// checkpoint layer round-trips arena values through this form.
    pub fn parse_fourstate(s: &str) -> Option<LogicVec> {
        let mut bits = s
            .chars()
            .map(Logic::from_char)
            .collect::<Option<Vec<_>>>()?;
        bits.reverse(); // Display renders MSB first; storage is LSB first
        Some(LogicVec { bits })
    }

    /// The numeric value, if every bit is known and width ≤ 64.
    pub fn to_u64(&self) -> Option<u64> {
        if self.bits.len() > 64 {
            return None;
        }
        let mut v = 0u64;
        for (i, b) in self.bits.iter().enumerate() {
            match b.to_bool() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.bits.len() as u32
    }

    /// The bit at `index` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bit(&self, index: u32) -> Logic {
        self.bits[index as usize]
    }

    /// Replaces the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_bit(&mut self, index: u32, value: Logic) {
        self.bits[index as usize] = value;
    }

    /// The bits `lo..=hi` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, hi: u32, lo: u32) -> LogicVec {
        assert!(hi >= lo && (hi as usize) < self.bits.len());
        LogicVec {
            bits: self.bits[lo as usize..=hi as usize].to_vec(),
        }
    }

    /// Iterator over bits, LSB first.
    pub fn iter(&self) -> impl Iterator<Item = Logic> + '_ {
        self.bits.iter().copied()
    }

    /// True if every bit is `0` or `1`.
    pub fn is_known(&self) -> bool {
        self.bits.iter().all(|b| b.is_known())
    }

    /// Bitwise reduction XOR (the parity of the vector).
    pub fn reduce_xor(&self) -> Logic {
        self.bits
            .iter()
            .copied()
            .fold(Logic::L0, |acc, b| acc.xor(b))
    }

    /// Bitwise reduction OR.
    pub fn reduce_or(&self) -> Logic {
        self.bits.iter().copied().fold(Logic::L0, |acc, b| acc.or(b))
    }

    /// The bits as a slice (LSB first) — for the compiled simulator's
    /// in-place evaluation.
    pub(crate) fn bits_raw(&self) -> &[Logic] {
        &self.bits
    }

    /// The bits as a mutable slice (LSB first).
    pub(crate) fn bits_raw_mut(&mut self) -> &mut [Logic] {
        &mut self.bits
    }

    /// Overwrites `self` with `other`'s bits, reusing the existing
    /// allocation when the capacity suffices (the compiled simulator's
    /// allocation-free copy).
    pub(crate) fn assign_from(&mut self, other: &LogicVec) {
        self.bits.clear();
        self.bits.extend_from_slice(&other.bits);
    }

    /// Per-bit wired resolution of two equal-width vectors.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn resolve(&self, other: &LogicVec) -> LogicVec {
        assert_eq!(self.width(), other.width(), "resolution width mismatch");
        LogicVec {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| a.resolve(b))
                .collect(),
        }
    }
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.bits.iter().rev() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}
