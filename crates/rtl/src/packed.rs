//! Bit-parallel packed four-state vectors (PPSFP lanes).
//!
//! A [`PackedVec`] holds **64 independent four-state vectors** of the
//! same width — one simulation *lane* per machine-word bit, the classic
//! parallel-pattern trick from the fault-simulation literature. Each bit
//! position of the vector is stored as a pair of `u64` planes:
//!
//! | value  | `v` bit | `x` bit |
//! |--------|---------|---------|
//! | `0`    | 0       | 0       |
//! | `1`    | 1       | 0       |
//! | `X`    | 0       | 1       |
//! | `Z`    | 1       | 1       |
//!
//! so lane `l` of bit `i` is `(v[i] >> l & 1, x[i] >> l & 1)`. All
//! four-state operators of [`Logic`] then become a handful of word-wide
//! boolean ops evaluating 64 lanes at once; the scalar algebra is the
//! 1-lane special case, and [`BatchedRtlSim`](crate::BatchedRtlSim)
//! checks per-lane agreement against it bit for bit.
//!
//! Every operator here is the word-parallel transcription of the
//! corresponding [`Logic`]/[`LogicVec`] method (`and` with dominant `0`,
//! `or` with dominant `1`, `xor` unknown-propagating, tristate
//! `resolve`, reduction operators, whole-vector `Eq`); the proptests in
//! `tests.rs` pit each one against the scalar fold lane by lane.

use crate::logic::{Logic, LogicVec};

/// Number of independent patterns evaluated per pass (one per `u64` bit).
pub const LANES: usize = 64;

/// 64 four-state vectors of one width, stored as two bit-planes per bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedVec {
    width: u32,
    /// value plane, one word per bit position (lane = word bit)
    v: Vec<u64>,
    /// unknown/impedance plane, one word per bit position
    x: Vec<u64>,
}

#[inline]
fn encode(l: Logic) -> (bool, bool) {
    match l {
        Logic::L0 => (false, false),
        Logic::L1 => (true, false),
        Logic::X => (false, true),
        Logic::Z => (true, true),
    }
}

#[inline]
fn decode(v: bool, x: bool) -> Logic {
    match (v, x) {
        (false, false) => Logic::L0,
        (true, false) => Logic::L1,
        (false, true) => Logic::X,
        (true, true) => Logic::Z,
    }
}

impl PackedVec {
    /// All lanes all-`0`.
    pub fn zeros(width: u32) -> Self {
        PackedVec {
            width,
            v: vec![0; width as usize],
            x: vec![0; width as usize],
        }
    }

    /// All lanes all-`X`.
    pub fn xs(width: u32) -> Self {
        PackedVec {
            width,
            v: vec![0; width as usize],
            x: vec![!0; width as usize],
        }
    }

    /// All lanes all-`Z`.
    pub fn zs(width: u32) -> Self {
        PackedVec {
            width,
            v: vec![!0; width as usize],
            x: vec![!0; width as usize],
        }
    }

    /// Every lane set to the same scalar vector.
    ///
    /// # Panics
    ///
    /// Panics if widths cannot match (never: width is taken from `value`).
    pub fn splat(value: &LogicVec) -> Self {
        let mut p = PackedVec::zeros(value.width());
        for (i, b) in value.iter().enumerate() {
            let (v, x) = encode(b);
            p.v[i] = if v { !0 } else { 0 };
            p.x[i] = if x { !0 } else { 0 };
        }
        p
    }

    /// Width in bits of each lane's vector.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The two raw bit-planes, one word per bit position (lane = word
    /// bit): `(value plane, unknown/impedance plane)`. The checkpoint
    /// layer serializes packed state through this view; everything else
    /// should use the typed kernels.
    pub fn planes(&self) -> (&[u64], &[u64]) {
        (&self.v, &self.x)
    }

    /// Rebuilds a packed vector from raw planes ([`PackedVec::planes`]
    /// inverse). `None` unless both planes have exactly `width` words.
    pub fn from_planes(width: u32, v: Vec<u64>, x: Vec<u64>) -> Option<PackedVec> {
        if v.len() != width as usize || x.len() != width as usize {
            return None;
        }
        Some(PackedVec { width, v, x })
    }

    /// The four-state value of one bit in one lane.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range or `lane >= LANES`.
    pub fn lane_bit(&self, lane: usize, bit: u32) -> Logic {
        assert!(lane < LANES);
        let v = self.v[bit as usize] >> lane & 1 == 1;
        let x = self.x[bit as usize] >> lane & 1 == 1;
        decode(v, x)
    }

    /// Extracts one lane as a scalar vector (allocates).
    pub fn get_lane(&self, lane: usize) -> LogicVec {
        LogicVec::from_bits((0..self.width).map(|i| self.lane_bit(lane, i)).collect())
    }

    /// Overwrites one lane from a scalar vector.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or `lane >= LANES`.
    pub fn set_lane(&mut self, lane: usize, value: &LogicVec) {
        assert!(lane < LANES);
        assert_eq!(self.width, value.width(), "lane width mismatch");
        let m = 1u64 << lane;
        for (i, b) in value.iter().enumerate() {
            let (v, x) = encode(b);
            self.v[i] = self.v[i] & !m | if v { m } else { 0 };
            self.x[i] = self.x[i] & !m | if x { m } else { 0 };
        }
    }

    /// Overwrites one lane from an integer (allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    pub fn set_lane_u64(&mut self, lane: usize, value: u64) {
        assert!(lane < LANES);
        let m = 1u64 << lane;
        for i in 0..self.width as usize {
            let bit = if i < 64 { value >> i & 1 == 1 } else { false };
            self.v[i] = self.v[i] & !m | if bit { m } else { 0 };
            self.x[i] &= !m;
        }
    }

    /// Sets one lane to all-`X` (X-injection).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    pub fn set_lane_xs(&mut self, lane: usize) {
        assert!(lane < LANES);
        let m = 1u64 << lane;
        for i in 0..self.width as usize {
            self.v[i] &= !m;
            self.x[i] |= m;
        }
    }

    /// The lane's numeric value, if every bit is known and width ≤ 64.
    pub fn lane_to_u64(&self, lane: usize) -> Option<u64> {
        if self.width > 64 {
            return None;
        }
        let m = 1u64 << lane;
        let mut out = 0u64;
        for i in 0..self.width as usize {
            if self.x[i] & m != 0 {
                return None;
            }
            if self.v[i] & m != 0 {
                out |= 1 << i;
            }
        }
        Some(out)
    }

    /// Lanes (as a bitmask) where `bit` is exactly `1`.
    pub fn lanes_bit_is_one(&self, bit: u32) -> u64 {
        self.v[bit as usize] & !self.x[bit as usize]
    }

    /// Lanes where `bit` is exactly `0`.
    pub fn lanes_bit_is_zero(&self, bit: u32) -> u64 {
        !self.v[bit as usize] & !self.x[bit as usize]
    }

    /// Lanes where `bit` is `X` or `Z`.
    pub fn lanes_bit_unknown(&self, bit: u32) -> u64 {
        self.x[bit as usize]
    }

    /// Lanes where **every** bit is known (`0`/`1`).
    pub fn lanes_known(&self) -> u64 {
        let mut m = !0u64;
        for x in &self.x {
            m &= !x;
        }
        m
    }

    /// Lanes whose vector is fully known **and** equals `value`.
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 64.
    pub fn lanes_eq_u64(&self, value: u64) -> u64 {
        assert!(self.width <= 64, "lanes_eq_u64 needs width ≤ 64");
        let mut m = !0u64;
        for i in 0..self.width as usize {
            let want_one = value >> i & 1 == 1;
            m &= !self.x[i] & if want_one { self.v[i] } else { !self.v[i] };
        }
        m
    }

    /// True when every lane carries the same value at `bit` — the
    /// lane-uniformity invariant required of clock nets.
    pub fn bit_uniform(&self, bit: u32) -> bool {
        let (v, x) = (self.v[bit as usize], self.x[bit as usize]);
        (v == 0 || v == !0) && (x == 0 || x == !0)
    }

    /// Overwrites `self` with `other` (equal widths, allocation-free).
    pub(crate) fn assign_from(&mut self, other: &PackedVec) {
        debug_assert_eq!(self.width, other.width);
        self.v.copy_from_slice(&other.v);
        self.x.copy_from_slice(&other.x);
    }

    /// Sets every bit of every lane to `Z`.
    pub fn fill_z(&mut self) {
        self.v.fill(!0);
        self.x.fill(!0);
    }

    /// Sets every bit of every lane to `X`.
    pub fn fill_x(&mut self) {
        self.v.fill(0);
        self.x.fill(!0);
    }

    // --- compiled-op kernels: `self` is the dedicated destination ---

    /// `self = a`.
    pub fn copy_from(&mut self, a: &PackedVec) {
        self.assign_from(a);
    }

    /// `self[0] = a[bit]`.
    pub fn index_from(&mut self, a: &PackedVec, bit: u32) {
        self.v[0] = a.v[bit as usize];
        self.x[0] = a.x[bit as usize];
    }

    /// `self = a[lo +: width(self)]`.
    pub fn slice_from(&mut self, a: &PackedVec, lo: u32) {
        let lo = lo as usize;
        let w = self.width as usize;
        self.v.copy_from_slice(&a.v[lo..lo + w]);
        self.x.copy_from_slice(&a.x[lo..lo + w]);
    }

    /// Places `a` into `self` starting at bit `lo` (concat parts).
    pub fn place_from(&mut self, lo: u32, a: &PackedVec) {
        let lo = lo as usize;
        let w = a.width as usize;
        self.v[lo..lo + w].copy_from_slice(&a.v);
        self.x[lo..lo + w].copy_from_slice(&a.x);
    }

    /// `self = ~a` per lane (`X`/`Z` stay unknown, like [`Logic::not`]).
    pub fn not_from(&mut self, a: &PackedVec) {
        for i in 0..self.width as usize {
            self.v[i] = !a.v[i] & !a.x[i];
            self.x[i] = a.x[i];
        }
    }

    /// `self = a & b` per lane (`0` dominant, like [`Logic::and`]).
    pub fn and_from(&mut self, a: &PackedVec, b: &PackedVec) {
        for i in 0..self.width as usize {
            let zero = (!a.v[i] & !a.x[i]) | (!b.v[i] & !b.x[i]);
            let one = (a.v[i] & !a.x[i]) & (b.v[i] & !b.x[i]);
            self.v[i] = one;
            self.x[i] = !(zero | one);
        }
    }

    /// `self = a | b` per lane (`1` dominant, like [`Logic::or`]).
    pub fn or_from(&mut self, a: &PackedVec, b: &PackedVec) {
        for i in 0..self.width as usize {
            let one = (a.v[i] & !a.x[i]) | (b.v[i] & !b.x[i]);
            let zero = (!a.v[i] & !a.x[i]) & (!b.v[i] & !b.x[i]);
            self.v[i] = one;
            self.x[i] = !(one | zero);
        }
    }

    /// `self = a ^ b` per lane (unknown if either side is unknown).
    pub fn xor_from(&mut self, a: &PackedVec, b: &PackedVec) {
        for i in 0..self.width as usize {
            let known = !a.x[i] & !b.x[i];
            self.v[i] = (a.v[i] ^ b.v[i]) & known;
            self.x[i] = !known;
        }
    }

    /// `self[0] = (a == b)` per lane — `X` where either side has any
    /// unknown bit, matching the scalar `Op::Eq`.
    pub fn eq_from(&mut self, a: &PackedVec, b: &PackedVec) {
        let mut any_unknown = 0u64;
        let mut neq = 0u64;
        for i in 0..a.width as usize {
            any_unknown |= a.x[i] | b.x[i];
            neq |= a.v[i] ^ b.v[i];
        }
        self.v[0] = !any_unknown & !neq;
        self.x[0] = any_unknown;
    }

    /// `self = sel ? a : b` per lane — all-`X` in lanes whose select is
    /// unknown, matching the scalar `Op::Mux`.
    pub fn mux_from(&mut self, sel: &PackedVec, a: &PackedVec, b: &PackedVec) {
        let s1 = sel.v[0] & !sel.x[0];
        let s0 = !sel.v[0] & !sel.x[0];
        let sx = sel.x[0];
        for i in 0..self.width as usize {
            self.v[i] = (s1 & a.v[i]) | (s0 & b.v[i]);
            self.x[i] = (s1 & a.x[i]) | (s0 & b.x[i]) | sx;
        }
    }

    /// `self[0] = ^a` per lane (`X` if any bit unknown).
    pub fn reduce_xor_from(&mut self, a: &PackedVec) {
        let mut any_unknown = 0u64;
        let mut parity = 0u64;
        for i in 0..a.width as usize {
            any_unknown |= a.x[i];
            parity ^= a.v[i];
        }
        self.v[0] = parity & !any_unknown;
        self.x[0] = any_unknown;
    }

    /// `self[0] = |a` per lane (`1` dominant over unknowns).
    pub fn reduce_or_from(&mut self, a: &PackedVec) {
        let mut one = 0u64;
        let mut zero = !0u64;
        for i in 0..a.width as usize {
            one |= a.v[i] & !a.x[i];
            zero &= !a.v[i] & !a.x[i];
        }
        self.v[0] = one;
        self.x[0] = !(one | zero);
    }

    /// Folds one tristate driver into `self` (the accumulator): the
    /// driver contributes `val` in lanes where `en` is `1`, `Z` where
    /// `en` is `0`, `X` otherwise, and the contribution is combined with
    /// [`Logic::resolve`] semantics per lane.
    pub fn tri_accumulate(&mut self, en: &PackedVec, val: &PackedVec) {
        let e1 = en.v[0] & !en.x[0];
        let e0 = !en.v[0] & !en.x[0];
        let ex = en.x[0];
        for i in 0..self.width as usize {
            // contribution encoding: 1-lanes pass val, 0-lanes are Z(1,1),
            // unknown-select lanes are X(0,1)
            let cv = (e1 & val.v[i]) | e0;
            let cx = (e1 & val.x[i]) | e0 | ex;
            let (av, ax) = (self.v[i], self.x[i]);
            let za = av & ax; // accumulator is Z
            let zc = cv & cx; // contribution is Z
            let same = !(av ^ cv) & !(ax ^ cx);
            self.v[i] = (za & cv) | (!za & zc & av) | (!za & !zc & same & av);
            self.x[i] = (za & cx) | (!za & zc & ax) | (!za & !zc & (same & ax | !same));
        }
    }

    /// Per-lane wired resolution of two equal-width packed vectors,
    /// written into `self` (may alias neither operand).
    pub fn resolve_from(&mut self, a: &PackedVec, b: &PackedVec) {
        for i in 0..self.width as usize {
            let za = a.v[i] & a.x[i];
            let zb = b.v[i] & b.x[i];
            let same = !(a.v[i] ^ b.v[i]) & !(a.x[i] ^ b.x[i]);
            self.v[i] = (za & b.v[i]) | (!za & zb & a.v[i]) | (!za & !zb & same & a.v[i]);
            self.x[i] = (za & b.x[i]) | (!za & zb & a.x[i]) | (!za & !zb & (same & a.x[i] | !same));
        }
    }

    /// Lane-masked overwrite: lanes in `mask` take `src`'s bits, other
    /// lanes keep `self`'s (the enabled-DFF / RAM-write commit kernel).
    pub fn merge_masked(&mut self, src: &PackedVec, mask: u64) {
        debug_assert_eq!(self.width, src.width);
        for i in 0..self.width as usize {
            self.v[i] = self.v[i] & !mask | src.v[i] & mask;
            self.x[i] = self.x[i] & !mask | src.x[i] & mask;
        }
    }

    /// Lane-masked overwrite with change detection (the enabled-DFF
    /// commit: lanes outside `mask` keep their old `q`).
    pub fn merge_masked_changed(&mut self, src: &PackedVec, mask: u64) -> bool {
        debug_assert_eq!(self.width, src.width);
        let mut changed = false;
        for i in 0..self.width as usize {
            let nv = self.v[i] & !mask | src.v[i] & mask;
            let nx = self.x[i] & !mask | src.x[i] & mask;
            changed |= nv != self.v[i] || nx != self.x[i];
            self.v[i] = nv;
            self.x[i] = nx;
        }
        changed
    }

    /// The batched RAM-write commit: bit `i` of the lanes in
    /// `base_mask` (and, when a write mask is present, whose mask bit is
    /// exactly `1` in that lane) takes `src`'s bit; everything else
    /// keeps the stored word. Returns whether any lane's bit changed.
    pub fn ram_write_masked(
        &mut self,
        src: &PackedVec,
        base_mask: u64,
        wmask: Option<&PackedVec>,
    ) -> bool {
        debug_assert_eq!(self.width, src.width);
        let mut changed = false;
        for i in 0..self.width as usize {
            let m = base_mask & wmask.map_or(!0, |w| w.v[i] & !w.x[i]);
            let nv = self.v[i] & !m | src.v[i] & m;
            let nx = self.x[i] & !m | src.x[i] & m;
            changed |= nv != self.v[i] || nx != self.x[i];
            self.v[i] = nv;
            self.x[i] = nx;
        }
        changed
    }

    /// Sets every lane to the same scalar vector (allocation-free
    /// [`PackedVec::splat`] into an existing buffer).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn set_all_lanes(&mut self, value: &LogicVec) {
        assert_eq!(self.width, value.width(), "width mismatch");
        for (i, b) in value.iter().enumerate() {
            let (v, x) = encode(b);
            self.v[i] = if v { !0 } else { 0 };
            self.x[i] = if x { !0 } else { 0 };
        }
    }

    /// Sets every lane to the same integer value (allocation-free).
    pub fn set_all_lanes_u64(&mut self, value: u64) {
        for i in 0..self.width as usize {
            let bit = if i < 64 { value >> i & 1 == 1 } else { false };
            self.v[i] = if bit { !0 } else { 0 };
            self.x[i] = 0;
        }
    }

    /// Overwrites **all** lanes from per-lane integers with a single
    /// bit-matrix transpose — equivalent to 64 [`Self::set_lane_u64`]
    /// calls but O(64 log 64) instead of O(64 × width) plane updates.
    /// Every bit becomes known.
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 64.
    pub fn set_lanes_u64(&mut self, vals: &[u64; LANES]) {
        assert!(self.width <= 64, "set_lanes_u64 needs width ≤ 64");
        let mut t = *vals;
        transpose64(&mut t);
        let w = self.width as usize;
        self.v.copy_from_slice(&t[..w]);
        self.x.fill(0);
    }

    /// Reads **all** lanes as integers with a single bit-matrix
    /// transpose. `out[lane]` receives the lane's value-plane bits; the
    /// returned mask has a bit set for each lane whose vector is fully
    /// known — exactly the lanes where [`Self::lane_to_u64`] returns
    /// `Some(out[lane])`. Unknown lanes' `out` words carry the raw
    /// value-plane bits and must be qualified by the mask.
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 64.
    pub fn lanes_u64(&self, out: &mut [u64; LANES]) -> u64 {
        assert!(self.width <= 64, "lanes_u64 needs width ≤ 64");
        let w = self.width as usize;
        out[..w].copy_from_slice(&self.v);
        out[w..].fill(0);
        transpose64(out);
        self.lanes_known()
    }
}

/// In-place 64×64 bit-matrix transpose (recursive delta-swap, Hacker's
/// Delight §7-3 adapted to LSB-first bit order): afterwards, bit `j` of
/// `a[i]` is what bit `i` of `a[j]` was. Maps a lane-major word array
/// to the bit-plane (bit-major) layout and back.
pub fn transpose64(a: &mut [u64; LANES]) {
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < LANES {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}
