//! # la1-cover — functional coverage and coverage-guided closure
//!
//! The reproduced paper's flow (UML → ASM → SystemC → RTL) judges
//! verification quality entirely through assertion monitors and model
//! checking: monitors catch violations, but nothing measures *how much
//! of the protocol the stimulus ever exercised*. This crate adds that
//! missing half of the ABV methodology:
//!
//! * [`CoverageModel`] — the functional coverage model of the LA-1
//!   protocol: per-bank op-kind bins, bank×op cross bins, sequence bins
//!   (back-to-back traffic, read-after-write on the same address),
//!   address corner bins (word 0, word max, bank-boundary crossings),
//!   LA-1B burst bins, and *monitor-activation* bins — each PSL/OVL
//!   property observed both in its antecedent-triggered (armed) state
//!   and holding under stimulus (held);
//! * [`CoverageCollector`] — an observation-only
//!   [`CycleObserver`](la1_core::cycle_model::CycleObserver): pin
//!   samples in, bin hits out. It attaches to *any*
//!   [`CycleModel`](la1_core::cycle_model::CycleModel) through the
//!   generic `run_abv_observed` / `co_execute_observed` loops, so the
//!   same coverage model scores ASM, SystemC, RTL and RTL+OVL runs —
//!   the ILA-style level-agnostic verification collateral;
//! * [`GuidedMix`] — a seeded, fully deterministic coverage-guided
//!   constrained-random generator: each epoch it inspects the set of
//!   unhit bins and emits directed preambles for them (sequence
//!   preambles, address-corner steering) interleaved with legal random
//!   traffic;
//! * [`run_closure`] — the closure loop: guided or pure-random stimulus
//!   run to 100 % bin coverage (or a cycle budget), reporting
//!   cycles-to-closure. A pure function of `(seed, config)` — the same
//!   inputs give byte-identical [`ClosureReport::to_json`] output;
//! * [`run_closure_rtl`] / [`run_closure_rtl_batched`] — multi-stream
//!   closure on the interpreted RTL: up to 64 independent seeded
//!   streams merged into one bin set, run one lane per stream through
//!   the bit-parallel [`LaRtlBatchDriver`](la1_core::rtl_model::LaRtlBatchDriver)
//!   (PPSFP) or sequentially through scalar drivers — the two produce
//!   byte-identical [`MultiClosureReport::to_json`] output.
//!
//! Monitors catch violations; coverage proves the monitors were ever
//! provoked. The `closure` binary in `la1-bench` regenerates the
//! guided-vs-random closure table of EXPERIMENTS.md.

pub mod closure;
pub mod collect;
pub mod guided;
pub mod model;
pub mod multi;
pub mod staged;

pub use closure::{run_closure, ClosureConfig, ClosureReport, GeneratorSnap};
pub use collect::{BankSampleSnap, CollectorSnap, CoverageCollector};
pub use guided::{GuidedMix, GuidedMixSnap};
pub use model::{BinKind, BinStat, BinStats, CoverBin, CoverageModel};
pub use multi::{
    run_closure_rtl, run_closure_rtl_batched, run_closure_rtl_batched_from, run_closure_rtl_from,
    ClosurePreamble, MultiClosureReport,
};
pub use staged::{
    run_staged, staged_fingerprint, StageCheckpoint, StagedConfig, StagedReport, StreamOutcome,
    STAGE_VERSION,
};

#[cfg(test)]
mod tests;
