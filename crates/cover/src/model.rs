//! The functional coverage model of the LA-1 protocol.
//!
//! A [`CoverageModel`] is built once from a [`LaConfig`] and defines a
//! fixed, deterministically ordered list of [`CoverBin`]s. Bins are
//! *protocol-level*: they are decided from the per-cycle stimulus
//! (`&[BankOp]`) plus the pins every
//! [`CycleModel`](la1_core::cycle_model::CycleModel) exposes (per-bank
//! data-valid word, write-done flag, parity-error flag), so the same
//! model scores every refinement level.
//!
//! Tiers: tier 1 is the base-LA-1 bin set, closable by any
//! protocol-legal stimulus; tier 2 is the LA-1B burst extension's bins,
//! which only exist when the configuration is a burst one; tier 3 is
//! the traffic cross-bin extension ([`CoverageModel::la1_traffic`])
//! observing shapes only multi-master contention and sustained
//! burst-stream workloads produce — the default
//! [`CoverageModel::la1`] model excludes them so existing closure and
//! campaign reports stay byte-identical.

use la1_core::spec::{LaConfig, READ_LATENCY};
use std::collections::BTreeMap;

/// The kind of one coverage bin (the `bank` field of [`CoverBin`]
/// selects the instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// A read was issued to the bank (bank×op cross).
    OpRead,
    /// A write was issued to the bank (bank×op cross).
    OpWrite,
    /// A partial (byte-controlled) write was issued to the bank.
    OpWritePartial,
    /// Concurrent read and write on the *same* bank in one cycle —
    /// the headline LA-1 feature (the suite's `concurrent_rw` cover).
    OpRwSame,
    /// A read on this bank concurrent with a write on another bank
    /// (multi-bank configurations only).
    OpRwCross,
    /// A read of word 0 (address corner).
    AddrReadLo,
    /// A read of the last word (address corner).
    AddrReadHi,
    /// A write to word 0 (address corner).
    AddrWriteLo,
    /// A write to the last word (address corner).
    AddrWriteHi,
    /// Reads on this bank in two protocol-adjacent cycles
    /// (back-to-back for LA-1; spaced `burst_len` under LA-1B).
    SeqB2bRead,
    /// Writes on this bank in two consecutive cycles.
    SeqB2bWrite,
    /// Read-after-write of the *same address* on consecutive cycles —
    /// the freshly-committed-data forwarding path.
    SeqRaw,
    /// Ops in consecutive cycles crossing the boundary from this
    /// bank's last word to the next bank's word 0.
    BankCross,
    /// A cycle carrying no operation at all.
    IdleCycle,
    /// `read_latency` monitor antecedent triggered (a read accepted).
    MonReadLatencyArmed,
    /// `read_latency` observed holding: read issued
    /// [`READ_LATENCY`] cycles ago and data-valid now.
    MonReadLatencyHeld,
    /// `no_spurious_dv` antecedent triggered: the never-SERE's prefix
    /// (`!rd` the right number of cycles back) matched, one step from
    /// a potential violation.
    MonNoSpuriousArmed,
    /// `no_spurious_dv` observed holding: prefix matched and the bank
    /// kept its data-valid flag low.
    MonNoSpuriousHeld,
    /// `parity` monitor exercised: the bank drove data (the parity
    /// comparator saw a real word).
    MonParityArmed,
    /// `parity` observed holding: data driven and no parity error.
    MonParityHeld,
    /// `write_commit` antecedent triggered (a write accepted).
    MonWriteCommitArmed,
    /// `write_commit` observed holding: write issued last cycle and
    /// `wdone` now.
    MonWriteCommitHeld,
    /// LA-1B `burst_second_beat` antecedent triggered (tier 2).
    MonBurstBeatArmed,
    /// LA-1B second beat observed: read issued `READ_LATENCY + 1`
    /// cycles ago and data-valid now (tier 2).
    MonBurstBeatHeld,
    /// Two reads (any banks) spaced at exactly the minimum legal
    /// LA-1B distance of `burst_len` cycles (tier 2).
    BurstMinSpacing,
    /// Full pipeline two cycles running: a read *and* a write in each
    /// of two consecutive cycles, anywhere on the interface — the
    /// signature of multi-master contention keeping both bus slots
    /// busy (tier 3, global, non-burst configurations only).
    XPipeFull,
    /// Three reads on this bank at the minimum legal spacing — a
    /// sustained lookup stream (tier 3).
    XReadStream,
    /// Writes on this bank in three consecutive cycles — a sustained
    /// update stream (tier 3).
    XWriteStream,
    /// A write on this bank immediately followed by a read on it (any
    /// addresses) — the bus turnaround mixed traffic produces, where
    /// [`BinKind::SeqRaw`] only observes the same-address case
    /// (tier 3).
    XRwTurnaround,
}

impl BinKind {
    /// Whether this kind is instantiated once per bank (as opposed to
    /// once per model).
    fn per_bank(self) -> bool {
        !matches!(
            self,
            BinKind::IdleCycle | BinKind::BurstMinSpacing | BinKind::XPipeFull
        )
    }
}

/// One coverage bin: a kind plus its bank instance (0 for global
/// kinds; for [`BinKind::BankCross`] the *lower* bank of the crossed
/// boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverBin {
    /// What the bin observes.
    pub kind: BinKind,
    /// Instance bank (see type-level docs).
    pub bank: u32,
}

impl CoverBin {
    /// The bin's stable report name.
    pub fn name(&self) -> String {
        let b = self.bank;
        match self.kind {
            BinKind::OpRead => format!("op_read_{b}"),
            BinKind::OpWrite => format!("op_write_{b}"),
            BinKind::OpWritePartial => format!("op_write_partial_{b}"),
            BinKind::OpRwSame => format!("op_rw_same_{b}"),
            BinKind::OpRwCross => format!("op_rw_cross_{b}"),
            BinKind::AddrReadLo => format!("addr_read_lo_{b}"),
            BinKind::AddrReadHi => format!("addr_read_hi_{b}"),
            BinKind::AddrWriteLo => format!("addr_write_lo_{b}"),
            BinKind::AddrWriteHi => format!("addr_write_hi_{b}"),
            BinKind::SeqB2bRead => format!("seq_b2b_read_{b}"),
            BinKind::SeqB2bWrite => format!("seq_b2b_write_{b}"),
            BinKind::SeqRaw => format!("seq_raw_{b}"),
            BinKind::BankCross => format!("bank_cross_{b}_{}", b + 1),
            BinKind::IdleCycle => "idle_cycle".to_string(),
            BinKind::MonReadLatencyArmed => format!("mon_read_latency_{b}_armed"),
            BinKind::MonReadLatencyHeld => format!("mon_read_latency_{b}_held"),
            BinKind::MonNoSpuriousArmed => format!("mon_no_spurious_dv_{b}_armed"),
            BinKind::MonNoSpuriousHeld => format!("mon_no_spurious_dv_{b}_held"),
            BinKind::MonParityArmed => format!("mon_parity_{b}_armed"),
            BinKind::MonParityHeld => format!("mon_parity_{b}_held"),
            BinKind::MonWriteCommitArmed => format!("mon_write_commit_{b}_armed"),
            BinKind::MonWriteCommitHeld => format!("mon_write_commit_{b}_held"),
            BinKind::MonBurstBeatArmed => format!("mon_burst_beat_{b}_armed"),
            BinKind::MonBurstBeatHeld => format!("mon_burst_beat_{b}_held"),
            BinKind::BurstMinSpacing => "burst_min_spacing".to_string(),
            BinKind::XPipeFull => "traffic_pipe_full".to_string(),
            BinKind::XReadStream => format!("traffic_read_stream_{b}"),
            BinKind::XWriteStream => format!("traffic_write_stream_{b}"),
            BinKind::XRwTurnaround => format!("traffic_rw_turnaround_{b}"),
        }
    }

    /// Coverage tier: 1 for the base LA-1 bin set, 2 for the LA-1B
    /// burst extension's bins, 3 for the traffic cross-bin extension.
    pub fn tier(&self) -> u32 {
        match self.kind {
            BinKind::MonBurstBeatArmed
            | BinKind::MonBurstBeatHeld
            | BinKind::BurstMinSpacing => 2,
            BinKind::XPipeFull
            | BinKind::XReadStream
            | BinKind::XWriteStream
            | BinKind::XRwTurnaround => 3,
            _ => 1,
        }
    }
}

/// Aggregated statistics for one bin across any number of streams or
/// farm shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BinStat {
    /// The bin's coverage tier (identical on every shard of one model).
    pub tier: u32,
    /// Total hits across the merged streams.
    pub hits: u64,
    /// Earliest per-stream first-hit cycle across the merged streams.
    pub first_hit: Option<u64>,
}

/// Mergeable per-bin statistics, keyed by bin name (ordered). The
/// farm's unit of coverage result: every closure shard produces one,
/// and [`CoverageModel::merge_bins`] folds them.
pub type BinStats = BTreeMap<String, BinStat>;

/// The coverage model for one interface configuration: a fixed,
/// deterministically ordered bin list plus the protocol parameters the
/// bin predicates need.
#[derive(Debug, Clone)]
pub struct CoverageModel {
    bins: Vec<CoverBin>,
    /// Bank count of the configuration.
    pub banks: u32,
    /// Words per bank (the address-corner bins use `words - 1`).
    pub words: u64,
    /// Full byte-enable mask (everything below it is a partial write).
    pub full_byte_en: u32,
    /// Read burst length (1 for LA-1, ≥ 2 for LA-1B).
    pub burst_len: u64,
}

impl CoverageModel {
    /// Builds the LA-1 coverage model for `config`.
    pub fn la1(config: &LaConfig) -> Self {
        let mut bins = Vec::new();
        let burst = config.is_burst();
        for b in 0..config.banks {
            let mut push = |kind: BinKind| bins.push(CoverBin { kind, bank: b });
            push(BinKind::OpRead);
            push(BinKind::OpWrite);
            push(BinKind::OpWritePartial);
            push(BinKind::OpRwSame);
            if config.banks > 1 {
                push(BinKind::OpRwCross);
            }
            push(BinKind::AddrReadLo);
            push(BinKind::AddrReadHi);
            push(BinKind::AddrWriteLo);
            push(BinKind::AddrWriteHi);
            push(BinKind::SeqB2bRead);
            push(BinKind::SeqB2bWrite);
            push(BinKind::SeqRaw);
            push(BinKind::MonReadLatencyArmed);
            push(BinKind::MonReadLatencyHeld);
            push(BinKind::MonNoSpuriousArmed);
            push(BinKind::MonNoSpuriousHeld);
            push(BinKind::MonParityArmed);
            push(BinKind::MonParityHeld);
            push(BinKind::MonWriteCommitArmed);
            push(BinKind::MonWriteCommitHeld);
            if burst {
                push(BinKind::MonBurstBeatArmed);
                push(BinKind::MonBurstBeatHeld);
            }
        }
        for b in 0..config.banks.saturating_sub(1) {
            bins.push(CoverBin {
                kind: BinKind::BankCross,
                bank: b,
            });
        }
        bins.push(CoverBin {
            kind: BinKind::IdleCycle,
            bank: 0,
        });
        if burst {
            bins.push(CoverBin {
                kind: BinKind::BurstMinSpacing,
                bank: 0,
            });
        }
        debug_assert!(bins.iter().all(|bin| {
            !bin.kind.per_bank() || bin.bank < config.banks
        }));
        CoverageModel {
            bins,
            banks: config.banks,
            words: config.words_per_bank as u64,
            full_byte_en: (1u32 << config.byte_enables()) - 1,
            burst_len: config.burst_len as u64,
        }
    }

    /// Builds the traffic-extended coverage model: every
    /// [`CoverageModel::la1`] bin plus the tier-3 cross bins observing
    /// multi-master and sustained-stream shapes. A separate
    /// constructor — not the default — so the pre-existing closure and
    /// campaign bin counts (and their byte-pinned JSON reports) are
    /// untouched.
    pub fn la1_traffic(config: &LaConfig) -> Self {
        let mut model = CoverageModel::la1(config);
        for b in 0..config.banks {
            for kind in [
                BinKind::XReadStream,
                BinKind::XWriteStream,
                BinKind::XRwTurnaround,
            ] {
                model.bins.push(CoverBin { kind, bank: b });
            }
        }
        if !config.is_burst() {
            // consecutive-cycle reads are illegal under LA-1B, so the
            // full-pipeline cross bin only exists for plain LA-1
            model.bins.push(CoverBin {
                kind: BinKind::XPipeFull,
                bank: 0,
            });
        }
        model
    }

    /// The defined bins, in report order.
    pub fn bins(&self) -> &[CoverBin] {
        &self.bins
    }

    /// Number of defined bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether the model defines no bins (never the case for
    /// [`CoverageModel::la1`]).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Number of tier-1 bins (the CI closure gate's denominator).
    pub fn tier1_len(&self) -> usize {
        self.bins.iter().filter(|b| b.tier() == 1).count()
    }

    /// Unions another shard's per-bin statistics into `into`.
    ///
    /// The *bin set* is unioned (a bin is covered when any shard hit
    /// it), per-bin hit counts sum, and first-hit cycles take the
    /// minimum. On the covered/uncovered view — the coverage verdict —
    /// the merge is associative, commutative and idempotent, so merged
    /// closure results are order- and worker-count-insensitive. Hit
    /// *counts* are additive volume counters: merging the same shard
    /// twice doubles them (deliberately — they measure stimulus
    /// volume), which is why the farm delivers each shard exactly once.
    pub fn merge_bins(into: &mut BinStats, other: &BinStats) {
        for (name, stat) in other {
            match into.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(stat.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let s = e.get_mut();
                    debug_assert_eq!(s.tier, stat.tier, "bin {name} changed tier across shards");
                    s.hits += stat.hits;
                    s.first_hit = match (s.first_hit, stat.first_hit) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                }
            }
        }
    }

    /// The history depth (in cycles, excluding the current one) the
    /// bin predicates look back: the longest antecedent window.
    pub fn lookback(&self) -> usize {
        // burst second beat: read READ_LATENCY + 1 cycles ago
        let base = READ_LATENCY as usize + 1;
        if self
            .bins
            .iter()
            .any(|b| b.kind == BinKind::XReadStream)
        {
            // read-stream cross bin: reads 2 * burst_len cycles apart
            base.max(2 * self.burst_len as usize)
        } else {
            base
        }
    }
}
