//! The coverage-guided constrained-random stimulus generator.
//!
//! [`GuidedMix`] behaves like
//! [`RandomMix`](la1_core::workloads::RandomMix) until it is told what
//! is still missing: [`GuidedMix::retarget`] takes the collector's
//! unhit-bin list and enqueues a short *directed preamble* for each bin
//! (sequence preambles for the sequence bins, corner addresses for the
//! address bins, idle windows for the never-style monitor bins).
//! Directed cycles drain first; random traffic fills the rest.
//!
//! Since the transaction-level refactor, `GuidedMix` is a
//! [`Sequencer`]: it yields [`SequenceItem`]s and the
//! [`Driver`](la1_core::stimulus::Driver) owns the protocol legality
//! rules (single address bus, LA-1B burst spacing). The generator
//! consults [`SeqContext::read_legal`] so its rng draw order — and
//! therefore the emitted cycle stream — is byte-identical to the
//! pre-refactor `Workload` implementation (pinned by the golden-stream
//! tests): a planned read is *delayed* (idle cycle emitted) until the
//! output bus is free, never dropped, and the random fill's read draw
//! is consumed even on cycles where a read would be illegal.
//!
//! The stream is a pure function of `(seed, config, retarget calls)`:
//! the generator draws only from its own seeded [`StdRng`].

use crate::model::{BinKind, CoverBin};
use la1_core::spec::{BankOp, LaConfig};
use la1_core::stimulus::{SeqContext, SequenceItem, Sequencer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Serializable dynamic state of a [`GuidedMix`]
/// ([`GuidedMix::snapshot_state`] / [`GuidedMix::restore_state`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuidedMixSnap {
    /// The seeded rng's internal counter state.
    pub rng: u64,
    /// Directed cycles awaiting emission, front first.
    pub plan: Vec<Vec<BankOp>>,
    /// Items of the cycle currently being handed to the driver.
    pub items: Vec<SequenceItem>,
}

/// A seeded, deterministic, coverage-guided constrained-random
/// workload (see module docs).
#[derive(Debug)]
pub struct GuidedMix {
    rng: StdRng,
    banks: u32,
    words: u64,
    full_byte_en: u32,
    burst_len: u64,
    read_prob: f64,
    write_prob: f64,
    /// Directed cycles awaiting emission, front first.
    plan: VecDeque<Vec<BankOp>>,
    /// Items of the cycle currently being handed to the driver.
    items: VecDeque<SequenceItem>,
}

impl GuidedMix {
    /// Creates the generator. Until the first [`GuidedMix::retarget`]
    /// it emits pure constrained-random traffic (reads with probability
    /// `read_prob`, writes with `write_prob`, both burst-legal).
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    pub fn new(config: &LaConfig, seed: u64, read_prob: f64, write_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&read_prob));
        assert!((0.0..=1.0).contains(&write_prob));
        GuidedMix {
            rng: StdRng::seed_from_u64(seed),
            banks: config.banks,
            words: config.words_per_bank as u64,
            full_byte_en: (1u32 << config.byte_enables()) - 1,
            burst_len: config.burst_len as u64,
            read_prob,
            write_prob,
            plan: VecDeque::new(),
            items: VecDeque::new(),
        }
    }

    /// Number of directed cycles still queued.
    pub fn planned(&self) -> usize {
        self.plan.len()
    }

    /// Captures the generator's dynamic state: the rng's internal
    /// counter, the directed plan and the partially-drained item queue.
    /// The static traffic parameters come back from the configuration
    /// on restore.
    pub fn snapshot_state(&self) -> GuidedMixSnap {
        GuidedMixSnap {
            rng: self.rng.state(),
            plan: self.plan.iter().cloned().collect(),
            items: self.items.iter().cloned().collect(),
        }
    }

    /// Restores state captured by [`GuidedMix::snapshot_state`] into a
    /// generator built with the same configuration and probabilities.
    pub fn restore_state(&mut self, snap: &GuidedMixSnap) {
        self.rng = StdRng::from_state(snap.rng);
        self.plan = snap.plan.iter().cloned().collect();
        self.items = snap.items.iter().cloned().collect();
    }

    /// Replaces the rng with a freshly seeded one (plan and queued
    /// items stay) — how a restored checkpoint fans out into divergent
    /// continuation streams.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Replaces the directed plan with preambles for `unhit` bins.
    /// Call once per epoch with the collector's unhit list; an empty
    /// list clears the plan (back to pure random fill).
    pub fn retarget(&mut self, unhit: &[CoverBin]) {
        self.plan.clear();
        self.items.clear();
        for bin in unhit {
            let scenario = self.scenario_for(bin);
            self.plan.extend(scenario);
        }
    }

    /// A random in-range word address.
    fn addr(&mut self) -> u64 {
        self.rng.gen_range(0..self.words)
    }

    /// A random full-word write to `bank`.
    fn write(&mut self, bank: u32, addr: u64) -> BankOp {
        let data = self.rng.gen::<u64>();
        BankOp::write(bank, addr, data, self.full_byte_en)
    }

    /// The directed preamble hitting `bin` on a healthy design. Each
    /// scenario is self-contained; separating idle cycles are appended
    /// so consecutive scenarios cannot mask each other's sequence
    /// shapes.
    fn scenario_for(&mut self, bin: &CoverBin) -> Vec<Vec<BankOp>> {
        let b = bin.bank;
        let w = self.words;
        let gap = self.burst_len as usize - 1;
        let mut s: Vec<Vec<BankOp>> = match bin.kind {
            BinKind::OpRead => {
                let a = self.addr();
                vec![vec![BankOp::read(b, a)]]
            }
            BinKind::OpWrite => {
                let a = self.addr();
                vec![vec![self.write(b, a)]]
            }
            BinKind::OpWritePartial => {
                let a = self.addr();
                let data = self.rng.gen::<u64>();
                let be = self.rng.gen_range(1..self.full_byte_en);
                vec![vec![BankOp::write(b, a, data, be)]]
            }
            BinKind::OpRwSame => {
                let ra = self.addr();
                let wa = self.addr();
                let wr = self.write(b, wa);
                vec![vec![BankOp::read(b, ra), wr]]
            }
            BinKind::OpRwCross => {
                let other = (b + 1) % self.banks;
                let ra = self.addr();
                let wa = self.addr();
                let wr = self.write(other, wa);
                vec![vec![BankOp::read(b, ra), wr]]
            }
            BinKind::AddrReadLo => vec![vec![BankOp::read(b, 0)]],
            BinKind::AddrReadHi => {
                // highest burst-safe start address (the second beat
                // wraps, so read the bin's definition of "max")
                let hi = if self.burst_len >= 2 {
                    w - self.burst_len
                } else {
                    w - 1
                };
                vec![vec![BankOp::read(b, hi)]]
            }
            BinKind::AddrWriteLo => vec![vec![self.write(b, 0)]],
            BinKind::AddrWriteHi => vec![vec![self.write(b, w - 1)]],
            BinKind::SeqB2bRead => {
                let a1 = self.addr();
                let a2 = self.addr();
                let mut v = vec![vec![BankOp::read(b, a1)]];
                v.extend((0..gap).map(|_| Vec::new()));
                v.push(vec![BankOp::read(b, a2)]);
                v
            }
            BinKind::SeqB2bWrite => {
                let a1 = self.addr();
                let a2 = self.addr();
                let w1 = self.write(b, a1);
                let w2 = self.write(b, a2);
                vec![vec![w1], vec![w2]]
            }
            BinKind::SeqRaw => {
                let a = self.addr();
                let wr = self.write(b, a);
                vec![vec![wr], vec![BankOp::read(b, a)]]
            }
            BinKind::BankCross => {
                let w1 = self.write(b, w - 1);
                let w2 = self.write(b + 1, 0);
                vec![vec![w1], vec![w2]]
            }
            BinKind::IdleCycle => vec![Vec::new()],
            BinKind::MonReadLatencyArmed | BinKind::MonReadLatencyHeld | BinKind::MonParityArmed
            | BinKind::MonParityHeld => {
                // a read whose data beat (and parity check) is observed
                let a = self.addr();
                vec![vec![BankOp::read(b, a)], Vec::new(), Vec::new()]
            }
            BinKind::MonNoSpuriousArmed | BinKind::MonNoSpuriousHeld => {
                // a full no-read window on every bank
                let window = if self.burst_len >= 2 { 4 } else { 3 };
                (0..window).map(|_| Vec::new()).collect()
            }
            BinKind::MonWriteCommitArmed | BinKind::MonWriteCommitHeld => {
                let a = self.addr();
                vec![vec![self.write(b, a)], Vec::new()]
            }
            BinKind::MonBurstBeatArmed | BinKind::MonBurstBeatHeld => {
                let a = self.addr();
                vec![vec![BankOp::read(b, a)], Vec::new(), Vec::new(), Vec::new()]
            }
            BinKind::BurstMinSpacing => {
                let a1 = self.addr();
                let a2 = self.addr();
                let mut v = vec![vec![BankOp::read(b, a1)]];
                v.extend((0..gap).map(|_| Vec::new()));
                v.push(vec![BankOp::read(b, a2)]);
                v
            }
            BinKind::XPipeFull => {
                // two consecutive full cycles (only planned on LA-1,
                // where back-to-back reads are legal)
                let mut v = Vec::new();
                for _ in 0..2 {
                    let ra = self.addr();
                    let wa = self.addr();
                    let wr = self.write(b, wa);
                    v.push(vec![BankOp::read(b, ra), wr]);
                }
                v
            }
            BinKind::XReadStream => {
                let mut v = Vec::new();
                for i in 0..3 {
                    let a = self.addr();
                    v.push(vec![BankOp::read(b, a)]);
                    if i < 2 {
                        v.extend((0..gap).map(|_| Vec::new()));
                    }
                }
                v
            }
            BinKind::XWriteStream => (0..3)
                .map(|_| {
                    let a = self.addr();
                    vec![self.write(b, a)]
                })
                .collect(),
            BinKind::XRwTurnaround => {
                let wa = self.addr();
                let ra = self.addr();
                let wr = self.write(b, wa);
                vec![vec![wr], vec![BankOp::read(b, ra)]]
            }
        };
        // one idle separator so the next scenario's history window
        // starts from this scenario's tail, not inside it
        s.push(Vec::new());
        s
    }

    /// Pure constrained-random fill (used when no directed cycles are
    /// queued). The read-probability draw is consumed even when the
    /// bus is busy (`!read_legal`), matching the pre-refactor stream.
    fn fill_random(&mut self, read_legal: bool) {
        if self.rng.gen_bool(self.read_prob) && read_legal {
            let bank = self.rng.gen_range(0..self.banks);
            let addr = self.addr();
            self.items.push_back(SequenceItem::Read { bank, addr });
        }
        if self.rng.gen_bool(self.write_prob) {
            let bank = self.rng.gen_range(0..self.banks);
            let addr = self.addr();
            let data = self.rng.gen::<u64>();
            // same 80/20 full/partial split as RandomMix, so the
            // unguided run is a fair baseline
            let byte_en = if self.rng.gen_bool(0.8) {
                self.full_byte_en
            } else {
                self.rng.gen_range(1..self.full_byte_en)
            };
            self.items.push_back(SequenceItem::Write {
                bank,
                addr,
                data,
                byte_en,
            });
        }
    }
}

impl Sequencer for GuidedMix {
    fn next_item(&mut self, ctx: &SeqContext) -> SequenceItem {
        if self.items.is_empty() {
            match self.plan.front() {
                Some(planned) if planned.iter().any(BankOp::is_read) && !ctx.read_legal => {
                    // output bus still busy with the previous burst:
                    // delay the planned read, emit an idle filler
                }
                Some(_) => {
                    let ops = self.plan.pop_front().expect("front checked");
                    self.items.extend(ops.iter().map(SequenceItem::from_op));
                }
                None => self.fill_random(ctx.read_legal),
            }
            self.items.push_back(SequenceItem::Idle);
        }
        self.items.pop_front().expect("queue refilled above")
    }
}
