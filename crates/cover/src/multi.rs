//! Multi-stream RTL coverage closure — scalar and bit-parallel.
//!
//! Where [`run_closure`](crate::run_closure) drives one stimulus
//! stream against the SystemC model, the multi-stream runners drive
//! `streams` independent seeded streams against the interpreted RTL
//! and *merge* their coverage: a bin is closed as soon as any stream
//! hits it.
//!
//! Two runners produce the identical [`MultiClosureReport`]:
//!
//! * [`run_closure_rtl`] — the scalar reference: one [`LaRtlDriver`]
//!   per stream, streams executed one after another within each epoch;
//! * [`run_closure_rtl_batched`] — all streams as lanes of one
//!   [`LaRtlBatchDriver`], every compiled-netlist operation advancing
//!   all of them at once (PPSFP). Per-lane pins are bit-identical to
//!   the scalar driver, so the merged bin sets, first-hit cycles and
//!   JSON reports are equal byte for byte — the equivalence the test
//!   suite pins at 1/2 banks and under LA-1B.
//!
//! Both runners are epoch-lockstep: guidance retargets **all** guided
//! streams from the *merged* unhit-bin list at every epoch boundary
//! (cooperative closure), and the budget-or-full stopping rule is
//! evaluated per epoch. Within an epoch streams share nothing, which is
//! what makes the sequential and bit-parallel schedules coincide.

use crate::closure::{ClosureConfig, Generator};
use crate::collect::CoverageCollector;
use crate::model::{BinStats, CoverBin, CoverageModel};
use la1_core::checkpoint::{config_fingerprint, CheckpointError, Snapshot, Trace};
use la1_core::cycle_model::BatchLaneModel;
use la1_core::cycle_model::CycleObserver;
use la1_core::rtl_model::{LaRtl, LaRtlBatchDriver, LaRtlDriver};
use la1_core::spec::{BankOp, LaConfig};
use la1_core::stimulus::stream_seed;
use la1_core::workloads::{RandomMix, Workload};
use la1_rtl::LANES;

/// A shared traffic preamble every closure stream runs before its
/// seeded stimulus starts — typically table-initialization traffic on
/// a large configuration, which can dwarf the closure run itself.
///
/// The cold path replays the recorded [`Trace`] cycle by cycle; the
/// warm path restores the RTL state [`Snapshot`]s captured after the
/// preamble and skips the replay entirely. The two are byte-equivalent
/// (the core differential test layer proves snapshot restore equals
/// straight-through execution), so a warm-started farm shard produces
/// the identical report — the `checkpoint` bench measures the speedup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosurePreamble {
    /// The recorded preamble traffic (the cold path, and the ground
    /// truth the snapshots are captured from).
    pub trace: Trace,
    /// Scalar RTL state after the preamble (`None` → replay the trace).
    pub snapshot: Option<Snapshot>,
    /// Batched RTL state after the preamble, all lanes identical
    /// (`None` → replay the trace broadcast across lanes).
    pub batch_snapshot: Option<Snapshot>,
}

impl ClosurePreamble {
    /// Records `cycles` of seeded write-heavy initialization traffic
    /// as a replayable trace (no snapshots: the cold preamble).
    pub fn record(config: &LaConfig, seed: u64, cycles: u64) -> ClosurePreamble {
        let mut mix = RandomMix::new(config, seed, 0.2, 0.7);
        let mut trace = Trace::new(config_fingerprint("rtl", config));
        for _ in 0..cycles {
            trace.record(&mix.next_cycle());
        }
        ClosurePreamble {
            trace,
            snapshot: None,
            batch_snapshot: None,
        }
    }

    /// Runs the recorded trace once through a scalar and a batched RTL
    /// driver and captures both post-preamble snapshots — the warm
    /// preamble every later stream restores instead of replaying.
    pub fn with_snapshots(mut self, config: &LaConfig) -> Result<ClosurePreamble, CheckpointError> {
        let design = LaRtl::build(config, None);
        let mut driver = LaRtlDriver::new(&design);
        self.trace.replay_into(&mut driver);
        self.snapshot = Some(Snapshot::of_rtl(&driver)?);
        let mut batch = LaRtlBatchDriver::new(&design);
        for ops in &self.trace.cycles {
            let refs: Vec<&[BankOp]> = (0..LANES).map(|_| ops.as_slice()).collect();
            batch.cycle(&refs);
        }
        self.batch_snapshot = Some(Snapshot::of_rtl_batch(&batch)?);
        Ok(self)
    }

    /// Preamble length in cycles.
    pub fn cycles(&self) -> u64 {
        self.trace.cycles.len() as u64
    }

    /// Whether the warm path is available.
    pub fn is_warm(&self) -> bool {
        self.snapshot.is_some() && self.batch_snapshot.is_some()
    }

    /// Brings one scalar driver past the preamble: restore when warm,
    /// replay when cold. Fingerprint-checked either way.
    fn apply_scalar(
        &self,
        design: &LaRtl,
        driver: &mut LaRtlDriver,
    ) -> Result<(), CheckpointError> {
        match &self.snapshot {
            Some(snap) => {
                *driver = snap.into_rtl(design)?;
                Ok(())
            }
            None => {
                self.check_trace(design)?;
                self.trace.replay_into(driver);
                Ok(())
            }
        }
    }

    /// Brings the batched driver past the preamble (all lanes).
    fn apply_batched(
        &self,
        design: &LaRtl,
        driver: &mut LaRtlBatchDriver,
    ) -> Result<(), CheckpointError> {
        match &self.batch_snapshot {
            Some(snap) => {
                *driver = snap.into_rtl_batch(design)?;
                Ok(())
            }
            None => {
                self.check_trace(design)?;
                for ops in &self.trace.cycles {
                    let refs: Vec<&[BankOp]> = (0..LANES).map(|_| ops.as_slice()).collect();
                    driver.cycle(&refs);
                }
                Ok(())
            }
        }
    }

    fn check_trace(&self, design: &LaRtl) -> Result<(), CheckpointError> {
        let expected = config_fingerprint("rtl", design.config());
        if self.trace.fingerprint != expected {
            return Err(CheckpointError::FingerprintMismatch {
                found: self.trace.fingerprint,
                expected,
            });
        }
        Ok(())
    }
}

/// Outcome of one multi-stream closure run; all coverage figures are
/// over the merged (any-stream) bin sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiClosureReport {
    /// Bank count of the configuration.
    pub banks: u32,
    /// Whether the configuration was an LA-1B (burst) one.
    pub burst: bool,
    /// Whether guidance was on.
    pub guided: bool,
    /// Base seed the per-stream seeds derive from.
    pub seed: u64,
    /// Independent stimulus streams run.
    pub streams: u32,
    /// Per-stream cycle budget.
    pub budget: u64,
    /// Cycles each stream actually ran (lockstep, so lane-uniform).
    pub cycles_run: u64,
    /// Total stimulus volume: `streams * cycles_run`.
    pub lane_cycles: u64,
    /// Bins defined by the coverage model.
    pub bins_total: usize,
    /// Bins hit by at least one stream.
    pub bins_hit: usize,
    /// Tier-1 bins defined.
    pub tier1_total: usize,
    /// Tier-1 bins hit by at least one stream.
    pub tier1_hit: usize,
    /// Whether every bin closed within the budget.
    pub closed: bool,
    /// Per-stream cycles after which merged coverage was complete (one
    /// past the latest earliest-stream first hit); `None` when the
    /// budget ran out first.
    pub cycles_to_closure: Option<u64>,
    /// Names of the bins no stream hit, in model order.
    pub unhit: Vec<String>,
    /// Merged per-bin statistics in mergeable form — what the farm
    /// unions across closure shards ([`CoverageModel::merge_bins`]).
    /// Not part of [`Self::to_json`], which stays byte-pinned.
    pub bins: BinStats,
}

impl MultiClosureReport {
    /// Fraction of bins hit by at least one stream.
    pub fn coverage(&self) -> f64 {
        if self.bins_total == 0 {
            1.0
        } else {
            self.bins_hit as f64 / self.bins_total as f64
        }
    }

    /// Renders the deterministic JSON report.
    pub fn to_json(&self) -> String {
        let ctc = la1_core::json::opt_u64(self.cycles_to_closure);
        let unhit = la1_core::json::str_array_body(&self.unhit);
        format!(
            "{{\n  \"banks\": {},\n  \"burst\": {},\n  \"guided\": {},\n  \"seed\": {},\n  \
             \"streams\": {},\n  \"budget\": {},\n  \"cycles_run\": {},\n  \
             \"lane_cycles\": {},\n  \"bins_total\": {},\n  \"bins_hit\": {},\n  \
             \"tier1_total\": {},\n  \"tier1_hit\": {},\n  \"closed\": {},\n  \
             \"cycles_to_closure\": {},\n  \"unhit\": [{}]\n}}\n",
            self.banks,
            self.burst,
            self.guided,
            self.seed,
            self.streams,
            self.budget,
            self.cycles_run,
            self.lane_cycles,
            self.bins_total,
            self.bins_hit,
            self.tier1_total,
            self.tier1_hit,
            self.closed,
            ctc,
            unhit
        )
    }
}

/// One stream's generator and its private coverage collector.
struct Stream {
    generator: Generator,
    collector: CoverageCollector,
}

fn make_streams(cfg: &ClosureConfig, guided: bool, streams: u32) -> Vec<Stream> {
    (0..streams)
        .map(|i| Stream {
            generator: Generator::for_stream(cfg, guided, stream_seed(cfg.seed, i as u64)),
            collector: CoverageCollector::new(CoverageModel::la1(&cfg.config)),
        })
        .collect()
}

/// Whether every bin is hit in the merged (any-stream) view.
fn merged_full(streams: &[Stream]) -> bool {
    let n = streams[0].collector.model().len();
    (0..n).all(|i| streams.iter().any(|s| s.collector.hits()[i] > 0))
}

/// The merged unhit-bin list all guided streams retarget from.
fn merged_unhit(streams: &[Stream]) -> Vec<CoverBin> {
    let model = streams[0].collector.model();
    model
        .bins()
        .iter()
        .enumerate()
        .filter(|(i, _)| streams.iter().all(|s| s.collector.hits()[*i] == 0))
        .map(|(_, b)| *b)
        .collect()
}

fn retarget_all(streams: &mut [Stream]) {
    let unhit = merged_unhit(streams);
    for s in streams.iter_mut() {
        s.generator.retarget(&unhit);
    }
}

/// Assembles the merged report once the loop has stopped: every
/// stream's per-bin statistics union via [`CoverageModel::merge_bins`]
/// (the same fold the farm applies across closure shards), and the
/// report figures derive from the merged map in model order.
fn merged_report(
    cfg: &ClosureConfig,
    guided: bool,
    streams: Vec<Stream>,
    cycles_run: u64,
) -> MultiClosureReport {
    let model = streams[0].collector.model().clone();
    let mut bins = BinStats::new();
    for s in &streams {
        CoverageModel::merge_bins(&mut bins, &s.collector.bin_stats());
    }
    let stat = |b: &CoverBin| &bins[&b.name()];
    let closed = model.bins().iter().all(|b| stat(b).hits > 0);
    let cycles_to_closure = if closed {
        model
            .bins()
            .iter()
            .map(|b| stat(b).first_hit.expect("closed bin has a first hit") + 1)
            .max()
    } else {
        None
    };
    let bins_hit = model.bins().iter().filter(|b| stat(b).hits > 0).count();
    let tier1_hit = model
        .bins()
        .iter()
        .filter(|b| b.tier() == 1 && stat(b).hits > 0)
        .count();
    let unhit = model
        .bins()
        .iter()
        .filter(|b| stat(b).hits == 0)
        .map(|b| b.name())
        .collect();
    MultiClosureReport {
        banks: cfg.config.banks,
        burst: cfg.config.is_burst(),
        guided,
        seed: cfg.seed,
        streams: streams.len() as u32,
        budget: cfg.budget,
        cycles_run,
        lane_cycles: streams.len() as u64 * cycles_run,
        bins_total: model.len(),
        bins_hit,
        tier1_total: model.tier1_len(),
        tier1_hit,
        closed,
        cycles_to_closure,
        unhit,
        bins,
    }
}

/// The scalar multi-stream reference: one [`LaRtlDriver`] per stream,
/// streams executed sequentially within each epoch. A pure function of
/// `(cfg, guided, streams)`.
///
/// # Panics
///
/// Panics if `streams` is zero.
pub fn run_closure_rtl(cfg: &ClosureConfig, guided: bool, streams: u32) -> MultiClosureReport {
    run_closure_rtl_from(cfg, guided, streams, None)
        .expect("no preamble, so no checkpoint error is possible")
}

/// [`run_closure_rtl`] with an optional shared [`ClosurePreamble`]
/// every stream runs (warm-restored or cold-replayed) before its
/// seeded stimulus starts. Coverage is collected over the closure
/// cycles only, so the warm and cold paths produce byte-identical
/// reports.
///
/// # Panics
///
/// Panics if `streams` is zero.
pub fn run_closure_rtl_from(
    cfg: &ClosureConfig,
    guided: bool,
    streams: u32,
    preamble: Option<&ClosurePreamble>,
) -> Result<MultiClosureReport, CheckpointError> {
    assert!(streams > 0, "at least one stream");
    let design = LaRtl::build(&cfg.config, None);
    let mut drivers: Vec<LaRtlDriver> =
        (0..streams).map(|_| LaRtlDriver::new(&design)).collect();
    if let Some(p) = preamble {
        for d in &mut drivers {
            p.apply_scalar(&design, d)?;
        }
    }
    let mut state = make_streams(cfg, guided, streams);
    let mut run = 0u64;
    while run < cfg.budget && !merged_full(&state) {
        if guided {
            retarget_all(&mut state);
        }
        let step = cfg.epoch.min(cfg.budget - run);
        for (s, driver) in state.iter_mut().zip(&mut drivers) {
            for _ in 0..step {
                let ops = s.generator.next_cycle();
                driver.cycle(&ops);
                s.collector.observe(&ops, driver);
            }
        }
        run += step;
    }
    Ok(merged_report(cfg, guided, state, run))
}

/// The bit-parallel multi-stream runner: all streams as lanes of one
/// [`LaRtlBatchDriver`]. Produces a report byte-identical to
/// [`run_closure_rtl`] with the same arguments.
///
/// # Panics
///
/// Panics if `streams` is zero or exceeds [`LANES`].
pub fn run_closure_rtl_batched(
    cfg: &ClosureConfig,
    guided: bool,
    streams: u32,
) -> MultiClosureReport {
    run_closure_rtl_batched_from(cfg, guided, streams, None)
        .expect("no preamble, so no checkpoint error is possible")
}

/// [`run_closure_rtl_batched`] with an optional shared
/// [`ClosurePreamble`] applied to every lane before the seeded streams
/// start. Byte-identical to [`run_closure_rtl_from`] with the same
/// arguments.
///
/// # Panics
///
/// Panics if `streams` is zero or exceeds [`LANES`].
pub fn run_closure_rtl_batched_from(
    cfg: &ClosureConfig,
    guided: bool,
    streams: u32,
    preamble: Option<&ClosurePreamble>,
) -> Result<MultiClosureReport, CheckpointError> {
    assert!(streams > 0, "at least one stream");
    assert!(streams as usize <= LANES, "at most {LANES} streams");
    let design = LaRtl::build(&cfg.config, None);
    let mut driver = LaRtlBatchDriver::new(&design);
    if let Some(p) = preamble {
        p.apply_batched(&design, &mut driver)?;
    }
    let mut state = make_streams(cfg, guided, streams);
    let mut run = 0u64;
    let mut ops: Vec<Vec<BankOp>> = vec![Vec::new(); streams as usize];
    while run < cfg.budget && !merged_full(&state) {
        if guided {
            retarget_all(&mut state);
        }
        let step = cfg.epoch.min(cfg.budget - run);
        for _ in 0..step {
            for (buf, s) in ops.iter_mut().zip(state.iter_mut()) {
                *buf = s.generator.next_cycle();
            }
            let refs: Vec<&[BankOp]> = ops.iter().map(Vec::as_slice).collect();
            driver.cycle(&refs);
            for (lane, s) in state.iter_mut().enumerate() {
                let mut view = BatchLaneModel::new(&mut driver, lane);
                s.collector.observe(&ops[lane], &mut view);
            }
        }
        run += step;
    }
    Ok(merged_report(cfg, guided, state, run))
}
