use crate::closure::{run_closure, ClosureConfig};
use crate::collect::CoverageCollector;
use crate::guided::GuidedMix;
use crate::model::{BinKind, CoverageModel};
use crate::multi::{run_closure_rtl, run_closure_rtl_batched};
use la1_core::asm_model::LaAsmModel;
use la1_core::cycle_model::{co_execute_observed, CycleModel, CycleObserver, RtlWithOvl};
use la1_core::harness::run_abv_observed;
use la1_core::rtl_model::{LaRtl, LaRtlDriver};
use la1_core::sc_model::LaSystemC;
use la1_core::spec::{BankOp, LaConfig};
use la1_core::stimulus::traffic::{contention, QdrStream};
use la1_core::stimulus::Agent;
use la1_core::workloads::{RandomMix, Workload};

/// A small, fast configuration: full protocol, few words.
fn small_cfg(banks: u32) -> LaConfig {
    LaConfig {
        words_per_bank: 8,
        ..LaConfig::new(banks)
    }
}

fn small_burst_cfg(banks: u32) -> LaConfig {
    LaConfig {
        words_per_bank: 8,
        ..LaConfig::la1b(banks)
    }
}

fn small_closure(config: LaConfig, seed: u64) -> ClosureConfig {
    ClosureConfig {
        budget: 60_000,
        epoch: 200,
        ..ClosureConfig::new(config, seed)
    }
}

// ---- coverage model ---------------------------------------------------------

#[test]
fn bin_counts_scale_with_banks() {
    // per bank: 19 base bins (+1 rw-cross when banks > 1), plus one
    // bank-boundary bin per adjacent pair and one global idle bin
    assert_eq!(CoverageModel::la1(&small_cfg(1)).len(), 20);
    assert_eq!(CoverageModel::la1(&small_cfg(2)).len(), 2 * 20 + 1 + 1);
    assert_eq!(CoverageModel::la1(&small_cfg(4)).len(), 4 * 20 + 3 + 1);
}

#[test]
fn burst_config_adds_tier2_bins() {
    let base = CoverageModel::la1(&small_cfg(2));
    let burst = CoverageModel::la1(&small_burst_cfg(2));
    assert_eq!(base.len(), base.tier1_len(), "base config is all tier 1");
    // two burst monitor bins per bank plus the global spacing bin
    assert_eq!(burst.len(), base.len() + 2 * 2 + 1);
    assert_eq!(burst.tier1_len(), base.len());
    assert!(burst
        .bins()
        .iter()
        .any(|b| matches!(b.kind, BinKind::BurstMinSpacing)));
}

#[test]
fn bin_names_are_unique() {
    for cfg in [small_cfg(1), small_cfg(4), small_burst_cfg(2)] {
        let model = CoverageModel::la1(&cfg);
        let mut names: Vec<String> = model.bins().iter().map(|b| b.name()).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate bin names");
    }
}

// ---- collector --------------------------------------------------------------

/// Runs a scripted list of cycles through the SystemC level with a
/// collector attached and returns the hit bin names.
fn collect_script(cfg: &LaConfig, script: Vec<Vec<BankOp>>) -> Vec<String> {
    let mut collector = CoverageCollector::new(CoverageModel::la1(cfg));
    let mut sc = LaSystemC::new(cfg);
    let cycles = script.len() as u64;
    let mut iter = script.into_iter();
    let mut workload = move || iter.next().unwrap_or_default();
    run_abv_observed(&mut sc, &mut workload, cycles, &mut collector);
    collector.hit_names()
}

#[test]
fn directed_stimulus_hits_the_expected_bins() {
    let cfg = small_cfg(1);
    let full = (1u32 << cfg.byte_enables()) - 1;
    // write 5, read-after-write 5, drain the read, then idle
    let script = vec![
        vec![BankOp::write(0, 5, 0xAB, full)],
        vec![BankOp::read(0, 5)],
        vec![],
        vec![],
        vec![],
    ];
    let hit = collect_script(&cfg, script);
    for expected in [
        "op_read_0",
        "op_write_0",
        "seq_raw_0",
        "idle_cycle",
        "mon_write_commit_0_armed",
        "mon_write_commit_0_held",
        "mon_read_latency_0_armed",
        "mon_read_latency_0_held",
        "mon_parity_0_armed",
        "mon_parity_0_held",
    ] {
        assert!(hit.iter().any(|n| n == expected), "missing bin {expected}");
    }
    for absent in [
        "op_write_partial_0",
        "op_rw_same_0",
        "addr_read_lo_0",
        "seq_b2b_read_0",
        "seq_b2b_write_0",
    ] {
        assert!(!hit.iter().any(|n| n == absent), "unexpected bin {absent}");
    }
}

#[test]
fn address_corner_bins_fire_only_on_corners() {
    let cfg = small_cfg(1);
    let hi = cfg.words_per_bank as u64 - 1;
    let hit = collect_script(
        &cfg,
        vec![
            vec![BankOp::read(0, 0)],
            vec![BankOp::read(0, hi)],
            vec![BankOp::read(0, 3)],
        ],
    );
    assert!(hit.iter().any(|n| n == "addr_read_lo_0"));
    assert!(hit.iter().any(|n| n == "addr_read_hi_0"));
    assert!(hit.iter().any(|n| n == "seq_b2b_read_0"));
    assert!(!hit.iter().any(|n| n == "addr_write_lo_0"));
}

#[test]
fn bank_cross_bin_needs_the_boundary_sequence() {
    let cfg = small_cfg(2);
    let full = (1u32 << cfg.byte_enables()) - 1;
    let hi = cfg.words_per_bank as u64 - 1;
    let hit = collect_script(
        &cfg,
        vec![
            vec![BankOp::write(0, hi, 1, full)],
            vec![BankOp::write(1, 0, 2, full)],
        ],
    );
    assert!(hit.iter().any(|n| n == "bank_cross_0_1"));
    // the boundary the stimulus never crossed stays unhit
    let other = collect_script(
        &cfg,
        vec![
            vec![BankOp::write(0, hi, 1, full)],
            vec![BankOp::write(1, 1, 2, full)],
        ],
    );
    assert!(!other.iter().any(|n| n == "bank_cross_0_1"));
}

#[test]
fn collector_json_is_deterministic_and_complete() {
    let cfg = small_cfg(1);
    let run = || {
        let mut collector = CoverageCollector::new(CoverageModel::la1(&cfg));
        let mut sc = LaSystemC::new(&cfg);
        let mut mix = RandomMix::new(&cfg, 9, 0.5, 0.5);
        run_abv_observed(&mut sc, &mut mix, 300, &mut collector);
        collector.to_json()
    };
    let a = run();
    assert_eq!(a, run(), "coverage JSON must be byte-reproducible");
    assert!(a.contains("\"bins_total\": 20"));
}

// ---- cross-level coverage equivalence ---------------------------------------

/// The satellite equivalence check: the same workload must hit the
/// identical bin set at every refinement level; any difference is
/// reported with the offending bins.
fn assert_equivalent_coverage_with(
    cfg: &LaConfig,
    model: CoverageModel,
    workload: &mut dyn Workload,
    cycles: u64,
) -> Vec<String> {
    let mut asm = LaAsmModel::new(&LaConfig {
        burst_len: 1,
        ..cfg.clone()
    });
    let mut sc = LaSystemC::new(cfg);
    let rtl = LaRtl::build(cfg, None);
    let mut drv = LaRtlDriver::new(&rtl);
    let mut ovl = RtlWithOvl::new(&rtl);

    // the ASM level models base LA-1 only; on burst configurations the
    // comparable levels are SystemC, RTL and RTL+OVL
    let mut levels: Vec<&mut dyn CycleModel> = Vec::new();
    let mut names = Vec::new();
    if !cfg.is_burst() {
        levels.push(&mut asm);
        names.push("asm");
    }
    levels.push(&mut sc);
    levels.push(&mut drv);
    levels.push(&mut ovl);
    names.extend(["systemc", "rtl", "rtl+ovl"]);

    let mut collectors: Vec<CoverageCollector> = (0..levels.len())
        .map(|_| CoverageCollector::new(model.clone()))
        .collect();
    let mut observers: Vec<&mut dyn CycleObserver> = collectors
        .iter_mut()
        .map(|c| c as &mut dyn CycleObserver)
        .collect();

    co_execute_observed(cfg.banks, &mut levels, workload, cycles, &mut observers)
        .expect("levels must agree on pins before coverage is comparable");

    let reference = collectors[0].hit_names();
    for (i, c) in collectors.iter().enumerate().skip(1) {
        let other = c.hit_names();
        let missing: Vec<&String> = reference.iter().filter(|n| !other.contains(n)).collect();
        let extra: Vec<&String> = other.iter().filter(|n| !reference.contains(n)).collect();
        assert!(
            missing.is_empty() && extra.is_empty(),
            "coverage diverges between {} and {}: {} lacks {:?}, has extra {:?}",
            names[0],
            names[i],
            names[i],
            missing,
            extra,
        );
    }
    reference
}

fn assert_equivalent_coverage(cfg: &LaConfig, seed: u64, cycles: u64) {
    // the ASM level models full-word writes only
    let mut mix = RandomMix::full_word(cfg, seed, 0.5, 0.5);
    assert_equivalent_coverage_with(cfg, CoverageModel::la1(cfg), &mut mix, cycles);
}

#[test]
fn coverage_is_level_equivalent_one_bank() {
    assert_equivalent_coverage(&small_cfg(1), 21, 400);
}

#[test]
fn coverage_is_level_equivalent_two_banks() {
    assert_equivalent_coverage(&small_cfg(2), 22, 400);
}

#[test]
fn coverage_is_level_equivalent_four_banks() {
    assert_equivalent_coverage(&small_cfg(4), 23, 400);
}

// ---- traffic cross bins (tier 3) --------------------------------------------

#[test]
fn traffic_model_bin_counts_are_pinned() {
    // three per-bank cross bins, plus the global pipe-full bin on
    // non-burst configurations (consecutive reads are illegal on LA-1B)
    assert_eq!(CoverageModel::la1_traffic(&small_cfg(1)).len(), 20 + 3 + 1);
    assert_eq!(CoverageModel::la1_traffic(&small_cfg(2)).len(), 42 + 6 + 1);
    assert_eq!(CoverageModel::la1_traffic(&small_cfg(4)).len(), 84 + 12 + 1);
    for banks in [1, 2, 4] {
        let base = CoverageModel::la1(&small_burst_cfg(banks));
        let traffic = CoverageModel::la1_traffic(&small_burst_cfg(banks));
        assert_eq!(traffic.len(), base.len() + 3 * banks as usize);
        assert_eq!(
            traffic.bins().iter().filter(|b| b.tier() == 3).count(),
            3 * banks as usize
        );
        // the read-stream window (2 * burst_len) outgrows the burst
        // second-beat window the base model needs
        assert_eq!(traffic.lookback(), 4);
        assert_eq!(base.lookback(), 3);
    }
    // the default model must not grow: closure and campaign reports
    // are byte-pinned against it
    assert!(CoverageModel::la1(&small_cfg(2))
        .bins()
        .iter()
        .all(|b| b.tier() < 3));
}

#[test]
fn traffic_bins_level_equivalent_under_contention() {
    let cfg = small_cfg(2);
    let mut workload = contention(&cfg, 0x007A_FF1C, 3);
    let hit = assert_equivalent_coverage_with(
        &cfg,
        CoverageModel::la1_traffic(&cfg),
        &mut workload,
        800,
    );
    // contention is what the tier-3 bins exist for: all of them close
    for name in [
        "traffic_pipe_full",
        "traffic_read_stream_0",
        "traffic_read_stream_1",
        "traffic_write_stream_0",
        "traffic_write_stream_1",
        "traffic_rw_turnaround_0",
        "traffic_rw_turnaround_1",
    ] {
        assert!(hit.iter().any(|h| h == name), "contention must hit {name}");
    }
}

#[test]
fn traffic_bins_level_equivalent_under_burst_stream() {
    let cfg = small_burst_cfg(2);
    let mut agent = Agent::new(&cfg, QdrStream::new(&cfg, 0x007A_FF1D, 0.7));
    let hit = assert_equivalent_coverage_with(
        &cfg,
        CoverageModel::la1_traffic(&cfg),
        &mut agent,
        600,
    );
    // a QDR sweep is a sustained min-spaced lookup stream per bank
    for name in ["traffic_read_stream_0", "traffic_read_stream_1"] {
        assert!(hit.iter().any(|h| h == name), "qdr must hit {name}");
    }
}

// ---- guided generation and closure ------------------------------------------

#[test]
fn guided_stream_is_deterministic() {
    let cfg = small_cfg(2);
    let stream = |seed: u64| {
        let mut g = GuidedMix::new(&cfg, seed, 0.4, 0.4);
        let model = CoverageModel::la1(&cfg);
        g.retarget(model.bins());
        let mut agent = Agent::new(&cfg, g);
        (0..300).map(|_| agent.next_cycle()).collect::<Vec<_>>()
    };
    assert_eq!(stream(7), stream(7), "same seed, same stream");
    assert_ne!(stream(7), stream(8), "different seeds diverge");
}

#[test]
fn closure_report_is_byte_reproducible() {
    let cfg = small_closure(small_cfg(2), 3);
    let a = run_closure(&cfg, true).to_json();
    let b = run_closure(&cfg, true).to_json();
    assert_eq!(a, b);
}

#[test]
fn guided_closure_reaches_full_coverage() {
    for banks in [1, 2] {
        let report = run_closure(&small_closure(small_cfg(banks), 1), true);
        assert!(
            report.closed,
            "guided closure must reach 100% at {banks} bank(s); unhit: {:?}",
            report.unhit
        );
        assert_eq!(report.bins_hit, report.bins_total);
    }
}

#[test]
fn guided_closes_faster_than_random() {
    let cfg = small_closure(small_cfg(2), 1);
    let guided = run_closure(&cfg, true);
    let random = run_closure(&cfg, false);
    assert!(guided.closed);
    let guided_cycles = guided.cycles_to_closure.expect("closed");
    // a random run that never closed is censored at the budget
    let random_cycles = random.cycles_to_closure.unwrap_or(cfg.budget);
    assert!(
        guided_cycles < random_cycles,
        "guided {guided_cycles} vs random {random_cycles}"
    );
}

#[test]
fn guided_closure_covers_burst_bins() {
    let report = run_closure(&small_closure(small_burst_cfg(1), 1), true);
    assert!(
        report.closed,
        "burst closure must cover tier-2 bins; unhit: {:?}",
        report.unhit
    );
    assert!(report.burst);
    assert!(report.bins_total > report.tier1_total);
}

#[test]
fn guided_respects_burst_spacing() {
    let cfg = small_burst_cfg(2);
    let mut g = GuidedMix::new(&cfg, 11, 0.7, 0.5);
    let model = CoverageModel::la1(&cfg);
    g.retarget(model.bins());
    let mut agent = Agent::new(&cfg, g);
    let mut last_read: Option<u64> = None;
    for cycle in 0..2_000u64 {
        let ops = agent.next_cycle();
        assert!(ops.iter().filter(|o| o.is_read()).count() <= 1);
        assert!(ops.iter().filter(|o| !o.is_read()).count() <= 1);
        if ops.iter().any(BankOp::is_read) {
            if let Some(prev) = last_read {
                assert!(
                    cycle - prev >= cfg.burst_len as u64,
                    "read at {cycle} violates burst spacing (previous at {prev})"
                );
            }
            last_read = Some(cycle);
        }
    }
}

// ---- multi-stream RTL closure (scalar vs bit-parallel) ----------------------

#[test]
fn batched_closure_matches_scalar_byte_for_byte() {
    // Plain LA-1 at 1 and 2 banks, guided and random, plus an LA-1B
    // burst configuration — in every case the 64-lane bit-parallel
    // runner must reproduce the sequential multi-driver reference's
    // report byte for byte.
    let cases = [
        (small_cfg(1), 5u64, true, 8u32),
        (small_cfg(2), 7, true, 16),
        (small_cfg(2), 7, false, 16),
        (small_burst_cfg(1), 9, true, 8),
    ];
    for (config, seed, guided, streams) in cases {
        let banks = config.banks;
        let cfg = ClosureConfig {
            budget: 4_000,
            epoch: 250,
            ..ClosureConfig::new(config, seed)
        };
        let scalar = run_closure_rtl(&cfg, guided, streams);
        let batched = run_closure_rtl_batched(&cfg, guided, streams);
        assert_eq!(
            scalar.to_json(),
            batched.to_json(),
            "batched multi-stream closure diverged at {banks} bank(s), \
             guided={guided}, streams={streams}"
        );
    }
}

#[test]
fn multi_stream_merge_equals_sequential_union() {
    // The merged bin set is exactly the union of what the same streams
    // hit when run individually (streams share nothing but guidance,
    // and with guidance off they share nothing at all).
    let cfg = ClosureConfig {
        budget: 2_000,
        epoch: 250,
        ..ClosureConfig::new(small_cfg(2), 13)
    };
    let streams = 6u32;
    let merged = run_closure_rtl(&cfg, false, streams);
    let model = CoverageModel::la1(&cfg.config);
    let mut union = vec![false; model.len()];
    for i in 0..streams {
        let single = ClosureConfig {
            seed: multi_stream_seed(cfg.seed, i as u64),
            ..cfg.clone()
        };
        // replay stream i alone for exactly as many cycles as the
        // merged run gave it (it may have closed before the budget)
        let one = run_closure_rtl_single_raw(&single, &model, merged.cycles_run);
        for (u, h) in union.iter_mut().zip(one) {
            *u |= h;
        }
    }
    let merged_names: Vec<String> = model
        .bins()
        .iter()
        .zip(&union)
        .filter(|(_, &h)| !h)
        .map(|(b, _)| b.name())
        .collect();
    assert_eq!(merged.unhit, merged_names);
    assert_eq!(merged.bins_hit, union.iter().filter(|&&h| h).count());
}

/// Replays exactly one of the multi-run's streams: same derived seed,
/// same epoch-chunked schedule, no guidance. Returns per-bin hit flags.
fn run_closure_rtl_single_raw(
    cfg: &ClosureConfig,
    model: &CoverageModel,
    cycles: u64,
) -> Vec<bool> {
    let design = LaRtl::build(&cfg.config, None);
    let mut driver = LaRtlDriver::new(&design);
    let mut generator = RandomMix::new(&cfg.config, cfg.seed, cfg.read_prob, cfg.write_prob);
    let mut collector = CoverageCollector::new(model.clone());
    for _ in 0..cycles {
        let ops = generator.next_cycle();
        driver.cycle(&ops);
        collector.observe(&ops, &mut driver);
    }
    collector.hits().iter().map(|&h| h > 0).collect()
}

/// Mirrors `multi::stream_seed` so the union test can re-derive the
/// per-stream seeds (kept private in the module under test).
fn multi_stream_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream + 1));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

#[test]
fn batched_closure_report_is_byte_reproducible() {
    let cfg = ClosureConfig {
        budget: 2_000,
        epoch: 250,
        ..ClosureConfig::new(small_cfg(1), 3)
    };
    let a = run_closure_rtl_batched(&cfg, true, 12).to_json();
    let b = run_closure_rtl_batched(&cfg, true, 12).to_json();
    assert_eq!(a, b);
}

// ---- mergeable bin statistics ------------------------------------------------

#[test]
fn bin_stats_merge_sums_hits_and_takes_earliest_first_hit() {
    let cfg = small_cfg(1);
    let run = |seed: u64| {
        let mut collector = CoverageCollector::new(CoverageModel::la1(&cfg));
        let mut sc = LaSystemC::new(&cfg);
        let mut mix = RandomMix::new(&cfg, seed, 0.5, 0.5);
        run_abv_observed(&mut sc, &mut mix, 400, &mut collector);
        collector.bin_stats()
    };
    let a = run(3);
    let b = run(4);
    let mut merged = a.clone();
    CoverageModel::merge_bins(&mut merged, &b);
    for (name, stat) in &merged {
        let sa = &a[name];
        let sb = &b[name];
        assert_eq!(stat.hits, sa.hits + sb.hits, "{name} hits must sum");
        let expected_first = match (sa.first_hit, sb.first_hit) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        };
        assert_eq!(stat.first_hit, expected_first, "{name} first hit must be the earliest");
        assert_eq!(stat.tier, sa.tier);
    }
}

#[test]
fn multi_stream_report_carries_mergeable_bins() {
    let cfg = small_closure(small_cfg(1), 9);
    let report = run_closure_rtl_batched(&cfg, true, 4);
    assert_eq!(report.bins.len(), report.bins_total);
    // the mergeable map agrees with the report's own summary figures
    let hit = report.bins.values().filter(|s| s.hits > 0).count();
    assert_eq!(hit, report.bins_hit);
    let unhit: Vec<&String> = report
        .bins
        .iter()
        .filter(|(_, s)| s.hits == 0)
        .map(|(n, _)| n)
        .collect();
    assert_eq!(unhit.len(), report.unhit.len());
}

// ---- property-based checks (vendored proptest) -------------------------------

#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use crate::model::{BinStat, BinStats};
    use proptest::prelude::*;

    /// Arbitrary per-bin statistics over a small shared name universe,
    /// so generated shards overlap on some bins and miss others. Tier
    /// is a function of the name (as it is for real models).
    fn arb_bin_stats() -> impl Strategy<Value = BinStats> {
        prop::collection::vec((0usize..6, 0u64..50, any::<bool>(), 0u64..1_000), 0..6).prop_map(
            |entries| {
                let mut stats = BinStats::new();
                for (name_idx, hits, hit_at_all, first) in entries {
                    stats.insert(
                        format!("bin_{name_idx}"),
                        BinStat {
                            tier: (name_idx % 3) as u32 + 1,
                            hits: if hit_at_all { hits + 1 } else { 0 },
                            first_hit: hit_at_all.then_some(first),
                        },
                    );
                }
                stats
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Same seed ⇒ byte-identical guided op streams.
        #[test]
        fn guided_streams_replay(seed in 0u64..1_000, banks in 1u32..4) {
            let cfg = small_cfg(banks);
            let emit = |s: u64| {
                let mut g = GuidedMix::new(&cfg, s, 0.5, 0.5);
                let model = CoverageModel::la1(&cfg);
                g.retarget(model.bins());
                let mut agent = Agent::new(&cfg, g);
                (0..200).map(|_| agent.next_cycle()).collect::<Vec<_>>()
            };
            prop_assert_eq!(emit(seed), emit(seed));
        }

        /// merge_bins is commutative and associative on full stat maps
        /// (hit sums and first-hit minima both commute and associate).
        #[test]
        fn merge_bins_commutes_and_associates(
            a in arb_bin_stats(),
            b in arb_bin_stats(),
            c in arb_bin_stats(),
        ) {
            let mut ab = a.clone();
            CoverageModel::merge_bins(&mut ab, &b);
            let mut ba = b.clone();
            CoverageModel::merge_bins(&mut ba, &a);
            prop_assert_eq!(&ab, &ba);
            // (a ∪ b) ∪ c == a ∪ (b ∪ c)
            let mut abc = ab;
            CoverageModel::merge_bins(&mut abc, &c);
            let mut bc = b.clone();
            CoverageModel::merge_bins(&mut bc, &c);
            let mut a_bc = a.clone();
            CoverageModel::merge_bins(&mut a_bc, &bc);
            prop_assert_eq!(abc, a_bc);
        }

        /// On the coverage view — the covered bin set and the first-hit
        /// cycles — merging a shard into itself changes nothing: hit
        /// counts are additive volume counters, coverage is a union.
        #[test]
        fn merge_bins_is_idempotent_on_the_coverage_view(a in arb_bin_stats()) {
            let mut aa = a.clone();
            CoverageModel::merge_bins(&mut aa, &a);
            prop_assert_eq!(aa.len(), a.len());
            for (name, stat) in &a {
                let merged = &aa[name];
                prop_assert_eq!(merged.hits > 0, stat.hits > 0);
                prop_assert_eq!(merged.first_hit, stat.first_hit);
                prop_assert_eq!(merged.tier, stat.tier);
            }
        }

        /// Disjoint and overlapping shard families union to the same
        /// result as one sequential fold (merge == sequential union).
        #[test]
        fn merge_bins_equals_sequential_union(
            shards in prop::collection::vec(arb_bin_stats(), 1..5),
            keys in prop::collection::vec(any::<u64>(), 5),
        ) {
            let sequential = shards.iter().fold(BinStats::new(), |mut acc, s| {
                CoverageModel::merge_bins(&mut acc, s);
                acc
            });
            // fold again in a key-shuffled order
            let mut order: Vec<usize> = (0..shards.len()).collect();
            order.sort_by_key(|&i| keys[i]);
            let shuffled = order.iter().fold(BinStats::new(), |mut acc, &i| {
                CoverageModel::merge_bins(&mut acc, &shards[i]);
                acc
            });
            prop_assert_eq!(sequential, shuffled);
        }

        /// Every guided cycle respects the single address bus: at most
        /// one read and one write, addresses in range.
        #[test]
        fn guided_respects_single_address_bus(seed in 0u64..1_000, banks in 1u32..5) {
            let cfg = small_cfg(banks);
            let mut g = GuidedMix::new(&cfg, seed, 0.6, 0.6);
            let model = CoverageModel::la1(&cfg);
            g.retarget(model.bins());
            let mut agent = Agent::new(&cfg, g);
            for _ in 0..400 {
                let ops = agent.next_cycle();
                prop_assert!(ops.iter().filter(|o| o.is_read()).count() <= 1);
                prop_assert!(ops.iter().filter(|o| !o.is_read()).count() <= 1);
                for op in &ops {
                    prop_assert!(op.bank() < cfg.banks);
                    let addr = match *op {
                        BankOp::Read { addr, .. } | BankOp::Write { addr, .. } => addr,
                    };
                    prop_assert!(addr < cfg.words_per_bank as u64);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Golden stimulus streams (transaction-layer equivalence anchors)
// ---------------------------------------------------------------------------

/// Renders one stimulus cycle for the golden stream files.
fn render_cycle(ops: &[BankOp]) -> String {
    if ops.is_empty() {
        return "-".to_string();
    }
    ops.iter()
        .map(|op| match *op {
            BankOp::Read { bank, addr } => format!("R{bank}:{addr}"),
            BankOp::Write {
                bank,
                addr,
                data,
                byte_en,
            } => format!("W{bank}:{addr}:{data:016x}:{byte_en:x}"),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Compares `produced` against the committed golden file (or rewrites
/// it under `UPDATE_GOLDEN=1`).
fn check_golden(file: &str, produced: &str) {
    let path = format!("{}/golden/{}", env!("CARGO_MANIFEST_DIR"), file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, produced).expect("update golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect("read committed golden file");
    assert_eq!(
        produced, golden,
        "stimulus stream drifted from the committed golden \
         (crates/cover/golden/{file}); if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test -p la1-cover"
    );
}

/// The pinned guided-stream schedule: random warm-up, a full-model
/// retarget (directed plan, including delayed reads under LA-1B), a
/// mid-plan retarget back to empty (the plan — and any delayed read —
/// must be dropped), and a random tail.
fn guided_stream(cfg: &LaConfig, seed: u64) -> Vec<Vec<BankOp>> {
    let model = CoverageModel::la1(cfg);
    let mut agent = Agent::new(cfg, GuidedMix::new(cfg, seed, 0.45, 0.45));
    let mut out = Vec::new();
    for _ in 0..40 {
        out.push(agent.next_cycle());
    }
    // a retarget replaces the plan wholesale: any item delayed out of
    // the old plan is dropped with it (pending slot cancelled)
    agent.driver_mut().cancel_pending(0);
    agent.seq_mut().retarget(model.bins());
    for _ in 0..130 {
        out.push(agent.next_cycle());
    }
    agent.driver_mut().cancel_pending(0);
    agent.seq_mut().retarget(&[]);
    for _ in 0..30 {
        out.push(agent.next_cycle());
    }
    out
}

fn random_stream(cfg: &LaConfig, seed: u64, full_word: bool) -> Vec<Vec<BankOp>> {
    let mut w = if full_word {
        RandomMix::full_word(cfg, seed, 0.6, 0.45)
    } else {
        RandomMix::new(cfg, seed, 0.6, 0.45)
    };
    (0..150).map(|_| w.next_cycle()).collect()
}

#[test]
fn golden_guided_streams_byte_identical() {
    let mut out = String::new();
    for (label, cfg) in [
        ("la1_banks1", LaConfig::new(1)),
        ("la1_banks2", LaConfig::new(2)),
        ("la1_banks4", LaConfig::new(4)),
        ("la1b_banks1", LaConfig::la1b(1)),
        ("la1b_banks2", LaConfig::la1b(2)),
    ] {
        out.push_str(&format!("# {label} seed={}\n", 0xC0FF + cfg.banks as u64));
        for ops in guided_stream(&cfg, 0xC0FF + cfg.banks as u64) {
            out.push_str(&render_cycle(&ops));
            out.push('\n');
        }
    }
    check_golden("guided_streams.txt", &out);
}

#[test]
fn golden_randommix_streams_byte_identical() {
    let mut out = String::new();
    for (label, cfg, full) in [
        ("la1_banks1", LaConfig::new(1), false),
        ("la1_banks2", LaConfig::new(2), false),
        ("la1_banks4", LaConfig::new(4), false),
        ("la1_banks2_full_word", LaConfig::new(2), true),
    ] {
        out.push_str(&format!("# {label} seed={}\n", 0xAB + cfg.banks as u64));
        for ops in random_stream(&cfg, 0xAB + cfg.banks as u64, full) {
            out.push_str(&render_cycle(&ops));
            out.push('\n');
        }
    }
    check_golden("random_streams.txt", &out);
}

#[test]
fn golden_closure_reports_byte_identical() {
    let mut out = String::new();
    for (cfg, budget) in [(LaConfig::new(1), 4_000), (LaConfig::la1b(2), 6_000)] {
        let mut c = ClosureConfig::new(cfg, 7);
        c.budget = budget;
        c.epoch = 200;
        out.push_str(&run_closure(&c, true).to_json());
        out.push_str(&run_closure(&c, false).to_json());
    }
    let mut c = ClosureConfig::new(LaConfig::new(2), 7);
    c.budget = 1_200;
    c.epoch = 300;
    out.push_str(&run_closure_rtl_batched(&c, true, 8).to_json());
    check_golden("closure_reports.json", &out);
}

// ---- staged closure and warm-start preambles --------------------------------

/// Runs `run_closure`-style epochs straight through for `budget`
/// cycles and returns the final coverage fingerprint (hit counts plus
/// first-hit cycles) and the violation count — everything stream 0 of
/// a staged run must reproduce byte for byte.
fn straight_through(cfg: &crate::staged::StagedConfig, budget: u64) -> (Vec<u64>, Vec<Option<u64>>, usize) {
    let mut sc = LaSystemC::new(&cfg.closure.config);
    let mut collector = CoverageCollector::new(CoverageModel::la1(&cfg.closure.config));
    let mut generator = crate::closure::Generator::for_stream(&cfg.closure, cfg.guided, cfg.closure.seed);
    let mut run = 0u64;
    while run < budget && !collector.is_full() {
        if cfg.guided {
            generator.retarget(&collector.unhit());
        }
        let step = cfg.closure.epoch.min(budget - run);
        run_abv_observed(&mut sc, &mut generator, step, &mut collector);
        run += step;
    }
    (
        collector.hits().to_vec(),
        collector.first_hits().to_vec(),
        sc.violation_count(),
    )
}

#[test]
fn staged_stream_zero_is_byte_identical_to_straight_through() {
    let mut cfg = crate::staged::StagedConfig::new(small_cfg(2), 11);
    cfg.closure.epoch = 200;
    cfg.stage1_budget = 1_000; // epoch multiple, so boundaries align
    cfg.streams = 3;
    cfg.stream_budget = 2_000;
    let report = crate::staged::run_staged(&cfg).expect("staged run");
    assert_eq!(report.streams.len(), 3);
    assert_eq!(report.stage1_cycles, 1_000.min(report.stage1_cycles));

    // the straight-through reference stops at the same closure point
    let budget = report.stage1_cycles + report.streams[0].cycles_run;
    let (hits, first, _) = straight_through(&cfg, budget);
    let s0 = &report.streams[0];
    assert!(!s0.reseeded);
    assert_eq!(
        s0.bins_hit,
        hits.iter().filter(|&&h| h > 0).count(),
        "stream 0 must match the run that never checkpointed"
    );
    // the full counter state matters, not just the hit set: re-run the
    // staged flow and compare its stream-0 collector to the reference
    let parsed = {
        // reconstruct the checkpoint exactly as run_staged did
        let mut sc = LaSystemC::new(&cfg.closure.config);
        let mut collector = CoverageCollector::new(CoverageModel::la1(&cfg.closure.config));
        let mut generator =
            crate::closure::Generator::for_stream(&cfg.closure, cfg.guided, cfg.closure.seed);
        let mut run = 0u64;
        while run < cfg.stage1_budget && !collector.is_full() {
            if cfg.guided {
                generator.retarget(&collector.unhit());
            }
            let step = cfg.closure.epoch.min(cfg.stage1_budget - run);
            run_abv_observed(&mut sc, &mut generator, step, &mut collector);
            run += step;
        }
        let ckpt =
            crate::staged::StageCheckpoint::capture(&cfg, &sc, &collector, &generator).unwrap();
        crate::staged::StageCheckpoint::parse(&ckpt.to_jsonl()).unwrap()
    };
    let (mut sc, mut collector, mut generator) = parsed.restore(&cfg).unwrap();
    let mut run2 = 0u64;
    while run2 < cfg.stream_budget && !collector.is_full() {
        if cfg.guided {
            generator.retarget(&collector.unhit());
        }
        let step = cfg.closure.epoch.min(cfg.stream_budget - run2);
        run_abv_observed(&mut sc, &mut generator, step, &mut collector);
        run2 += step;
    }
    assert_eq!(collector.hits(), &hits[..], "hit counters diverged");
    assert_eq!(collector.first_hits(), &first[..], "first-hit cycles diverged");
}

#[test]
fn stage_checkpoint_round_trips_and_rejects_corruption() {
    let mut cfg = crate::staged::StagedConfig::new(small_cfg(1), 5);
    cfg.closure.epoch = 100;
    cfg.stage1_budget = 300;
    let mut sc = LaSystemC::new(&cfg.closure.config);
    let mut collector = CoverageCollector::new(CoverageModel::la1(&cfg.closure.config));
    let mut generator =
        crate::closure::Generator::for_stream(&cfg.closure, cfg.guided, cfg.closure.seed);
    run_abv_observed(&mut sc, &mut generator, 300, &mut collector);
    let ckpt = crate::staged::StageCheckpoint::capture(&cfg, &sc, &collector, &generator).unwrap();
    let text = ckpt.to_jsonl();

    // byte-stable round trip
    let parsed = crate::staged::StageCheckpoint::parse(&text).unwrap();
    assert_eq!(parsed, ckpt);
    assert_eq!(parsed.to_jsonl(), text);

    // truncation at every byte boundary is a typed error, never a panic
    use la1_core::checkpoint::CheckpointError;
    for cut in 0..text.len() {
        let err = crate::staged::StageCheckpoint::parse(&text[..cut])
            .expect_err("every proper prefix must fail");
        assert!(
            matches!(
                err,
                CheckpointError::Truncated | CheckpointError::Malformed { .. }
            ),
            "prefix of {cut} bytes gave {err:?}"
        );
    }

    // wrong configuration refuses with a fingerprint mismatch
    let other = crate::staged::StagedConfig::new(small_cfg(2), 5);
    assert!(matches!(
        parsed.restore(&other),
        Err(CheckpointError::FingerprintMismatch { .. })
    ));
}

#[test]
fn warm_and_cold_preambles_close_identically() {
    let cfg = small_closure(small_cfg(2), 21);
    let cold = crate::multi::ClosurePreamble::record(&cfg.config, 77, 400);
    let warm = cold.clone().with_snapshots(&cfg.config).expect("snapshots");
    assert!(!cold.is_warm());
    assert!(warm.is_warm());

    let from_cold = crate::multi::run_closure_rtl_from(&cfg, true, 2, Some(&cold)).unwrap();
    let from_warm = crate::multi::run_closure_rtl_from(&cfg, true, 2, Some(&warm)).unwrap();
    assert_eq!(
        from_cold.to_json(),
        from_warm.to_json(),
        "restoring the preamble snapshot must equal replaying the trace"
    );
    assert_eq!(from_cold.bins, from_warm.bins);

    // batched path agrees with the scalar path under the same preamble
    let batched = crate::multi::run_closure_rtl_batched_from(&cfg, true, 2, Some(&warm)).unwrap();
    assert_eq!(from_warm.to_json(), batched.to_json());

    // a preamble for a different configuration refuses
    let foreign = crate::multi::ClosurePreamble::record(&small_cfg(4), 77, 50);
    assert!(crate::multi::run_closure_rtl_from(&cfg, true, 1, Some(&foreign)).is_err());
}
