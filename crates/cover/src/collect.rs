//! The coverage collector: a passive [`CycleObserver`] that samples
//! stimulus and pins each cycle and scores the [`CoverageModel`]'s
//! bins.
//!
//! All bin predicates are *pin-derived*: they are pure functions of the
//! driven operations plus the outputs every
//! [`CycleModel`](la1_core::cycle_model::CycleModel) exposes (per-bank
//! data-valid word, write-done flag, parity-error flag) over a short
//! history window. Nothing peeks at level-internal state, so a healthy
//! design hits the identical bin set at every refinement level — the
//! cross-level coverage-equivalence property the test suite pins.

use crate::model::{BinKind, BinStat, BinStats, CoverBin, CoverageModel};
use la1_core::cycle_model::{CycleModel, CycleObserver};
use la1_core::spec::{BankOp, READ_LATENCY};

/// What one bank showed in one cycle: the driven operations and the
/// sampled pins.
#[derive(Debug, Clone, Default)]
struct BankSample {
    /// Read address driven this cycle, if any.
    read: Option<u64>,
    /// Write `(address, byte_en)` driven this cycle, if any.
    write: Option<(u64, u32)>,
    /// Word on the output bus if the data-valid flag was set.
    dv: Option<u64>,
    /// Write-done flag.
    wdone: bool,
    /// Parity-error flag.
    perr: bool,
}

/// One cycle's samples across all banks.
#[derive(Debug, Clone, Default)]
struct CycleSample {
    banks: Vec<BankSample>,
}

impl CycleSample {
    fn any_read(&self) -> bool {
        self.banks.iter().any(|b| b.read.is_some())
    }

    fn any_write(&self) -> bool {
        self.banks.iter().any(|b| b.write.is_some())
    }

    /// Whether any op (read or write) targets `(bank, addr)`.
    fn targets(&self, bank: usize, addr: u64) -> bool {
        let b = &self.banks[bank];
        b.read == Some(addr) || matches!(b.write, Some((a, _)) if a == addr)
    }
}

/// Serializable form of one bank's cycle sample (the collector's
/// private ring entries, mirrored so a checkpoint can carry them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankSampleSnap {
    /// Read address driven this cycle, if any.
    pub read: Option<u64>,
    /// Write `(address, byte_en)` driven this cycle, if any.
    pub write: Option<(u64, u32)>,
    /// Word on the output bus if the data-valid flag was set.
    pub dv: Option<u64>,
    /// Write-done flag.
    pub wdone: bool,
    /// Parity-error flag.
    pub perr: bool,
}

/// Serializable dynamic state of a [`CoverageCollector`]
/// ([`CoverageCollector::snapshot_state`] /
/// [`CoverageCollector::restore_state`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectorSnap {
    /// Hit count per bin, in model order.
    pub hits: Vec<u64>,
    /// First-hit cycle per bin, in model order.
    pub first_hit: Vec<Option<u64>>,
    /// The history ring in storage order: `history[i][bank]`.
    pub history: Vec<Vec<BankSampleSnap>>,
    /// Cycles observed so far.
    pub cycle: u64,
}

/// Collects functional coverage from any [`CycleModel`] run.
///
/// Attach through
/// [`run_abv_observed`](la1_core::harness::run_abv_observed) or
/// [`co_execute_observed`](la1_core::cycle_model::co_execute_observed);
/// the collector is observation-only and never drives the model.
#[derive(Debug)]
pub struct CoverageCollector {
    model: CoverageModel,
    /// Hit count per bin, indexed like `model.bins()`.
    hits: Vec<u64>,
    /// First cycle (0-based) each bin was hit.
    first_hit: Vec<Option<u64>>,
    /// History ring: `history[(cycle - k) % depth]` is the sample from
    /// `k` cycles ago once `cycle >= k`.
    history: Vec<CycleSample>,
    cycle: u64,
}

impl CoverageCollector {
    /// Creates a collector for `model` with all bins unhit.
    pub fn new(model: CoverageModel) -> Self {
        let n = model.len();
        let depth = model.lookback() + 1;
        let banks = model.banks as usize;
        CoverageCollector {
            model,
            hits: vec![0; n],
            first_hit: vec![None; n],
            history: (0..depth)
                .map(|_| CycleSample {
                    banks: vec![BankSample::default(); banks],
                })
                .collect(),
            cycle: 0,
        }
    }

    /// The coverage model being scored.
    pub fn model(&self) -> &CoverageModel {
        &self.model
    }

    /// Cycles observed so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Hit counts, indexed like [`CoverageModel::bins`].
    pub fn hits(&self) -> &[u64] {
        &self.hits
    }

    /// First-hit cycle per bin (0-based), indexed like
    /// [`CoverageModel::bins`].
    pub fn first_hits(&self) -> &[Option<u64>] {
        &self.first_hit
    }

    /// Number of bins hit at least once.
    pub fn covered(&self) -> usize {
        self.hits.iter().filter(|&&h| h > 0).count()
    }

    /// Number of tier-1 bins hit at least once.
    pub fn covered_tier1(&self) -> usize {
        self.model
            .bins()
            .iter()
            .zip(&self.hits)
            .filter(|(b, &h)| b.tier() == 1 && h > 0)
            .count()
    }

    /// Whether every defined bin has been hit.
    pub fn is_full(&self) -> bool {
        self.hits.iter().all(|&h| h > 0)
    }

    /// The bins not yet hit, in model order.
    pub fn unhit(&self) -> Vec<CoverBin> {
        self.model
            .bins()
            .iter()
            .zip(&self.hits)
            .filter(|(_, &h)| h == 0)
            .map(|(b, _)| *b)
            .collect()
    }

    /// The hit bins' names, in model order — the cross-level
    /// equivalence test compares these sets between levels.
    pub fn hit_names(&self) -> Vec<String> {
        self.model
            .bins()
            .iter()
            .zip(&self.hits)
            .filter(|(_, &h)| h > 0)
            .map(|(b, _)| b.name())
            .collect()
    }

    /// Snapshots the per-bin statistics in mergeable form — the
    /// coverage result one farm shard hands back
    /// ([`CoverageModel::merge_bins`] folds them).
    pub fn bin_stats(&self) -> BinStats {
        self.model
            .bins()
            .iter()
            .enumerate()
            .map(|(i, bin)| {
                (
                    bin.name(),
                    BinStat {
                        tier: bin.tier(),
                        hits: self.hits[i],
                        first_hit: self.first_hit[i],
                    },
                )
            })
            .collect()
    }

    /// The cycle count after which coverage was complete: one past the
    /// latest first hit. `None` while any bin is unhit.
    pub fn cycles_to_full(&self) -> Option<u64> {
        if !self.is_full() {
            return None;
        }
        self.first_hit.iter().map(|f| f.unwrap() + 1).max()
    }

    /// Captures the collector's full dynamic state: per-bin counters
    /// *and* the sample-history ring. The ring matters — the sequence
    /// and monitor-activation bins look back several cycles, so a
    /// restored collector without it would score the first post-restore
    /// cycles differently from a straight-through run.
    pub fn snapshot_state(&self) -> CollectorSnap {
        CollectorSnap {
            hits: self.hits.clone(),
            first_hit: self.first_hit.clone(),
            history: self
                .history
                .iter()
                .map(|c| {
                    c.banks
                        .iter()
                        .map(|b| BankSampleSnap {
                            read: b.read,
                            write: b.write,
                            dv: b.dv,
                            wdone: b.wdone,
                            perr: b.perr,
                        })
                        .collect()
                })
                .collect(),
            cycle: self.cycle,
        }
    }

    /// Restores state captured by [`CoverageCollector::snapshot_state`]
    /// into a collector built over the same coverage model. Errors when
    /// the shapes disagree (different model, bank count or lookback
    /// depth).
    pub fn restore_state(&mut self, snap: &CollectorSnap) -> Result<(), String> {
        if snap.hits.len() != self.hits.len() || snap.first_hit.len() != self.first_hit.len() {
            return Err(format!(
                "collector snapshot has {} bins, model defines {}",
                snap.hits.len(),
                self.hits.len()
            ));
        }
        if snap.history.len() != self.history.len() {
            return Err(format!(
                "collector snapshot has a depth-{} history ring, model needs {}",
                snap.history.len(),
                self.history.len()
            ));
        }
        let banks = self.model.banks as usize;
        if snap.history.iter().any(|c| c.len() != banks) {
            return Err(format!("collector snapshot bank count is not {banks}"));
        }
        self.hits = snap.hits.clone();
        self.first_hit = snap.first_hit.clone();
        self.history = snap
            .history
            .iter()
            .map(|c| CycleSample {
                banks: c
                    .iter()
                    .map(|b| BankSample {
                        read: b.read,
                        write: b.write,
                        dv: b.dv,
                        wdone: b.wdone,
                        perr: b.perr,
                    })
                    .collect(),
            })
            .collect();
        self.cycle = snap.cycle;
        Ok(())
    }

    /// The sample from `k` cycles before the current one, or `None`
    /// when the run is younger than `k` cycles.
    fn back(&self, k: usize) -> Option<&CycleSample> {
        if (self.cycle as usize) < k {
            return None;
        }
        let depth = self.history.len();
        let idx = (self.cycle as usize - k) % depth;
        Some(&self.history[idx])
    }

    fn hit(&mut self, index: usize) {
        self.hits[index] += 1;
        if self.first_hit[index].is_none() {
            self.first_hit[index] = Some(self.cycle);
        }
    }

    /// Evaluates every bin predicate against the current history
    /// window and records hits. `cur` must already be stored at the
    /// ring slot for the current cycle.
    fn score(&mut self) {
        let words = self.model.words;
        let full = self.model.full_byte_en;
        let burst = self.model.burst_len;
        let lat = READ_LATENCY as usize;
        let hi_read = if burst >= 2 { words - burst } else { words - 1 };
        let mut fired = Vec::new();
        {
            let cur = self.back(0).expect("current sample present");
            for (i, bin) in self.model.bins().iter().enumerate() {
                let b = bin.bank as usize;
                let ok = match bin.kind {
                    BinKind::OpRead => cur.banks[b].read.is_some(),
                    BinKind::OpWrite => cur.banks[b].write.is_some(),
                    BinKind::OpWritePartial => {
                        matches!(cur.banks[b].write, Some((_, be)) if be != full)
                    }
                    BinKind::OpRwSame => {
                        cur.banks[b].read.is_some() && cur.banks[b].write.is_some()
                    }
                    BinKind::OpRwCross => {
                        cur.banks[b].read.is_some()
                            && cur
                                .banks
                                .iter()
                                .enumerate()
                                .any(|(o, s)| o != b && s.write.is_some())
                    }
                    BinKind::AddrReadLo => cur.banks[b].read == Some(0),
                    BinKind::AddrReadHi => cur.banks[b].read == Some(hi_read),
                    BinKind::AddrWriteLo => {
                        matches!(cur.banks[b].write, Some((0, _)))
                    }
                    BinKind::AddrWriteHi => {
                        matches!(cur.banks[b].write, Some((a, _)) if a == words - 1)
                    }
                    BinKind::SeqB2bRead => {
                        cur.banks[b].read.is_some()
                            && self
                                .back(burst as usize)
                                .is_some_and(|p| p.banks[b].read.is_some())
                    }
                    BinKind::SeqB2bWrite => {
                        cur.banks[b].write.is_some()
                            && self.back(1).is_some_and(|p| p.banks[b].write.is_some())
                    }
                    BinKind::SeqRaw => self.back(1).is_some_and(|p| {
                        matches!(p.banks[b].write, Some((a, _))
                            if cur.banks[b].read == Some(a))
                    }),
                    BinKind::BankCross => {
                        cur.targets(b + 1, 0)
                            && self
                                .back(1)
                                .is_some_and(|p| p.targets(b, words - 1))
                    }
                    BinKind::IdleCycle => !cur.any_read() && !cur.any_write(),
                    BinKind::MonReadLatencyArmed => self
                        .back(lat)
                        .is_some_and(|p| p.banks[b].read.is_some()),
                    BinKind::MonReadLatencyHeld => {
                        cur.banks[b].dv.is_some()
                            && self
                                .back(lat)
                                .is_some_and(|p| p.banks[b].read.is_some())
                    }
                    BinKind::MonNoSpuriousArmed => {
                        self.no_spurious_armed(b, burst, lat)
                    }
                    BinKind::MonNoSpuriousHeld => {
                        cur.banks[b].dv.is_none()
                            && self.no_spurious_armed(b, burst, lat)
                    }
                    BinKind::MonParityArmed => cur.banks[b].dv.is_some(),
                    BinKind::MonParityHeld => {
                        cur.banks[b].dv.is_some() && !cur.banks[b].perr
                    }
                    BinKind::MonWriteCommitArmed => {
                        self.back(1).is_some_and(|p| p.banks[b].write.is_some())
                    }
                    BinKind::MonWriteCommitHeld => {
                        cur.banks[b].wdone
                            && self.back(1).is_some_and(|p| p.banks[b].write.is_some())
                    }
                    BinKind::MonBurstBeatArmed => self
                        .back(lat + 1)
                        .is_some_and(|p| p.banks[b].read.is_some()),
                    BinKind::MonBurstBeatHeld => {
                        cur.banks[b].dv.is_some()
                            && self
                                .back(lat + 1)
                                .is_some_and(|p| p.banks[b].read.is_some())
                    }
                    BinKind::BurstMinSpacing => {
                        cur.any_read()
                            && self.back(burst as usize).is_some_and(|p| p.any_read())
                            && (1..burst as usize)
                                .all(|k| self.back(k).is_some_and(|p| !p.any_read()))
                    }
                    BinKind::XPipeFull => {
                        cur.any_read()
                            && cur.any_write()
                            && self
                                .back(1)
                                .is_some_and(|p| p.any_read() && p.any_write())
                    }
                    BinKind::XReadStream => {
                        cur.banks[b].read.is_some()
                            && self
                                .back(burst as usize)
                                .is_some_and(|p| p.banks[b].read.is_some())
                            && self
                                .back(2 * burst as usize)
                                .is_some_and(|p| p.banks[b].read.is_some())
                    }
                    BinKind::XWriteStream => {
                        cur.banks[b].write.is_some()
                            && (1..=2).all(|k| {
                                self.back(k)
                                    .is_some_and(|p| p.banks[b].write.is_some())
                            })
                    }
                    BinKind::XRwTurnaround => {
                        cur.banks[b].read.is_some()
                            && self.back(1).is_some_and(|p| p.banks[b].write.is_some())
                    }
                };
                if ok {
                    fired.push(i);
                }
            }
        }
        for i in fired {
            self.hit(i);
        }
    }

    /// The `no_spurious_dv` never-SERE's prefix matched: no read on
    /// the bank over the whole latency window ending one cycle ago
    /// (the burst form's window is one cycle longer).
    fn no_spurious_armed(&self, bank: usize, burst: u64, lat: usize) -> bool {
        let depth = if burst >= 2 { lat + 1 } else { lat };
        (lat..=depth).all(|k| {
            self.back(k)
                .is_some_and(|p| p.banks[bank].read.is_none())
        })
    }

    /// Renders the deterministic JSON coverage report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cycles\": {},\n", self.cycle));
        out.push_str(&format!("  \"bins_total\": {},\n", self.model.len()));
        out.push_str(&format!("  \"bins_hit\": {},\n", self.covered()));
        out.push_str("  \"bins\": [\n");
        let n = self.model.len();
        for (i, bin) in self.model.bins().iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"tier\": {}, \"hits\": {}, \"first_hit\": {}}}{}\n",
                bin.name(),
                bin.tier(),
                self.hits[i],
                la1_core::json::opt_u64(self.first_hit[i]),
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl CycleObserver for CoverageCollector {
    fn observe(&mut self, ops: &[BankOp], model: &mut dyn CycleModel) {
        let depth = self.history.len();
        let slot = (self.cycle as usize) % depth;
        {
            let sample = &mut self.history[slot];
            for (bank, s) in sample.banks.iter_mut().enumerate() {
                let bank = bank as u32;
                *s = BankSample {
                    read: None,
                    write: None,
                    dv: model.bank_output(bank),
                    wdone: model.write_done(bank),
                    perr: model.parity_error(bank),
                };
            }
            for op in ops {
                let s = &mut sample.banks[op.bank() as usize];
                match *op {
                    BankOp::Read { addr, .. } => s.read = Some(addr),
                    BankOp::Write { addr, byte_en, .. } => s.write = Some((addr, byte_en)),
                }
            }
        }
        self.score();
        self.cycle += 1;
    }
}
