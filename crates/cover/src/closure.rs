//! The coverage-closure loop: run seeded stimulus against the
//! SystemC-level model until every coverage bin is hit (or a cycle
//! budget runs out), guided or pure-random.
//!
//! [`run_closure`] is a campaign-style pure function of
//! ([`ClosureConfig`], guided flag): the same inputs produce a
//! byte-identical [`ClosureReport::to_json`]. The guided run retargets
//! its [`GuidedMix`] at every epoch boundary from the collector's
//! unhit-bin list; the baseline runs the same budget with no feedback
//! ([`RandomMix`] for plain LA-1, an unguided [`GuidedMix`] under
//! LA-1B, where blind traffic would violate the burst spacing rule).

use crate::collect::CoverageCollector;
use crate::guided::GuidedMix;
use crate::model::{CoverBin, CoverageModel};
use la1_core::harness::run_abv_observed;
use la1_core::sc_model::LaSystemC;
use la1_core::spec::{BankOp, LaConfig};
use la1_core::stimulus::{Driver, DriverSnap};
use la1_core::workloads::{RandomMix, Workload};

/// Parameters of one closure run.
#[derive(Debug, Clone)]
pub struct ClosureConfig {
    /// Interface configuration under stimulus.
    pub config: LaConfig,
    /// Generator seed.
    pub seed: u64,
    /// Maximum cycles to run.
    pub budget: u64,
    /// Cycles between guidance updates (epoch length).
    pub epoch: u64,
    /// Per-cycle read probability of the random fill.
    pub read_prob: f64,
    /// Per-cycle write probability of the random fill.
    pub write_prob: f64,
}

impl ClosureConfig {
    /// The default closure setup for a configuration: seed 1, a
    /// 400 000-cycle budget, 500-cycle epochs, balanced traffic.
    pub fn new(config: LaConfig, seed: u64) -> Self {
        ClosureConfig {
            config,
            seed,
            budget: 400_000,
            epoch: 500,
            read_prob: 0.45,
            write_prob: 0.45,
        }
    }
}

/// Outcome of one closure run.
#[derive(Debug, Clone)]
pub struct ClosureReport {
    /// Bank count of the configuration.
    pub banks: u32,
    /// Whether the configuration was an LA-1B (burst) one.
    pub burst: bool,
    /// Whether guidance was on.
    pub guided: bool,
    /// Generator seed.
    pub seed: u64,
    /// Cycle budget.
    pub budget: u64,
    /// Cycles actually simulated.
    pub cycles_run: u64,
    /// Bins defined by the coverage model.
    pub bins_total: usize,
    /// Bins hit at least once.
    pub bins_hit: usize,
    /// Tier-1 bins defined.
    pub tier1_total: usize,
    /// Tier-1 bins hit at least once.
    pub tier1_hit: usize,
    /// Whether every bin closed within the budget.
    pub closed: bool,
    /// Cycles after which coverage was complete (one past the latest
    /// first hit); `None` when the budget ran out first.
    pub cycles_to_closure: Option<u64>,
    /// Names of the bins still unhit, in model order.
    pub unhit: Vec<String>,
}

impl ClosureReport {
    /// Fraction of bins hit.
    pub fn coverage(&self) -> f64 {
        if self.bins_total == 0 {
            1.0
        } else {
            self.bins_hit as f64 / self.bins_total as f64
        }
    }

    /// Renders the deterministic JSON report.
    pub fn to_json(&self) -> String {
        let ctc = la1_core::json::opt_u64(self.cycles_to_closure);
        let unhit = la1_core::json::str_array_body(&self.unhit);
        format!(
            "{{\n  \"banks\": {},\n  \"burst\": {},\n  \"guided\": {},\n  \"seed\": {},\n  \
             \"budget\": {},\n  \"cycles_run\": {},\n  \"bins_total\": {},\n  \
             \"bins_hit\": {},\n  \"tier1_total\": {},\n  \"tier1_hit\": {},\n  \
             \"closed\": {},\n  \"cycles_to_closure\": {},\n  \"unhit\": [{}]\n}}\n",
            self.banks,
            self.burst,
            self.guided,
            self.seed,
            self.budget,
            self.cycles_run,
            self.bins_total,
            self.bins_hit,
            self.tier1_total,
            self.tier1_hit,
            self.closed,
            ctc,
            unhit
        )
    }
}

/// The two sequencer flavours a closure stream drives, each behind
/// its own single-master [`Driver`] (the transaction-level agent of
/// one stream).
pub(crate) enum GenSeq {
    Guided(GuidedMix),
    Random(RandomMix),
}

/// One closure stream's stimulus agent: the chosen sequencer plus the
/// [`Driver`] that maps its items onto protocol-legal cycles.
pub struct Generator {
    driver: Driver,
    seq: GenSeq,
}

impl Generator {
    /// The generator one closure stream uses: guided runs (and any
    /// burst run, where blind traffic would violate the spacing rule)
    /// get a [`GuidedMix`]; the unguided baseline gets a [`RandomMix`].
    pub fn for_stream(cfg: &ClosureConfig, guided: bool, seed: u64) -> Generator {
        let seq = if guided || cfg.config.is_burst() {
            GenSeq::Guided(GuidedMix::new(
                &cfg.config,
                seed,
                cfg.read_prob,
                cfg.write_prob,
            ))
        } else {
            GenSeq::Random(RandomMix::new(
                &cfg.config,
                seed,
                cfg.read_prob,
                cfg.write_prob,
            ))
        };
        Generator {
            driver: Driver::new(&cfg.config),
            seq,
        }
    }

    /// Retargets a guided stream's directed plan at `unhit` (no-op for
    /// the random baseline). The retarget replaces the whole plan, so
    /// an item delayed out of the *old* plan is dropped with it — the
    /// driver's pending slot is cancelled alongside.
    pub fn retarget(&mut self, unhit: &[CoverBin]) {
        self.driver.cancel_pending(0);
        if let GenSeq::Guided(g) = &mut self.seq {
            g.retarget(unhit);
        }
    }

    /// Captures the stream's full stimulus state: the driver's
    /// protocol bookkeeping plus the sequencer's rng and queues.
    pub fn snapshot_state(&self) -> (DriverSnap, GeneratorSnap) {
        let seq = match &self.seq {
            GenSeq::Guided(g) => GeneratorSnap::Guided(g.snapshot_state()),
            GenSeq::Random(r) => GeneratorSnap::Random(r.snapshot_state()),
        };
        (self.driver.snapshot_state(), seq)
    }

    /// Restores state captured by [`Generator::snapshot_state`] into a
    /// generator built by [`Generator::for_stream`] with the same
    /// configuration and guidance flag. Errors when the sequencer
    /// flavour disagrees (a guided snapshot into a random baseline or
    /// vice versa) or the driver shapes mismatch.
    pub fn restore_state(
        &mut self,
        driver: &DriverSnap,
        seq: &GeneratorSnap,
    ) -> Result<(), String> {
        self.driver.restore_state(driver)?;
        match (&mut self.seq, seq) {
            (GenSeq::Guided(g), GeneratorSnap::Guided(s)) => g.restore_state(s),
            (GenSeq::Random(r), GeneratorSnap::Random(s)) => r.restore_state(s),
            (GenSeq::Guided(_), GeneratorSnap::Random(_)) => {
                return Err("random-baseline snapshot into a guided stream".to_string())
            }
            (GenSeq::Random(_), GeneratorSnap::Guided(_)) => {
                return Err("guided snapshot into a random-baseline stream".to_string())
            }
        }
        Ok(())
    }

    /// Reseeds the sequencer's rng (queues and plan stay) — how the
    /// staged flow turns one checkpoint into divergent continuation
    /// streams.
    pub fn reseed(&mut self, seed: u64) {
        match &mut self.seq {
            GenSeq::Guided(g) => g.reseed(seed),
            GenSeq::Random(r) => r.reseed(seed),
        }
    }
}

/// Serializable state of one closure stream's sequencer, tagged by
/// flavour so a checkpoint restores into the matching generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeneratorSnap {
    /// A guided (or burst-legal) stream.
    Guided(crate::guided::GuidedMixSnap),
    /// The unguided random baseline.
    Random(la1_core::workloads::RandomMixSnap),
}

impl Workload for Generator {
    fn next_cycle(&mut self) -> Vec<BankOp> {
        match &mut self.seq {
            GenSeq::Guided(g) => self.driver.cycle_from(g),
            GenSeq::Random(r) => self.driver.cycle_from(r),
        }
    }
}

/// Runs one closure campaign on the SystemC-level model (the fastest
/// full-protocol level) and returns its report. Deterministic: a pure
/// function of `(cfg, guided)`.
pub fn run_closure(cfg: &ClosureConfig, guided: bool) -> ClosureReport {
    let model = CoverageModel::la1(&cfg.config);
    let mut collector = CoverageCollector::new(model);
    let mut sc = LaSystemC::new(&cfg.config);

    let mut generator = Generator::for_stream(cfg, guided, cfg.seed);

    let mut run = 0u64;
    while run < cfg.budget && !collector.is_full() {
        if guided {
            generator.retarget(&collector.unhit());
        }
        let step = cfg.epoch.min(cfg.budget - run);
        run_abv_observed(&mut sc, &mut generator, step, &mut collector);
        run += step;
    }

    let closed = collector.is_full();
    ClosureReport {
        banks: cfg.config.banks,
        burst: cfg.config.is_burst(),
        guided,
        seed: cfg.seed,
        budget: cfg.budget,
        cycles_run: run,
        bins_total: collector.model().len(),
        bins_hit: collector.covered(),
        tier1_total: collector.model().tier1_len(),
        tier1_hit: collector.covered_tier1(),
        closed,
        cycles_to_closure: collector.cycles_to_full(),
        unhit: collector.unhit().iter().map(|b| b.name()).collect(),
    }
}
