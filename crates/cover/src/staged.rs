//! Staged coverage closure: run the guided generator to a coverage
//! corner, checkpoint *everything* (model, collector, sequencer,
//! driver), then fan N continuation streams out of the checkpoint —
//! the SCY-style "save the hard-won preamble, explore from there"
//! flow.
//!
//! The stage checkpoint is a [`StageCheckpoint`]: the SystemC-level
//! [`Snapshot`](la1_core::checkpoint::Snapshot) from `la1-core` plus
//! the cover-side dynamic state the core format cannot know about
//! (coverage counters and the sample-history ring, the guided
//! generator's rng/plan/queues, the driver's parked items). It
//! serializes as the same versioned, fingerprint-pinned,
//! torn-line-tolerant JSONL as every other checkpoint in the suite.
//!
//! **Determinism contract.** Continuation stream 0 restores the
//! checkpoint *unchanged* — same rng state, same queues — so its
//! continuation is byte-identical to never having checkpointed at all
//! (pinned by the differential test layer, provided the stage-1 budget
//! is an epoch multiple so retarget boundaries align). Streams `1..N`
//! reseed the sequencer rng with
//! [`stream_seed`](la1_core::stimulus::stream_seed)`(seed, j)` and
//! diverge from the shared corner. [`run_staged`] round-trips the
//! checkpoint through its serialized form for *every* stream — the
//! fan-out only works if the format is faithful, so the production
//! path proves the format on every run.

use crate::closure::{ClosureConfig, Generator, GeneratorSnap};
use crate::collect::{BankSampleSnap, CollectorSnap, CoverageCollector};
use crate::guided::GuidedMixSnap;
use crate::model::CoverageModel;
use la1_core::checkpoint::{item_from_json, item_to_json, op_from_json, op_to_json, CheckpointError, Snapshot};
use la1_core::harness::run_abv_observed;
use la1_core::json::{self, Json};
use la1_core::sc_model::LaSystemC;
use la1_core::spec::LaConfig;
use la1_core::stimulus::{stream_seed, DriverSnap, DriverStats};
use la1_core::workloads::RandomMixSnap;

/// Stage-checkpoint format version written by this build.
pub const STAGE_VERSION: u64 = 1;

/// Parameters of one staged closure run.
#[derive(Debug, Clone)]
pub struct StagedConfig {
    /// The underlying closure setup (configuration, seed, epoch,
    /// traffic probabilities; its `budget` field is unused — the two
    /// stage budgets below replace it).
    pub closure: ClosureConfig,
    /// Whether guidance is on.
    pub guided: bool,
    /// Cycles of stage 1 — the shared run to the coverage corner. Keep
    /// it an epoch multiple so stream 0 stays byte-identical to a
    /// straight-through run (retarget boundaries align).
    pub stage1_budget: u64,
    /// Continuation streams to fan out of the checkpoint (stream 0 is
    /// the unperturbed continuation).
    pub streams: u32,
    /// Per-stream cycle budget for stage 2.
    pub stream_budget: u64,
}

impl StagedConfig {
    /// The default staged setup for a configuration: guided, a
    /// 2 000-cycle stage 1, four continuation streams of 4 000 cycles.
    pub fn new(config: LaConfig, seed: u64) -> StagedConfig {
        StagedConfig {
            closure: ClosureConfig::new(config, seed),
            guided: true,
            stage1_budget: 2_000,
            streams: 4,
            stream_budget: 4_000,
        }
    }
}

/// The fingerprint a stage checkpoint is pinned to: FNV-1a over the
/// guidance flag and the full closure configuration (seed, budgets,
/// probabilities, interface configuration) — any drift refuses to
/// restore instead of silently diverging.
pub fn staged_fingerprint(cfg: &StagedConfig) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("staged|{}|{:?}", cfg.guided, cfg.closure).bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything a closure stream is, frozen at an epoch boundary: the
/// SystemC model snapshot plus the cover-side stimulus and coverage
/// state. See the [module docs](self) for the format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageCheckpoint {
    /// [`staged_fingerprint`] of the owning configuration.
    pub fingerprint: u64,
    /// Cycles run when the checkpoint was taken.
    pub cycle: u64,
    /// The SystemC-level model snapshot.
    pub model: Snapshot,
    /// The coverage collector's counters and history ring.
    pub collector: CollectorSnap,
    /// The stimulus driver's protocol bookkeeping.
    pub driver: DriverSnap,
    /// The sequencer's rng and queues.
    pub generator: GeneratorSnap,
}

impl StageCheckpoint {
    /// Captures a stage checkpoint from a running closure stream.
    pub fn capture(
        cfg: &StagedConfig,
        sc: &LaSystemC,
        collector: &CoverageCollector,
        generator: &Generator,
    ) -> Result<StageCheckpoint, CheckpointError> {
        let model = Snapshot::of_systemc(&cfg.closure.config, sc)?;
        let (driver, gensnap) = generator.snapshot_state();
        Ok(StageCheckpoint {
            fingerprint: staged_fingerprint(cfg),
            cycle: collector.cycles(),
            model,
            collector: collector.snapshot_state(),
            driver,
            generator: gensnap,
        })
    }

    /// Rebuilds the full closure stream the checkpoint froze:
    /// fingerprint check first, then model, collector and generator in
    /// turn.
    pub fn restore(
        &self,
        cfg: &StagedConfig,
    ) -> Result<(LaSystemC, CoverageCollector, Generator), CheckpointError> {
        let expected = staged_fingerprint(cfg);
        if self.fingerprint != expected {
            return Err(CheckpointError::FingerprintMismatch {
                found: self.fingerprint,
                expected,
            });
        }
        let sc = self.model.into_systemc(&cfg.closure.config)?;
        let mut collector = CoverageCollector::new(CoverageModel::la1(&cfg.closure.config));
        collector
            .restore_state(&self.collector)
            .map_err(CheckpointError::Restore)?;
        let mut generator = Generator::for_stream(&cfg.closure, cfg.guided, 0);
        generator
            .restore_state(&self.driver, &self.generator)
            .map_err(CheckpointError::Restore)?;
        Ok((sc, collector, generator))
    }

    /// Serializes the checkpoint as JSONL: a header line, one line per
    /// section, an `end` footer, every line newline-terminated.
    pub fn to_jsonl(&self) -> String {
        let mut lines = Vec::new();
        lines.push(format!(
            "{{\"kind\": \"la1-stage\", \"version\": {STAGE_VERSION}, \
             \"fingerprint\": \"{:016x}\", \"cycle\": {}}}",
            self.fingerprint, self.cycle
        ));
        lines.push(
            obj(vec![
                ("sec", Json::str("model")),
                ("jsonl", Json::str(self.model.to_jsonl())),
            ])
            .render(),
        );
        lines.push(enc_collector(&self.collector).render());
        lines.push(enc_driver(&self.driver).render());
        lines.push(enc_generator(&self.generator).render());
        lines.push(format!("{{\"end\": true, \"lines\": {}}}", lines.len() + 1));
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Strict parser for [`StageCheckpoint::to_jsonl`] output. A file
    /// cut at any byte boundary yields [`CheckpointError::Truncated`]
    /// (torn trailing line or missing footer); a damaged middle line
    /// yields [`CheckpointError::Malformed`] naming it.
    pub fn parse(text: &str) -> Result<StageCheckpoint, CheckpointError> {
        if text.is_empty() || !text.ends_with('\n') {
            return Err(CheckpointError::Truncated);
        }
        let lines: Vec<&str> = text.lines().collect();
        const TOTAL: usize = 6;
        if lines.len() > TOTAL {
            return Err(mal(TOTAL + 1, "unexpected line after footer"));
        }
        let mut parsed = Vec::with_capacity(lines.len());
        for (i, l) in lines.iter().enumerate() {
            parsed.push(json::parse(l).map_err(|e| mal(i + 1, format!("{e:?}")))?);
        }
        // every present line is intact; fewer than expected means the
        // file was cut at a line boundary
        if parsed.len() < TOTAL {
            return Err(CheckpointError::Truncated);
        }
        let header = &parsed[0];
        if header.get("kind").and_then(Json::as_str) != Some("la1-stage") {
            return Err(mal(1, "not a la1-stage header"));
        }
        let version = header
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| mal(1, "missing version"))?;
        if version != STAGE_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: version,
                expected: STAGE_VERSION,
            });
        }
        let fingerprint = parse_fp(header.get("fingerprint").and_then(Json::as_str))
            .ok_or_else(|| mal(1, "bad fingerprint"))?;
        let cycle = header
            .get("cycle")
            .and_then(Json::as_u64)
            .ok_or_else(|| mal(1, "missing cycle"))?;
        let model_line = sec(&parsed[1], 2, "model")?;
        let model_text = model_line
            .get("jsonl")
            .and_then(Json::as_str)
            .ok_or_else(|| mal(2, "missing embedded model"))?;
        let model = Snapshot::parse(model_text).map_err(|e| mal(2, format!("embedded model: {e}")))?;
        let collector = dec_collector(sec(&parsed[2], 3, "collector")?, 3)?;
        let driver = dec_driver(sec(&parsed[3], 4, "driver")?, 4)?;
        let generator = dec_generator(sec(&parsed[4], 5, "gen")?, 5)?;
        let footer = &parsed[5];
        if footer.get("end").and_then(Json::as_bool) != Some(true)
            || footer.get("lines").and_then(Json::as_u64) != Some(TOTAL as u64)
        {
            return Err(mal(TOTAL, "bad footer"));
        }
        Ok(StageCheckpoint {
            fingerprint,
            cycle,
            model,
            collector,
            driver,
            generator,
        })
    }
}

/// One continuation stream's stage-2 outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Stream index (0 is the unperturbed continuation).
    pub stream: u32,
    /// The rng seed the stream diverged with (`seed` itself for the
    /// unperturbed stream 0).
    pub seed: u64,
    /// Whether the sequencer rng was reseeded (false for stream 0).
    pub reseeded: bool,
    /// Stage-2 cycles the stream actually ran.
    pub cycles_run: u64,
    /// Bins hit by the stream's full history (stage 1 + its stage 2).
    pub bins_hit: usize,
    /// Bins this stream hit that stage 1 had not.
    pub new_hits: usize,
    /// Whether this stream alone reached full coverage.
    pub closed: bool,
}

/// Outcome of one [`run_staged`] campaign.
#[derive(Debug, Clone)]
pub struct StagedReport {
    /// Bank count of the configuration.
    pub banks: u32,
    /// Whether the configuration was an LA-1B (burst) one.
    pub burst: bool,
    /// Whether guidance was on.
    pub guided: bool,
    /// Base seed (stream seeds derive from it).
    pub seed: u64,
    /// Stage-1 cycle budget.
    pub stage1_budget: u64,
    /// Stage-1 cycles actually run.
    pub stage1_cycles: u64,
    /// Bins hit when the checkpoint was taken.
    pub stage1_bins_hit: usize,
    /// Bins defined by the coverage model.
    pub bins_total: usize,
    /// Serialized size of the stage checkpoint, in bytes.
    pub checkpoint_bytes: usize,
    /// Per-stream outcomes, in stream order.
    pub streams: Vec<StreamOutcome>,
    /// Bins hit by at least one stream (union).
    pub bins_hit: usize,
    /// Whether the union reached full coverage.
    pub closed: bool,
    /// Names of the bins no stream hit, in model order.
    pub unhit: Vec<String>,
}

impl StagedReport {
    /// Fraction of bins hit by at least one stream.
    pub fn coverage(&self) -> f64 {
        if self.bins_total == 0 {
            1.0
        } else {
            self.bins_hit as f64 / self.bins_total as f64
        }
    }

    /// Renders the deterministic JSON report.
    pub fn to_json(&self) -> String {
        let streams = self
            .streams
            .iter()
            .map(|s| {
                format!(
                    "    {{\"stream\": {}, \"seed\": {}, \"reseeded\": {}, \
                     \"cycles_run\": {}, \"bins_hit\": {}, \"new_hits\": {}, \"closed\": {}}}",
                    s.stream, s.seed, s.reseeded, s.cycles_run, s.bins_hit, s.new_hits, s.closed
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"kind\": \"staged-closure\",\n  \"banks\": {},\n  \"burst\": {},\n  \
             \"guided\": {},\n  \"seed\": {},\n  \"stage1_budget\": {},\n  \
             \"stage1_cycles\": {},\n  \"stage1_bins_hit\": {},\n  \"bins_total\": {},\n  \
             \"checkpoint_bytes\": {},\n  \"bins_hit\": {},\n  \"closed\": {},\n  \
             \"unhit\": [{}],\n  \"streams\": [\n{streams}\n  ]\n}}\n",
            self.banks,
            self.burst,
            self.guided,
            self.seed,
            self.stage1_budget,
            self.stage1_cycles,
            self.stage1_bins_hit,
            self.bins_total,
            self.checkpoint_bytes,
            self.bins_hit,
            self.closed,
            la1_core::json::str_array_body(&self.unhit)
        )
    }
}

/// Runs one staged closure campaign: stage 1 to the coverage corner,
/// checkpoint, fan-out, union report. Deterministic: a pure function
/// of `cfg`. Every stream restores from the *serialized* checkpoint,
/// so each run also proves the format round-trips.
pub fn run_staged(cfg: &StagedConfig) -> Result<StagedReport, CheckpointError> {
    // ---- stage 1: the shared run to the coverage corner
    let mut sc = LaSystemC::new(&cfg.closure.config);
    let mut collector = CoverageCollector::new(CoverageModel::la1(&cfg.closure.config));
    let mut generator = Generator::for_stream(&cfg.closure, cfg.guided, cfg.closure.seed);
    let mut run = 0u64;
    while run < cfg.stage1_budget && !collector.is_full() {
        if cfg.guided {
            generator.retarget(&collector.unhit());
        }
        let step = cfg.closure.epoch.min(cfg.stage1_budget - run);
        run_abv_observed(&mut sc, &mut generator, step, &mut collector);
        run += step;
    }
    let checkpoint = StageCheckpoint::capture(cfg, &sc, &collector, &generator)?;
    let text = checkpoint.to_jsonl();
    let stage1_hit: Vec<bool> = collector.hits().iter().map(|&h| h > 0).collect();
    let stage1_bins_hit = collector.covered();
    let stage1_cycles = run;

    // ---- stage 2: fan continuation streams out of the checkpoint
    let mut outcomes = Vec::with_capacity(cfg.streams as usize);
    let mut union_hit = stage1_hit.clone();
    for j in 0..cfg.streams {
        let restored = StageCheckpoint::parse(&text)?;
        let (mut sc, mut collector, mut generator) = restored.restore(cfg)?;
        let seed = if j == 0 {
            cfg.closure.seed
        } else {
            stream_seed(cfg.closure.seed, j as u64)
        };
        if j > 0 {
            generator.reseed(seed);
        }
        let mut run2 = 0u64;
        while run2 < cfg.stream_budget && !collector.is_full() {
            if cfg.guided {
                generator.retarget(&collector.unhit());
            }
            let step = cfg.closure.epoch.min(cfg.stream_budget - run2);
            run_abv_observed(&mut sc, &mut generator, step, &mut collector);
            run2 += step;
        }
        let mut new_hits = 0usize;
        for (i, &h) in collector.hits().iter().enumerate() {
            if h > 0 {
                if !stage1_hit[i] {
                    new_hits += 1;
                }
                union_hit[i] = true;
            }
        }
        outcomes.push(StreamOutcome {
            stream: j,
            seed,
            reseeded: j > 0,
            cycles_run: run2,
            bins_hit: collector.covered(),
            new_hits,
            closed: collector.is_full(),
        });
    }
    let model = CoverageModel::la1(&cfg.closure.config);
    let bins_hit = union_hit.iter().filter(|&&h| h).count();
    let unhit = model
        .bins()
        .iter()
        .zip(&union_hit)
        .filter(|(_, &h)| !h)
        .map(|(b, _)| b.name())
        .collect::<Vec<_>>();
    Ok(StagedReport {
        banks: cfg.closure.config.banks,
        burst: cfg.closure.config.is_burst(),
        guided: cfg.guided,
        seed: cfg.closure.seed,
        stage1_budget: cfg.stage1_budget,
        stage1_cycles,
        stage1_bins_hit,
        bins_total: model.len(),
        checkpoint_bytes: text.len(),
        streams: outcomes,
        bins_hit,
        closed: bins_hit == model.len(),
        unhit,
    })
}

// ---------------------------------------------------------------------
// section codecs

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn mal(line: usize, reason: impl Into<String>) -> CheckpointError {
    CheckpointError::Malformed {
        line,
        reason: reason.into(),
    }
}

fn parse_fp(s: Option<&str>) -> Option<u64> {
    let s = s?;
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

fn sec<'a>(j: &'a Json, line: usize, want: &str) -> Result<&'a Json, CheckpointError> {
    if j.get("sec").and_then(Json::as_str) == Some(want) {
        Ok(j)
    } else {
        Err(mal(line, format!("expected section {want:?}")))
    }
}

fn f_u64(j: &Json, key: &str, line: usize) -> Result<u64, CheckpointError> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| mal(line, format!("missing field {key:?}")))
}

fn f_bool(j: &Json, key: &str, line: usize) -> Result<bool, CheckpointError> {
    j.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| mal(line, format!("missing field {key:?}")))
}

fn f_arr<'a>(j: &'a Json, key: &str, line: usize) -> Result<&'a [Json], CheckpointError> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| mal(line, format!("missing field {key:?}")))
}

fn f_opt_u64(j: &Json, key: &str, line: usize) -> Result<Option<u64>, CheckpointError> {
    j.get(key)
        .and_then(Json::as_opt_u64)
        .ok_or_else(|| mal(line, format!("missing field {key:?}")))
}

fn jopt(v: Option<u64>) -> Json {
    match v {
        Some(n) => Json::num(n),
        None => Json::Null,
    }
}

fn enc_collector(c: &CollectorSnap) -> Json {
    obj(vec![
        ("sec", Json::str("collector")),
        ("cycle", Json::num(c.cycle)),
        ("hits", Json::num_arr(c.hits.iter().copied())),
        (
            "first_hit",
            Json::Arr(c.first_hit.iter().map(|f| jopt(*f)).collect()),
        ),
        (
            "history",
            Json::Arr(
                c.history
                    .iter()
                    .map(|banks| {
                        Json::Arr(
                            banks
                                .iter()
                                .map(|b| {
                                    obj(vec![
                                        ("r", jopt(b.read)),
                                        (
                                            "w",
                                            match b.write {
                                                Some((a, be)) => Json::Arr(vec![
                                                    Json::num(a),
                                                    Json::num(be as u64),
                                                ]),
                                                None => Json::Null,
                                            },
                                        ),
                                        ("dv", jopt(b.dv)),
                                        ("wd", Json::Bool(b.wdone)),
                                        ("pe", Json::Bool(b.perr)),
                                    ])
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

fn dec_collector(j: &Json, line: usize) -> Result<CollectorSnap, CheckpointError> {
    let mut history = Vec::new();
    for cyc in f_arr(j, "history", line)? {
        let banks = cyc
            .as_arr()
            .ok_or_else(|| mal(line, "history entry is not an array"))?;
        let mut row = Vec::with_capacity(banks.len());
        for b in banks {
            let write = match b.get("w").ok_or_else(|| mal(line, "missing sample write"))? {
                Json::Null => None,
                w => {
                    let pair = w
                        .as_u64_vec()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| mal(line, "bad sample write pair"))?;
                    Some((pair[0], pair[1] as u32))
                }
            };
            row.push(BankSampleSnap {
                read: f_opt_u64(b, "r", line)?,
                write,
                dv: f_opt_u64(b, "dv", line)?,
                wdone: f_bool(b, "wd", line)?,
                perr: f_bool(b, "pe", line)?,
            });
        }
        history.push(row);
    }
    Ok(CollectorSnap {
        hits: j
            .get("hits")
            .and_then(Json::as_u64_vec)
            .ok_or_else(|| mal(line, "missing field \"hits\""))?,
        first_hit: f_arr(j, "first_hit", line)?
            .iter()
            .map(|f| f.as_opt_u64())
            .collect::<Option<_>>()
            .ok_or_else(|| mal(line, "bad first_hit entry"))?,
        history,
        cycle: f_u64(j, "cycle", line)?,
    })
}

fn enc_driver(d: &DriverSnap) -> Json {
    obj(vec![
        ("sec", Json::str("driver")),
        ("cycle", Json::num(d.cycle)),
        ("last_read", jopt(d.last_read)),
        ("rr_next", Json::num(d.rr_next)),
        ("inject_x", Json::Bool(d.inject_x)),
        (
            "pending",
            Json::Arr(
                d.pending
                    .iter()
                    .map(|p| match p {
                        Some(item) => item_to_json(item),
                        None => Json::Null,
                    })
                    .collect(),
            ),
        ),
        (
            "stats",
            obj(vec![
                ("ri", Json::num(d.stats.reads_issued)),
                ("wi", Json::num(d.stats.writes_issued)),
                ("ic", Json::num(d.stats.idle_cycles)),
                ("dl", Json::num(d.stats.items_delayed)),
                ("rc", Json::num(d.stats.raw_cycles)),
            ]),
        ),
    ])
}

fn dec_driver(j: &Json, line: usize) -> Result<DriverSnap, CheckpointError> {
    let mut pending = Vec::new();
    for p in f_arr(j, "pending", line)? {
        pending.push(match p {
            Json::Null => None,
            item => Some(item_from_json(item).map_err(|e| mal(line, e))?),
        });
    }
    let stats = j
        .get("stats")
        .ok_or_else(|| mal(line, "missing field \"stats\""))?;
    Ok(DriverSnap {
        cycle: f_u64(j, "cycle", line)?,
        last_read: f_opt_u64(j, "last_read", line)?,
        pending,
        rr_next: f_u64(j, "rr_next", line)?,
        inject_x: f_bool(j, "inject_x", line)?,
        stats: DriverStats {
            reads_issued: f_u64(stats, "ri", line)?,
            writes_issued: f_u64(stats, "wi", line)?,
            idle_cycles: f_u64(stats, "ic", line)?,
            items_delayed: f_u64(stats, "dl", line)?,
            raw_cycles: f_u64(stats, "rc", line)?,
        },
    })
}

fn enc_generator(g: &GeneratorSnap) -> Json {
    match g {
        GeneratorSnap::Guided(s) => obj(vec![
            ("sec", Json::str("gen")),
            ("t", Json::str("guided")),
            ("rng", Json::num(s.rng)),
            (
                "plan",
                Json::Arr(
                    s.plan
                        .iter()
                        .map(|cyc| Json::Arr(cyc.iter().map(op_to_json).collect()))
                        .collect(),
                ),
            ),
            (
                "items",
                Json::Arr(s.items.iter().map(item_to_json).collect()),
            ),
        ]),
        GeneratorSnap::Random(s) => obj(vec![
            ("sec", Json::str("gen")),
            ("t", Json::str("random")),
            ("rng", Json::num(s.rng)),
            (
                "items",
                Json::Arr(s.items.iter().map(item_to_json).collect()),
            ),
        ]),
    }
}

fn dec_generator(j: &Json, line: usize) -> Result<GeneratorSnap, CheckpointError> {
    let rng = f_u64(j, "rng", line)?;
    let items = f_arr(j, "items", line)?
        .iter()
        .map(item_from_json)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| mal(line, e))?;
    match j.get("t").and_then(Json::as_str) {
        Some("guided") => {
            let mut plan = Vec::new();
            for cyc in f_arr(j, "plan", line)? {
                let ops = cyc
                    .as_arr()
                    .ok_or_else(|| mal(line, "plan cycle is not an array"))?;
                plan.push(
                    ops.iter()
                        .map(op_from_json)
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|e| mal(line, e))?,
                );
            }
            Ok(GeneratorSnap::Guided(GuidedMixSnap { rng, plan, items }))
        }
        Some("random") => Ok(GeneratorSnap::Random(RandomMixSnap { rng, items })),
        _ => Err(mal(line, "unknown generator tag")),
    }
}
