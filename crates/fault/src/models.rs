//! Parameterized fault models and their deterministic per-run plans.
//!
//! A [`FaultModel`] names *what kind* of defect is injected; a
//! [`FaultPlan`] fixes *where and when* for one run — bank, bit index
//! and activation cycle are all sampled up front from the run's seeded
//! RNG, so a run is a pure function of `(seed, config)` and two runs
//! with the same seed are byte-identical. The [`Injector`] applies the
//! stimulus-side faults as a transform on the intended per-cycle
//! operation list; device-internal faults (parity generation, X
//! injection) are flagged here and wired into the model by the
//! campaign runner.

use la1_core::spec::{BankOp, LaConfig};
use la1_core::stimulus::{SeqContext, SequenceItem, Sequencer};
use rand::rngs::StdRng;
use rand::Rng;

/// The built-in library of fault models the campaign engine injects.
///
/// Stimulus faults corrupt the operation stream a master drives into
/// the interface (strobes dropped, duplicated or stuck, address/data
/// bits flipped, hostile double-reads); device faults corrupt the
/// design under test itself (wrong parity generation, an X driven onto
/// an input pin mid-write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// R# stuck at 0: every read strobe from the activation cycle on is
    /// lost. Only progress monitoring (the closed-loop watchdog) can
    /// see this — nothing illegal ever appears on the pins.
    StuckAt0ReadSel,
    /// R# stuck at 1: a read strobe appears on every otherwise idle
    /// cycle from the activation cycle on.
    StuckAt1ReadSel,
    /// W# stuck at 0: every write strobe from the activation cycle on
    /// is lost.
    StuckAt0WriteSel,
    /// Transient single-cycle flip of one address bit on the first read
    /// at/after the activation cycle.
    AddrBitFlip,
    /// Transient single-cycle flip of one data bit on the first write
    /// at/after the activation cycle.
    DataBitFlip,
    /// Device-internal parity-generation fault on one bank, active from
    /// cycle 0 (a manufacturing-style defect, not a transient).
    ParityFault,
    /// The first read strobe at/after the activation cycle is dropped.
    DropReadStrobe,
    /// The first write strobe at/after the activation cycle is dropped.
    DropWriteStrobe,
    /// The first read strobe at/after the activation cycle is replayed
    /// on the next cycle that has a free read slot.
    DuplicateReadStrobe,
    /// The write-data input pins are driven to X for one full cycle on
    /// the first write at/after the activation cycle (RTL four-state
    /// levels only).
    XInjectWData,
    /// A hostile master issues two read strobes in the same cycle at
    /// the activation cycle — a protocol violation every level rejects
    /// by assertion, caught by the panic guard.
    HostileMaster,
}

impl FaultModel {
    /// Every built-in fault model, in matrix row order.
    pub const ALL: [FaultModel; 11] = [
        FaultModel::StuckAt0ReadSel,
        FaultModel::StuckAt1ReadSel,
        FaultModel::StuckAt0WriteSel,
        FaultModel::AddrBitFlip,
        FaultModel::DataBitFlip,
        FaultModel::ParityFault,
        FaultModel::DropReadStrobe,
        FaultModel::DropWriteStrobe,
        FaultModel::DuplicateReadStrobe,
        FaultModel::XInjectWData,
        FaultModel::HostileMaster,
    ];

    /// Stable snake_case name used in the detection matrix and JSON.
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::StuckAt0ReadSel => "stuck_at_0_read_sel",
            FaultModel::StuckAt1ReadSel => "stuck_at_1_read_sel",
            FaultModel::StuckAt0WriteSel => "stuck_at_0_write_sel",
            FaultModel::AddrBitFlip => "addr_bit_flip",
            FaultModel::DataBitFlip => "data_bit_flip",
            FaultModel::ParityFault => "parity_fault",
            FaultModel::DropReadStrobe => "drop_read_strobe",
            FaultModel::DropWriteStrobe => "drop_write_strobe",
            FaultModel::DuplicateReadStrobe => "duplicate_read_strobe",
            FaultModel::XInjectWData => "x_inject_wdata",
            FaultModel::HostileMaster => "hostile_master",
        }
    }

    /// Whether the fault lives in the device rather than the stimulus
    /// (the campaign wires these into the model instead of the op
    /// stream).
    pub fn is_device_fault(self) -> bool {
        matches!(self, FaultModel::ParityFault | FaultModel::XInjectWData)
    }

    /// Whether detection needs a closed-loop run (progress watchdog)
    /// instead of the open-loop scoreboard run.
    pub fn closed_loop(self) -> bool {
        matches!(self, FaultModel::StuckAt0ReadSel)
    }
}

/// The concrete per-run parameters of one injected fault, sampled from
/// the run's seeded RNG before the run starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault model being injected.
    pub model: FaultModel,
    /// First cycle at/after which the fault is active or armed.
    pub activation: u64,
    /// Bank parameter (faulted bank for parity, forced-read target).
    pub bank: u32,
    /// Bit index parameter (address/data flips).
    pub bit: u32,
}

impl FaultPlan {
    /// Samples a plan for `model` with the activation cycle drawn from
    /// `window` (half-open). All sampling happens here, up front, so
    /// the injection itself consumes no randomness.
    pub fn sample(
        model: FaultModel,
        cfg: &LaConfig,
        window: (u64, u64),
        rng: &mut StdRng,
    ) -> FaultPlan {
        let activation = if model == FaultModel::ParityFault {
            // a manufacturing defect is present from power-on
            0
        } else {
            rng.gen_range(window.0..window.1)
        };
        FaultPlan {
            model,
            activation,
            bank: rng.gen_range(0..cfg.banks),
            bit: match model {
                FaultModel::AddrBitFlip => rng.gen_range(0..cfg.addr_bits()),
                FaultModel::DataBitFlip => rng.gen_range(0..cfg.word_width),
                _ => 0,
            },
        }
    }
}

/// Applies a [`FaultPlan`] to the intended operation stream, cycle by
/// cycle. One-shot faults arm at the plan's activation cycle and fire
/// on the first matching operation; persistent faults stay active from
/// the activation cycle on.
#[derive(Debug)]
pub struct Injector {
    plan: FaultPlan,
    /// one-shot faults that already fired
    fired: bool,
    /// pending strobe replay for [`FaultModel::DuplicateReadStrobe`]
    replay: Option<BankOp>,
    /// address counter for forced reads
    forced: u64,
}

impl Injector {
    /// A fresh injector for one run.
    pub fn new(plan: FaultPlan) -> Injector {
        Injector {
            plan,
            fired: false,
            replay: None,
            forced: 0,
        }
    }

    /// The plan being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Transforms the intended operations for `cycle` in place.
    /// Returns `true` when the fault changed the stimulus this cycle.
    pub fn apply(&mut self, cycle: u64, cfg: &LaConfig, ops: &mut Vec<BankOp>) -> bool {
        let active = cycle >= self.plan.activation;
        match self.plan.model {
            FaultModel::StuckAt0ReadSel => {
                let before = ops.len();
                if active {
                    ops.retain(|op| !matches!(op, BankOp::Read { .. }));
                }
                ops.len() != before
            }
            FaultModel::StuckAt1ReadSel => {
                if active && !ops.iter().any(|op| matches!(op, BankOp::Read { .. })) {
                    let addr = self.forced % cfg.words_per_bank as u64;
                    self.forced += 1;
                    ops.push(BankOp::read(self.plan.bank, addr));
                    return true;
                }
                false
            }
            FaultModel::StuckAt0WriteSel => {
                let before = ops.len();
                if active {
                    ops.retain(|op| !matches!(op, BankOp::Write { .. }));
                }
                ops.len() != before
            }
            FaultModel::AddrBitFlip => {
                if active && !self.fired {
                    if let Some(BankOp::Read { addr, .. }) = ops
                        .iter_mut()
                        .find(|op| matches!(op, BankOp::Read { .. }))
                    {
                        let flipped = *addr ^ (1 << self.plan.bit);
                        // addr_bits covers words_per_bank, but guard
                        // non-power-of-two depths against the protocol
                        // range assert — the flip must stay a legal
                        // (merely wrong) address
                        *addr = if flipped < cfg.words_per_bank as u64 {
                            flipped
                        } else {
                            *addr ^ 1
                        };
                        self.fired = true;
                        return true;
                    }
                }
                false
            }
            FaultModel::DataBitFlip => {
                if active && !self.fired {
                    if let Some(BankOp::Write { data, .. }) = ops
                        .iter_mut()
                        .find(|op| matches!(op, BankOp::Write { .. }))
                    {
                        *data ^= 1 << self.plan.bit;
                        self.fired = true;
                        return true;
                    }
                }
                false
            }
            FaultModel::DropReadStrobe => {
                if active && !self.fired {
                    if let Some(pos) =
                        ops.iter().position(|op| matches!(op, BankOp::Read { .. }))
                    {
                        ops.remove(pos);
                        self.fired = true;
                        return true;
                    }
                }
                false
            }
            FaultModel::DropWriteStrobe => {
                if active && !self.fired {
                    if let Some(pos) =
                        ops.iter().position(|op| matches!(op, BankOp::Write { .. }))
                    {
                        ops.remove(pos);
                        self.fired = true;
                        return true;
                    }
                }
                false
            }
            FaultModel::DuplicateReadStrobe => {
                if let Some(replay) = self.replay {
                    // the duplicated strobe waits for a cycle with a
                    // free read slot — the protocol allows only one
                    if !ops.iter().any(|op| matches!(op, BankOp::Read { .. })) {
                        ops.push(replay);
                        self.replay = None;
                        return true;
                    }
                    return false;
                }
                if active && !self.fired {
                    if let Some(op) = ops
                        .iter()
                        .find(|op| matches!(op, BankOp::Read { .. }))
                        .copied()
                    {
                        self.replay = Some(op);
                        self.fired = true;
                    }
                }
                false
            }
            // device faults do not transform the op stream; the
            // hostile master lives at transaction level now — see
            // [`HostileMasterSeq`]
            FaultModel::HostileMaster
            | FaultModel::ParityFault
            | FaultModel::XInjectWData => false,
        }
    }

    /// For [`FaultModel::XInjectWData`]: whether the X should be driven
    /// during this cycle (first write at/after activation). Consumes
    /// the one-shot arm.
    pub fn x_due(&mut self, cycle: u64, ops: &[BankOp]) -> bool {
        if self.plan.model == FaultModel::XInjectWData
            && cycle >= self.plan.activation
            && !self.fired
            && ops.iter().any(|op| matches!(op, BankOp::Write { .. }))
        {
            self.fired = true;
            return true;
        }
        false
    }
}

/// The [`FaultModel::HostileMaster`] fault expressed at transaction
/// level: a sequencer wrapper riding an inner sequence that, at the
/// activation cycle, bypasses the driver's legality gate with a
/// [`SequenceItem::Raw`] double read — two read strobes on the single
/// time-multiplexed address bus, the protocol violation every level
/// rejects by assertion.
#[derive(Debug)]
pub struct HostileMasterSeq<S: Sequencer> {
    inner: S,
    bank: u32,
    activation: u64,
    fired: bool,
    /// reads the inner sequence emitted since the current cycle began
    reads_this_cycle: u32,
}

impl<S: Sequencer> HostileMasterSeq<S> {
    /// Wraps `inner`, attacking `bank` at cycle `activation`.
    pub fn new(inner: S, bank: u32, activation: u64) -> HostileMasterSeq<S> {
        HostileMasterSeq {
            inner,
            bank,
            activation,
            fired: false,
            reads_this_cycle: 0,
        }
    }
}

impl<S: Sequencer> Sequencer for HostileMasterSeq<S> {
    fn next_item(&mut self, ctx: &SeqContext) -> SequenceItem {
        let item = self.inner.next_item(ctx);
        match item {
            SequenceItem::Idle if !self.fired && ctx.cycle >= self.activation => {
                // end of the inner master's cycle: append the hostile
                // strobes so the cycle carries at least two reads
                self.fired = true;
                let mut ops = vec![BankOp::read(self.bank, 0)];
                if self.reads_this_cycle + 1 < 2 {
                    ops.push(BankOp::read(self.bank, 1));
                }
                self.reads_this_cycle = 0;
                SequenceItem::Raw(ops)
            }
            SequenceItem::Idle => {
                self.reads_this_cycle = 0;
                item
            }
            SequenceItem::Read { .. } | SequenceItem::Burst { .. } => {
                self.reads_this_cycle += 1;
                item
            }
            other => other,
        }
    }
}
