//! # la1-fault — deterministic fault-injection campaigns for the LA-1
//!
//! The paper's methodology argument is that the monitors written once
//! at the SystemC level and carried down to the RTL catch real bugs.
//! This crate closes the loop experimentally: it injects a library of
//! parameterized fault models ([`FaultModel`]) into any of the
//! executable refinement levels and measures which detection channel —
//! scoreboard, PSL monitor, OVL monitor, protocol-assert guard or
//! progress watchdog — catches each fault, how often, and how many
//! cycles after activation.
//!
//! Campaigns are **deterministic by construction**: a campaign is a
//! pure function of `(seed, config)`. Every run's fault plan (bank,
//! bit, activation cycle) and stimulus are drawn from a per-run RNG
//! seeded from the campaign seed and the run's coordinates, results
//! live in ordered maps, and no wall-clock time enters the matrix, so
//! [`DetectionMatrix::to_json`] is byte-identical across repeats.
//!
//! ```
//! use la1_fault::{run_campaign, CampaignConfig, FaultModel, Level};
//!
//! let mut config = CampaignConfig::new(1, 7);
//! config.faults = vec![FaultModel::DropReadStrobe];
//! config.levels = vec![Level::SystemC];
//! let matrix = run_campaign(&config);
//! assert_eq!(matrix.to_json(), run_campaign(&config).to_json());
//! assert!(matrix.detected_at(FaultModel::DropReadStrobe, Level::SystemC));
//! ```

mod campaign;
mod campaign_batched;
mod models;

pub use campaign::{
    run_campaign, run_campaign_shard, supports, CampaignConfig, CampaignShard, CellStats,
    DetectionMatrix, Level, MonitorStat,
};
pub use campaign_batched::{run_campaign_batched, run_campaign_batched_shard, BatchStats};
pub use models::{FaultModel, FaultPlan, HostileMasterSeq, Injector};

#[cfg(test)]
mod tests;
