//! The deterministic fault-injection campaign runner and its
//! detection matrix.
//!
//! A campaign takes a [`CampaignConfig`] — interface configuration,
//! seed, fault list, level list, runs per fault — and produces a
//! [`DetectionMatrix`]: for every `(fault model, level)` pair, which
//! detection channel caught the fault in how many of the seeded runs,
//! and with what mean latency in cycles. The channels are:
//!
//! * `scoreboard` — a healthy same-level golden model driven with the
//!   *intended* operations, compared pin-by-pin against the faulted
//!   run every cycle (data-valid word and write-done flag per bank);
//! * the attached monitors — PSL properties at the SystemC level
//!   (`parity_0`, `read_latency_0`, …), OVL modules at the RTL+OVL
//!   level (`ovl_parity_0`, …), reported under their own names;
//! * `guard` — a panic guard around every DUT cycle: the levels
//!   enforce the bus protocol by assertion, so a hostile stimulus
//!   (two reads on the one address bus) trips it;
//! * `watchdog` — closed-loop runs issue a read whenever none is
//!   outstanding and declare the run [hung](CellStats::hung) after
//!   `watchdog_cycles` without a data-valid response.
//!
//! Everything is deterministic: per-run RNGs are seeded from
//! `(campaign seed, fault index, level index, run index)`, the matrix
//! is held in ordered maps, and neither wall-clock time nor iteration
//! order of unordered containers enters the result — the same seed and
//! config produce a byte-identical [`DetectionMatrix::to_json`].

use crate::models::{FaultModel, FaultPlan, HostileMasterSeq, Injector};
use la1_core::asm_model::LaAsmModel;
use la1_core::checkpoint::Trace;
use la1_core::cycle_model::{CycleModel, RtlWithOvl};
use la1_core::rtl_model::{LaRtl, LaRtlDriver, XPin};
use la1_core::sc_model::LaSystemC;
use la1_core::spec::{BankOp, LaConfig, READ_LATENCY};
use la1_core::stimulus::{Driver, ScriptSequence};
use la1_core::workloads::{RandomMix, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// The executable refinement levels a campaign can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// The ASM-level model (full-word writes, no monitors).
    Asm,
    /// The SystemC model with compiled PSL monitors.
    SystemC,
    /// The interpreted RTL without monitors.
    Rtl,
    /// The interpreted RTL with the OVL monitor suite.
    RtlOvl,
}

impl Level {
    /// All levels, in refinement order.
    pub const ALL: [Level; 4] = [Level::Asm, Level::SystemC, Level::Rtl, Level::RtlOvl];

    /// The level's report name (matches [`CycleModel::level`]).
    pub fn name(self) -> &'static str {
        match self {
            Level::Asm => "asm",
            Level::SystemC => "systemc",
            Level::Rtl => "rtl",
            Level::RtlOvl => "rtl+ovl",
        }
    }

    /// Parses a report name back into the level (the bench binaries'
    /// `--levels` option).
    pub fn from_name(name: &str) -> Option<Level> {
        Level::ALL.into_iter().find(|l| l.name() == name)
    }
}

/// Whether `fault` can be expressed at `level`.
///
/// X injection needs the four-state RTL simulator; the parity path
/// does not exist in the ASM model (which abstracts data transport).
pub fn supports(fault: FaultModel, level: Level) -> bool {
    match fault {
        FaultModel::XInjectWData => matches!(level, Level::Rtl | Level::RtlOvl),
        FaultModel::ParityFault => !matches!(level, Level::Asm),
        _ => true,
    }
}

/// One campaign's shape: which faults, which levels, how many seeded
/// runs of each, and the closed-loop watchdog parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Interface configuration the models are built from.
    pub la1: LaConfig,
    /// Campaign seed; all per-run seeds derive from it.
    pub seed: u64,
    /// Seeded runs per `(fault, level)` cell.
    pub runs_per_fault: u32,
    /// Closed-loop runs report `hung` after this many cycles without a
    /// data-valid response.
    pub watchdog_cycles: u64,
    /// Closed-loop runs complete after this many successful reads.
    pub target_reads: u32,
    /// Levels to drive.
    pub levels: Vec<Level>,
    /// Fault models to inject.
    pub faults: Vec<FaultModel>,
    /// Deep-state preamble: op cycles replayed into every run's DUT
    /// *and* golden from reset, before the scripted workload starts,
    /// so faults are exercised against a warmed model instead of an
    /// empty one. Script cycle numbering is untouched (the preamble
    /// runs "before cycle 0"), so activation windows and injection
    /// timing are identical with or without it. Ops must be
    /// protocol-legal full-word traffic — partial-byte writes are not
    /// representable at the ASM level the goldens include. Empty by
    /// default; the farm journals pin it through the plan fingerprint
    /// like every other campaign parameter.
    pub preamble: Vec<Vec<BankOp>>,
}

impl CampaignConfig {
    /// The default campaign at `banks` banks: all faults, all levels,
    /// 3 runs per cell, a simulation-sized 8-words-per-bank interface.
    pub fn new(banks: u32, seed: u64) -> CampaignConfig {
        CampaignConfig {
            la1: LaConfig {
                banks,
                words_per_bank: 8,
                word_width: 16,
                mc_addr_domain: vec![0, 1],
                mc_data_domain: vec![0, 0x5A5A],
                burst_len: 1,
            },
            seed,
            runs_per_fault: 3,
            watchdog_cycles: 24,
            target_reads: 6,
            levels: Level::ALL.to_vec(),
            faults: FaultModel::ALL.to_vec(),
            preamble: Vec::new(),
        }
    }

    /// Records a deep-state preamble in place: `cycles` of seeded
    /// full-word random traffic (write-heavy, so the banks actually
    /// fill). Full-word because the preamble replays into the ASM
    /// golden too, which abstracts byte lanes away.
    pub fn record_preamble(&mut self, seed: u64, cycles: u64) {
        let mut mix = RandomMix::full_word(&self.la1, seed, 0.25, 0.65);
        self.preamble = (0..cycles).map(|_| mix.next_cycle()).collect();
    }

    /// Adopts a recorded checkpoint [`Trace`] as the deep-state
    /// preamble — how a deep state reached elsewhere (say a staged
    /// closure preamble) becomes the starting point of a fault
    /// campaign. Only the op cycles are taken: a trace fingerprint
    /// pins one `(level, config)` pair, while the campaign replays
    /// the same ops into every level's DUT and golden.
    pub fn preamble_from_trace(&mut self, trace: &Trace) {
        self.preamble = trace.cycles.clone();
    }
}

/// The slice of a campaign one farm job runs.
///
/// A shard names the *global* indices into [`CampaignConfig::faults`]
/// it covers — per-run seeds are derived from those indices
/// ([`run_seed`]), so a shard reproduces exactly the runs the full
/// campaign would execute for its faults, and shard results union back
/// into the full matrix byte-for-byte ([`DetectionMatrix::merge`]).
/// Exactly one shard of a family should carry `healthy: true`: the
/// healthy-design closed-loop controls run once per campaign, not once
/// per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignShard {
    /// Indices into [`CampaignConfig::faults`] this shard runs.
    pub fault_indices: Vec<usize>,
    /// Whether this shard runs the healthy-design controls.
    pub healthy: bool,
}

impl CampaignShard {
    /// The whole campaign as one shard (what [`run_campaign`] uses).
    pub fn full(config: &CampaignConfig) -> CampaignShard {
        CampaignShard {
            fault_indices: (0..config.faults.len()).collect(),
            healthy: true,
        }
    }

    /// Splits the campaign into `shards` round-robin fault shards; the
    /// first carries the healthy controls. Fewer shards come back when
    /// there are fewer faults than requested.
    pub fn split(config: &CampaignConfig, shards: usize) -> Vec<CampaignShard> {
        let shards = shards.max(1).min(config.faults.len().max(1));
        (0..shards)
            .map(|s| CampaignShard {
                fault_indices: (s..config.faults.len()).step_by(shards).collect(),
                healthy: s == 0,
            })
            .collect()
    }

    pub(crate) fn includes(&self, fault_idx: usize) -> bool {
        self.fault_indices.contains(&fault_idx)
    }
}

/// Per-channel detection tally within one `(fault, level)` cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorStat {
    /// Runs in which this channel detected the fault.
    pub detected: u32,
    /// Sum over detecting runs of (detection cycle − activation
    /// cycle); divide by `detected` for the mean latency.
    pub latency_sum: u64,
}

/// One `(fault, level)` cell of the detection matrix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellStats {
    /// Seeded runs executed for this cell.
    pub runs: u32,
    /// Runs that ended hung (no forward progress within the watchdog
    /// budget, or a guard-tripping panic mid-run in closed loop).
    pub hung: u32,
    /// Detection tally per channel name (ordered).
    pub monitors: BTreeMap<String, MonitorStat>,
}

impl CellStats {
    /// Whether any channel detected the fault in any run.
    pub fn detected(&self) -> bool {
        self.monitors.values().any(|m| m.detected > 0)
    }

    /// Whether an attached monitor (PSL/OVL — not the scoreboard,
    /// guard or watchdog harness channels) detected the fault.
    pub fn monitor_detected(&self) -> bool {
        self.monitors
            .iter()
            .any(|(name, m)| !is_harness_channel(name) && m.detected > 0)
    }
}

fn is_harness_channel(name: &str) -> bool {
    matches!(name, "scoreboard" | "guard" | "watchdog")
}

/// The campaign result: detection statistics per fault model, level
/// and channel, plus the healthy-design control runs and the
/// cross-level agreement report. Ordered maps keep rendering and JSON
/// byte-deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionMatrix {
    /// Bank count of the campaign's interface.
    pub banks: u32,
    /// Campaign seed.
    pub seed: u64,
    /// Seeded runs per cell.
    pub runs_per_fault: u32,
    /// `fault name → level name → cell`.
    pub cells: BTreeMap<String, BTreeMap<String, CellStats>>,
    /// Healthy-design closed-loop control per level: `true` when the
    /// run completed its target reads without tripping the watchdog.
    pub healthy: BTreeMap<String, bool>,
    /// Cross-level monitor disagreements: faults one level's attached
    /// monitors catch and another's miss.
    pub disagreements: Vec<String>,
}

impl DetectionMatrix {
    /// An empty matrix carrying the campaign's identity (banks, seed,
    /// runs-per-fault) and no results — the merge seed a fault-tolerant
    /// orchestrator starts from when every shard of a campaign failed,
    /// so a fully degraded run still renders a well-formed report.
    pub fn empty(config: &CampaignConfig) -> DetectionMatrix {
        DetectionMatrix {
            banks: config.la1.banks,
            seed: config.seed,
            runs_per_fault: config.runs_per_fault,
            cells: BTreeMap::new(),
            healthy: BTreeMap::new(),
            disagreements: Vec::new(),
        }
    }

    /// The cell for `(fault, level)`, if that pair was run.
    pub fn cell(&self, fault: FaultModel, level: Level) -> Option<&CellStats> {
        self.cells.get(fault.name())?.get(level.name())
    }

    /// Whether `fault` was detected by at least one channel at `level`.
    pub fn detected_at(&self, fault: FaultModel, level: Level) -> bool {
        self.cell(fault, level).is_some_and(CellStats::detected)
    }

    /// Whether `fault` was detected on at least one of the levels run.
    pub fn detected_somewhere(&self, fault: FaultModel) -> bool {
        self.cells
            .get(fault.name())
            .is_some_and(|levels| levels.values().any(CellStats::detected))
    }

    /// Unions another shard's results into this matrix.
    ///
    /// The merge is a *cell-keyed set union*: every `(fault, level)`
    /// cell, and every per-level healthy verdict, is complete within
    /// the shard that produced it, so a key present on both sides must
    /// carry identical content (shards of one deterministic campaign
    /// always do) and is kept once. That makes the merge associative,
    /// commutative and idempotent, hence order- and
    /// worker-count-insensitive — the farm's determinism argument.
    /// Cross-level disagreements are recomputed from the merged cells.
    ///
    /// # Panics
    ///
    /// Panics if the two matrices come from different campaigns (banks,
    /// seed or runs-per-fault differ) or if a shared cell disagrees —
    /// both are contract violations, not recoverable states.
    pub fn merge(&mut self, other: &DetectionMatrix) {
        assert_eq!(self.banks, other.banks, "merging different interfaces");
        assert_eq!(self.seed, other.seed, "merging different campaign seeds");
        assert_eq!(
            self.runs_per_fault, other.runs_per_fault,
            "merging different runs-per-fault settings"
        );
        for (fault, levels) in &other.cells {
            let mine = self.cells.entry(fault.clone()).or_default();
            for (level, cell) in levels {
                match mine.entry(level.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(cell.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(e) => {
                        assert_eq!(
                            e.get(),
                            cell,
                            "shards disagree on cell ({fault}, {level})"
                        );
                    }
                }
            }
        }
        for (level, ok) in &other.healthy {
            match self.healthy.entry(level.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(*ok);
                }
                std::collections::btree_map::Entry::Occupied(e) => {
                    assert_eq!(e.get(), ok, "shards disagree on healthy control at {level}");
                }
            }
        }
        self.disagreements = compute_disagreements(&self.cells);
    }

    /// Renders the matrix as the human-readable campaign report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fault-injection campaign: {} bank(s), seed {}, {} run(s) per cell\n",
            self.banks, self.seed, self.runs_per_fault
        ));
        out.push_str(&format!(
            "{:<24} {:<9} {:<6} {}\n",
            "fault", "level", "hung", "detected by (channel@mean-latency)"
        ));
        for (fault, levels) in &self.cells {
            for (level, cell) in levels {
                let channels = if cell.monitors.is_empty() {
                    "MISSED".to_string()
                } else {
                    cell.monitors
                        .iter()
                        .map(|(name, m)| {
                            format!(
                                "{name}@{:.1} ({}/{})",
                                m.latency_sum as f64 / m.detected.max(1) as f64,
                                m.detected,
                                cell.runs
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                out.push_str(&format!(
                    "{:<24} {:<9} {:<6} {}\n",
                    fault,
                    level,
                    format!("{}/{}", cell.hung, cell.runs),
                    channels
                ));
            }
        }
        out.push_str("healthy-design control (closed loop): ");
        let healthy = self
            .healthy
            .iter()
            .map(|(level, ok)| format!("{level}={}", if *ok { "ok" } else { "HUNG" }))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&healthy);
        out.push('\n');
        if self.disagreements.is_empty() {
            out.push_str("cross-level monitor agreement: all levels agree\n");
        } else {
            for d in &self.disagreements {
                out.push_str(&format!("cross-level disagreement: {d}\n"));
            }
        }
        out
    }

    /// Serializes the matrix as deterministic JSON (ordered keys, no
    /// timing data): the same seed and config give byte-identical
    /// output.
    pub fn to_json(&self) -> String {
        self.to_json_with_perf(None)
    }

    /// [`Self::to_json`] with an optional `"perf"` object appended —
    /// throughput figures are wall-clock measurements, so they live
    /// outside the deterministic core (passing `None` reproduces
    /// [`Self::to_json`] byte-for-byte, golden files included).
    pub fn to_json_with_perf(&self, perf: Option<&str>) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"banks\": {},\n", self.banks));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"runs_per_fault\": {},\n", self.runs_per_fault));
        out.push_str("  \"matrix\": [\n");
        let mut rows = Vec::new();
        for (fault, levels) in &self.cells {
            for (level, cell) in levels {
                let monitors = cell
                    .monitors
                    .iter()
                    .map(|(name, m)| {
                        format!(
                            "{{\"monitor\": \"{name}\", \"detected\": {}, \"mean_latency\": {:.1}}}",
                            m.detected,
                            m.latency_sum as f64 / m.detected.max(1) as f64
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                rows.push(format!(
                    "    {{\"fault\": \"{fault}\", \"level\": \"{level}\", \"runs\": {}, \"hung\": {}, \"monitors\": [{monitors}]}}",
                    cell.runs, cell.hung
                ));
            }
        }
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str("  \"healthy\": [");
        let healthy = self
            .healthy
            .iter()
            .map(|(level, ok)| format!("{{\"level\": \"{level}\", \"ok\": {ok}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&healthy);
        out.push_str("],\n");
        out.push_str("  \"disagreements\": [");
        out.push_str(&la1_core::json::str_array_body(&self.disagreements));
        match perf {
            Some(perf) => {
                out.push_str("],\n");
                out.push_str(&format!("  \"perf\": {perf}\n}}\n"));
            }
            None => out.push_str("]\n}\n"),
        }
        out
    }
}

/// One model at one level, owning everything it simulates.
pub(crate) enum AnyModel {
    Asm(LaAsmModel),
    Sc(LaSystemC),
    Rtl(LaRtlDriver),
    RtlOvl(RtlWithOvl),
}

impl AnyModel {
    fn as_model(&mut self) -> &mut dyn CycleModel {
        match self {
            AnyModel::Asm(m) => m,
            AnyModel::Sc(m) => m,
            AnyModel::Rtl(m) => m,
            AnyModel::RtlOvl(m) => m,
        }
    }

    fn bank_output(&self, bank: u32) -> Option<u64> {
        match self {
            AnyModel::Asm(m) => m.bank_output(bank),
            AnyModel::Sc(m) => m.bank_output(bank),
            AnyModel::Rtl(m) => m.bank_output(bank),
            AnyModel::RtlOvl(m) => CycleModel::bank_output(m, bank),
        }
    }

    fn write_done(&self, bank: u32) -> bool {
        match self {
            AnyModel::Asm(m) => m.write_done(bank),
            AnyModel::Sc(m) => m.write_done(bank),
            AnyModel::Rtl(m) => m.write_done(bank),
            AnyModel::RtlOvl(m) => CycleModel::write_done(m, bank),
        }
    }

    fn violation_details(&self) -> Vec<(String, u64)> {
        match self {
            AnyModel::Asm(m) => m.violation_details(),
            AnyModel::Sc(m) => CycleModel::violation_details(m),
            AnyModel::Rtl(m) => m.violation_details(),
            AnyModel::RtlOvl(m) => m.violation_details(),
        }
    }

    /// Arms the four-state X injection on the write-data pins (RTL
    /// levels only; a no-op elsewhere).
    fn inject_x(&mut self) {
        match self {
            AnyModel::Rtl(m) => m.inject_x(XPin::WData),
            AnyModel::RtlOvl(m) => m.driver_mut().inject_x(XPin::WData),
            AnyModel::Asm(_) | AnyModel::Sc(_) => {}
        }
    }
}

/// Builds the faulted device under test for one run.
pub(crate) fn build_dut(level: Level, cfg: &LaConfig, plan: Option<&FaultPlan>) -> AnyModel {
    let parity_bank = plan
        .filter(|p| p.model == FaultModel::ParityFault)
        .map(|p| p.bank);
    match level {
        Level::Asm => AnyModel::Asm(LaAsmModel::new(cfg)),
        Level::SystemC => {
            let mut sc = LaSystemC::new(cfg);
            sc.attach_default_monitors();
            if let Some(bank) = parity_bank {
                sc.inject_parity_fault(bank);
            }
            AnyModel::Sc(sc)
        }
        Level::Rtl => AnyModel::Rtl(LaRtlDriver::new(&LaRtl::build(cfg, parity_bank))),
        Level::RtlOvl => AnyModel::RtlOvl(RtlWithOvl::new(&LaRtl::build(cfg, parity_bank))),
    }
}

/// Builds the healthy golden model the scoreboard compares against —
/// same level, no fault, no monitors (the RTL+OVL golden is the bare
/// driver: the scoreboard only reads pins).
pub(crate) fn build_golden(level: Level, cfg: &LaConfig) -> AnyModel {
    match level {
        Level::Asm => AnyModel::Asm(LaAsmModel::new(cfg)),
        Level::SystemC => AnyModel::Sc(LaSystemC::new(cfg)),
        Level::Rtl | Level::RtlOvl => {
            AnyModel::Rtl(LaRtlDriver::new(&LaRtl::build(cfg, None)))
        }
    }
}

thread_local! {
    /// Set while a guarded DUT cycle runs, so the process panic hook
    /// stays silent for expected protocol-assert trips.
    static GUARDING: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that suppresses output for
/// panics caught by the campaign's cycle guard and defers to the
/// previous hook for everything else.
pub(crate) fn install_guard_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !GUARDING.with(|g| g.get()) {
                prev(info);
            }
        }));
    });
}

/// Drives one DUT cycle under the panic guard; `true` means a protocol
/// assertion tripped.
pub(crate) fn guarded_cycle(dut: &mut AnyModel, ops: &[BankOp]) -> bool {
    GUARDING.with(|g| g.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| dut.as_model().cycle(ops)));
    GUARDING.with(|g| g.set(false));
    result.is_err()
}

/// The outcome of one seeded run.
pub(crate) struct RunResult {
    /// channel name → detection latency in cycles (first detection).
    pub(crate) detections: BTreeMap<String, u64>,
    /// Closed-loop run made no progress within the watchdog budget.
    pub(crate) hung: bool,
}

/// The open-loop stimulus: a priming phase writing a distinct word to
/// every `(bank, addr)` slot, a mixed phase with one random read and
/// one round-robin write per cycle (the round-robin write order means
/// no slot is overwritten before the sweep, so a single corrupted
/// write always reaches a read), a full read sweep, and a drain tail
/// long enough to flush deferred strobes and in-flight reads.
pub(crate) fn open_loop_script(cfg: &LaConfig, rng: &mut StdRng) -> Vec<Vec<BankOp>> {
    let words = cfg.words_per_bank;
    let slots = cfg.banks * words;
    let full_be = (1u32 << cfg.byte_enables()) - 1;
    let mut script = Vec::new();
    for slot in 0..slots {
        script.push(vec![BankOp::write(
            slot / words,
            (slot % words) as u64,
            0x0100 + slot as u64,
            full_be,
        )]);
    }
    for i in 0..slots {
        let read = BankOp::read(
            rng.gen_range(0..cfg.banks),
            rng.gen_range(0..words) as u64,
        );
        let write = BankOp::write(i / words, (i % words) as u64, 0x1000 + i as u64, full_be);
        script.push(vec![read, write]);
    }
    for slot in 0..slots {
        script.push(vec![BankOp::read(slot / words, (slot % words) as u64)]);
    }
    for _ in 0..READ_LATENCY as u64 + 4 {
        script.push(Vec::new());
    }
    script
}

/// Replays a campaign script through the transaction layer: a
/// [`ScriptSequence`] behind a [`Driver`]. The driver is built on the
/// base-LA-1 view of the configuration (burst length 1): campaign
/// scripts are *directed* stimulus whose exact cycle shape — including
/// deliberate LA-1B spacing violations on the RTL levels — is the
/// point, so only the structural one-read-one-write bus mapping
/// applies, and a legal script comes back verbatim.
pub(crate) fn replay_script(cfg: &LaConfig, script: Vec<Vec<BankOp>>) -> Vec<Vec<BankOp>> {
    let base = LaConfig {
        burst_len: 1,
        ..cfg.clone()
    };
    let total = script.len();
    let mut driver = Driver::new(&base);
    let mut seq = ScriptSequence::new(script);
    (0..total).map(|_| driver.cycle_from(&mut seq)).collect()
}

/// Derives the faulted stimulus of one open-loop run from the intended
/// cycles. Most faults are [`Injector`] transforms of the op stream;
/// the hostile double-read master is a transaction-level sequence
/// ([`HostileMasterSeq`]) riding the intended script behind its own
/// driver. Returns the injected cycles plus the cycle (if any) whose
/// write arms the one-shot X injection.
pub(crate) fn inject_stream(
    cfg: &LaConfig,
    plan: &FaultPlan,
    intended: &[Vec<BankOp>],
) -> (Vec<Vec<BankOp>>, Option<u64>) {
    if plan.model == FaultModel::HostileMaster {
        let base = LaConfig {
            burst_len: 1,
            ..cfg.clone()
        };
        let mut driver = Driver::new(&base);
        let mut seq = HostileMasterSeq::new(
            ScriptSequence::new(intended.to_vec()),
            plan.bank,
            plan.activation,
        );
        let injected = (0..intended.len())
            .map(|_| driver.cycle_from(&mut seq))
            .collect();
        return (injected, None);
    }
    let mut injector = Injector::new(plan.clone());
    let mut injected = Vec::with_capacity(intended.len());
    let mut x_cycle = None;
    for (i, ops) in intended.iter().enumerate() {
        let cycle = i as u64;
        let mut inj = ops.clone();
        injector.apply(cycle, cfg, &mut inj);
        if injector.x_due(cycle, &inj) {
            x_cycle = Some(cycle);
        }
        injected.push(inj);
    }
    (injected, x_cycle)
}

/// The activation-cycle sampling window: the mixed phase of the
/// open-loop script, where every cycle carries both a read and a write
/// (so every one-shot fault is guaranteed to arm).
pub(crate) fn activation_window(cfg: &LaConfig) -> (u64, u64) {
    let slots = (cfg.banks * cfg.words_per_bank) as u64;
    (slots, 2 * slots)
}

/// One open-loop run: faulted DUT vs healthy golden on the same
/// intended stimulus, monitors collected afterwards. The intended
/// cycles come off the transaction layer ([`replay_script`]) and the
/// faulted stimulus off [`inject_stream`].
pub(crate) fn open_loop_run(
    level: Level,
    cfg: &LaConfig,
    plan: FaultPlan,
    rng: &mut StdRng,
    preamble: &[Vec<BankOp>],
) -> RunResult {
    let script = replay_script(cfg, open_loop_script(cfg, rng));
    let (injected_script, x_cycle) = inject_stream(cfg, &plan, &script);
    let mut golden = build_golden(level, cfg);
    let mut dut = build_dut(level, cfg, Some(&plan));
    let mut detections: BTreeMap<String, u64> = BTreeMap::new();
    let activation = plan.activation;
    // deep-state preamble: both models advance through it from reset
    // (the DUT guarded — a structural fault may legitimately trip an
    // assertion on deep traffic), then the script starts at cycle 0
    // as if the preamble were part of reset.
    for ops in preamble {
        golden.as_model().cycle(ops);
        if guarded_cycle(&mut dut, ops) {
            detections.insert("guard".to_string(), 0);
            return RunResult {
                detections,
                hung: false,
            };
        }
    }
    for (i, intended) in script.iter().enumerate() {
        let cycle = i as u64;
        let injected = &injected_script[i];
        if x_cycle == Some(cycle) {
            dut.inject_x();
        }
        golden.as_model().cycle(intended);
        if guarded_cycle(&mut dut, injected) {
            detections.insert("guard".to_string(), cycle.saturating_sub(activation));
            break;
        }
        if !detections.contains_key("scoreboard") {
            for bank in 0..cfg.banks {
                if dut.bank_output(bank) != golden.bank_output(bank)
                    || dut.write_done(bank) != golden.write_done(bank)
                {
                    detections
                        .insert("scoreboard".to_string(), cycle.saturating_sub(activation));
                    break;
                }
            }
        }
    }
    for (name, cycle) in dut.violation_details() {
        let latency = cycle.saturating_sub(activation);
        detections
            .entry(name)
            .and_modify(|l| *l = (*l).min(latency))
            .or_insert(latency);
    }
    RunResult {
        detections,
        hung: false,
    }
}

/// One closed-loop run: the master issues a read whenever none is
/// outstanding and counts data-valid responses; `watchdog_cycles`
/// without progress declares the run hung. `plan == None` is the
/// healthy-design control.
pub(crate) fn closed_loop_run(
    level: Level,
    cfg: &LaConfig,
    plan: Option<FaultPlan>,
    watchdog_cycles: u64,
    target_reads: u32,
    preamble: &[Vec<BankOp>],
) -> RunResult {
    let words = cfg.words_per_bank;
    let slots = cfg.banks * words;
    let full_be = (1u32 << cfg.byte_enables()) - 1;
    let mut dut = build_dut(level, cfg, plan.as_ref());
    let mut injector = plan.clone().map(Injector::new);
    let activation = plan.as_ref().map_or(0, |p| p.activation);
    let mut detections: BTreeMap<String, u64> = BTreeMap::new();
    let mut hung = false;

    // deep-state preamble, before priming (cycle numbering of the
    // closed loop below is untouched — the preamble is part of reset)
    for ops in preamble {
        if guarded_cycle(&mut dut, ops) {
            detections.insert("guard".to_string(), 0);
            return RunResult {
                detections,
                hung: true,
            };
        }
    }

    // prime every slot so reads return real data
    for slot in 0..slots {
        let ops = vec![BankOp::write(
            slot / words,
            (slot % words) as u64,
            0x0100 + slot as u64,
            full_be,
        )];
        if guarded_cycle(&mut dut, &ops) {
            detections.insert("guard".to_string(), 0);
            return RunResult {
                detections,
                hung: true,
            };
        }
    }

    let prime_len = slots as u64;
    let window = activation_window(cfg);
    // never declare success before the activation window has passed
    // and the fault had a chance to swallow a post-activation read —
    // otherwise a late-activating fault is never exercised at all
    let min_cycles = window.1.max(activation + READ_LATENCY as u64 + 4);
    let hard_cap = prime_len
        + (window.1 - window.0)
        + (target_reads as u64 + 4) * (READ_LATENCY as u64 + 2)
        + 2 * watchdog_cycles
        + 16;
    let mut completed = 0u32;
    let mut last_progress = prime_len;
    let mut outstanding = false;
    let mut counter: u32 = 0;
    for cycle in prime_len..hard_cap {
        let mut ops = Vec::new();
        if !outstanding {
            let slot = counter % slots;
            counter += 1;
            ops.push(BankOp::read(slot / words, (slot % words) as u64));
            outstanding = true;
        }
        if let Some(injector) = &mut injector {
            injector.apply(cycle, cfg, &mut ops);
        }
        if guarded_cycle(&mut dut, &ops) {
            detections.insert("guard".to_string(), cycle.saturating_sub(activation));
            hung = true;
            break;
        }
        if (0..cfg.banks).any(|b| dut.bank_output(b).is_some()) {
            completed += 1;
            outstanding = false;
            last_progress = cycle;
            if completed >= target_reads && cycle >= min_cycles {
                break;
            }
        }
        if cycle - last_progress >= watchdog_cycles {
            detections.insert("watchdog".to_string(), cycle.saturating_sub(activation));
            hung = true;
            break;
        }
    }
    if completed < target_reads && !hung {
        // the hard cap ran out without the watchdog firing: still no
        // forward progress to the target — report it as hung
        detections.insert("watchdog".to_string(), hard_cap.saturating_sub(activation));
        hung = true;
    }
    for (name, cycle) in dut.violation_details() {
        let latency = cycle.saturating_sub(activation);
        detections
            .entry(name)
            .and_modify(|l| *l = (*l).min(latency))
            .or_insert(latency);
    }
    RunResult { detections, hung }
}

/// Derives the per-run seed from the campaign seed and the run's
/// coordinates (splitmix-style finalizer keeps neighboring runs
/// decorrelated).
pub(crate) fn run_seed(base: u64, fault_idx: usize, level_idx: usize, run: u32) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(1 + fault_idx as u64))
        .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(1 + level_idx as u64))
        .wrapping_add(0x94D0_49BB_1331_11EBu64.wrapping_mul(1 + run as u64));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z
}

/// Runs the full campaign: every configured fault on every supporting
/// level, `runs_per_fault` seeded runs each, plus one healthy-design
/// closed-loop control per level, and the cross-level monitor
/// agreement check.
pub fn run_campaign(config: &CampaignConfig) -> DetectionMatrix {
    run_campaign_shard(config, &CampaignShard::full(config))
}

/// Runs one shard of the campaign with the scalar engines: only the
/// shard's fault indices (with their *global* per-run seeds), and the
/// healthy controls only when the shard carries them. The union of a
/// disjoint shard family's matrices ([`DetectionMatrix::merge`])
/// reproduces [`run_campaign`] byte-for-byte.
pub fn run_campaign_shard(config: &CampaignConfig, shard: &CampaignShard) -> DetectionMatrix {
    install_guard_hook();
    let cfg = &config.la1;
    let mut matrix = DetectionMatrix {
        banks: cfg.banks,
        seed: config.seed,
        runs_per_fault: config.runs_per_fault,
        cells: BTreeMap::new(),
        healthy: BTreeMap::new(),
        disagreements: Vec::new(),
    };
    for (fault_idx, &fault) in config.faults.iter().enumerate() {
        if !shard.includes(fault_idx) {
            continue;
        }
        for (level_idx, &level) in config.levels.iter().enumerate() {
            if !supports(fault, level) {
                continue;
            }
            let cell = matrix
                .cells
                .entry(fault.name().to_string())
                .or_default()
                .entry(level.name().to_string())
                .or_default();
            for run in 0..config.runs_per_fault {
                let seed = run_seed(config.seed, fault_idx, level_idx, run);
                let mut rng = StdRng::seed_from_u64(seed);
                let plan = FaultPlan::sample(fault, cfg, activation_window(cfg), &mut rng);
                let result = if fault.closed_loop() {
                    closed_loop_run(
                        level,
                        cfg,
                        Some(plan),
                        config.watchdog_cycles,
                        config.target_reads,
                        &config.preamble,
                    )
                } else {
                    open_loop_run(level, cfg, plan, &mut rng, &config.preamble)
                };
                cell.runs += 1;
                cell.hung += u32::from(result.hung);
                for (channel, latency) in result.detections {
                    let stat = cell.monitors.entry(channel).or_default();
                    stat.detected += 1;
                    stat.latency_sum += latency;
                }
            }
        }
    }
    if shard.healthy {
        for &level in &config.levels {
            let result = closed_loop_run(
                level,
                cfg,
                None,
                config.watchdog_cycles,
                config.target_reads,
                &config.preamble,
            );
            matrix.healthy.insert(level.name().to_string(), !result.hung);
        }
    }
    matrix.disagreements = compute_disagreements(&matrix.cells);
    matrix
}

/// Cross-level monitor agreement: the monitored levels (PSL at
/// SystemC, OVL at RTL) should catch the same faults.
pub(crate) fn compute_disagreements(
    cells: &BTreeMap<String, BTreeMap<String, CellStats>>,
) -> Vec<String> {
    let mut disagreements = Vec::new();
    for (fault, levels) in cells {
        let monitored: Vec<(&String, bool)> = levels
            .iter()
            .filter(|(name, _)| name.as_str() == "systemc" || name.as_str() == "rtl+ovl")
            .map(|(name, cell)| (name, cell.monitor_detected()))
            .collect();
        if monitored.len() < 2 {
            continue;
        }
        let caught: Vec<&str> = monitored
            .iter()
            .filter(|(_, d)| *d)
            .map(|(n, _)| n.as_str())
            .collect();
        if !caught.is_empty() && caught.len() < monitored.len() {
            let missed: Vec<&str> = monitored
                .iter()
                .filter(|(_, d)| !*d)
                .map(|(n, _)| n.as_str())
                .collect();
            disagreements.push(format!(
                "{fault}: monitors caught it at [{}] but missed it at [{}]",
                caught.join(", "),
                missed.join(", ")
            ));
        }
    }
    disagreements
}
