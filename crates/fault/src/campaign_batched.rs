//! The bit-parallel (PPSFP) campaign runner.
//!
//! [`run_campaign_batched`] produces the **same** [`DetectionMatrix`]
//! as [`run_campaign`](crate::run_campaign) — byte-identical
//! [`DetectionMatrix::to_json`] — but runs all RTL-level work on the
//! 64-lane [`LaRtlBatchDriver`]: every compiled-netlist operation
//! evaluates 64 independent seeded runs at once, the classic
//! parallel-pattern single-fault-propagation trick turned into
//! parallel-*run* simulation.
//!
//! How the runs map onto lanes:
//!
//! * Lanes can only share a simulator when they share a netlist, so
//!   runs are grouped by DUT netlist: one *healthy* group carries every
//!   scoreboard golden plus the DUTs of all stimulus faults (which
//!   corrupt the op stream, not the design), and one extra group per
//!   parity-faulted bank carries that bank's `parity_fault` DUTs.
//! * Closed-loop runs (`stuck_at_0_read_sel` plus the healthy-design
//!   control) keep per-lane feedback state — outstanding read, progress
//!   counter, watchdog timer — and live in their own group.
//! * **Fault dropping**: a lane retires the cycle its run's verdict is
//!   complete — at the precomputed guard-trip cycle, after the first
//!   scoreboard mismatch (bare-RTL level only; `rtl+ovl` DUT lanes must
//!   keep sampling their monitors to the end of the script), or at
//!   closed-loop completion/watchdog. Retired lanes stop receiving
//!   stimulus and comparisons; the simulator itself still steps, so
//!   dropping is observable in [`BatchStats`] without altering any
//!   verdict or detection cycle.
//!
//! Determinism is inherited wholesale: per-run seeds, fault plans and
//! scripts are derived exactly as the scalar runner derives them, and
//! the per-lane protocol drive is bit-identical to
//! [`LaRtlDriver`](la1_core::rtl_model::LaRtlDriver) — so the matrix
//! cells, latencies and disagreements come out equal by construction
//! (the equivalence tests in this crate check byte-identity at 1/2/4
//! banks).
//!
//! The ASM and SystemC levels are two-valued compiled models with no
//! packed representation; their (much cheaper) runs reuse the scalar
//! path unchanged.

use crate::campaign::{
    activation_window, closed_loop_run, compute_disagreements, inject_stream, install_guard_hook,
    open_loop_run, open_loop_script, replay_script, run_seed, supports, CampaignConfig,
    CampaignShard, DetectionMatrix, Level, RunResult,
};
use crate::models::{FaultModel, FaultPlan, Injector};
use la1_core::harness::attach_la1_ovl;
use la1_core::rtl_model::{LaRtl, LaRtlBatchDriver, XPin};
use la1_core::spec::{BankOp, LaConfig, READ_LATENCY};
use la1_ovl::OvlBench;
use la1_rtl::LANES;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Bit-parallel execution statistics: how much lane-level work the
/// batched engine did and how much of it fault dropping retired early.
/// Pure bookkeeping — none of it feeds back into the matrix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Seeded RTL-level lane runs executed (DUTs, goldens and
    /// closed-loop controls).
    pub rtl_lane_runs: u32,
    /// Lanes retired before their script's natural end (fault
    /// dropping).
    pub lanes_retired_early: u32,
    /// Lane-cycles of stimulus skipped by early retirement.
    pub lane_cycles_saved: u64,
    /// Batched simulators instantiated (lane groups across levels).
    pub groups: u32,
}

impl BatchStats {
    /// One-line human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "batched: {} lane runs in {} group(s), {} lane(s) dropped early, {} lane-cycles saved",
            self.rtl_lane_runs, self.groups, self.lanes_retired_early, self.lane_cycles_saved
        )
    }

    /// Deterministic JSON object (no timing data).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rtl_lane_runs\": {}, \"groups\": {}, \"lanes_retired_early\": {}, \"lane_cycles_saved\": {}}}",
            self.rtl_lane_runs, self.groups, self.lanes_retired_early, self.lane_cycles_saved
        )
    }
}

/// Which netlist a lane group simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupKind {
    /// Open-loop lanes over the given parity-faulted bank (`None` =
    /// healthy netlist: goldens + stimulus-fault DUTs).
    Open(Option<u32>),
    /// Closed-loop lanes (healthy netlist, per-lane feedback).
    Closed,
}

/// One 64-lane simulator plus its per-lane monitor benches.
struct LaneGroup {
    kind: GroupKind,
    driver: LaRtlBatchDriver,
    /// OVL bench per DUT lane at the `rtl+ovl` level.
    benches: Vec<Option<OvlBench>>,
    used: usize,
}

/// Allocates one lane of `kind`, opening a new group when the current
/// one is full; attaches an OVL bench to the lane when `with_bench`.
fn alloc_lane(
    groups: &mut Vec<LaneGroup>,
    cfg: &LaConfig,
    kind: GroupKind,
    with_bench: bool,
) -> (usize, usize) {
    let parity = match kind {
        GroupKind::Open(p) => p,
        GroupKind::Closed => None,
    };
    let gi = match groups
        .iter()
        .rposition(|g| g.kind == kind && g.used < LANES)
    {
        Some(gi) => gi,
        None => {
            let design = LaRtl::build(cfg, parity);
            groups.push(LaneGroup {
                kind,
                driver: LaRtlBatchDriver::new(&design),
                benches: (0..LANES).map(|_| None).collect(),
                used: 0,
            });
            groups.len() - 1
        }
    };
    let lane = groups[gi].used;
    groups[gi].used += 1;
    if with_bench {
        // monitors probe by net id, and every build of one config
        // allocates the identical net arena (the parity fault only
        // rewrites an expression), so attaching against a fresh build
        // is attachment against the group's design
        let mut bench = OvlBench::new();
        attach_la1_ovl(&mut bench, &LaRtl::build(cfg, parity));
        groups[gi].benches[lane] = Some(bench);
    }
    (gi, lane)
}

/// One prepared open-loop run: everything about it is precomputed —
/// the injected script is a pure transform of the intended ops, and
/// the guard trip (illegal ops on the single address bus) is a static
/// property of that script, so the whole guard schedule is known
/// before the first simulator step.
struct OpenRun {
    fault: FaultModel,
    activation: u64,
    intended: Vec<Vec<BankOp>>,
    injected: Vec<Vec<BankOp>>,
    /// cycle whose write arms the one-shot X injection, if any
    x_cycle: Option<u64>,
    /// first cycle whose injected ops violate the bus protocol
    guard_cycle: Option<u64>,
    dut: (usize, usize),
    gold: (usize, usize),
}

/// One closed-loop lane with its live feedback state (mirrors the
/// scalar `closed_loop_run` locals one-for-one).
struct ClosedRun {
    /// `None` is the healthy-design control.
    fault: Option<FaultModel>,
    injector: Option<Injector>,
    activation: u64,
    min_cycles: u64,
    lane: (usize, usize),
    completed: u32,
    outstanding: bool,
    counter: u32,
    last_progress: u64,
    detections: BTreeMap<String, u64>,
    hung: bool,
    done: bool,
    /// cycles this lane was actually driven (for the dropping stats)
    driven: u64,
}

/// Whether `ops` respect the single-address-bus protocol the RTL
/// drivers enforce by assertion (one read, one write, in-range
/// addresses — mirrors the decode asserts in `cycle_with`).
fn ops_legal(cfg: &LaConfig, ops: &[BankOp]) -> bool {
    let mut reads = 0;
    let mut writes = 0;
    for op in ops {
        let addr = match *op {
            BankOp::Read { addr, .. } => {
                reads += 1;
                addr
            }
            BankOp::Write { addr, .. } => {
                writes += 1;
                addr
            }
        };
        if addr >= cfg.words_per_bank as u64 {
            return false;
        }
    }
    reads <= 1 && writes <= 1
}

/// Runs every seeded run of one RTL-family level through the batched
/// simulator, restricted to the shard's faults. Returns the per-run
/// results in `(fault, run)` order plus the healthy-design control
/// verdict (`None` when the shard does not carry the controls).
fn run_rtl_level_batched(
    config: &CampaignConfig,
    shard: &CampaignShard,
    level: Level,
    level_idx: usize,
    stats: &mut BatchStats,
) -> (Vec<(FaultModel, RunResult)>, Option<bool>) {
    let cfg = &config.la1;
    let with_bench = level == Level::RtlOvl;
    let window = activation_window(cfg);
    let mut groups: Vec<LaneGroup> = Vec::new();
    let mut open_runs: Vec<OpenRun> = Vec::new();
    let mut closed_runs: Vec<ClosedRun> = Vec::new();

    // ---- prepare: derive every run exactly as the scalar runner does
    for (fault_idx, &fault) in config.faults.iter().enumerate() {
        if !shard.includes(fault_idx) || !supports(fault, level) {
            continue;
        }
        for run in 0..config.runs_per_fault {
            let seed = run_seed(config.seed, fault_idx, level_idx, run);
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = FaultPlan::sample(fault, cfg, window, &mut rng);
            if fault.closed_loop() {
                let activation = plan.activation;
                let lane = alloc_lane(&mut groups, cfg, GroupKind::Closed, with_bench);
                closed_runs.push(ClosedRun {
                    fault: Some(fault),
                    injector: Some(Injector::new(plan)),
                    activation,
                    min_cycles: window.1.max(activation + READ_LATENCY as u64 + 4),
                    lane,
                    completed: 0,
                    outstanding: false,
                    counter: 0,
                    last_progress: 0,
                    detections: BTreeMap::new(),
                    hung: false,
                    done: false,
                    driven: 0,
                });
                continue;
            }
            let intended = replay_script(cfg, open_loop_script(cfg, &mut rng));
            let (injected, x_cycle) = inject_stream(cfg, &plan, &intended);
            let guard_cycle = injected
                .iter()
                .position(|ops| !ops_legal(cfg, ops))
                .map(|i| i as u64);
            let parity = (fault == FaultModel::ParityFault).then_some(plan.bank);
            let dut = alloc_lane(&mut groups, cfg, GroupKind::Open(parity), with_bench);
            let gold = alloc_lane(&mut groups, cfg, GroupKind::Open(None), false);
            open_runs.push(OpenRun {
                fault,
                activation: plan.activation,
                intended,
                injected,
                x_cycle,
                guard_cycle,
                dut,
                gold,
            });
        }
    }
    // the healthy-design closed-loop control rides in the closed group
    // (only on the shard carrying the controls)
    if shard.healthy {
        let control_lane = alloc_lane(&mut groups, cfg, GroupKind::Closed, with_bench);
        closed_runs.push(ClosedRun {
            fault: None,
            injector: None,
            activation: 0,
            min_cycles: window.1.max(READ_LATENCY as u64 + 4),
            lane: control_lane,
            completed: 0,
            outstanding: false,
            counter: 0,
            last_progress: 0,
            detections: BTreeMap::new(),
            hung: false,
            done: false,
            driven: 0,
        });
    }

    stats.groups += groups.len() as u32;
    stats.rtl_lane_runs += (2 * open_runs.len() + closed_runs.len()) as u32;

    // ---- deep-state preamble: broadcast into every lane of every
    // group (DUTs, goldens, closed-loop lanes alike) before any script
    // starts, monitors sampling — exactly what each scalar run does
    // from reset, so preambled matrices stay byte-identical between
    // the scalar and batched runners.
    for ops in &config.preamble {
        for group in groups.iter_mut() {
            let refs: Vec<&[BankOp]> = vec![ops.as_slice(); group.used];
            let LaneGroup {
                driver, benches, ..
            } = group;
            driver.cycle_with(&refs, |sim| {
                for (lane, bench) in benches.iter_mut().enumerate() {
                    if let Some(bench) = bench.as_mut() {
                        bench.on_cycle(&mut sim.lane_probe(lane));
                    }
                }
            });
        }
    }

    // ---- open-loop lockstep: all open groups advance one cycle
    // together so cross-group scoreboard pairs compare at the same
    // instant; first scoreboard mismatches land in `sb_cycles`
    let script_len = open_runs.first().map_or(0, |r| r.intended.len()) as u64;
    let mut sb_cycles: Vec<Option<u64>> = vec![None; open_runs.len()];
    let empty: &[BankOp] = &[];
    let mut ops_buf: Vec<Vec<&[BankOp]>> =
        groups.iter().map(|g| vec![empty; g.used]).collect();
    let mut sample_buf: Vec<Vec<bool>> = groups.iter().map(|g| vec![false; g.used]).collect();
    for cycle in 0..script_len {
        for (gi, buf) in ops_buf.iter_mut().enumerate() {
            buf.iter_mut().for_each(|o| *o = empty);
            sample_buf[gi].iter_mut().for_each(|s| *s = false);
        }
        for (i, run) in open_runs.iter().enumerate() {
            let c = cycle as usize;
            let g = run.guard_cycle.unwrap_or(u64::MAX);
            // a scoreboard hit retires the bare-RTL pair; at rtl+ovl
            // only the golden retires (the DUT's monitors keep going)
            let sb_stop = sb_cycles[i].map_or(u64::MAX, |m| m + 1);
            let dut_active = cycle < g && (level == Level::RtlOvl || cycle < sb_stop);
            if dut_active {
                ops_buf[run.dut.0][run.dut.1] = &run.injected[c];
                sample_buf[run.dut.0][run.dut.1] = true;
                if run.x_cycle == Some(cycle) {
                    groups[run.dut.0].driver.inject_x(run.dut.1, XPin::WData);
                }
            }
            // the golden executes the guard-trip cycle itself (the
            // scalar loop cycles it before the guard fires)
            if cycle < g.saturating_add(1).min(sb_stop) {
                ops_buf[run.gold.0][run.gold.1] = &run.intended[c];
            }
        }
        for (gi, group) in groups.iter_mut().enumerate() {
            if group.kind == GroupKind::Closed {
                continue;
            }
            let LaneGroup {
                driver, benches, ..
            } = group;
            let mask = &sample_buf[gi];
            driver.cycle_with(&ops_buf[gi], |sim| {
                for (lane, (bench, sample)) in benches.iter_mut().zip(mask).enumerate() {
                    if let (Some(bench), true) = (bench.as_mut(), *sample) {
                        bench.on_cycle(&mut sim.lane_probe(lane));
                    }
                }
            });
        }
        for (i, run) in open_runs.iter().enumerate() {
            if sb_cycles[i].is_some() || cycle >= run.guard_cycle.unwrap_or(u64::MAX) {
                continue;
            }
            let dut = &groups[run.dut.0].driver;
            let gold = &groups[run.gold.0].driver;
            for bank in 0..cfg.banks {
                if dut.bank_output(run.dut.1, bank) != gold.bank_output(run.gold.1, bank)
                    || dut.write_done(run.dut.1, bank) != gold.write_done(run.gold.1, bank)
                {
                    sb_cycles[i] = Some(cycle);
                    break;
                }
            }
        }
    }

    // ---- closed-loop: per-lane feedback, lanes retire as they finish
    let words = cfg.words_per_bank;
    let slots = cfg.banks * words;
    let full_be = (1u32 << cfg.byte_enables()) - 1;
    let prime_len = slots as u64;
    let hard_cap = prime_len
        + (window.1 - window.0)
        + (config.target_reads as u64 + 4) * (READ_LATENCY as u64 + 2)
        + 2 * config.watchdog_cycles
        + 16;
    for run in &mut closed_runs {
        run.last_progress = prime_len;
    }
    let closed_gis: Vec<usize> = (0..groups.len())
        .filter(|&gi| groups[gi].kind == GroupKind::Closed)
        .collect();
    let mut lane_ops: Vec<Vec<Vec<BankOp>>> =
        groups.iter().map(|g| vec![Vec::new(); g.used]).collect();
    for cycle in 0..hard_cap {
        if closed_runs.iter().all(|r| r.done) {
            break;
        }
        for run in &mut closed_runs {
            let (gi, lane) = run.lane;
            lane_ops[gi][lane].clear();
            if run.done {
                continue;
            }
            run.driven += 1;
            let ops = &mut lane_ops[gi][lane];
            if cycle < prime_len {
                let slot = cycle as u32;
                ops.push(BankOp::write(
                    slot / words,
                    (slot % words) as u64,
                    0x0100 + slot as u64,
                    full_be,
                ));
            } else {
                if !run.outstanding {
                    let slot = run.counter % slots;
                    run.counter += 1;
                    ops.push(BankOp::read(slot / words, (slot % words) as u64));
                    run.outstanding = true;
                }
                if let Some(injector) = &mut run.injector {
                    injector.apply(cycle, cfg, ops);
                }
            }
            // the closed-loop fault set only ever *removes* strobes, so
            // the guard (which the scalar runner arms every cycle)
            // provably never trips here
            debug_assert!(ops_legal(cfg, ops));
        }
        for &gi in &closed_gis {
            let used = groups[gi].used;
            let refs: Vec<&[BankOp]> = lane_ops[gi].iter().map(Vec::as_slice).collect();
            let active: Vec<bool> = (0..used)
                .map(|lane| closed_runs.iter().any(|r| r.lane == (gi, lane) && !r.done))
                .collect();
            let LaneGroup {
                driver, benches, ..
            } = &mut groups[gi];
            driver.cycle_with(&refs, |sim| {
                for (lane, (bench, live)) in benches.iter_mut().zip(&active).enumerate() {
                    if let (Some(bench), true) = (bench.as_mut(), *live) {
                        bench.on_cycle(&mut sim.lane_probe(lane));
                    }
                }
            });
        }
        if cycle < prime_len {
            continue;
        }
        for run in &mut closed_runs {
            if run.done {
                continue;
            }
            let (gi, lane) = run.lane;
            let driver = &groups[gi].driver;
            if (0..cfg.banks).any(|b| driver.bank_output(lane, b).is_some()) {
                run.completed += 1;
                run.outstanding = false;
                run.last_progress = cycle;
                if run.completed >= config.target_reads && cycle >= run.min_cycles {
                    run.done = true;
                    continue;
                }
            }
            if cycle - run.last_progress >= config.watchdog_cycles {
                run.detections
                    .insert("watchdog".to_string(), cycle.saturating_sub(run.activation));
                run.hung = true;
                run.done = true;
            }
        }
    }

    // ---- assemble per-run results (identical to the scalar paths)
    let mut results: Vec<(FaultModel, RunResult)> = Vec::new();
    for (i, run) in open_runs.iter().enumerate() {
        let mut detections: BTreeMap<String, u64> = BTreeMap::new();
        if let Some(g) = run.guard_cycle {
            detections.insert("guard".to_string(), g.saturating_sub(run.activation));
        }
        if let Some(m) = sb_cycles[i] {
            detections.insert("scoreboard".to_string(), m.saturating_sub(run.activation));
        }
        if let Some(bench) = &groups[run.dut.0].benches[run.dut.1] {
            for v in bench.violations() {
                let latency = v.cycle.saturating_sub(run.activation);
                detections
                    .entry(v.monitor.clone())
                    .and_modify(|l| *l = (*l).min(latency))
                    .or_insert(latency);
            }
        }
        // dropping stats: cycles the DUT/golden lanes did not consume
        let g = run.guard_cycle.unwrap_or(u64::MAX);
        let sb_stop = sb_cycles[i].map_or(u64::MAX, |m| m + 1);
        let dut_end = if level == Level::RtlOvl {
            g.min(script_len)
        } else {
            g.min(sb_stop).min(script_len)
        };
        let gold_end = g.saturating_add(1).min(sb_stop).min(script_len);
        for end in [dut_end, gold_end] {
            if end < script_len {
                stats.lanes_retired_early += 1;
                stats.lane_cycles_saved += script_len - end;
            }
        }
        results.push((
            run.fault,
            RunResult {
                detections,
                hung: false,
            },
        ));
    }
    let mut healthy_ok = None;
    for mut run in closed_runs {
        if run.completed < config.target_reads && !run.hung {
            // the hard cap ran out without the watchdog firing —
            // same post-loop verdict as the scalar runner
            run.detections.insert(
                "watchdog".to_string(),
                hard_cap.saturating_sub(run.activation),
            );
            run.hung = true;
        }
        if let Some(bench) = &groups[run.lane.0].benches[run.lane.1] {
            for v in bench.violations() {
                let latency = v.cycle.saturating_sub(run.activation);
                run.detections
                    .entry(v.monitor.clone())
                    .and_modify(|l| *l = (*l).min(latency))
                    .or_insert(latency);
            }
        }
        if run.driven < hard_cap {
            stats.lanes_retired_early += 1;
            stats.lane_cycles_saved += hard_cap - run.driven;
        }
        match run.fault {
            Some(fault) => results.push((
                fault,
                RunResult {
                    detections: run.detections,
                    hung: run.hung,
                },
            )),
            None => healthy_ok = Some(!run.hung),
        }
    }
    (results, healthy_ok)
}

/// Runs the full campaign with all RTL-level work on the 64-lane
/// batched simulator, producing a matrix byte-identical to
/// [`run_campaign`](crate::run_campaign) plus the bit-parallel
/// execution stats.
pub fn run_campaign_batched(config: &CampaignConfig) -> (DetectionMatrix, BatchStats) {
    run_campaign_batched_shard(config, &CampaignShard::full(config))
}

/// Runs one shard of the campaign with the batched RTL engines —
/// the farm's per-worker unit of work. Shard semantics match
/// [`run_campaign_shard`](crate::run_campaign_shard): global seed
/// indices, healthy controls only on the carrying shard, so merged
/// shard matrices reproduce [`run_campaign_batched`] byte-for-byte.
pub fn run_campaign_batched_shard(
    config: &CampaignConfig,
    shard: &CampaignShard,
) -> (DetectionMatrix, BatchStats) {
    install_guard_hook();
    let cfg = &config.la1;
    let mut stats = BatchStats::default();
    let mut matrix = DetectionMatrix {
        banks: cfg.banks,
        seed: config.seed,
        runs_per_fault: config.runs_per_fault,
        cells: BTreeMap::new(),
        healthy: BTreeMap::new(),
        disagreements: Vec::new(),
    };
    // ASM / SystemC levels: scalar path, verbatim
    for (fault_idx, &fault) in config.faults.iter().enumerate() {
        if !shard.includes(fault_idx) {
            continue;
        }
        for (level_idx, &level) in config.levels.iter().enumerate() {
            if matches!(level, Level::Rtl | Level::RtlOvl) || !supports(fault, level) {
                continue;
            }
            let cell = matrix
                .cells
                .entry(fault.name().to_string())
                .or_default()
                .entry(level.name().to_string())
                .or_default();
            for run in 0..config.runs_per_fault {
                let seed = run_seed(config.seed, fault_idx, level_idx, run);
                let mut rng = StdRng::seed_from_u64(seed);
                let plan = FaultPlan::sample(fault, cfg, activation_window(cfg), &mut rng);
                let result = if fault.closed_loop() {
                    closed_loop_run(
                        level,
                        cfg,
                        Some(plan),
                        config.watchdog_cycles,
                        config.target_reads,
                        &config.preamble,
                    )
                } else {
                    open_loop_run(level, cfg, plan, &mut rng, &config.preamble)
                };
                cell.runs += 1;
                cell.hung += u32::from(result.hung);
                for (channel, latency) in result.detections {
                    let stat = cell.monitors.entry(channel).or_default();
                    stat.detected += 1;
                    stat.latency_sum += latency;
                }
            }
        }
    }
    // RTL / RTL+OVL levels: 64 runs per netlist evaluation
    for (level_idx, &level) in config.levels.iter().enumerate() {
        if !matches!(level, Level::Rtl | Level::RtlOvl) {
            continue;
        }
        let (results, healthy_ok) =
            run_rtl_level_batched(config, shard, level, level_idx, &mut stats);
        for (fault, result) in results {
            let cell = matrix
                .cells
                .entry(fault.name().to_string())
                .or_default()
                .entry(level.name().to_string())
                .or_default();
            cell.runs += 1;
            cell.hung += u32::from(result.hung);
            for (channel, latency) in result.detections {
                let stat = cell.monitors.entry(channel).or_default();
                stat.detected += 1;
                stat.latency_sum += latency;
            }
        }
        if let Some(ok) = healthy_ok {
            matrix.healthy.insert(level.name().to_string(), ok);
        }
    }
    // healthy-design controls for the scalar levels
    if shard.healthy {
        for &level in &config.levels {
            if matches!(level, Level::Rtl | Level::RtlOvl) {
                continue;
            }
            let result = closed_loop_run(
                level,
                cfg,
                None,
                config.watchdog_cycles,
                config.target_reads,
                &config.preamble,
            );
            matrix.healthy.insert(level.name().to_string(), !result.hung);
        }
    }
    matrix.disagreements = compute_disagreements(&matrix.cells);
    (matrix, stats)
}
