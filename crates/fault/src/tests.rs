//! Tests for the fault models, the injector and the campaign engine.

use crate::campaign::{
    run_campaign, run_campaign_shard, supports, CampaignConfig, CampaignShard, Level,
};
use crate::campaign_batched::{run_campaign_batched, run_campaign_batched_shard};
use crate::models::{FaultModel, FaultPlan, HostileMasterSeq, Injector};
use la1_core::spec::{BankOp, LaConfig};
use la1_core::stimulus::{Driver, ScriptSequence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg() -> LaConfig {
    CampaignConfig::new(2, 0).la1
}

fn plan(model: FaultModel, activation: u64, bank: u32, bit: u32) -> FaultPlan {
    FaultPlan {
        model,
        activation,
        bank,
        bit,
    }
}

#[test]
fn plans_are_deterministic_per_seed() {
    let cfg = cfg();
    for model in FaultModel::ALL {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        assert_eq!(
            FaultPlan::sample(model, &cfg, (10, 20), &mut a),
            FaultPlan::sample(model, &cfg, (10, 20), &mut b),
        );
    }
    // the parity fault is a power-on defect, active from cycle 0
    let mut rng = StdRng::seed_from_u64(1);
    let p = FaultPlan::sample(FaultModel::ParityFault, &cfg, (10, 20), &mut rng);
    assert_eq!(p.activation, 0);
    // everything else activates inside the window
    let mut rng = StdRng::seed_from_u64(1);
    let p = FaultPlan::sample(FaultModel::DataBitFlip, &cfg, (10, 20), &mut rng);
    assert!((10..20).contains(&p.activation));
    assert!(p.bit < cfg.word_width);
}

#[test]
fn injector_drops_and_duplicates_strobes() {
    let cfg = cfg();
    // dropped read: the first read at/after activation disappears
    let mut inj = Injector::new(plan(FaultModel::DropReadStrobe, 5, 0, 0));
    let mut ops = vec![BankOp::read(0, 1)];
    assert!(!inj.apply(4, &cfg, &mut ops));
    assert_eq!(ops.len(), 1);
    assert!(inj.apply(5, &cfg, &mut ops));
    assert!(ops.is_empty());
    // one-shot: the next read passes
    let mut ops = vec![BankOp::read(0, 2)];
    assert!(!inj.apply(6, &cfg, &mut ops));
    assert_eq!(ops.len(), 1);

    // duplicated read: armed on a busy cycle, replayed on the next
    // cycle with a free read slot
    let mut inj = Injector::new(plan(FaultModel::DuplicateReadStrobe, 5, 0, 0));
    let mut ops = vec![BankOp::read(1, 3)];
    inj.apply(5, &cfg, &mut ops);
    assert_eq!(ops.len(), 1, "armed cycle is unchanged");
    let mut busy = vec![BankOp::read(0, 0)];
    assert!(!inj.apply(6, &cfg, &mut busy));
    assert_eq!(busy.len(), 1, "no free slot while a read is present");
    let mut idle = Vec::new();
    assert!(inj.apply(7, &cfg, &mut idle));
    assert_eq!(idle, vec![BankOp::read(1, 3)], "replayed verbatim");
}

#[test]
fn injector_stuck_and_flip_faults() {
    let cfg = cfg();
    // stuck-at-0 read select kills every read from activation on
    let mut inj = Injector::new(plan(FaultModel::StuckAt0ReadSel, 3, 0, 0));
    let mut ops = vec![BankOp::read(0, 1), BankOp::write(1, 0, 9, 3)];
    assert!(inj.apply(3, &cfg, &mut ops));
    assert_eq!(ops, vec![BankOp::write(1, 0, 9, 3)]);
    let mut ops = vec![BankOp::read(0, 2)];
    assert!(inj.apply(9, &cfg, &mut ops));
    assert!(ops.is_empty(), "persistent, not one-shot");

    // address flip stays inside the bank's address range
    let mut inj = Injector::new(plan(FaultModel::AddrBitFlip, 0, 0, 2));
    let mut ops = vec![BankOp::read(0, 1)];
    assert!(inj.apply(0, &cfg, &mut ops));
    let BankOp::Read { addr, .. } = ops[0] else {
        panic!("read expected");
    };
    assert_eq!(addr, 1 ^ 4);
    assert!(addr < cfg.words_per_bank as u64);

    // data flip touches exactly the planned bit
    let mut inj = Injector::new(plan(FaultModel::DataBitFlip, 0, 0, 7));
    let mut ops = vec![BankOp::write(0, 0, 0x55, 3)];
    assert!(inj.apply(0, &cfg, &mut ops));
    let BankOp::Write { data, .. } = ops[0] else {
        panic!("write expected");
    };
    assert_eq!(data, 0x55 ^ 0x80);

    // the hostile master lives at transaction level: the injector
    // leaves the op stream alone, the sequence wrapper attacks it
    let mut inj = Injector::new(plan(FaultModel::HostileMaster, 2, 1, 0));
    let mut ops = vec![BankOp::read(0, 0)];
    assert!(!inj.apply(2, &cfg, &mut ops));
    assert_eq!(ops.len(), 1);
}

#[test]
fn hostile_master_sequence_double_reads_at_activation() {
    let cfg = cfg();
    let script = vec![vec![BankOp::read(0, 0)], Vec::new(), vec![BankOp::read(0, 1)]];
    let mut driver = Driver::new(&cfg);
    let mut seq = HostileMasterSeq::new(ScriptSequence::new(script), 1, 2);
    let cycles: Vec<Vec<BankOp>> = (0..3).map(|_| driver.cycle_from(&mut seq)).collect();
    // before activation the inner stream passes through untouched
    assert_eq!(cycles[0], vec![BankOp::read(0, 0)]);
    assert_eq!(cycles[1], Vec::new());
    // at activation the raw double read bypasses the legality gate:
    // the intended read plus the hostile strobe share one cycle
    assert_eq!(
        cycles[2],
        vec![BankOp::read(0, 1), BankOp::read(1, 0)],
        "hostile cycle must carry two read strobes"
    );
    assert_eq!(driver.stats().raw_cycles, 1);
}

#[test]
fn hostile_master_sequence_forges_both_reads_on_idle_cycles() {
    let cfg = cfg();
    let mut driver = Driver::new(&cfg);
    let mut seq = HostileMasterSeq::new(ScriptSequence::new(vec![Vec::new()]), 0, 0);
    assert_eq!(
        driver.cycle_from(&mut seq),
        vec![BankOp::read(0, 0), BankOp::read(0, 1)],
        "an idle intended cycle still becomes a double read"
    );
}

#[test]
fn x_injection_arms_on_first_write_after_activation() {
    let cfg = cfg();
    let mut inj = Injector::new(plan(FaultModel::XInjectWData, 4, 0, 0));
    assert!(!inj.x_due(3, &[BankOp::write(0, 0, 1, 3)]), "before activation");
    assert!(!inj.x_due(5, &[BankOp::read(0, 0)]), "no write present");
    assert!(inj.x_due(5, &[BankOp::write(0, 0, 1, 3)]));
    assert!(!inj.x_due(6, &[BankOp::write(0, 1, 2, 3)]), "one-shot");
    // x injection never rewrites the op stream
    let mut ops = vec![BankOp::write(0, 0, 1, 3)];
    assert!(!Injector::new(plan(FaultModel::XInjectWData, 0, 0, 0)).apply(0, &cfg, &mut ops));
    assert_eq!(ops.len(), 1);
}

#[test]
fn campaign_is_byte_reproducible() {
    // same seed + config => byte-identical matrix; a different seed
    // must change at least the recorded plans' latencies (JSON header
    // differs trivially, so compare full output)
    let mut config = CampaignConfig::new(1, 42);
    config.runs_per_fault = 2;
    let first = run_campaign(&config);
    let second = run_campaign(&config);
    assert_eq!(first.to_json(), second.to_json());
    assert_eq!(first.render(), second.render());
}

#[test]
fn every_fault_model_is_detected_somewhere() {
    let config = CampaignConfig::new(2, 7);
    let matrix = run_campaign(&config);
    for fault in FaultModel::ALL {
        assert!(
            matrix.detected_somewhere(fault),
            "{} escaped every detection channel on every level:\n{}",
            fault.name(),
            matrix.render()
        );
    }
    // the full-observability level catches everything single-handedly
    for fault in FaultModel::ALL {
        assert!(
            matrix.detected_at(fault, Level::RtlOvl),
            "{} escaped at rtl+ovl:\n{}",
            fault.name(),
            matrix.render()
        );
    }
}

#[test]
fn healthy_design_never_hangs_and_monitored_levels_agree() {
    let matrix = run_campaign(&CampaignConfig::new(1, 3));
    for (level, ok) in &matrix.healthy {
        assert!(ok, "healthy design hung at {level}:\n{}", matrix.render());
    }
    // faulted cells: only the read-select stuck-at-0 (starvation) runs
    // may hang; open-loop runs always complete
    for (fault, levels) in &matrix.cells {
        for (level, cell) in levels {
            if fault != FaultModel::StuckAt0ReadSel.name() {
                assert_eq!(cell.hung, 0, "{fault} at {level} reported hung runs");
            }
        }
    }
    // PSL (SystemC) and OVL (RTL) monitors agree on the parity fault —
    // the paper's carried-down-monitors claim
    assert!(
        matrix
            .cell(FaultModel::ParityFault, Level::SystemC)
            .is_some_and(|c| c.monitor_detected()),
        "PSL parity monitor missed the parity fault:\n{}",
        matrix.render()
    );
    assert!(
        matrix
            .cell(FaultModel::ParityFault, Level::RtlOvl)
            .is_some_and(|c| c.monitor_detected()),
        "OVL parity monitor missed the parity fault:\n{}",
        matrix.render()
    );
    assert!(
        !matrix
            .disagreements
            .iter()
            .any(|d| d.starts_with("parity_fault:")),
        "parity fault flagged as a cross-level disagreement:\n{}",
        matrix.render()
    );
}

#[test]
fn watchdog_flags_read_starvation_as_hung() {
    // 4 banks is the regression case: its activation window reaches
    // past the point where target_reads alone would end the run, so a
    // run that stops early never exercises the fault at all
    for banks in [1, 4] {
        let mut config = CampaignConfig::new(banks, 11);
        config.faults = vec![FaultModel::StuckAt0ReadSel];
        let matrix = run_campaign(&config);
        for level in Level::ALL {
            let cell = matrix.cell(FaultModel::StuckAt0ReadSel, level).unwrap();
            assert_eq!(
                cell.hung, cell.runs,
                "read starvation must hang every closed-loop run at {} ({banks} banks)",
                level.name()
            );
            assert!(
                cell.monitors.contains_key("watchdog"),
                "hang must be attributed to the watchdog channel at {} ({banks} banks)",
                level.name()
            );
        }
    }
}

#[test]
fn support_matrix_gates_level_specific_faults() {
    assert!(!supports(FaultModel::XInjectWData, Level::Asm));
    assert!(!supports(FaultModel::XInjectWData, Level::SystemC));
    assert!(supports(FaultModel::XInjectWData, Level::Rtl));
    assert!(!supports(FaultModel::ParityFault, Level::Asm));
    assert!(supports(FaultModel::ParityFault, Level::SystemC));
    for fault in FaultModel::ALL {
        assert!(supports(fault, Level::RtlOvl), "rtl+ovl runs everything");
    }
    // unsupported pairs never appear in the matrix
    let matrix = run_campaign(&CampaignConfig::new(1, 5));
    assert!(matrix
        .cells
        .get(FaultModel::XInjectWData.name())
        .is_some_and(|levels| !levels.contains_key("asm") && !levels.contains_key("systemc")));
}

#[test]
fn detection_matrix_matches_committed_golden() {
    let json = run_campaign(&CampaignConfig::new(1, 1)).to_json();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/golden/campaign_1bank_seed1.json"
        );
        std::fs::write(path, &json).expect("update golden file");
        return;
    }
    let golden = include_str!("../golden/campaign_1bank_seed1.json");
    assert_eq!(
        json, golden,
        "DetectionMatrix JSON drifted from the committed golden \
         (crates/fault/golden/campaign_1bank_seed1.json); if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 cargo test -p la1-fault"
    );
}

#[test]
fn batched_campaign_matches_scalar_byte_for_byte() {
    // the bit-parallel engine must not change a single byte of the
    // matrix: same cells, latencies, healthy verdicts, disagreements.
    // Covers 1/2/4 banks and a burst-capable (LA-1B-style) interface,
    // which exercises every lane-group shape (healthy, per-bank
    // parity, closed-loop) and the X-injection lanes.
    let mut configs = Vec::new();
    for (banks, runs) in [(1, 3), (2, 2), (4, 1)] {
        let mut config = CampaignConfig::new(banks, 23 + banks as u64);
        config.runs_per_fault = runs;
        configs.push(config);
    }
    let mut burst = CampaignConfig::new(2, 31);
    burst.la1.burst_len = 2;
    burst.runs_per_fault = 1;
    // the ASM level models the base LA-1 only, and the SystemC level
    // enforces burst read spacing the open-loop script does not keep —
    // the burst case exercises the batched engine on the LA-1B netlist
    burst.levels = vec![Level::Rtl, Level::RtlOvl];
    configs.push(burst);
    for config in configs {
        let scalar = run_campaign(&config);
        let (batched, stats) = run_campaign_batched(&config);
        assert_eq!(
            scalar.to_json(),
            batched.to_json(),
            "batched matrix diverged from scalar ({} banks, burst {})\nscalar:\n{}\nbatched:\n{}",
            config.la1.banks,
            config.la1.burst_len,
            scalar.render(),
            batched.render()
        );
        // fault dropping must be observable without altering verdicts
        assert!(stats.rtl_lane_runs > 0, "no lane runs recorded");
        assert!(
            stats.lanes_retired_early > 0 && stats.lane_cycles_saved > 0,
            "fault dropping retired no lanes: {}",
            stats.render()
        );
        assert!(stats.groups > 0);
    }
}

#[test]
fn batched_campaign_reproduces_committed_golden() {
    // the batched engine must reproduce the scalar golden file exactly
    // — the golden is never regenerated for the batched path
    let (matrix, _) = run_campaign_batched(&CampaignConfig::new(1, 1));
    let golden = include_str!("../golden/campaign_1bank_seed1.json");
    assert_eq!(
        matrix.to_json(),
        golden,
        "batched DetectionMatrix drifted from the committed scalar golden"
    );
}

#[test]
fn deep_state_preamble_keeps_scalar_and_batched_agreeing() {
    // a recorded preamble replays into every run's DUT and golden from
    // reset; the scalar and batched runners must agree byte-for-byte
    // on the warmed matrix, and the warmed matrix must be reproducible
    let mut config = CampaignConfig::new(1, 9);
    config.runs_per_fault = 1;
    config.record_preamble(3, 120);
    assert_eq!(config.preamble.len(), 120);
    assert!(
        config.preamble.iter().any(|ops| !ops.is_empty()),
        "recorded preamble carries no traffic"
    );
    let scalar = run_campaign(&config);
    let (batched, _) = run_campaign_batched(&config);
    assert_eq!(
        scalar.to_json(),
        batched.to_json(),
        "preambled batched matrix diverged from the scalar runner"
    );
    assert_eq!(
        run_campaign(&config).to_json(),
        scalar.to_json(),
        "preambled campaign is not deterministic"
    );
}

#[test]
fn preamble_from_trace_adopts_recorded_cycles() {
    use la1_core::checkpoint::{config_fingerprint, Trace};
    use la1_core::workloads::{RandomMix, Workload};

    // a checkpoint trace recorded elsewhere becomes the campaign's
    // deep state: the ops carry over verbatim and the campaign still
    // executes every cell on top of them
    let mut config = CampaignConfig::new(1, 4);
    config.runs_per_fault = 1;
    config.faults = vec![FaultModel::DataBitFlip, FaultModel::StuckAt0ReadSel];
    let mut trace = Trace::new(config_fingerprint("rtl", &config.la1));
    let mut mix = RandomMix::full_word(&config.la1, 5, 0.3, 0.6);
    for _ in 0..40 {
        trace.record(&mix.next_cycle());
    }
    config.preamble_from_trace(&trace);
    assert_eq!(config.preamble, trace.cycles);
    let matrix = run_campaign(&config);
    for (fault, levels) in &matrix.cells {
        assert!(!levels.is_empty(), "{fault}: no levels ran");
        for (level, cell) in levels {
            assert_eq!(cell.runs, 1, "{fault} at {level} lost its run");
        }
    }
}

#[test]
fn level_from_name_round_trips() {
    for level in Level::ALL {
        assert_eq!(Level::from_name(level.name()), Some(level));
    }
    assert_eq!(Level::from_name("verilog"), None);
}

#[test]
fn shard_split_partitions_faults() {
    let config = CampaignConfig::new(1, 0);
    let n = config.faults.len();
    for shards in [1, 2, 3, 5, n, n + 7] {
        let family = CampaignShard::split(&config, shards);
        assert!(family.len() <= n, "more shards than faults");
        // exactly one shard carries the healthy controls
        assert_eq!(family.iter().filter(|s| s.healthy).count(), 1);
        assert!(family[0].healthy);
        // the shards partition the fault indices: disjoint and complete
        let mut seen = vec![0u32; n];
        for shard in &family {
            for &idx in &shard.fault_indices {
                seen[idx] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "split({shards}) is not a partition: {seen:?}"
        );
    }
    // the full shard is the identity split
    assert_eq!(CampaignShard::split(&config, 1), vec![CampaignShard::full(&config)]);
}

#[test]
fn sharded_scalar_campaign_merges_byte_identical() {
    let mut config = CampaignConfig::new(1, 17);
    config.runs_per_fault = 1;
    let full = run_campaign(&config);
    let family = CampaignShard::split(&config, 3);
    let parts: Vec<_> = family.iter().map(|s| run_campaign_shard(&config, s)).collect();
    // forward merge order
    let mut merged = parts[0].clone();
    for part in &parts[1..] {
        merged.merge(part);
    }
    assert_eq!(merged.to_json(), full.to_json(), "forward shard merge diverged");
    // reverse merge order — the union is order-insensitive
    let mut reversed = parts[parts.len() - 1].clone();
    for part in parts[..parts.len() - 1].iter().rev() {
        reversed.merge(part);
    }
    assert_eq!(reversed.to_json(), full.to_json(), "reverse shard merge diverged");
}

#[test]
fn sharded_batched_campaign_merges_byte_identical() {
    let mut config = CampaignConfig::new(2, 29);
    config.runs_per_fault = 1;
    let (full, _) = run_campaign_batched(&config);
    let family = CampaignShard::split(&config, 4);
    let mut merged: Option<crate::campaign::DetectionMatrix> = None;
    for shard in &family {
        let (part, _) = run_campaign_batched_shard(&config, shard);
        match &mut merged {
            None => merged = Some(part),
            Some(m) => m.merge(&part),
        }
    }
    assert_eq!(
        merged.unwrap().to_json(),
        full.to_json(),
        "batched shard merge diverged from the unsharded batched run"
    );
}

#[test]
fn json_shape_is_stable() {
    let mut config = CampaignConfig::new(1, 1);
    config.faults = vec![FaultModel::DropWriteStrobe];
    config.levels = vec![Level::Asm];
    config.runs_per_fault = 1;
    let json = run_campaign(&config).to_json();
    assert!(json.contains("\"banks\": 1"));
    assert!(json.contains("\"fault\": \"drop_write_strobe\""));
    assert!(json.contains("\"level\": \"asm\""));
    assert!(json.contains("\"monitor\": \"scoreboard\""));
    assert!(json.contains("\"healthy\""));
}

// ---- property-based checks (vendored proptest) -------------------------------

#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use crate::campaign::DetectionMatrix;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    /// The shard matrices (and the full reference) are pure functions of
    /// one fixed config, so they are computed once and the properties
    /// below exercise only the merge algebra — hundreds of cases stay
    /// cheap.
    fn fixture() -> &'static (Vec<DetectionMatrix>, DetectionMatrix) {
        static FIXTURE: OnceLock<(Vec<DetectionMatrix>, DetectionMatrix)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let mut config = CampaignConfig::new(1, 41);
            config.runs_per_fault = 1;
            let parts = CampaignShard::split(&config, 4)
                .iter()
                .map(|s| run_campaign_shard(&config, s))
                .collect();
            (parts, run_campaign(&config))
        })
    }

    /// Merges the fixture shards in the order given by `order`
    /// (indices may repeat — repeats exercise idempotence).
    fn merge_in_order(order: &[usize]) -> DetectionMatrix {
        let (parts, _) = fixture();
        let mut merged = parts[order[0] % parts.len()].clone();
        for &i in &order[1..] {
            merged.merge(&parts[i % parts.len()].clone());
        }
        merged
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Pairwise commutativity: a ∪ b == b ∪ a for any two shards
        /// (including a shard with itself — idempotence of the union).
        #[test]
        fn merge_is_commutative_and_idempotent(a in 0usize..4, b in 0usize..4) {
            let (parts, _) = fixture();
            let mut ab = parts[a].clone();
            ab.merge(&parts[b]);
            let mut ba = parts[b].clone();
            ba.merge(&parts[a]);
            prop_assert_eq!(ab.to_json(), ba.to_json());
            // merging the pair in again changes nothing
            let json = ab.to_json();
            ab.merge(&parts[a]);
            ab.merge(&parts[b]);
            prop_assert_eq!(ab.to_json(), json);
        }

        /// Any permutation of the shard family — with arbitrary
        /// repeats (overlapping deliveries) — unions back to the full
        /// campaign, which is associativity + commutativity +
        /// idempotence in one shot.
        #[test]
        fn any_merge_order_reproduces_full_campaign(
            keys in prop::collection::vec(any::<u64>(), 4),
            repeats in prop::collection::vec(0usize..4, 0..4),
        ) {
            let (_, full) = fixture();
            // order the 4 shards by random key => a random permutation
            let mut order: Vec<usize> = (0..4).collect();
            order.sort_by_key(|&i| keys[i]);
            order.extend(&repeats);
            prop_assert_eq!(merge_in_order(&order).to_json(), full.to_json());
        }
    }
}
