//! Unit and property tests for the PSL crate.

use crate::*;

type Cycle<'a> = Vec<(&'a str, bool)>;

fn run(prop: &str, trace: &[Cycle]) -> Verdict {
    let p = parse_property(prop).expect("property parses");
    let mut m = Monitor::new(&p);
    for cy in trace {
        let st = m.step(cy.as_slice());
        if st.is_violation() {
            return Verdict::Fails;
        }
    }
    m.finalize()
}

fn cy(pairs: &[(&'static str, bool)]) -> Cycle<'static> {
    pairs.to_vec()
}

// ---- Boolean layer ---------------------------------------------------------

#[test]
fn bool_expr_eval() {
    let e = parse_bool_expr("a && (!b || c)").unwrap();
    assert!(e.eval(&[("a", true), ("b", false), ("c", false)]));
    assert!(!e.eval(&[("a", true), ("b", true), ("c", false)]));
    assert!(e.eval(&[("a", true), ("b", true), ("c", true)]));
}

#[test]
fn bool_expr_ops() {
    assert!(parse_bool_expr("true").unwrap().eval(&[]));
    assert!(!parse_bool_expr("false").unwrap().eval(&[]));
    assert!(parse_bool_expr("a ^ b").unwrap().eval(&[("a", true)]));
    assert!(parse_bool_expr("a == b").unwrap().eval(&[]));
    assert!(!parse_bool_expr("a == b").unwrap().eval(&[("a", true)]));
}

#[test]
fn bool_expr_signals_collected() {
    let e = parse_bool_expr("a && (b || a) && data[3]").unwrap();
    assert_eq!(e.signals(), vec!["a", "b", "data[3]"]);
}

#[test]
fn unknown_signals_default_false() {
    let e = parse_bool_expr("ghost").unwrap();
    assert!(!e.eval(&[("other", true)]));
}

#[test]
fn fn_valuation_adapter() {
    let e = parse_bool_expr("x || y").unwrap();
    assert!(e.eval(&FnValuation(|n: &str| n == "y")));
}

// ---- parser ----------------------------------------------------------------

#[test]
fn parse_rejects_garbage() {
    assert!(parse_property("always {").is_err());
    assert!(parse_property("next[0] a").is_err());
    assert!(parse_property("a b").is_err());
    assert!(parse_bool_expr("&&").is_err());
    assert!(parse_sere("{a[*3:1]}").is_err());
    assert!(parse_property("{a}").is_err(), "plain weak SERE not allowed");
}

#[test]
fn parse_directive_forms() {
    let d = parse_directive("assert read_ok : always {rd} |=> vld;").unwrap();
    assert_eq!(d.kind, DirectiveKind::Assert);
    assert_eq!(d.name, "read_ok");
    assert_eq!(d.severity, Severity::Error);
    let d = parse_directive("cover saw_write : eventually! {wr}").unwrap();
    assert_eq!(d.kind, DirectiveKind::Cover);
    let d = parse_directive("assume env : always !reset").unwrap();
    assert_eq!(d.kind, DirectiveKind::Assume);
    assert!(parse_directive("verify x : a").is_err());
}

#[test]
fn display_round_trips_through_parser() {
    for src in [
        "always {req ; busy[*] ; done} |=> ack",
        "never {a ; b}",
        "eventually! {done}",
        "a until b",
        "a until! b",
        "a before b",
        "next[3] a",
        "always (a -> (b until c))",
        "{a ; b}!",
    ] {
        let p1 = parse_property(src).unwrap();
        let p2 = parse_property(&p1.to_string()).unwrap();
        assert_eq!(p1, p2, "round-trip failed for {src}");
    }
}

// ---- SERE / NFA semantics ---------------------------------------------------

#[test]
fn nfa_simple_concat() {
    let s = parse_sere("{a ; b}").unwrap();
    let nfa = Nfa::from_sere(&s);
    assert!(nfa.accepts(&[cy(&[("a", true)]), cy(&[("b", true)])]));
    assert!(!nfa.accepts(&[cy(&[("a", true)]), cy(&[("b", false)])]));
    assert!(!nfa.accepts(&[cy(&[("a", true)])]));
    assert!(!nfa.accepts(&[]));
}

#[test]
fn nfa_or() {
    let s = parse_sere("{a | b}").unwrap();
    let nfa = Nfa::from_sere(&s);
    assert!(nfa.accepts(&[cy(&[("a", true)])]));
    assert!(nfa.accepts(&[cy(&[("b", true)])]));
    assert!(!nfa.accepts(&[cy(&[])]));
}

#[test]
fn nfa_star_and_plus() {
    let star = Nfa::from_sere(&parse_sere("{a[*]}").unwrap());
    assert!(star.nullable());
    assert!(star.accepts(&[]));
    assert!(star.accepts(&vec![cy(&[("a", true)]); 3]));
    assert!(!star.accepts(&[cy(&[("a", true)]), cy(&[])]));

    let plus = Nfa::from_sere(&parse_sere("{a[+]}").unwrap());
    assert!(!plus.nullable());
    assert!(plus.accepts(&[cy(&[("a", true)])]));
    assert!(plus.accepts(&vec![cy(&[("a", true)]); 4]));
    assert!(!plus.accepts(&[]));
}

#[test]
fn nfa_bounded_repeat() {
    let nfa = Nfa::from_sere(&parse_sere("{a[*2:3]}").unwrap());
    let a = cy(&[("a", true)]);
    assert!(!nfa.accepts(std::slice::from_ref(&a)));
    assert!(nfa.accepts(&[a.clone(), a.clone()]));
    assert!(nfa.accepts(&[a.clone(), a.clone(), a.clone()]));
    assert!(!nfa.accepts(&[a.clone(), a.clone(), a.clone(), a]));
}

#[test]
fn nfa_exact_repeat() {
    let nfa = Nfa::from_sere(&parse_sere("{a[*2]}").unwrap());
    let a = cy(&[("a", true)]);
    assert!(!nfa.accepts(std::slice::from_ref(&a)));
    assert!(nfa.accepts(&[a.clone(), a.clone()]));
    assert!(!nfa.accepts(&[a.clone(), a.clone(), a]));
}

#[test]
fn nfa_fusion_overlaps_one_cycle() {
    // {a ; b} : {b ; c} — b cycle shared
    let nfa = Nfa::from_sere(&parse_sere("{ {a ; b} : {b ; c} }").unwrap());
    assert!(nfa.accepts(&[
        cy(&[("a", true)]),
        cy(&[("b", true)]),
        cy(&[("c", true)]),
    ]));
    assert!(!nfa.accepts(&[
        cy(&[("a", true)]),
        cy(&[("b", true)]),
        cy(&[("b", true)]),
        cy(&[("c", true)]),
    ]));
}

#[test]
fn nfa_fusion_single_cycles() {
    // {a} : {b} — both in the same single cycle
    let nfa = Nfa::from_sere(&parse_sere("{ {a} : {b} }").unwrap());
    assert!(nfa.accepts(&[cy(&[("a", true), ("b", true)])]));
    assert!(!nfa.accepts(&[cy(&[("a", true)])]));
}

#[test]
fn nfa_length_matching_and() {
    // {a[+]} && {b ; c} must match exactly 2 cycles with both patterns
    let nfa = Nfa::from_sere(&parse_sere("{ {a[+]} && {b ; c} }").unwrap());
    assert!(nfa.accepts(&[
        cy(&[("a", true), ("b", true)]),
        cy(&[("a", true), ("c", true)]),
    ]));
    assert!(!nfa.accepts(&[cy(&[("a", true), ("b", true)])]));
    assert!(!nfa.accepts(&[
        cy(&[("a", true), ("b", true)]),
        cy(&[("a", false), ("c", true)]),
    ]));
}

// ---- temporal monitors -------------------------------------------------------

#[test]
fn always_bool() {
    let t = vec![cy(&[("a", true)]); 5];
    assert_eq!(run("always a", &t), Verdict::Holds);
    let mut t2 = t.clone();
    t2[3] = cy(&[("a", false)]);
    assert_eq!(run("always a", &t2), Verdict::Fails);
}

#[test]
fn failure_cycle_is_recorded() {
    let p = parse_property("always a").unwrap();
    let mut m = Monitor::new(&p);
    m.step(&[("a", true)]);
    m.step(&[("a", true)]);
    m.step(&[("a", false)]);
    assert_eq!(m.failed_at(), Some(2));
    assert_eq!(m.verdict(), Verdict::Fails);
}

#[test]
fn never_sere() {
    let t = vec![
        cy(&[("a", true)]),
        cy(&[("b", true)]),
        cy(&[]),
    ];
    assert_eq!(run("never {a ; a}", &t), Verdict::Holds);
    assert_eq!(run("never {a ; b}", &t), Verdict::Fails);
}

#[test]
fn eventually_strong() {
    let t = vec![cy(&[]), cy(&[]), cy(&[("done", true)])];
    assert_eq!(run("eventually! {done}", &t), Verdict::Holds);
    let t2 = vec![cy(&[]); 3];
    assert_eq!(run("eventually! {done}", &t2), Verdict::Fails);
}

#[test]
fn next_weak_and_strong() {
    let t = vec![cy(&[("a", true)]), cy(&[("b", true)])];
    assert_eq!(run("next b", &t), Verdict::Holds);
    assert_eq!(run("next a", &t), Verdict::Fails);
    // trace ends before the next cycle: weak holds, strong fails
    let short = vec![cy(&[("a", true)])];
    assert_eq!(run("next b", &short), Verdict::Holds);
    assert_eq!(run("next! b", &short), Verdict::Fails);
}

#[test]
fn next_n() {
    let t = vec![cy(&[]), cy(&[]), cy(&[]), cy(&[("x", true)])];
    assert_eq!(run("next[3] x", &t), Verdict::Holds);
    assert_eq!(run("next[2] x", &t), Verdict::Fails);
}

#[test]
fn until_weak_and_strong() {
    let t = vec![
        cy(&[("p", true)]),
        cy(&[("p", true)]),
        cy(&[("q", true)]),
    ];
    assert_eq!(run("p until q", &t), Verdict::Holds);
    assert_eq!(run("p until! q", &t), Verdict::Holds);
    // p drops before q arrives
    let t2 = vec![cy(&[("p", true)]), cy(&[]), cy(&[("q", true)])];
    assert_eq!(run("p until q", &t2), Verdict::Fails);
    // q never arrives
    let t3 = vec![cy(&[("p", true)]), cy(&[("p", true)]), cy(&[("p", true)])];
    assert_eq!(run("p until q", &t3), Verdict::Holds);
    assert_eq!(run("p until! q", &t3), Verdict::Fails);
}

#[test]
fn before_semantics() {
    let t = vec![cy(&[]), cy(&[("p", true)]), cy(&[("q", true)])];
    assert_eq!(run("p before q", &t), Verdict::Holds);
    let t2 = vec![cy(&[]), cy(&[("q", true)])];
    assert_eq!(run("p before q", &t2), Verdict::Fails);
    // simultaneous p and q: p is not strictly before q
    let t3 = vec![cy(&[("p", true), ("q", true)])];
    assert_eq!(run("p before q", &t3), Verdict::Fails);
    // neither happens: weak holds, strong fails
    let t4 = vec![cy(&[]); 2];
    assert_eq!(run("p before q", &t4), Verdict::Holds);
    assert_eq!(run("p before! q", &t4), Verdict::Fails);
}

#[test]
fn boolean_implication_property() {
    let t = vec![
        cy(&[("req", true), ("gnt", true)]),
        cy(&[]),
        cy(&[("req", true), ("gnt", true)]),
    ];
    assert_eq!(run("always (req -> gnt)", &t), Verdict::Holds);
    let t2 = vec![cy(&[("req", true)])];
    assert_eq!(run("always (req -> gnt)", &t2), Verdict::Fails);
}

#[test]
fn suffix_implication_overlap() {
    // {a ; b} |-> c : c in the same cycle as b
    let t = vec![
        cy(&[("a", true)]),
        cy(&[("b", true), ("c", true)]),
    ];
    assert_eq!(run("always {a ; b} |-> c", &t), Verdict::Holds);
    let t2 = vec![cy(&[("a", true)]), cy(&[("b", true)])];
    assert_eq!(run("always {a ; b} |-> c", &t2), Verdict::Fails);
}

#[test]
fn suffix_implication_non_overlap() {
    // {a} |=> b : b in the following cycle
    let t = vec![cy(&[("a", true)]), cy(&[("b", true)])];
    assert_eq!(run("always {a} |=> b", &t), Verdict::Holds);
    let t2 = vec![cy(&[("a", true)]), cy(&[])];
    assert_eq!(run("always {a} |=> b", &t2), Verdict::Fails);
    // vacuous: trigger never fires
    let t3 = vec![cy(&[]); 4];
    assert_eq!(run("always {a} |=> b", &t3), Verdict::Holds);
}

#[test]
fn suffix_implication_retriggers() {
    // every req must be followed by ack
    let t = vec![
        cy(&[("req", true)]),
        cy(&[("ack", true), ("req", true)]),
        cy(&[("ack", true)]),
    ];
    assert_eq!(run("always {req} |=> ack", &t), Verdict::Holds);
    let t2 = vec![
        cy(&[("req", true)]),
        cy(&[("ack", true), ("req", true)]),
        cy(&[]),
    ];
    assert_eq!(run("always {req} |=> ack", &t2), Verdict::Fails);
}

#[test]
fn suffix_implication_temporal_consequent() {
    // read request answered two cycles later (the LA-1 read shape)
    let t = vec![
        cy(&[("rd", true)]),
        cy(&[]),
        cy(&[("dvalid", true)]),
    ];
    assert_eq!(run("always {rd} |=> next dvalid", &t), Verdict::Holds);
    assert_eq!(run("always {rd} |=> dvalid", &t), Verdict::Fails);
}

#[test]
fn sere_strong_prefix() {
    let t = vec![cy(&[("a", true)]), cy(&[("b", true)])];
    assert_eq!(run("{a ; b}!", &t), Verdict::Holds);
    let t2 = vec![cy(&[("a", true)]), cy(&[])];
    assert_eq!(run("{a ; b}!", &t2), Verdict::Fails);
    // fails early: no continuation possible
    let p = parse_property("{a ; b}!").unwrap();
    let mut m = Monitor::new(&p);
    m.step(&[("a", false)]);
    assert_eq!(m.verdict(), Verdict::Fails);
}

#[test]
fn monitor_state_encoding() {
    let p = parse_property("always a").unwrap();
    let mut m = Monitor::new(&p);
    let st = m.step(&[("a", true)]);
    assert!(!st.status, "always is never determined mid-trace");
    assert!(st.value);
    let st = m.step(&[("a", false)]);
    assert!(st.status);
    assert!(!st.value);
    assert!(st.is_violation());
}

#[test]
fn monitor_snapshot_restore_is_equivalent() {
    // Properties chosen to exercise every Ob variant: Always/Defer,
    // Never, Eventually, SereStrong, Until, Before, SuffixImpl.
    let props = [
        "always {rd} |=> next dvalid",
        "always a",
        "never {a ; b}",
        "eventually! {a ; a}",
        "{a ; b[*] ; a}!",
        "a until! b",
        "a before b",
        "always {a ; b} |-> {b ; a}!",
    ];
    // A deterministic but irregular trace over a and b / rd and dvalid.
    let trace: Vec<Cycle> = (0u32..12)
        .map(|i| {
            vec![
                ("a", i.wrapping_mul(2654435761) % 3 != 0),
                ("b", i.wrapping_mul(40503) % 2 == 0),
                ("rd", i % 4 == 1),
                ("dvalid", i % 4 == 3),
            ]
        })
        .collect();
    for text in props {
        let p = parse_property(text).unwrap();
        for split in 0..trace.len() {
            let mut straight = Monitor::new(&p);
            let mut first = Monitor::new(&p);
            for cyv in &trace[..split] {
                straight.step(cyv.as_slice());
                first.step(cyv.as_slice());
            }
            let snap = first.snapshot(&p).unwrap_or_else(|e| {
                panic!("snapshot of {text} at {split}: {e}")
            });
            let mut resumed = Monitor::restore(&p, &snap).unwrap();
            assert_eq!(resumed.fingerprint(), straight.fingerprint(), "{text}@{split}");
            for cyv in &trace[split..] {
                let a = straight.step(cyv.as_slice());
                let b = resumed.step(cyv.as_slice());
                assert_eq!(a, b, "{text}@{split}");
                assert_eq!(resumed.fingerprint(), straight.fingerprint(), "{text}@{split}");
            }
            assert_eq!(resumed.finalize(), straight.finalize(), "{text}@{split}");
            assert_eq!(resumed.covered(), straight.covered(), "{text}@{split}");
        }
    }
}

#[test]
fn monitor_snapshot_rejects_foreign_root() {
    let p = parse_property("always {a ; b} |=> a").unwrap();
    let other = parse_property("never {b}").unwrap();
    let mut m = Monitor::new(&p);
    m.step(&[("a", true), ("b", false)]);
    assert!(m.snapshot(&p).is_ok());
    assert!(m.snapshot(&other).is_err());
    // Restore validates indices and active positions.
    let snap = m.snapshot(&p).unwrap();
    assert!(Monitor::restore(&other, &snap).is_err());
}

#[test]
fn bound_monitor_slices() {
    let p = parse_property("always {rd} |=> vld").unwrap();
    let mut m = Monitor::new(&p).bind(&["rd", "vld"]);
    m.step(&[true, false]);
    m.step(&[false, true]);
    assert_eq!(m.finalize(), Verdict::Holds);
    assert!(m.failed_at().is_none());
}

#[test]
fn cover_via_eventually() {
    let p = parse_property("eventually! {wr}").unwrap();
    let mut m = Monitor::new(&p);
    m.step(&[("wr", false)]);
    assert!(!m.covered());
    m.step(&[("wr", true)]);
    assert!(m.covered());
    assert_eq!(m.finalize(), Verdict::Holds);
}

#[test]
fn property_and_combinator() {
    let p = Property::And(
        Box::new(parse_property("always a").unwrap()),
        Box::new(parse_property("always b").unwrap()),
    );
    let mut m = Monitor::new(&p);
    m.step(&[("a", true), ("b", true)]);
    let st = m.step(&[("a", true), ("b", false)]);
    assert!(st.is_violation());
}

#[test]
fn signals_of_property() {
    let p = parse_property("always {rd ; busy[*]} |=> (dv && !perr)").unwrap();
    assert_eq!(p.signals(), vec!["busy", "dv", "perr", "rd"]);
}

// ---- property-based tests -----------------------------------------------------

// ---- additional SERE corner cases ---------------------------------------------

#[test]
fn nfa_fusion_with_repeat() {
    // {a[+] : b} — the last a-cycle coincides with b
    let nfa = Nfa::from_sere(&parse_sere("{ {a[+]} : {b} }").unwrap());
    assert!(nfa.accepts(&[cy(&[("a", true), ("b", true)])]));
    assert!(nfa.accepts(&[
        cy(&[("a", true)]),
        cy(&[("a", true), ("b", true)]),
    ]));
    assert!(!nfa.accepts(&[cy(&[("a", true)]), cy(&[("b", true)])]));
}

#[test]
fn nfa_nested_or_with_concat() {
    let nfa = Nfa::from_sere(&parse_sere("{ {a ; b} | {c} ; d }").unwrap());
    // | binds tighter than ; here: {a;b} | ({c};d)? — our grammar:
    // sere -> sere_or (';' sere_or)*, so this parses as ({a;b}|{c}) ; d
    assert!(nfa.accepts(&[
        cy(&[("a", true)]),
        cy(&[("b", true)]),
        cy(&[("d", true)]),
    ]));
    assert!(nfa.accepts(&[cy(&[("c", true)]), cy(&[("d", true)])]));
    assert!(!nfa.accepts(&[cy(&[("c", true)])]));
}

#[test]
fn nfa_star_of_alternation() {
    let nfa = Nfa::from_sere(&parse_sere("{ {a | b}[*] ; c }").unwrap());
    assert!(nfa.accepts(&[cy(&[("c", true)])]));
    assert!(nfa.accepts(&[
        cy(&[("a", true)]),
        cy(&[("b", true)]),
        cy(&[("a", true)]),
        cy(&[("c", true)]),
    ]));
    assert!(!nfa.accepts(&[cy(&[("a", true)]), cy(&[])]));
}

#[test]
fn nfa_bounded_repeat_of_compound() {
    let nfa = Nfa::from_sere(&parse_sere("{ {a ; b}[*2] }").unwrap());
    let (a, b) = (cy(&[("a", true)]), cy(&[("b", true)]));
    assert!(nfa.accepts(&[a.clone(), b.clone(), a.clone(), b.clone()]));
    assert!(!nfa.accepts(&[a.clone(), b.clone()]));
    assert!(!nfa.accepts(&[a.clone(), b.clone(), a, b.clone(), b]));
}

#[test]
fn monitor_nullable_prefix_suffix_implication() {
    // {a[*]} |-> b with an empty match: b must hold immediately
    let t = vec![cy(&[("b", true)]), cy(&[("a", true), ("b", true)])];
    assert_eq!(run("always {a[*]} |-> b", &t), Verdict::Holds);
    let t2 = vec![cy(&[])];
    assert_eq!(run("always {a[*]} |-> b", &t2), Verdict::Fails);
}

#[test]
fn monitor_fingerprint_stable_and_state_sensitive() {
    let p = parse_property("always {rd} |=> next dv").unwrap();
    let m1 = Monitor::new(&p);
    let m2 = Monitor::new(&p);
    assert_eq!(m1.fingerprint(), m2.fingerprint(), "fresh monitors agree");
    let mut m3 = Monitor::new(&p);
    m3.step(&[("rd", true)]);
    assert_ne!(
        m1.fingerprint(),
        m3.fingerprint(),
        "a pending obligation changes the fingerprint"
    );
    // two monitors after the same idle history agree (the fingerprint
    // may conservatively distinguish a fresh monitor from a stepped one)
    let mut m4 = Monitor::new(&p);
    m4.step(&[("rd", false)]);
    let mut m5 = Monitor::new(&p);
    m5.step(&[("rd", false)]);
    assert_eq!(
        m4.fingerprint(),
        m5.fingerprint(),
        "identical histories give identical fingerprints"
    );
}

#[test]
fn directive_constructors() {
    let p = parse_property("always a").unwrap();
    let d = Directive::assert("inv", p.clone());
    assert_eq!(d.kind, DirectiveKind::Assert);
    assert!(d.message.contains("inv"));
    let c = Directive::cover("hit", p);
    assert_eq!(c.kind, DirectiveKind::Cover);
    assert_eq!(c.severity, Severity::Warning);
    assert!(c.to_string().starts_with("cover hit :"));
}

#[test]
fn severity_ordering_and_display() {
    assert!(Severity::Fatal > Severity::Error);
    assert!(Severity::Error > Severity::Warning);
    assert_eq!(Severity::Note.to_string(), "note");
    assert_eq!(Severity::default(), Severity::Error);
}

// ---- Parser robustness -----------------------------------------------------

#[test]
fn parser_rejects_multibyte_input_without_panicking() {
    // The operator lexer matches on raw bytes; a fixed-width &str slice
    // here used to split the two-byte `é` and panic.
    let err = parse_property("aaé").unwrap_err();
    assert_eq!(err.offset, 2, "error should point at the first bad byte");
    let err = parse_bool_expr("a && é|->").unwrap_err();
    assert!(err.offset <= "a && é|->".len());
    // multi-byte text inside otherwise-valid structure
    assert!(parse_directive("assert x : always {réq}").is_err());
}

#[test]
fn parser_bounds_nesting_depth() {
    // Unbounded recursive descent would overflow the stack (an abort,
    // not an Err) on pathological inputs.
    let deep_parens = format!("{}a{}", "(".repeat(10_000), ")".repeat(10_000));
    let err = parse_bool_expr(&deep_parens).unwrap_err();
    assert!(err.message.contains("nesting"), "got: {}", err.message);
    let deep_bangs = format!("{}a", "!".repeat(10_000));
    assert!(parse_bool_expr(&deep_bangs).is_err());
    let deep_props = format!("{}a", "always ".repeat(10_000));
    assert!(parse_property(&deep_props).is_err());
    let deep_sere = format!("{}a{}", "{".repeat(10_000), "}".repeat(10_000));
    assert!(parse_sere(&deep_sere).is_err());
    // moderate nesting still parses fine
    let ok = format!("{}a{}", "(".repeat(64), ")".repeat(64));
    assert!(parse_bool_expr(&ok).is_ok());
}

// ---- NFA vs. brute-force reference matcher -------------------------------------

// Property-based tests live behind the optional `proptest` feature
// (`cargo test --workspace --features proptest`); the dependency is a
// vendored offline shim (see vendor/proptest) that cannot be resolved
// from the registry in the offline build environment.
#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use proptest::prelude::*;

    // `always sig` over a random trace fails iff some cycle has `sig` false.
    proptest! {
        #[test]
        fn always_matches_all_quantifier(values in prop::collection::vec(any::<bool>(), 1..40)) {
            let t: Vec<Cycle> = values.iter().map(|&v| cy(if v { &[("s", true)] } else { &[("s", false)] })).collect();
            let expect = if values.iter().all(|&v| v) { Verdict::Holds } else { Verdict::Fails };
            prop_assert_eq!(run("always s", &t), expect);
        }

        #[test]
        fn never_matches_no_occurrence(values in prop::collection::vec(any::<bool>(), 1..40)) {
            let t: Vec<Cycle> = values.iter().map(|&v| cy(if v { &[("s", true)] } else { &[("s", false)] })).collect();
            let expect = if values.iter().any(|&v| v) { Verdict::Fails } else { Verdict::Holds };
            prop_assert_eq!(run("never {s}", &t), expect);
        }

        #[test]
        fn req_ack_suffix_impl_is_shifted_implication(
            reqs in prop::collection::vec(any::<bool>(), 1..30),
            acks in prop::collection::vec(any::<bool>(), 1..30),
        ) {
            let n = reqs.len().min(acks.len());
            let t: Vec<Cycle> = (0..n).map(|i| vec![("req", reqs[i]), ("ack", acks[i])]).collect();
            // {req} |=> ack  ==  req_i -> ack_{i+1}; a req in the last cycle is
            // a pending weak obligation (holds).
            let violated = (0..n.saturating_sub(1)).any(|i| reqs[i] && !acks[i + 1]);
            let expect = if violated { Verdict::Fails } else { Verdict::Holds };
            prop_assert_eq!(run("always {req} |=> ack", &t), expect);
        }

        #[test]
        fn until_matches_reference_semantics(
            ps in prop::collection::vec(any::<bool>(), 1..25),
            qs in prop::collection::vec(any::<bool>(), 1..25),
        ) {
            let n = ps.len().min(qs.len());
            let t: Vec<Cycle> = (0..n).map(|i| vec![("p", ps[i]), ("q", qs[i])]).collect();
            // reference: find first q; all cycles before it must have p;
            // if no q, weak holds iff p holds to the end.
            let first_q = (0..n).find(|&i| qs[i]);
            let expect = match first_q {
                Some(k) if (0..k).all(|i| ps[i]) => Verdict::Holds,
                Some(_) => Verdict::Fails,
                None if (0..n).all(|i| ps[i]) => Verdict::Holds,
                None => Verdict::Fails,
            };
            prop_assert_eq!(run("p until q", &t), expect);
        }

        /// The parser is total: arbitrary byte soup — including invalid
        /// UTF-8 (lossily decoded) and unbalanced operators — returns
        /// `Err`, never panics.
        #[test]
        fn parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
            let src = String::from_utf8_lossy(&bytes);
            let _ = parse_directive(&src);
            let _ = parse_property(&src);
            let _ = parse_sere(&src);
            let _ = parse_bool_expr(&src);
        }

        /// Same totality guarantee over strings biased toward PSL tokens,
        /// which reach much deeper into the grammar than raw byte soup.
        #[test]
        fn parser_never_panics_on_token_soup(picks in prop::collection::vec(0usize..16, 0..48)) {
            const TOKS: [&str; 16] = [
                "always", "never", "eventually!", "next", "until", "abort",
                "|->", "|=>", "{", "}", "(", ")", "[*2]", "&&", "!", "sig",
            ];
            let src = picks.iter().map(|&i| TOKS[i]).collect::<Vec<_>>().join(" ");
            let _ = parse_directive(&src);
            let _ = parse_property(&src);
            let _ = parse_sere(&src);
            let _ = parse_bool_expr(&src);
        }

        #[test]
        fn nfa_repeat_counts_exactly(k in 0usize..6, reps in 1u32..4) {
            let sere = parse_sere(&format!("{{a[*{reps}]}}")).unwrap();
            let nfa = Nfa::from_sere(&sere);
            let t: Vec<Cycle> = (0..k).map(|_| cy(&[("a", true)])).collect();
            prop_assert_eq!(nfa.accepts(&t), k as u32 == reps);
        }
    }

    /// Reference semantics: does `sere` match exactly `trace[lo..hi]`?
    fn matches_ref(sere: &Sere, trace: &[Vec<(&str, bool)>], lo: usize, hi: usize) -> bool {
        match sere {
            Sere::Bool(b) => hi == lo + 1 && b.eval(trace[lo].as_slice()),
            Sere::Concat(a, c) => (lo..=hi).any(|m| {
                matches_ref(a, trace, lo, m) && matches_ref(c, trace, m, hi)
            }),
            Sere::Fusion(a, c) => {
                // overlap on one cycle: a matches [lo, m), c matches [m-1, hi)
                (lo + 1..=hi).any(|m| {
                    matches_ref(a, trace, lo, m) && matches_ref(c, trace, m - 1, hi)
                })
            }
            Sere::Or(a, c) => matches_ref(a, trace, lo, hi) || matches_ref(c, trace, lo, hi),
            Sere::And(a, c) => matches_ref(a, trace, lo, hi) && matches_ref(c, trace, lo, hi),
            Sere::Repeat { sere, min, max } => {
                fn rep(
                    s: &Sere,
                    trace: &[Vec<(&str, bool)>],
                    lo: usize,
                    hi: usize,
                    count: u32,
                    min: u32,
                    max: Option<u32>,
                ) -> bool {
                    if lo == hi {
                        // the remaining copies may all match empty if the
                        // inner SERE is nullable (min <= max always holds)
                        return count >= min || matches_ref(s, trace, lo, lo);
                    }
                    if let Some(mx) = max {
                        if count >= mx {
                            return false;
                        }
                    }
                    (lo + 1..=hi).any(|m| {
                        matches_ref(s, trace, lo, m)
                            && rep(s, trace, m, hi, count + 1, min, max)
                    })
                }
                rep(sere, trace, lo, hi, 0, *min, *max)
            }
        }
    }

    /// A small strategy over SEREs on signals {a, b}.
    fn arb_sere() -> impl Strategy<Value = Sere> {
        let leaf = prop_oneof![
            Just(Sere::signal("a")),
            Just(Sere::signal("b")),
            Just(Sere::Bool(BoolExpr::Not(Box::new(BoolExpr::var("a"))))),
        ];
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(x, y)| Sere::Concat(Box::new(x), Box::new(y))),
                (inner.clone(), inner.clone())
                    .prop_map(|(x, y)| Sere::Or(Box::new(x), Box::new(y))),
                (inner.clone(), inner.clone())
                    .prop_map(|(x, y)| Sere::Fusion(Box::new(x), Box::new(y))),
                (inner.clone(), 0u32..3, 0u32..3).prop_map(|(x, lo, extra)| Sere::Repeat {
                    sere: Box::new(x),
                    min: lo,
                    max: Some(lo + extra),
                }),
                inner.clone().prop_map(|x| Sere::Repeat {
                    sere: Box::new(x),
                    min: 1,
                    max: None,
                }),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The Glushkov automaton and the brute-force reference matcher
        /// agree on whole-trace matches for random SEREs and random traces.
        #[test]
        fn nfa_agrees_with_reference_matcher(
            sere in arb_sere(),
            bits in prop::collection::vec((any::<bool>(), any::<bool>()), 0..6),
        ) {
            let trace: Vec<Vec<(&str, bool)>> = bits
                .iter()
                .map(|&(a, b)| vec![("a", a), ("b", b)])
                .collect();
            let nfa = Nfa::from_sere(&sere);
            let got = nfa.accepts(&trace);
            let expect = matches_ref(&sere, &trace, 0, trace.len());
            prop_assert_eq!(got, expect, "sere: {}", sere);
        }
    }
}
