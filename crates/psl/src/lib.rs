//! # la1-psl — a Property Specification Language (PSL) implementation
//!
//! This crate reproduces the property layer of *On the Design and
//! Verification Methodology of the Look-Aside Interface* (DATE 2004). The
//! paper specifies the LA-1 interface's behaviour as PSL properties and
//! verifies them three times: by model checking at the ASM level, by
//! compiled assertion monitors at the SystemC level, and by RuleBase /
//! OVL at the RTL level. All three consumers use this crate.
//!
//! The four PSL layers are represented as:
//!
//! * **Boolean layer** — [`BoolExpr`], expressions over named signals
//!   evaluated in a single cycle;
//! * **temporal layer** — [`Sere`] (Sequential Extended Regular
//!   Expressions) and [`Property`] (always / never / next / until /
//!   before / eventually! / suffix implication);
//! * **verification layer** — [`Directive`] (`assert` / `assume` /
//!   `cover` with a name and severity);
//! * **modeling layer** — left to the host model (the paper models
//!   auxiliary behaviour in ASM/SystemC directly; so do we).
//!
//! Properties can be written programmatically or parsed from text with
//! [`parse_property`] / [`parse_directive`].
//!
//! # Monitors and the paper's `P_status` / `P_value` encoding
//!
//! [`Monitor`] executes a property over a finite trace, one cycle at a
//! time. After each cycle it exposes the paper's two-variable encoding
//! ([`PslState`]): the property is *correct* if `status ∧ value`,
//! *incorrect* if `status ∧ ¬value`, and still *undetermined* while a
//! temporal obligation spans the current cycle. The ASM explorer in
//! `la1-asm` uses exactly the paper's stop-filter `status ∧ ¬value` to cut
//! counterexample paths.
//!
//! # Example
//!
//! ```
//! use la1_psl::{parse_property, Monitor, Verdict};
//! # fn main() -> Result<(), la1_psl::ParsePslError> {
//! let prop = parse_property("always {req ; !req} |=> ack")?;
//! let mut mon = Monitor::new(&prop);
//! // cycle 0: req=1, ack=0 ; cycle 1: req=0 ; cycle 2: ack=1 -> holds
//! for (req, ack) in [(true, false), (false, false), (false, true)] {
//!     mon.step(&[("req", req), ("ack", ack)]);
//! }
//! assert_eq!(mon.finalize(), Verdict::Holds);
//! # Ok(())
//! # }
//! ```

mod ast;
mod monitor;
mod nfa;
mod parser;

pub use ast::{BoolExpr, Directive, DirectiveKind, Property, Sere, Severity};
pub use monitor::{BoundMonitor, Monitor, MonitorSnap, ObSnap, PslState, Verdict};
pub use nfa::Nfa;
pub use parser::{parse_bool_expr, parse_directive, parse_property, parse_sere, ParsePslError};

/// A single-cycle snapshot of signal values, consulted by monitors.
///
/// Implemented for slices of `(name, value)` pairs, for
/// `std::collections::HashMap<String, bool>`, and for closures wrapped in
/// [`FnValuation`]. Unknown signals evaluate to `false` (PSL's convention
/// for unconnected monitor inputs in the paper's OVL comparison).
pub trait Valuation {
    /// Current value of the named signal.
    fn value(&self, name: &str) -> bool;
}

impl Valuation for [(&str, bool)] {
    fn value(&self, name: &str) -> bool {
        self.iter().find(|(n, _)| *n == name).is_some_and(|&(_, v)| v)
    }
}

impl<const N: usize> Valuation for [(&str, bool); N] {
    fn value(&self, name: &str) -> bool {
        self.as_slice().value(name)
    }
}

impl Valuation for std::collections::HashMap<String, bool> {
    fn value(&self, name: &str) -> bool {
        self.get(name).copied().unwrap_or(false)
    }
}

/// Adapts a closure `Fn(&str) -> bool` into a [`Valuation`].
///
/// ```
/// use la1_psl::{FnValuation, Valuation};
/// let v = FnValuation(|name: &str| name == "hot");
/// assert!(v.value("hot"));
/// assert!(!v.value("cold"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FnValuation<F>(pub F);

impl<F: Fn(&str) -> bool> Valuation for FnValuation<F> {
    fn value(&self, name: &str) -> bool {
        (self.0)(name)
    }
}

#[cfg(test)]
mod tests;
