//! Runtime property monitors — the "assertions compiled to C#" of the
//! reproduced paper, here compiled to Rust obligation machines.
//!
//! A [`Monitor`] holds a set of live *obligations*. Each simulation cycle
//! the host calls [`Monitor::step`] with the cycle's signal valuation;
//! obligations advance, discharge, spawn sub-obligations (e.g. the
//! consequent of a suffix implication) or fail. After the last cycle,
//! [`Monitor::finalize`] resolves the remaining obligations using PSL's
//! weak/strong distinction.

use crate::ast::{BoolExpr, Property, Sere};
use crate::nfa::{BitSet, Nfa};
use crate::Valuation;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Overall verdict of a monitored property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Obligations are still open; no failure so far.
    Pending,
    /// The property holds (all obligations discharged, or finalized weak).
    Holds,
    /// The property failed.
    Fails,
}

/// The paper's two-variable property encoding.
///
/// * *correct*: `status && value`
/// * *incorrect*: `status && !value` — this is the explorer's stop filter
/// * *under verification*: `!status`
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PslState {
    /// `P_status` — `true` once the verdict is determined.
    pub status: bool,
    /// `P_value` — the verdict (meaningful when `status` is `true`;
    /// `true` while still undetermined, i.e. "not yet violated").
    pub value: bool,
}

impl PslState {
    /// The stop-filter condition of the paper: determined *and* false.
    pub fn is_violation(self) -> bool {
        self.status && !self.value
    }
}

impl From<Verdict> for PslState {
    fn from(v: Verdict) -> Self {
        match v {
            Verdict::Pending => PslState {
                status: false,
                value: true,
            },
            Verdict::Holds => PslState {
                status: true,
                value: true,
            },
            Verdict::Fails => PslState {
                status: true,
                value: false,
            },
        }
    }
}

/// A live obligation inside a monitor.
#[derive(Debug, Clone)]
enum Ob {
    /// Spawns its body at every cycle, forever.
    Always { body: Arc<Property> },
    /// The SERE must never reach an accepting position.
    Never { nfa: Arc<Nfa>, active: BitSet },
    /// The SERE must accept at least once (strong).
    Eventually { nfa: Arc<Nfa>, active: BitSet },
    /// The SERE must match a prefix (seeded only at spawn).
    SereStrong {
        nfa: Arc<Nfa>,
        active: BitSet,
        fresh: bool,
    },
    /// Defers a property by `remaining + 1` cycles.
    Defer {
        remaining: u32,
        strong: bool,
        body: Arc<Property>,
    },
    /// `p until q`.
    Until {
        p: Arc<BoolExpr>,
        q: Arc<BoolExpr>,
        strong: bool,
    },
    /// `p before q`.
    Before {
        p: Arc<BoolExpr>,
        q: Arc<BoolExpr>,
        strong: bool,
    },
    /// `{pre} |->/|=> post`; `persistent` when hoisted out of `always`.
    SuffixImpl {
        nfa: Arc<Nfa>,
        active: BitSet,
        post: Arc<Property>,
        overlap: bool,
        persistent: bool,
        fresh: bool,
    },
}

impl Hash for Ob {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Ob::Always { body } => {
                0u8.hash(state);
                body.hash(state);
            }
            Ob::Never { active, .. } => {
                1u8.hash(state);
                active.hash(state);
            }
            Ob::Eventually { active, .. } => {
                2u8.hash(state);
                active.hash(state);
            }
            Ob::SereStrong { active, fresh, .. } => {
                3u8.hash(state);
                active.hash(state);
                fresh.hash(state);
            }
            Ob::Defer {
                remaining,
                strong,
                body,
            } => {
                4u8.hash(state);
                remaining.hash(state);
                strong.hash(state);
                body.hash(state);
            }
            Ob::Until { p, q, strong } => {
                5u8.hash(state);
                p.hash(state);
                q.hash(state);
                strong.hash(state);
            }
            Ob::Before { p, q, strong } => {
                6u8.hash(state);
                p.hash(state);
                q.hash(state);
                strong.hash(state);
            }
            Ob::SuffixImpl {
                active,
                post,
                overlap,
                persistent,
                fresh,
                ..
            } => {
                7u8.hash(state);
                active.hash(state);
                post.hash(state);
                overlap.hash(state);
                persistent.hash(state);
                fresh.hash(state);
            }
        }
    }
}

/// What an obligation reports for one cycle.
enum ObStep {
    /// Keep the obligation for the next cycle.
    Continue(Ob),
    /// Discharged successfully.
    Done,
    /// Violated at this cycle.
    Failed,
}

/// An executable monitor for one [`Property`].
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug)]
pub struct Monitor {
    active: Vec<Ob>,
    /// recycled buffer for [`Monitor::step`]
    scratch: Vec<Ob>,
    cycle: usize,
    failed_at: Option<usize>,
    /// True when every obligation discharged (possible for non-`always`
    /// properties).
    determined_holds: bool,
    /// True once the property has positively matched at least once —
    /// used for `cover` reporting.
    covered: bool,
}

impl Clone for Monitor {
    fn clone(&self) -> Self {
        Monitor {
            active: self.active.clone(),
            scratch: Vec::new(),
            cycle: self.cycle,
            failed_at: self.failed_at,
            determined_holds: self.determined_holds,
            covered: self.covered,
        }
    }

    /// Reuses the destination's obligation buffers. The ASM explorer
    /// clones the parent's monitors into a scratch vector for every
    /// successor; `Vec::clone_from` dispatches here element-wise, which
    /// keeps the hot loop free of per-successor vector allocations.
    fn clone_from(&mut self, source: &Self) {
        self.active.clone_from(&source.active);
        self.scratch.clear();
        self.cycle = source.cycle;
        self.failed_at = source.failed_at;
        self.determined_holds = source.determined_holds;
        self.covered = source.covered;
    }
}

impl Monitor {
    /// Creates a monitor whose obligations start at the first
    /// [`step`](Self::step) call.
    pub fn new(property: &Property) -> Self {
        let mut m = Monitor {
            active: Vec::new(),
            scratch: Vec::new(),
            cycle: 0,
            failed_at: None,
            determined_holds: false,
            covered: false,
        };
        let mut fresh = Vec::new();
        instantiate(property, &mut fresh);
        m.active = fresh;
        m
    }

    /// Binds this monitor to a fixed signal ordering for slice-based
    /// stepping (used by the SystemC-level ABV loop where signal lookup
    /// by name every cycle would be unfair to Table 3).
    pub fn bind(self, signals: &[&str]) -> BoundMonitor {
        BoundMonitor {
            index: signals
                .iter()
                .enumerate()
                .map(|(i, s)| (s.to_string(), i))
                .collect(),
            monitor: self,
        }
    }

    /// Number of cycles consumed so far.
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// The cycle of the first violation, if any.
    pub fn failed_at(&self) -> Option<usize> {
        self.failed_at
    }

    /// Whether the property has positively matched at least once
    /// (meaningful for `cover`-style usage).
    pub fn covered(&self) -> bool {
        self.covered
    }

    /// Advances the monitor by one cycle and returns the paper's
    /// `P_status` / `P_value` pair after that cycle.
    pub fn step<V: Valuation + ?Sized>(&mut self, env: &V) -> PslState {
        let mut worklist: Vec<Ob> = std::mem::take(&mut self.active);
        // reuse the scratch vector: stepping must not allocate on the
        // steady-state path (it is the Table 3 hot loop)
        let mut next: Vec<Ob> = std::mem::take(&mut self.scratch);
        next.clear();
        let mut failed = false;
        let mut discharged_any = false;
        while let Some(ob) = worklist.pop() {
            match step_ob(ob, env, &mut worklist) {
                ObStep::Continue(ob) => next.push(ob),
                ObStep::Done => discharged_any = true,
                ObStep::Failed => failed = true,
            }
        }
        if failed && self.failed_at.is_none() {
            self.failed_at = Some(self.cycle);
        }
        if discharged_any {
            self.covered = true;
        }
        self.scratch = worklist;
        self.active = next;
        self.cycle += 1;
        if self.failed_at.is_none() && self.active.is_empty() {
            self.determined_holds = true;
        }
        self.state()
    }

    /// The current `P_status` / `P_value` pair without advancing.
    pub fn state(&self) -> PslState {
        PslState::from(self.verdict())
    }

    /// The current verdict: [`Verdict::Fails`] after any violation,
    /// [`Verdict::Holds`] once all obligations discharged, otherwise
    /// [`Verdict::Pending`].
    pub fn verdict(&self) -> Verdict {
        if self.failed_at.is_some() {
            Verdict::Fails
        } else if self.determined_holds {
            Verdict::Holds
        } else {
            Verdict::Pending
        }
    }

    /// A canonical 64-bit digest of the monitor's live obligation set.
    ///
    /// Two monitors for the same property with equal fingerprints behave
    /// identically on all future inputs (up to hash collision). The
    /// `la1-asm` explorer uses this to deduplicate model x monitor
    /// product states, which is how the paper keeps the explored FSM
    /// finite while properties are attached.
    pub fn fingerprint(&self) -> u64 {
        let mut digests: Vec<u64> = self
            .active
            .iter()
            .map(|ob| {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                ob.hash(&mut h);
                h.finish()
            })
            .collect();
        digests.sort_unstable();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        digests.hash(&mut h);
        self.failed_at.is_some().hash(&mut h);
        self.determined_holds.hash(&mut h);
        h.finish()
    }

    /// Ends the trace: strong pending obligations fail, weak ones hold.
    pub fn finalize(&self) -> Verdict {
        if self.failed_at.is_some() {
            return Verdict::Fails;
        }
        for ob in &self.active {
            let fails = match ob {
                Ob::Always { .. } | Ob::Never { .. } | Ob::Until { strong: false, .. } => false,
                Ob::Before { strong, .. } | Ob::Until { strong, .. } => *strong,
                Ob::Eventually { .. } | Ob::SereStrong { .. } => true,
                Ob::Defer { strong, .. } => *strong,
                Ob::SuffixImpl { .. } => false, // weak: pending matches vacuous
            };
            if fails {
                return Verdict::Fails;
            }
        }
        Verdict::Holds
    }
}

/// A monitor bound to a fixed signal ordering; the host supplies a plain
/// `&[bool]` each cycle.
///
/// ```
/// use la1_psl::{parse_property, Monitor, Verdict};
/// let p = parse_property("always (req -> next ack)").unwrap();
/// let mut m = Monitor::new(&p).bind(&["req", "ack"]);
/// m.step(&[true, false]);
/// m.step(&[false, true]);
/// assert_eq!(m.finalize(), Verdict::Holds);
/// ```
#[derive(Debug, Clone)]
pub struct BoundMonitor {
    monitor: Monitor,
    index: HashMap<String, usize>,
}

struct SliceValuation<'a> {
    index: &'a HashMap<String, usize>,
    values: &'a [bool],
}

impl Valuation for SliceValuation<'_> {
    fn value(&self, name: &str) -> bool {
        self.index
            .get(name)
            .and_then(|&i| self.values.get(i))
            .copied()
            .unwrap_or(false)
    }
}

impl BoundMonitor {
    /// Advances one cycle with values in the bound signal order.
    pub fn step(&mut self, values: &[bool]) -> PslState {
        let index = &self.index;
        let env = SliceValuation { index, values };
        self.monitor.step(&env)
    }

    /// See [`Monitor::finalize`].
    pub fn finalize(&self) -> Verdict {
        self.monitor.finalize()
    }

    /// See [`Monitor::verdict`].
    pub fn verdict(&self) -> Verdict {
        self.monitor.verdict()
    }

    /// See [`Monitor::failed_at`].
    pub fn failed_at(&self) -> Option<usize> {
        self.monitor.failed_at()
    }

    /// See [`Monitor::covered`].
    pub fn covered(&self) -> bool {
        self.monitor.covered()
    }
}

// ---------------------------------------------------------------------
// snapshot / restore
//
// A monitor's live state is its obligation list plus five scalars.
// Every `Arc<Property>`, `Arc<BoolExpr>` and NFA-source `Sere` held by
// a live obligation is structurally equal to a *subterm of the root
// property* (`instantiate` and `spawn_now` only ever clone subterms;
// the root itself appears via the zero-delay `Defer`), so a snapshot
// stores each term as an index into a deterministic preorder subterm
// table instead of re-serializing ASTs. Restore rebuilds the `Arc`s
// from the same root — and re-runs the (deterministic) Glushkov
// construction for the NFAs — so a restored monitor is behaviorally
// identical: same obligation order (the step worklist pops LIFO), same
// active sets, same verdict scalars, same `fingerprint()`.

/// A plain-data snapshot of one live obligation: the term indices into
/// the root property's preorder subterm tables ([`subterms`]), the
/// NFA active-position list, and the obligation's flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObSnap {
    /// [`Ob::Always`]: property-table index of the body.
    Always { body: u32 },
    /// [`Ob::Never`]: sere-table index and active positions.
    Never { sere: u32, active: Vec<u64> },
    /// [`Ob::Eventually`]: sere-table index and active positions.
    Eventually { sere: u32, active: Vec<u64> },
    /// [`Ob::SereStrong`].
    SereStrong {
        sere: u32,
        active: Vec<u64>,
        fresh: bool,
    },
    /// [`Ob::Defer`]: property-table index of the deferred body.
    Defer {
        remaining: u32,
        strong: bool,
        body: u32,
    },
    /// [`Ob::Until`]: bool-table indices.
    Until { p: u32, q: u32, strong: bool },
    /// [`Ob::Before`]: bool-table indices.
    Before { p: u32, q: u32, strong: bool },
    /// [`Ob::SuffixImpl`]: sere index of the precondition, property
    /// index of the postcondition.
    SuffixImpl {
        pre: u32,
        active: Vec<u64>,
        post: u32,
        overlap: bool,
        persistent: bool,
        fresh: bool,
    },
}

/// A plain-data snapshot of a [`Monitor`], valid against the property
/// it was taken from. Serialization lives in the checkpoint layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorSnap {
    /// Live obligations in worklist order (order is semantic: the step
    /// worklist pops last-in-first-out).
    pub obs: Vec<ObSnap>,
    /// Cycles consumed.
    pub cycle: u64,
    /// Cycle of the first violation, if any.
    pub failed_at: Option<u64>,
    /// Whether every obligation discharged.
    pub determined_holds: bool,
    /// Whether the property positively matched at least once.
    pub covered: bool,
}

/// The root property's subterm tables, in deterministic preorder.
struct Subterms<'a> {
    props: Vec<&'a Property>,
    seres: Vec<&'a Sere>,
    bools: Vec<&'a BoolExpr>,
}

fn subterms(root: &Property) -> Subterms<'_> {
    let mut t = Subterms {
        props: Vec::new(),
        seres: Vec::new(),
        bools: Vec::new(),
    };
    collect_prop(root, &mut t);
    t
}

fn collect_prop<'a>(p: &'a Property, t: &mut Subterms<'a>) {
    t.props.push(p);
    match p {
        Property::Bool(b) => collect_bool(b, t),
        Property::Always(x) => collect_prop(x, t),
        Property::Never(s) | Property::Eventually(s) | Property::SereStrong(s) => {
            collect_sere(s, t)
        }
        Property::Next { body, .. } => collect_prop(body, t),
        Property::Until { p, q, .. } | Property::Before { p, q, .. } => {
            collect_bool(p, t);
            collect_bool(q, t);
        }
        Property::Implies(b, x) => {
            collect_bool(b, t);
            collect_prop(x, t);
        }
        Property::SuffixImpl { pre, post, .. } => {
            collect_sere(pre, t);
            collect_prop(post, t);
        }
        Property::And(a, b) => {
            collect_prop(a, t);
            collect_prop(b, t);
        }
    }
}

fn collect_sere<'a>(s: &'a Sere, t: &mut Subterms<'a>) {
    t.seres.push(s);
    match s {
        Sere::Bool(b) => collect_bool(b, t),
        Sere::Concat(a, b) | Sere::Or(a, b) | Sere::Fusion(a, b) | Sere::And(a, b) => {
            collect_sere(a, t);
            collect_sere(b, t);
        }
        Sere::Repeat { sere, .. } => collect_sere(sere, t),
    }
}

fn collect_bool<'a>(b: &'a BoolExpr, t: &mut Subterms<'a>) {
    t.bools.push(b);
    match b {
        BoolExpr::Const(_) | BoolExpr::Var(_) => {}
        BoolExpr::Not(a) => collect_bool(a, t),
        BoolExpr::And(a, b)
        | BoolExpr::Or(a, b)
        | BoolExpr::Xor(a, b)
        | BoolExpr::Implies(a, b)
        | BoolExpr::Iff(a, b) => {
            collect_bool(a, t);
            collect_bool(b, t);
        }
    }
}

fn bitset_to_list(active: &BitSet) -> Vec<u64> {
    active.iter_ones().map(|p| p as u64).collect()
}

fn bitset_from_list(nfa: &Nfa, list: &[u64]) -> Result<BitSet, String> {
    let mut set = nfa.new_active();
    for &p in list {
        if p as usize >= nfa.num_positions() {
            return Err(format!(
                "active position {p} out of range (NFA has {})",
                nfa.num_positions()
            ));
        }
        set.set(p as usize);
    }
    Ok(set)
}

impl Monitor {
    /// Snapshots the monitor's live state against `root`, the property
    /// this monitor was created from ([`Monitor::new`]). Fails if any
    /// live obligation holds a term that is not a subterm of `root` —
    /// which would mean `root` is the wrong property.
    pub fn snapshot(&self, root: &Property) -> Result<MonitorSnap, String> {
        let t = subterms(root);
        // NFAs are matched by rebuilding: Glushkov construction is a
        // deterministic pure function of the sere, so the obligation's
        // automaton equals `from_sere` of its source subterm.
        let sere_nfas: Vec<Nfa> = t.seres.iter().map(|s| Nfa::from_sere(s)).collect();
        let find_prop = |p: &Property| -> Result<u32, String> {
            t.props
                .iter()
                .position(|&x| x == p)
                .map(|i| i as u32)
                .ok_or_else(|| "obligation body is not a subterm of the root".to_string())
        };
        let find_bool = |b: &BoolExpr| -> Result<u32, String> {
            t.bools
                .iter()
                .position(|&x| x == b)
                .map(|i| i as u32)
                .ok_or_else(|| "obligation guard is not a subterm of the root".to_string())
        };
        let find_nfa = |n: &Nfa| -> Result<u32, String> {
            sere_nfas
                .iter()
                .position(|x| x == n)
                .map(|i| i as u32)
                .ok_or_else(|| "obligation automaton matches no subterm SERE".to_string())
        };
        let mut obs = Vec::with_capacity(self.active.len());
        for ob in &self.active {
            obs.push(match ob {
                Ob::Always { body } => ObSnap::Always {
                    body: find_prop(body)?,
                },
                Ob::Never { nfa, active } => ObSnap::Never {
                    sere: find_nfa(nfa)?,
                    active: bitset_to_list(active),
                },
                Ob::Eventually { nfa, active } => ObSnap::Eventually {
                    sere: find_nfa(nfa)?,
                    active: bitset_to_list(active),
                },
                Ob::SereStrong { nfa, active, fresh } => ObSnap::SereStrong {
                    sere: find_nfa(nfa)?,
                    active: bitset_to_list(active),
                    fresh: *fresh,
                },
                Ob::Defer {
                    remaining,
                    strong,
                    body,
                } => ObSnap::Defer {
                    remaining: *remaining,
                    strong: *strong,
                    body: find_prop(body)?,
                },
                Ob::Until { p, q, strong } => ObSnap::Until {
                    p: find_bool(p)?,
                    q: find_bool(q)?,
                    strong: *strong,
                },
                Ob::Before { p, q, strong } => ObSnap::Before {
                    p: find_bool(p)?,
                    q: find_bool(q)?,
                    strong: *strong,
                },
                Ob::SuffixImpl {
                    nfa,
                    active,
                    post,
                    overlap,
                    persistent,
                    fresh,
                } => ObSnap::SuffixImpl {
                    pre: find_nfa(nfa)?,
                    active: bitset_to_list(active),
                    post: find_prop(post)?,
                    overlap: *overlap,
                    persistent: *persistent,
                    fresh: *fresh,
                },
            });
        }
        Ok(MonitorSnap {
            obs,
            cycle: self.cycle as u64,
            failed_at: self.failed_at.map(|c| c as u64),
            determined_holds: self.determined_holds,
            covered: self.covered,
        })
    }

    /// Rebuilds a monitor from a [`Monitor::snapshot`] taken against
    /// the same `root` property. Validates every table index and
    /// active position; a restored monitor is behaviorally identical
    /// to the snapshotted one (same obligation order, same verdicts,
    /// same [`Monitor::fingerprint`]).
    pub fn restore(root: &Property, snap: &MonitorSnap) -> Result<Monitor, String> {
        let t = subterms(root);
        let prop = |i: u32| -> Result<Arc<Property>, String> {
            t.props
                .get(i as usize)
                .map(|&p| Arc::new(p.clone()))
                .ok_or_else(|| format!("property index {i} out of range"))
        };
        let boole = |i: u32| -> Result<Arc<BoolExpr>, String> {
            t.bools
                .get(i as usize)
                .map(|&b| Arc::new(b.clone()))
                .ok_or_else(|| format!("boolean index {i} out of range"))
        };
        let nfa_of = |i: u32| -> Result<Arc<Nfa>, String> {
            t.seres
                .get(i as usize)
                .map(|&s| Arc::new(Nfa::from_sere(s)))
                .ok_or_else(|| format!("sere index {i} out of range"))
        };
        let mut active = Vec::with_capacity(snap.obs.len());
        for ob in &snap.obs {
            active.push(match ob {
                ObSnap::Always { body } => Ob::Always { body: prop(*body)? },
                ObSnap::Never { sere, active } => {
                    let nfa = nfa_of(*sere)?;
                    let active = bitset_from_list(&nfa, active)?;
                    Ob::Never { nfa, active }
                }
                ObSnap::Eventually { sere, active } => {
                    let nfa = nfa_of(*sere)?;
                    let active = bitset_from_list(&nfa, active)?;
                    Ob::Eventually { nfa, active }
                }
                ObSnap::SereStrong {
                    sere,
                    active,
                    fresh,
                } => {
                    let nfa = nfa_of(*sere)?;
                    let active = bitset_from_list(&nfa, active)?;
                    Ob::SereStrong {
                        nfa,
                        active,
                        fresh: *fresh,
                    }
                }
                ObSnap::Defer {
                    remaining,
                    strong,
                    body,
                } => Ob::Defer {
                    remaining: *remaining,
                    strong: *strong,
                    body: prop(*body)?,
                },
                ObSnap::Until { p, q, strong } => Ob::Until {
                    p: boole(*p)?,
                    q: boole(*q)?,
                    strong: *strong,
                },
                ObSnap::Before { p, q, strong } => Ob::Before {
                    p: boole(*p)?,
                    q: boole(*q)?,
                    strong: *strong,
                },
                ObSnap::SuffixImpl {
                    pre,
                    active,
                    post,
                    overlap,
                    persistent,
                    fresh,
                } => {
                    let nfa = nfa_of(*pre)?;
                    let active = bitset_from_list(&nfa, active)?;
                    Ob::SuffixImpl {
                        nfa,
                        active,
                        post: prop(*post)?,
                        overlap: *overlap,
                        persistent: *persistent,
                        fresh: *fresh,
                    }
                }
            });
        }
        Ok(Monitor {
            active,
            scratch: Vec::new(),
            cycle: snap.cycle as usize,
            failed_at: snap.failed_at.map(|c| c as usize),
            determined_holds: snap.determined_holds,
            covered: snap.covered,
        })
    }
}

impl BoundMonitor {
    /// See [`Monitor::snapshot`].
    pub fn snapshot(&self, root: &Property) -> Result<MonitorSnap, String> {
        self.monitor.snapshot(root)
    }

    /// Rebuilds a bound monitor: [`Monitor::restore`] plus a fresh
    /// [`Monitor::bind`] over `signals` (the binding is a pure function
    /// of the signal list, so it is not part of the snapshot).
    pub fn restore(
        root: &Property,
        signals: &[&str],
        snap: &MonitorSnap,
    ) -> Result<BoundMonitor, String> {
        Ok(Monitor::restore(root, snap)?.bind(signals))
    }
}

/// Expands a property into the obligations live at its start cycle.
fn instantiate(prop: &Property, out: &mut Vec<Ob>) {
    match prop {
        Property::Bool(_)
        | Property::Implies(..)
        | Property::Next { .. }
        | Property::And(..) => {
            // These are expanded lazily by `step_ob` via `spawn_now`;
            // wrap them in a zero-delay defer so that they are evaluated
            // in the cycle the instantiation becomes active.
            out.push(Ob::Defer {
                remaining: 0,
                strong: false,
                body: Arc::new(prop.clone()),
            });
        }
        Property::Always(body) => match body.as_ref() {
            // `always` over an automaton-backed body folds into a single
            // persistent obligation whose NFA is re-seeded every cycle.
            Property::Never(s) => out.push(never_ob(s)),
            Property::SuffixImpl { pre, post, overlap } => out.push(Ob::SuffixImpl {
                nfa: Arc::new(Nfa::from_sere(pre)),
                active: Nfa::from_sere(pre).new_active(),
                post: Arc::new(post.as_ref().clone()),
                overlap: *overlap,
                persistent: true,
                fresh: true,
            }),
            _ => out.push(Ob::Always {
                body: Arc::new(body.as_ref().clone()),
            }),
        },
        Property::Never(s) => out.push(never_ob(s)),
        Property::Eventually(s) => {
            let nfa = Arc::new(Nfa::from_sere(s));
            let active = nfa.new_active();
            out.push(Ob::Eventually { nfa, active });
        }
        Property::SereStrong(s) => {
            let nfa = Arc::new(Nfa::from_sere(s));
            let active = nfa.new_active();
            out.push(Ob::SereStrong {
                nfa,
                active,
                fresh: true,
            });
        }
        Property::Until { p, q, strong } => out.push(Ob::Until {
            p: Arc::new(p.clone()),
            q: Arc::new(q.clone()),
            strong: *strong,
        }),
        Property::Before { p, q, strong } => out.push(Ob::Before {
            p: Arc::new(p.clone()),
            q: Arc::new(q.clone()),
            strong: *strong,
        }),
        Property::SuffixImpl { pre, post, overlap } => {
            let nfa = Arc::new(Nfa::from_sere(pre));
            let active = nfa.new_active();
            out.push(Ob::SuffixImpl {
                nfa,
                active,
                post: Arc::new(post.as_ref().clone()),
                overlap: *overlap,
                persistent: false,
                fresh: true,
            });
        }
    }
}

fn never_ob(s: &Sere) -> Ob {
    let nfa = Arc::new(Nfa::from_sere(s));
    let active = nfa.new_active();
    Ob::Never { nfa, active }
}

/// Expands a property *within* the current cycle (used for bodies whose
/// evaluation starts now).
fn spawn_now<V: Valuation + ?Sized>(
    prop: &Property,
    env: &V,
    worklist: &mut Vec<Ob>,
) -> Result<(), ()> {
    match prop {
        Property::Bool(b) => {
            if b.eval(env) {
                Ok(())
            } else {
                Err(())
            }
        }
        Property::Implies(b, p) => {
            if b.eval(env) {
                spawn_now(p, env, worklist)
            } else {
                Ok(())
            }
        }
        Property::Next { n, strong, body } => {
            debug_assert!(*n >= 1, "parser guarantees next[n] with n >= 1");
            worklist.push(Ob::Defer {
                remaining: *n,
                strong: *strong,
                body: Arc::new(body.as_ref().clone()),
            });
            Ok(())
        }
        Property::And(a, b) => {
            spawn_now(a, env, worklist)?;
            spawn_now(b, env, worklist)
        }
        other => {
            let mut fresh = Vec::new();
            instantiate(other, &mut fresh);
            // Automaton-backed obligations created "now" must consume the
            // current cycle immediately; push them on the worklist.
            worklist.extend(fresh);
            Ok(())
        }
    }
}

fn step_ob<V: Valuation + ?Sized>(ob: Ob, env: &V, worklist: &mut Vec<Ob>) -> ObStep {
    match ob {
        Ob::Always { body } => {
            if spawn_now(&body, env, worklist).is_err() {
                return ObStep::Failed;
            }
            ObStep::Continue(Ob::Always { body })
        }
        Ob::Never { nfa, active } => {
            let (next_active, accepted) = nfa.step(&active, true, env);
            if accepted || nfa.nullable() {
                ObStep::Failed
            } else {
                ObStep::Continue(Ob::Never {
                    nfa,
                    active: next_active,
                })
            }
        }
        Ob::Eventually { nfa, active } => {
            let (next_active, accepted) = nfa.step(&active, true, env);
            if accepted || nfa.nullable() {
                ObStep::Done
            } else {
                ObStep::Continue(Ob::Eventually {
                    nfa,
                    active: next_active,
                })
            }
        }
        Ob::SereStrong { nfa, active, fresh } => {
            if fresh && nfa.nullable() {
                return ObStep::Done;
            }
            let (next_active, accepted) = nfa.step(&active, fresh, env);
            if accepted {
                ObStep::Done
            } else if next_active.is_empty() {
                ObStep::Failed
            } else {
                ObStep::Continue(Ob::SereStrong {
                    nfa,
                    active: next_active,
                    fresh: false,
                })
            }
        }
        Ob::Defer {
            remaining,
            strong,
            body,
        } => {
            if remaining == 0 {
                if spawn_now(&body, env, worklist).is_err() {
                    ObStep::Failed
                } else {
                    ObStep::Done
                }
            } else {
                ObStep::Continue(Ob::Defer {
                    remaining: remaining - 1,
                    strong,
                    body,
                })
            }
        }
        Ob::Until { p, q, strong } => {
            if q.eval(env) {
                ObStep::Done
            } else if p.eval(env) {
                ObStep::Continue(Ob::Until { p, q, strong })
            } else {
                ObStep::Failed
            }
        }
        Ob::Before { p, q, strong } => {
            let pv = p.eval(env);
            let qv = q.eval(env);
            if pv && !qv {
                ObStep::Done
            } else if qv {
                ObStep::Failed
            } else {
                ObStep::Continue(Ob::Before { p, q, strong })
            }
        }
        Ob::SuffixImpl {
            nfa,
            active,
            post,
            overlap,
            persistent,
            fresh,
        } => {
            let seed = persistent || fresh;
            let (next_active, accepted) = nfa.step(&active, seed, env);
            let matched_now = accepted || (seed && nfa.nullable() && overlap);
            if matched_now {
                if overlap {
                    if spawn_now(&post, env, worklist).is_err() {
                        return ObStep::Failed;
                    }
                } else {
                    worklist.push(Ob::Defer {
                        remaining: 1,
                        strong: false,
                        body: post.clone(),
                    });
                }
            } else if seed && nfa.nullable() && !overlap {
                worklist.push(Ob::Defer {
                    remaining: 1,
                    strong: false,
                    body: post.clone(),
                });
            }
            if !persistent && next_active.is_empty() {
                return ObStep::Done; // no further match possible: vacuous
            }
            ObStep::Continue(Ob::SuffixImpl {
                nfa,
                active: next_active,
                post,
                overlap,
                persistent,
                fresh: false,
            })
        }
    }
}
