//! The PSL abstract syntax: Boolean layer, SEREs, temporal layer and
//! verification directives.

use crate::Valuation;
use std::fmt;

/// A Boolean-layer expression, evaluated within a single cycle.
///
/// ```
/// use la1_psl::{parse_bool_expr, Valuation};
/// let e = parse_bool_expr("a && (!b || c)").unwrap();
/// assert!(e.eval(&[("a", true), ("b", false)]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// Constant `true` / `false`.
    Const(bool),
    /// A named design signal.
    Var(String),
    /// Negation `!e`.
    Not(Box<BoolExpr>),
    /// Conjunction `a && b`.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction `a || b`.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Exclusive or `a ^ b`.
    Xor(Box<BoolExpr>, Box<BoolExpr>),
    /// Implication `a -> b` at the Boolean layer.
    Implies(Box<BoolExpr>, Box<BoolExpr>),
    /// Equivalence `a == b`.
    Iff(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Shorthand for a signal reference.
    pub fn var(name: impl Into<String>) -> Self {
        BoolExpr::Var(name.into())
    }

    /// Evaluates the expression against the given cycle snapshot.
    pub fn eval<V: Valuation + ?Sized>(&self, env: &V) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Var(name) => env.value(name),
            BoolExpr::Not(e) => !e.eval(env),
            BoolExpr::And(a, b) => a.eval(env) && b.eval(env),
            BoolExpr::Or(a, b) => a.eval(env) || b.eval(env),
            BoolExpr::Xor(a, b) => a.eval(env) ^ b.eval(env),
            BoolExpr::Implies(a, b) => !a.eval(env) || b.eval(env),
            BoolExpr::Iff(a, b) => a.eval(env) == b.eval(env),
        }
    }

    /// All signal names referenced, ascending, deduplicated.
    pub fn signals(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_signals(&mut out);
        out.sort();
        out.dedup();
        out
    }

    pub(crate) fn collect_signals(&self, out: &mut Vec<String>) {
        match self {
            BoolExpr::Const(_) => {}
            BoolExpr::Var(n) => out.push(n.clone()),
            BoolExpr::Not(e) => e.collect_signals(out),
            BoolExpr::And(a, b)
            | BoolExpr::Or(a, b)
            | BoolExpr::Xor(a, b)
            | BoolExpr::Implies(a, b)
            | BoolExpr::Iff(a, b) => {
                a.collect_signals(out);
                b.collect_signals(out);
            }
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Const(b) => write!(f, "{b}"),
            BoolExpr::Var(n) => write!(f, "{n}"),
            BoolExpr::Not(e) => write!(f, "!({e})"),
            BoolExpr::And(a, b) => write!(f, "({a} && {b})"),
            BoolExpr::Or(a, b) => write!(f, "({a} || {b})"),
            BoolExpr::Xor(a, b) => write!(f, "({a} ^ {b})"),
            BoolExpr::Implies(a, b) => write!(f, "({a} -> {b})"),
            BoolExpr::Iff(a, b) => write!(f, "({a} == {b})"),
        }
    }
}

/// A Sequential Extended Regular Expression — PSL's multi-cycle pattern.
///
/// SEREs describe sets of finite trace segments. They are written inside
/// braces in the textual syntax: `{req ; busy[*] ; done}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Sere {
    /// A single cycle in which the Boolean holds.
    Bool(BoolExpr),
    /// `a ; b` — `b` starts the cycle after `a` ends.
    Concat(Box<Sere>, Box<Sere>),
    /// `a : b` — fusion: `b` starts on the cycle `a` ends.
    Fusion(Box<Sere>, Box<Sere>),
    /// `a | b` — either matches.
    Or(Box<Sere>, Box<Sere>),
    /// `a && b` — both match over the same cycles (length-matching).
    And(Box<Sere>, Box<Sere>),
    /// `a[*min:max]` — consecutive repetition; `max = None` is unbounded.
    /// `[*]` is `[*0:∞]`, `[+]` is `[*1:∞]`, `[*n]` is `[*n:n]`.
    Repeat {
        /// The repeated sub-expression.
        sere: Box<Sere>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions (`None` = unbounded).
        max: Option<u32>,
    },
}

impl Sere {
    /// Shorthand for a single-cycle Boolean SERE over one signal.
    pub fn signal(name: impl Into<String>) -> Self {
        Sere::Bool(BoolExpr::var(name))
    }

    /// `self ; other`.
    pub fn then(self, other: Sere) -> Sere {
        Sere::Concat(Box::new(self), Box::new(other))
    }

    /// `self[*min:max]`.
    pub fn repeat(self, min: u32, max: Option<u32>) -> Sere {
        Sere::Repeat {
            sere: Box::new(self),
            min,
            max,
        }
    }

    /// All signal names referenced, ascending, deduplicated.
    pub fn signals(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_signals(&mut out);
        out.sort();
        out.dedup();
        out
    }

    pub(crate) fn collect_signals(&self, out: &mut Vec<String>) {
        match self {
            Sere::Bool(b) => b.collect_signals(out),
            Sere::Concat(a, b) | Sere::Fusion(a, b) | Sere::Or(a, b) | Sere::And(a, b) => {
                a.collect_signals(out);
                b.collect_signals(out);
            }
            Sere::Repeat { sere, .. } => sere.collect_signals(out),
        }
    }
}

impl fmt::Display for Sere {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sere::Bool(b) => write!(f, "{b}"),
            Sere::Concat(a, b) => write!(f, "{a} ; {b}"),
            Sere::Fusion(a, b) => write!(f, "{a} : {b}"),
            Sere::Or(a, b) => write!(f, "{{{a}}} | {{{b}}}"),
            Sere::And(a, b) => write!(f, "{{{a}}} && {{{b}}}"),
            Sere::Repeat { sere, min, max } => match (min, max) {
                (0, None) => write!(f, "{{{sere}}}[*]"),
                (1, None) => write!(f, "{{{sere}}}[+]"),
                (m, None) => write!(f, "{{{sere}}}[*{m}:]"),
                (m, Some(x)) if m == x => write!(f, "{{{sere}}}[*{m}]"),
                (m, Some(x)) => write!(f, "{{{sere}}}[*{m}:{x}]"),
            },
        }
    }
}

/// A temporal-layer property (PSL simple subset).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Property {
    /// A Boolean that must hold in the property's start cycle.
    Bool(BoolExpr),
    /// `always p` — `p` holds starting at every cycle.
    Always(Box<Property>),
    /// `never {r}` — the SERE never matches any segment of the trace.
    Never(Sere),
    /// `eventually! {r}` — the SERE matches some segment (strong).
    Eventually(Sere),
    /// `next[n] p` / `next![n] p` — `p` holds `n` cycles later.
    /// A strong `next!` fails if the trace ends before cycle `n`.
    Next {
        /// Number of cycles to skip (1 for plain `next`).
        n: u32,
        /// Strong variant: the later cycle must exist.
        strong: bool,
        /// The delayed property.
        body: Box<Property>,
    },
    /// `p until q` / `p until! q` — `p` holds every cycle strictly before
    /// the first cycle where `q` holds. Strong requires `q` to occur.
    Until {
        /// Holds while waiting.
        p: BoolExpr,
        /// The releasing condition.
        q: BoolExpr,
        /// Strong variant: `q` must eventually hold.
        strong: bool,
    },
    /// `p before q` / `p before! q` — `p` occurs strictly before `q`.
    /// Strong requires `p` to occur even if `q` never does.
    Before {
        /// The event that must come first.
        p: BoolExpr,
        /// The event it must precede.
        q: BoolExpr,
        /// Strong variant.
        strong: bool,
    },
    /// `b -> p` — if the Boolean holds now, the property holds now.
    Implies(BoolExpr, Box<Property>),
    /// `{r} |-> p` (overlap) / `{r} |=> p` — whenever the SERE matches,
    /// the property holds starting at the match's last (`|->`) or
    /// following (`|=>`) cycle.
    SuffixImpl {
        /// The triggering SERE.
        pre: Sere,
        /// The consequent property.
        post: Box<Property>,
        /// `true` for `|->`, `false` for `|=>`.
        overlap: bool,
    },
    /// `{r}!` — the SERE matches a prefix of the trace (strong).
    SereStrong(Sere),
    /// `p && q` at the property level.
    And(Box<Property>, Box<Property>),
}

impl Property {
    /// Convenience: `always self`.
    pub fn always(self) -> Property {
        Property::Always(Box::new(self))
    }

    /// All signal names referenced, ascending, deduplicated.
    pub fn signals(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_signals(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_signals(&self, out: &mut Vec<String>) {
        match self {
            Property::Bool(b) => b.collect_signals(out),
            Property::Always(p) => p.collect_signals(out),
            Property::Never(s) | Property::Eventually(s) | Property::SereStrong(s) => {
                s.collect_signals(out)
            }
            Property::Next { body, .. } => body.collect_signals(out),
            Property::Until { p, q, .. } | Property::Before { p, q, .. } => {
                p.collect_signals(out);
                q.collect_signals(out);
            }
            Property::Implies(b, p) => {
                b.collect_signals(out);
                p.collect_signals(out);
            }
            Property::SuffixImpl { pre, post, .. } => {
                pre.collect_signals(out);
                post.collect_signals(out);
            }
            Property::And(a, b) => {
                a.collect_signals(out);
                b.collect_signals(out);
            }
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::Bool(b) => write!(f, "{b}"),
            Property::Always(p) => write!(f, "always {p}"),
            Property::Never(s) => write!(f, "never {{{s}}}"),
            Property::Eventually(s) => write!(f, "eventually! {{{s}}}"),
            Property::Next { n, strong, body } => {
                let bang = if *strong { "!" } else { "" };
                if *n == 1 {
                    write!(f, "next{bang} {body}")
                } else {
                    write!(f, "next{bang}[{n}] {body}")
                }
            }
            Property::Until { p, q, strong } => {
                write!(f, "{p} until{} {q}", if *strong { "!" } else { "" })
            }
            Property::Before { p, q, strong } => {
                write!(f, "{p} before{} {q}", if *strong { "!" } else { "" })
            }
            Property::Implies(b, p) => write!(f, "{b} -> ({p})"),
            Property::SuffixImpl { pre, post, overlap } => {
                write!(f, "{{{pre}}} {} {post}", if *overlap { "|->" } else { "|=>" })
            }
            Property::SereStrong(s) => write!(f, "{{{s}}}!"),
            Property::And(a, b) => write!(f, "({a}) && ({b})"),
        }
    }
}

/// Severity of a failed directive, mirroring OVL's classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Severity {
    /// Informational only.
    Note,
    /// A minor problem; simulation may continue.
    Warning,
    /// A major problem (OVL default).
    #[default]
    Error,
    /// Fatal: the host should stop the simulation.
    Fatal,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
            Severity::Fatal => "fatal",
        };
        f.write_str(s)
    }
}

/// What the verification layer asks the tool to do with a property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirectiveKind {
    /// Prove/monitor that the property holds.
    Assert,
    /// Constrain inputs (used by the SMC to restrict the environment).
    Assume,
    /// Check that the property's trigger is reachable.
    Cover,
}

impl fmt::Display for DirectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DirectiveKind::Assert => "assert",
            DirectiveKind::Assume => "assume",
            DirectiveKind::Cover => "cover",
        };
        f.write_str(s)
    }
}

/// A verification-layer directive: a named property with a kind and
/// severity, e.g. `assert read_latency : always {r} |=> d;`.
#[derive(Debug, Clone, PartialEq)]
pub struct Directive {
    /// Verification-layer keyword.
    pub kind: DirectiveKind,
    /// Name used in reports.
    pub name: String,
    /// The property body.
    pub property: Property,
    /// Failure severity.
    pub severity: Severity,
    /// Message to display on failure.
    pub message: String,
}

impl Directive {
    /// Creates an `assert` directive with [`Severity::Error`] and a
    /// default message.
    pub fn assert(name: impl Into<String>, property: Property) -> Self {
        let name = name.into();
        Directive {
            kind: DirectiveKind::Assert,
            message: format!("assertion {name} failed"),
            name,
            property,
            severity: Severity::Error,
        }
    }

    /// Creates a `cover` directive.
    pub fn cover(name: impl Into<String>, property: Property) -> Self {
        let name = name.into();
        Directive {
            kind: DirectiveKind::Cover,
            message: format!("cover {name} never hit"),
            name,
            property,
            severity: Severity::Warning,
        }
    }
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} : {};", self.kind, self.name, self.property)
    }
}
